// nldl_trace_check — CLI over obs/validate.hpp, for ctest and CI.
//
//   nldl_trace_check <trace.json> [more.json ...]
//       Validate each exported Chrome trace-event file against the
//       schema (well-formed events, monotone timestamps, balanced B/E
//       nesting per track). Exit 0 iff every file validates.
//
//   nldl_trace_check --bench-diff <a.json> <b.json>
//       Compare the "deterministic" payloads of two bench JSON
//       artifacts; the "measured" sidecars (wall times, RSS, profiles)
//       are ignored by design. Exit 0 iff the payloads are identical.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/validate.hpp"
#include "util/assert.hpp"
#include "util/json_parse.hpp"

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

int validate_traces(const std::vector<std::string>& paths) {
  int failures = 0;
  for (const std::string& path : paths) {
    std::string text;
    if (!read_file(path, text)) {
      std::fprintf(stderr, "%s: cannot read\n", path.c_str());
      ++failures;
      continue;
    }
    const nldl::obs::ValidationResult result =
        nldl::obs::validate_chrome_trace_text(text);
    if (result) {
      std::printf("%s: OK (%zu events)\n", path.c_str(), result.events);
    } else {
      std::fprintf(stderr, "%s: INVALID: %s\n", path.c_str(),
                   result.error.c_str());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

int bench_diff(const std::string& path_a, const std::string& path_b) {
  std::string text_a;
  std::string text_b;
  if (!read_file(path_a, text_a)) {
    std::fprintf(stderr, "%s: cannot read\n", path_a.c_str());
    return 1;
  }
  if (!read_file(path_b, text_b)) {
    std::fprintf(stderr, "%s: cannot read\n", path_b.c_str());
    return 1;
  }
  try {
    const nldl::util::JsonValue a = nldl::util::parse_json(text_a);
    const nldl::util::JsonValue b = nldl::util::parse_json(text_b);
    const nldl::obs::ValidationResult result =
        nldl::obs::compare_deterministic_payload(a, b);
    if (result) {
      std::printf("deterministic payloads identical: %s == %s\n",
                  path_a.c_str(), path_b.c_str());
      return 0;
    }
    std::fprintf(stderr, "MISMATCH: %s\n", result.error.c_str());
    return 1;
  } catch (const nldl::util::PreconditionError& error) {
    std::fprintf(stderr, "parse error: %s\n", error.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (!args.empty() && args[0] == "--bench-diff") {
    if (args.size() != 3) {
      std::fprintf(stderr,
                   "usage: nldl_trace_check --bench-diff <a.json> <b.json>\n");
      return 2;
    }
    return bench_diff(args[1], args[2]);
  }
  if (args.empty()) {
    std::fprintf(stderr,
                 "usage: nldl_trace_check <trace.json> [more.json ...]\n"
                 "       nldl_trace_check --bench-diff <a.json> <b.json>\n");
    return 2;
  }
  return validate_traces(args);
}
