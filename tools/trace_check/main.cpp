// nldl_trace_check — CLI over obs/validate.hpp, for ctest and CI.
//
//   nldl_trace_check <trace.json> [more.json ...]
//       Validate each exported Chrome trace-event file against the
//       schema (well-formed events, monotone timestamps, balanced B/E
//       nesting per track). Exit 0 iff every file validates.
//
//   nldl_trace_check --summary <trace.json> [--top N] [--slo OBJ]
//       Validate, then triage: event counts by kind, the worker-time
//       attribution table, the top-N critical-path blame table
//       (reconstructed from the exported events with the microsecond
//       tolerance), and a burn-rate block over the trace's deadline-miss
//       instants at objective OBJ (default 0.95). Exit 0 iff the file
//       validates and every job's blame closes on its latency.
//
//   nldl_trace_check --metrics <metrics.json> [more.json ...]
//       Validate MetricsRegistry JSON dumps (numbers or well-formed
//       quantile objects). Exit 0 iff every file validates.
//
//   nldl_trace_check --bench-diff <a.json> <b.json>
//       Compare the "deterministic" payloads of two bench JSON
//       artifacts; the "measured" sidecars (wall times, RSS, profiles)
//       are ignored by design. Exit 0 iff the payloads are identical.
#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/critical_path.hpp"
#include "obs/export.hpp"
#include "obs/slo.hpp"
#include "obs/validate.hpp"
#include "util/assert.hpp"
#include "util/json_parse.hpp"

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

int validate_traces(const std::vector<std::string>& paths) {
  int failures = 0;
  for (const std::string& path : paths) {
    std::string text;
    if (!read_file(path, text)) {
      std::fprintf(stderr, "%s: cannot read\n", path.c_str());
      ++failures;
      continue;
    }
    const nldl::obs::ValidationResult result =
        nldl::obs::validate_chrome_trace_text(text);
    if (result) {
      std::printf("%s: OK (%zu events)\n", path.c_str(), result.events);
    } else {
      std::fprintf(stderr, "%s: INVALID: %s\n", path.c_str(),
                   result.error.c_str());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

int validate_metrics(const std::vector<std::string>& paths) {
  int failures = 0;
  for (const std::string& path : paths) {
    std::string text;
    if (!read_file(path, text)) {
      std::fprintf(stderr, "%s: cannot read\n", path.c_str());
      ++failures;
      continue;
    }
    try {
      const nldl::util::JsonValue root = nldl::util::parse_json(text);
      const nldl::obs::ValidationResult result =
          nldl::obs::validate_metrics_json(root);
      if (result) {
        std::printf("%s: OK (%zu entries)\n", path.c_str(), result.events);
      } else {
        std::fprintf(stderr, "%s: INVALID: %s\n", path.c_str(),
                     result.error.c_str());
        ++failures;
      }
    } catch (const nldl::util::PreconditionError& error) {
      std::fprintf(stderr, "%s: parse error: %s\n", path.c_str(),
                   error.what());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

// The exported microsecond timestamps perturb span endpoints by up to
// half a tick, so the causal reconstruction needs a relative tolerance
// when matching "transfer end == compute start" chains.
constexpr double kRoundtripTolerance = 1e-9;

int summarize_trace(const std::string& path, std::size_t top_k,
                    double slo_objective) {
  std::string text;
  if (!read_file(path, text)) {
    std::fprintf(stderr, "%s: cannot read\n", path.c_str());
    return 1;
  }
  const nldl::obs::ValidationResult valid =
      nldl::obs::validate_chrome_trace_text(text);
  if (!valid) {
    std::fprintf(stderr, "%s: INVALID: %s\n", path.c_str(),
                 valid.error.c_str());
    return 1;
  }
  const nldl::util::JsonValue root = nldl::util::parse_json(text);
  const std::vector<nldl::obs::TraceEvent> events =
      nldl::obs::events_from_chrome_trace(root);
  std::printf("%s: OK (%zu chrome events, %zu trace events)\n\n",
              path.c_str(), valid.events, events.size());

  // Event counts by kind, in enum order, zero-count kinds omitted.
  std::vector<std::size_t> counts;
  std::size_t workers = 0;
  double horizon = 0.0;
  for (const nldl::obs::TraceEvent& event : events) {
    const auto kind = static_cast<std::size_t>(event.kind);
    if (kind >= counts.size()) counts.resize(kind + 1, 0);
    ++counts[kind];
    if (event.worker != nldl::obs::kNoIndex && event.worker + 1 > workers) {
      workers = event.worker + 1;
    }
    horizon = std::max(horizon, event.end);
  }
  std::printf("--- event counts ---\n");
  for (std::size_t kind = 0; kind < counts.size(); ++kind) {
    if (counts[kind] == 0) continue;
    std::printf("  %-14s %8zu\n",
                nldl::obs::to_string(
                    static_cast<nldl::obs::EventKind>(kind)),
                counts[kind]);
  }
  std::printf("\n");

  std::fputs(nldl::obs::render_attribution(
                 nldl::obs::attribute_time(events, workers), path)
                 .c_str(),
             stdout);

  const nldl::obs::CriticalPath analysis(events, kRoundtripTolerance);
  std::fputs(nldl::obs::render_blame(analysis, top_k, path).c_str(),
             stdout);
  int failures = 0;
  for (const nldl::obs::JobBlame& job : analysis.jobs()) {
    if (job.total() != job.latency) {
      std::fprintf(stderr,
                   "blame components do not sum to latency for job %zu\n",
                   job.job);
      ++failures;
    }
  }

  // Burn-rate replay: each kJob span is one SLI observation at its
  // finish time; a job missed iff the trace carries a kDeadlineMiss
  // instant for it. Traces without deadlines simply never miss.
  if (!analysis.jobs().empty() && horizon > 0.0) {
    std::vector<std::size_t> missed;
    for (const nldl::obs::TraceEvent& event : events) {
      if (event.kind == nldl::obs::EventKind::kDeadlineMiss) {
        missed.push_back(event.job);
      }
    }
    std::sort(missed.begin(), missed.end());
    nldl::obs::BurnRateMonitor monitor(
        nldl::obs::SloPolicy::paging(slo_objective, horizon / 72.0),
        horizon);
    for (const nldl::obs::JobBlame& job : analysis.jobs()) {
      const bool miss = std::binary_search(missed.begin(), missed.end(),
                                           job.job);
      monitor.observe(job.finish, miss);
    }
    monitor.finalize();
    std::fputs(monitor.render().c_str(), stdout);
  }
  return failures == 0 ? 0 : 1;
}

int bench_diff(const std::string& path_a, const std::string& path_b) {
  std::string text_a;
  std::string text_b;
  if (!read_file(path_a, text_a)) {
    std::fprintf(stderr, "%s: cannot read\n", path_a.c_str());
    return 1;
  }
  if (!read_file(path_b, text_b)) {
    std::fprintf(stderr, "%s: cannot read\n", path_b.c_str());
    return 1;
  }
  try {
    const nldl::util::JsonValue a = nldl::util::parse_json(text_a);
    const nldl::util::JsonValue b = nldl::util::parse_json(text_b);
    const nldl::obs::ValidationResult result =
        nldl::obs::compare_deterministic_payload(a, b);
    if (result) {
      std::printf("deterministic payloads identical: %s == %s\n",
                  path_a.c_str(), path_b.c_str());
      return 0;
    }
    std::fprintf(stderr, "MISMATCH: %s\n", result.error.c_str());
    return 1;
  } catch (const nldl::util::PreconditionError& error) {
    std::fprintf(stderr, "parse error: %s\n", error.what());
    return 1;
  }
}

int usage() {
  std::fprintf(
      stderr,
      "usage: nldl_trace_check <trace.json> [more.json ...]\n"
      "       nldl_trace_check --summary <trace.json> [--top N] [--slo OBJ]\n"
      "       nldl_trace_check --metrics <metrics.json> [more.json ...]\n"
      "       nldl_trace_check --bench-diff <a.json> <b.json>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (!args.empty() && args[0] == "--bench-diff") {
    if (args.size() != 3) return usage();
    return bench_diff(args[1], args[2]);
  }
  if (!args.empty() && args[0] == "--metrics") {
    if (args.size() < 2) return usage();
    return validate_metrics(
        std::vector<std::string>(args.begin() + 1, args.end()));
  }
  if (!args.empty() && args[0] == "--summary") {
    std::string path;
    std::size_t top_k = 10;
    double slo_objective = 0.95;
    for (std::size_t i = 1; i < args.size(); ++i) {
      if (args[i] == "--top" && i + 1 < args.size()) {
        top_k = static_cast<std::size_t>(std::stoul(args[++i]));
      } else if (args[i] == "--slo" && i + 1 < args.size()) {
        const std::string& text = args[++i];
        const char* last = text.data() + text.size();
        auto [ptr, ec] = std::from_chars(text.data(), last, slo_objective);
        if (ec != std::errc{} || ptr != last) return usage();
      } else if (path.empty() && args[i].rfind("--", 0) != 0) {
        path = args[i];
      } else {
        return usage();
      }
    }
    if (path.empty()) return usage();
    try {
      return summarize_trace(path, top_k, slo_objective);
    } catch (const nldl::util::PreconditionError& error) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), error.what());
      return 1;
    }
  }
  if (args.empty()) return usage();
  return validate_traces(args);
}
