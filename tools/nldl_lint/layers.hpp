// nldl-lint layer DAG — the repo's declared architecture, machine-checked.
//
// Every directory under src/ is assigned a rank; an #include from a file
// in directory A to a header in directory B is legal iff A == B or
// rank(A) > rank(B). Driver trees (bench/, tests/, examples/, tools/)
// sit above every library layer and may include anything; nothing under
// src/ may include them back. The table lives in layers.cpp and was
// derived from the repo's ACTUAL include graph (run
// `nldl_lint --graph=graph.dot` to regenerate the ground truth); any new
// edge that contradicts it is a `layer-violation` finding, and a
// malformed table (unknown or duplicate directory, self-edge exception)
// is a hard configuration error — exit 2, never a silent pass.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace nldl::lint {

/// One src/ subdirectory and its rank in the layer DAG (0 = bottom).
struct LayerSpec {
  std::string dir;
  int rank = 0;
};

/// An explicitly granted extra edge (from may include to even though the
/// ranks forbid it). Empty today; exists so a future, deliberate
/// exception is declared here — with review — instead of by weakening
/// the ranks.
struct LayerEdge {
  std::string from;
  std::string to;
};

struct LayerConfig {
  std::vector<LayerSpec> layers;
  std::vector<LayerEdge> exceptions;
};

/// Rank assigned to the driver trees (bench/, tests/, examples/,
/// tools/): above every library layer.
inline constexpr int kDriverRank = 1000;

/// The repo's declared layer DAG (see layers.cpp for the table and the
/// derivation notes).
[[nodiscard]] const LayerConfig& default_layer_config();

/// Internal-consistency check: empty table, empty/duplicate directory
/// names, negative ranks, driver-reserved ranks, and exceptions naming
/// unknown directories or self-edges are all configuration errors.
/// Returns an empty string when the config is well-formed, else a
/// human-readable description of the first problem.
[[nodiscard]] std::string validate_layer_config(const LayerConfig& config);

/// Rank of `dir` in `config`, or -1 if the directory is not declared.
[[nodiscard]] int layer_rank(const LayerConfig& config, std::string_view dir);

}  // namespace nldl::lint
