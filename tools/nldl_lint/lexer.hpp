// nldl-lint lexer — a single-pass C++ tokenizer feeding the rule engine.
//
// The PR 7 scanner matched regexes against comment-stripped LINES, which
// capped every rule at what fits on one line. v2 rules instead walk a
// real token stream: identifiers, numbers, punctuators, and literals,
// each carrying its byte offset and 1-based source line, so a rule can
// look across physical lines (multi-line templates, range-for headers
// split by clang-format, parallel_for call extents) without any per-line
// bookkeeping.
//
// Deliberate simplifications (this is a lint lexer, not a compiler):
//   - No preprocessing: `#`, `include`, `pragma` come out as ordinary
//     punct/identifier tokens; directive shapes are recognized by the
//     rule layer (`#` `include` <string>).
//   - `<<` and `>>` are emitted as two single-char tokens so template
//     argument lists can be matched by counting bare `<`/`>` — the same
//     choice C++ itself made in C++11 for `>>`.
//   - Comments are not tokens. Their text is accumulated per source line
//     in `comment_by_line`, which is the ONLY channel the suppression
//     parser reads — a directive quoted inside a string literal is inert,
//     and prose inside comments can never trigger a code rule.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace nldl::lint {

enum class TokenKind {
  kIdentifier,  ///< [A-Za-z_][A-Za-z0-9_]*
  kNumber,      ///< pp-number: 123, 1.5e-3, 0x1Fp2, 1'000'000, 2.0f
  kPunct,       ///< operators/punctuation, maximal munch (see kPuncts)
  kString,      ///< "..."/R"(...)" including prefix and quotes
  kChar,        ///< '...'
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string_view text;   ///< view into the lexed source buffer
  std::size_t offset = 0;  ///< byte offset of text.front() in the source
  std::size_t line = 0;    ///< 1-based physical line of text.front()
};

struct TokenStream {
  std::vector<Token> tokens;  ///< code tokens only, in source order
  /// comment_by_line[i] is the concatenated comment text whose characters
  /// lie on 1-based line i+1 (a block comment contributes to every line
  /// it spans). Suppression directives are parsed from here and nowhere
  /// else.
  std::vector<std::string> comment_by_line;
  std::size_t line_count = 0;  ///< number of physical lines in the source
};

/// Tokenize `source`. Views in the result alias `source`, which must
/// outlive the stream.
[[nodiscard]] TokenStream lex(std::string_view source);

}  // namespace nldl::lint
