// nldl-lint — project-specific determinism/correctness static analysis.
//
// The repo's claims rest on machine-checked bitwise reproducibility
// (bench::Harness serial-vs-parallel self-checks, incremental-vs-full
// replay digests). Those checks catch a regression only after it ships a
// nondeterministic code path; this lint rejects the coding patterns that
// create such paths in the first place:
//
//   unordered-container  std::unordered_{map,set} anywhere in checked
//                        code. Iteration order is unspecified, differs
//                        across standard libraries and hash seeds, and a
//                        membership-only use tends to grow an innocent-
//                        looking loop later. Use std::map/std::set (or a
//                        sorted vector) — or suppress with a
//                        justification for a genuinely order-free use.
//   pointer-order        ordered containers/comparators keyed on raw
//                        pointer values (std::map<T*, ...>, std::set<T*>,
//                        std::less<T*>). Pointer order depends on the
//                        allocator and ASLR: results change run to run.
//   nondet-source        banned nondeterminism sources: std::rand/srand,
//                        std::random_device, time()/std::time, std::clock,
//                        and *_clock::now() — wall clocks are fine for
//                        REPORTED wall times (bench::Harness's timer) but
//                        must never feed a result, a seed, or a scheduling
//                        decision; every allowed site carries a written
//                        justification.
//   locale               locale-dependent float formatting/parsing
//                        (std::stod/stof/stold, atof, strtod/strtof,
//                        sscanf, setlocale, std::locale, imbue). A
//                        comma-decimal locale silently corrupts JSON
//                        artifacts; use std::to_chars/std::from_chars
//                        (util::json_number) instead.
//   parallel-accum       floating-point accumulation whose order depends
//                        on thread scheduling: std::atomic<float/double/
//                        long double>, std::execution::par policies,
//                        #pragma omp, and compound float-style updates
//                        (`+=`/`-=`) inside an inline lambda passed to
//                        util::parallel_for. Parallel reductions must go
//                        through util::Sweep's strictly ordered fold.
//
// Suppressions are per line and must carry a justification:
//
//   ... code ...  // nldl-lint: allow(nondet-source): harness wall timer
//
// Multiple rules: allow(rule-a, rule-b): why. A suppression that is
// malformed (unknown rule, missing justification) or unused (no finding
// of that rule on its line) is itself a finding — stale suppressions rot.
//
// The scanner strips comments and string/character literals before
// matching, so prose mentioning std::rand never fires; suppression
// comments are read from the raw line.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace nldl::lint {

/// One lint rule: stable id (used in suppressions), one-line summary,
/// and the reproducibility rationale (surfaced by --list-rules).
struct Rule {
  std::string_view id;
  std::string_view summary;
  std::string_view rationale;
};

/// The rule table, in reporting order.
[[nodiscard]] const std::vector<Rule>& rules();

/// True if `id` names a rule in rules().
[[nodiscard]] bool is_rule(std::string_view id);

/// One reported violation. `rule` is a Rule::id, or "suppression" for
/// malformed/unused suppression comments.
struct Finding {
  std::string file;
  std::size_t line = 0;  ///< 1-based
  std::string rule;
  std::string message;

  bool operator==(const Finding&) const = default;
};

/// Blank comments and string/character literals to spaces, preserving
/// byte offsets and line structure, so patterns never match prose.
/// Handles //, /* */, "..." with escapes, '...', and raw strings R"(...)".
[[nodiscard]] std::string strip_comments_and_strings(std::string_view source);

/// Scan one translation unit. `path_label` is echoed into findings.
[[nodiscard]] std::vector<Finding> scan_source(std::string_view path_label,
                                               std::string_view source);

/// gcc-style one-line rendering: "file:line: error: [rule] message".
[[nodiscard]] std::string to_string(const Finding& finding);

}  // namespace nldl::lint
