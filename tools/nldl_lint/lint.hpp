// nldl-lint — project-specific determinism/correctness static analysis.
//
// The repo's claims rest on machine-checked bitwise reproducibility
// (bench::Harness serial-vs-parallel self-checks, incremental-vs-full
// replay digests). Those checks catch a regression only after it ships a
// nondeterministic code path; this lint rejects the coding patterns that
// create such paths in the first place. v2 runs every rule on a real
// token stream (see lexer.hpp) — matches cross physical lines — and adds
// project-aware, multi-file analyses over the include graph.
//
// Single-file rules:
//
//   unordered-container  std::unordered_{map,set} anywhere in checked
//                        code. Iteration order is unspecified, differs
//                        across standard libraries and hash seeds, and a
//                        membership-only use tends to grow an innocent-
//                        looking loop later. Use std::map/std::set (or a
//                        sorted vector) — or suppress with a
//                        justification for a genuinely order-free use.
//   pointer-order        ordered containers/comparators keyed on raw
//                        pointer values (std::map<T*, ...>, std::set<T*>,
//                        std::less<T*>). Pointer order depends on the
//                        allocator and ASLR: results change run to run.
//   nondet-source        banned nondeterminism sources: std::rand/srand,
//                        std::random_device, time()/std::time, std::clock,
//                        and *_clock::now() — wall clocks are fine for
//                        REPORTED wall times (bench::Harness's timer) but
//                        must never feed a result, a seed, or a scheduling
//                        decision; every allowed site carries a written
//                        justification.
//   locale               locale-dependent float formatting/parsing
//                        (std::stod/stof/stold, atof, strtod/strtof,
//                        sscanf, setlocale, std::locale, imbue). A
//                        comma-decimal locale silently corrupts JSON
//                        artifacts; use std::to_chars/std::from_chars
//                        (util::json_number) instead.
//   parallel-accum       floating-point accumulation whose order depends
//                        on thread scheduling: std::atomic<float/double/
//                        long double>, std::execution::par policies,
//                        #pragma omp, and compound updates (`+=`/`-=`)
//                        inside the argument extent of a util::parallel_for
//                        call. Parallel reductions must go through
//                        util::Sweep's strictly ordered fold.
//   float-order          flow-sensitive: a compound `+=`/`-=` whose target
//                        identifier is floating-declared in this file,
//                        inside (a) a range-for whose range expression is
//                        an unordered container, or (b) a parallel_for
//                        extent. Float addition does not commute in
//                        rounding, so accumulation order must never follow
//                        hash-iteration or thread-scheduling order. Case
//                        (b) fires ALONGSIDE parallel-accum — a justified
//                        site needs allow(parallel-accum, float-order).
//   double-eq            `==`/`!=` with a floating-point operand (a float
//                        literal, or an identifier floating-declared in
//                        this file) outside tests/. Exempt: exact-zero
//                        sentinel guards (`x == 0.0` before dividing —
//                        0.0 is exactly representable and the guard is
//                        idiomatic); comparisons against string/char
//                        literals or nullptr (not float comparisons even
//                        when a same-named identifier is floating
//                        elsewhere in the file); and NLDL_* assertion
//                        macro arguments (an assertion states an exact
//                        invariant loudly — the opposite of silent
//                        float-equality control flow). Anything else —
//                        tolerance checks in disguise, accumulated-value
//                        comparisons — needs a justified suppression or
//                        a restructure.
//
// Project rules (see project.hpp): layer-violation, include-cycle,
// iwyu-lite.
//
// Suppressions are per line and must carry a justification. The
// directive is the linter's name followed by a colon, then
// `allow(<rule>[, <rule>]): <justification>` — run --list-rules for the
// exact spelling. (It is deliberately not spelled out in this comment:
// tools/ is itself scanned, and the marker in a real comment would parse
// as a directive.) A suppression that is malformed (unknown rule,
// missing justification) or unused (no finding of that rule on its
// line) is itself a finding — stale suppressions rot.
//
// The scanner lexes string/character literals into opaque tokens and
// routes comment text into a dedicated per-line channel, so prose
// mentioning std::rand never fires; suppression directives only count in
// real comments (a directive quoted in a string literal is inert).
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lexer.hpp"

namespace nldl::lint {

/// One lint rule: stable id (used in suppressions), one-line summary,
/// and the reproducibility rationale (surfaced by --list-rules).
struct Rule {
  std::string_view id;
  std::string_view summary;
  std::string_view rationale;
};

/// The rule table, in reporting order.
[[nodiscard]] const std::vector<Rule>& rules();

/// True if `id` names a rule in rules().
[[nodiscard]] bool is_rule(std::string_view id);

/// One reported violation. `rule` is a Rule::id, or "suppression" for
/// malformed/unused suppression comments.
struct Finding {
  std::string file;
  std::size_t line = 0;  ///< 1-based
  std::string rule;
  std::string message;

  bool operator==(const Finding&) const = default;
};

/// A quoted `#include "..."` directive (angle includes are external by
/// definition and not part of the project graph).
struct IncludeDirective {
  std::string path;      ///< the literal include string, e.g. "util/rng.hpp"
  std::size_t line = 0;  ///< 1-based line of the directive
};

/// One scanned translation unit: the owned source text, its token
/// stream, the facts the project pass consumes (includes, identifier
/// set), the per-line suppression table, and the findings accumulated so
/// far. Single-file rules run in scan_file(); project rules append via
/// report(); finish_file() settles unused-suppression findings — calling
/// order matters and is enforced.
struct FileScan {
  std::string path;    ///< repo-relative label echoed into findings
  std::string source;  ///< owned; `stream` and `idents` alias into it
  TokenStream stream;
  std::vector<IncludeDirective> includes;
  /// Every identifier token in the file — the usage side of iwyu-lite.
  std::set<std::string_view> idents;
  std::vector<Finding> findings;

  struct LineSuppression {
    std::vector<std::string> rules;
    bool used = false;
  };
  std::vector<LineSuppression> suppressions;  ///< [line-1]
  bool finished = false;

  FileScan() = default;
  FileScan(const FileScan&) = delete;  // stream/idents alias `source`
  FileScan& operator=(const FileScan&) = delete;
};

/// Lex `file.source` and run every single-file rule. `file.path` and
/// `file.source` must be set; everything else is filled in. Does NOT
/// report unused suppressions yet — project rules may still use them.
void scan_file(FileScan& file);

/// Suppression-aware finding sink: honors a same-line allow(rule) and
/// dedupes per (rule, line) so one physical construct reports once.
void report(FileScan& file, std::size_t line, std::string_view rule,
            std::string message);

/// Report unused suppressions and stable-sort findings by line. Call
/// exactly once, after all rules (single-file and project) have run.
void finish_file(FileScan& file);

/// Scan one translation unit in isolation (single-file rules only).
/// `path_label` is echoed into findings.
[[nodiscard]] std::vector<Finding> scan_source(std::string_view path_label,
                                               std::string_view source);

/// Blank comments and string/character literals to spaces, preserving
/// byte offsets and line structure, so patterns never match prose.
[[nodiscard]] std::string strip_comments_and_strings(std::string_view source);

/// gcc-style one-line rendering: "file:line: error: [rule] message".
[[nodiscard]] std::string to_string(const Finding& finding);

}  // namespace nldl::lint
