// nldl-lint project pass — multi-file analyses over the quoted-include
// graph: layer-violation (edge contradicts the declared layer DAG in
// layers.cpp), include-cycle (the graph must be a DAG), and iwyu-lite
// (an include none of whose exported names appear in the including
// file is stale).
//
// Include resolution is project-relative: a quoted include is tried
// against (1) the including file's own directory, (2) src/, and
// (3) tools/nldl_lint/. Unresolved includes are external (system or
// third-party) and are not part of the project graph.
//
// iwyu-lite's export set for a header is every name the header declares
// at transparent scope (namespace/class bodies, enumerators, #define
// names, using-aliases); headers re-exported with `// IWYU pragma:
// export` on the include line contribute their exports transitively —
// that is how the core/nldl.hpp umbrella stays legal. An include whose
// line carries an IWYU pragma, or a same-stem self-pair (foo.cpp ->
// foo.hpp), is never flagged.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "layers.hpp"
#include "lint.hpp"

namespace nldl::lint {

/// The resolved project include graph (file-level).
struct ProjectGraph {
  struct Node {
    std::string path;  ///< repo-relative, e.g. "src/util/rng.hpp"
    std::string dir;   ///< layer id: "src/util", or driver tree "tests"
    int rank = 0;      ///< layer rank; kDriverRank for driver trees
  };
  struct Edge {
    std::size_t from = 0;  ///< index into nodes (the including file)
    std::size_t to = 0;    ///< index into nodes (the included header)
    std::size_t line = 0;  ///< 1-based line of the #include directive
  };
  std::vector<Node> nodes;
  std::vector<Edge> edges;
};

/// The scanned file set. FileScan is pinned (its token views alias its
/// owned source), hence the unique_ptr indirection.
using FileSet = std::vector<std::unique_ptr<FileScan>>;

/// Layer id ("src/util", "tests", ...) and rank for a repo-relative
/// path. Driver trees map to their first path component at kDriverRank.
/// A src/ subdirectory missing from `config` yields rank -1 — the
/// caller must treat that as a configuration error, not a silent pass.
struct DirRank {
  std::string dir;
  int rank = -1;
};
[[nodiscard]] DirRank classify_path(const LayerConfig& config,
                                    std::string_view path);

/// Run every project rule over `files` (each already scan_file()ed),
/// appending findings to the owning FileScan via report() so per-line
/// suppressions apply. Fills `graph_out` when non-null. Returns an empty
/// string on success or a configuration-error message (malformed layer
/// table, undeclared src/ directory) — the CLI maps that to exit 2.
[[nodiscard]] std::string analyze_project(FileSet& files,
                                          const LayerConfig& config,
                                          ProjectGraph* graph_out);

/// Directory-condensed DOT rendering of the include graph: one node per
/// layer/driver directory clustered by rank, edges annotated with the
/// number of underlying file-level includes.
[[nodiscard]] std::string graph_to_dot(const ProjectGraph& graph);

/// File-level JSON rendering: nodes with layer assignment, edges with
/// source lines, plus the declared layer table.
[[nodiscard]] std::string graph_to_json(const ProjectGraph& graph,
                                        const LayerConfig& config);

/// The set of names a header exports (see file comment). Exposed for
/// tests; `analyze_project` applies it with transitive pragma-export
/// propagation on top.
[[nodiscard]] std::vector<std::string> harvest_exports(const FileScan& header);

}  // namespace nldl::lint
