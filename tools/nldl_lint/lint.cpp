#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <regex>

namespace nldl::lint {

namespace {

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string_view trim(std::string_view s) {
  while (!s.empty() &&
         std::isspace(static_cast<unsigned char>(s.front())) != 0) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())) != 0) {
    s.remove_suffix(1);
  }
  return s;
}

/// Byte-aligned views of one source: `code` has comments/literals blanked,
/// `comments` has everything BUT comment text blanked. Suppression
/// directives are honored only in `comments`, so a directive quoted inside
/// a string literal (the lint's own tests do this) is inert.
struct Channels {
  std::string code;
  std::string comments;
};

Channels split_channels(std::string_view src) {
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  Channels out;
  out.code.assign(src.begin(), src.end());
  out.comments.assign(src.size(), ' ');
  for (std::size_t i = 0; i < src.size(); ++i) {
    if (src[i] == '\n') out.comments[i] = '\n';
  }

  State state = State::kCode;
  std::string raw_delim;  // d-char-seq of an active raw string
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out.code[i] = out.code[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out.code[i] = out.code[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && next == '"' && (i == 0 || !is_ident(src[i - 1]))) {
          // R"delim( ... )delim"
          std::size_t j = i + 2;
          while (j < src.size() && src[j] != '(') ++j;
          raw_delim.assign(src.substr(i + 2, j - (i + 2)));
          for (std::size_t k = i; k < std::min(j + 1, src.size()); ++k) {
            if (src[k] != '\n') out.code[k] = ' ';
          }
          i = j;
          state = State::kRawString;
        } else if (c == '"') {
          out.code[i] = ' ';
          state = State::kString;
        } else if (c == '\'') {
          out.code[i] = ' ';
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out.code[i] = ' ';
          out.comments[i] = c;
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out.code[i] = out.code[i + 1] = ' ';
          state = State::kCode;
          ++i;
        } else if (c != '\n') {
          out.code[i] = ' ';
          out.comments[i] = c;
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          out.code[i] = ' ';
          if (next != '\n') out.code[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          out.code[i] = ' ';
          state = State::kCode;
        } else if (c != '\n') {
          out.code[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          out.code[i] = ' ';
          if (next != '\n') out.code[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          out.code[i] = ' ';
          state = State::kCode;
        } else if (c != '\n') {
          out.code[i] = ' ';
        }
        break;
      case State::kRawString: {
        const std::string close = ")" + raw_delim + "\"";
        if (src.compare(i, close.size(), close) == 0) {
          for (std::size_t k = i; k < i + close.size(); ++k) {
            out.code[k] = ' ';
          }
          i += close.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out.code[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

std::vector<std::string_view> split_lines(std::string_view text) {
  std::vector<std::string_view> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

/// Token occurrence check with configurable identifier boundaries.
/// `left_strict` additionally rejects '.', ':', '>' before the token
/// (member access / qualification — e.g. `run.clock()` is not ::clock()).
bool has_token(std::string_view line, std::string_view token,
               bool left_strict, bool right_boundary) {
  std::size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string_view::npos) {
    const char before = pos > 0 ? line[pos - 1] : '\0';
    const char after =
        pos + token.size() < line.size() ? line[pos + token.size()] : '\0';
    bool ok = before == '\0' || !is_ident(before);
    if (ok && left_strict &&
        (before == '.' || before == ':' || before == '>')) {
      ok = false;
    }
    if (ok && right_boundary && after != '\0' && is_ident(after)) ok = false;
    if (ok) return true;
    pos += token.size();
  }
  return false;
}

bool matches_ci(std::string_view line, std::size_t at, std::string_view token) {
  if (at + token.size() > line.size()) return false;
  for (std::size_t j = 0; j < token.size(); ++j) {
    if (std::tolower(static_cast<unsigned char>(line[at + j])) !=
        std::tolower(static_cast<unsigned char>(token[j]))) {
      return false;
    }
  }
  return true;
}

bool has_token_ci(std::string_view line, std::string_view token) {
  if (token.size() > line.size()) return false;
  for (std::size_t i = 0; i + token.size() <= line.size(); ++i) {
    if (matches_ci(line, i, token)) return true;
  }
  return false;
}

/// Any case-insensitive `clock::now` occurrence that is NOT part of
/// `WallClock::now` — bench::WallClock is the one sanctioned wall-clock
/// funnel (its own steady_clock read carries a justified suppression).
bool has_raw_clock_now(std::string_view line) {
  static constexpr std::string_view kToken = "clock::now";
  static constexpr std::string_view kWall = "wall";
  for (std::size_t i = 0; i + kToken.size() <= line.size(); ++i) {
    if (!matches_ci(line, i, kToken)) continue;
    if (i >= kWall.size() && matches_ci(line, i - kWall.size(), kWall)) {
      continue;
    }
    return true;
  }
  return false;
}

const std::regex& pointer_key_regex() {
  static const std::regex re(
      R"(std\s*::\s*(multi)?(map|set)\s*<[^<>,;()]*\*)");
  return re;
}

const std::regex& pointer_less_regex() {
  static const std::regex re(R"(std\s*::\s*less\s*<[^<>]*\*\s*>)");
  return re;
}

const std::regex& atomic_float_regex() {
  static const std::regex re(
      R"(std\s*::\s*atomic\s*<\s*(float|double|long\s+double)\b)");
  return re;
}

/// Line indices (0-based) inside the parenthesized argument extent of a
/// parallel_for(...) call. Compound float-style updates in an inline
/// lambda there race the reduction order.
std::vector<bool> parallel_for_extent(std::string_view code,
                                      std::size_t line_count) {
  std::vector<bool> in_extent(line_count, false);
  std::size_t line = 0;
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (code[i] == '\n') {
      ++line;
      continue;
    }
    static constexpr std::string_view kToken = "parallel_for";
    if (code.compare(i, kToken.size(), kToken) != 0) continue;
    const char before = i > 0 ? code[i - 1] : '\0';
    const char after = i + kToken.size() < code.size()
                           ? code[i + kToken.size()]
                           : '\0';
    if ((before != '\0' && is_ident(before)) || is_ident(after)) continue;
    // Find the opening paren, then its match.
    std::size_t j = i + kToken.size();
    std::size_t extent_line = line;
    while (j < code.size() &&
           std::isspace(static_cast<unsigned char>(code[j])) != 0) {
      if (code[j] == '\n') ++extent_line;
      ++j;
    }
    if (j >= code.size() || code[j] != '(') continue;
    int depth = 0;
    for (; j < code.size(); ++j) {
      if (code[j] == '\n') {
        ++extent_line;
        continue;
      }
      if (code[j] == '(') ++depth;
      if (code[j] == ')' && --depth == 0) break;
      if (extent_line < line_count) in_extent[extent_line] = true;
    }
    i = j;
    line = extent_line;
  }
  return in_extent;
}

bool has_compound_float_update(std::string_view line) {
  for (std::size_t i = 0; i + 1 < line.size(); ++i) {
    if (line[i + 1] != '=') continue;
    if (line[i] != '+' && line[i] != '-') continue;
    // Exclude ++/-- pre-adjacent (e.g. `x++ ==`) and `operator+=` decls.
    if (i > 0 && (line[i - 1] == '+' || line[i - 1] == '-')) continue;
    return true;
  }
  return false;
}

struct Suppression {
  std::vector<std::string> rules;
  bool used = false;
};

/// Parse `nldl-lint: allow(rule[, rule...]): justification` from one
/// line's comment text. Returns true if a directive is present at all;
/// fills `out` on success or `error` on malformation.
bool parse_suppression(std::string_view comment, Suppression& out,
                       std::string& error) {
  static constexpr std::string_view kMarker = "nldl-lint:";
  const std::size_t marker = comment.find(kMarker);
  if (marker == std::string_view::npos) return false;
  std::string_view rest = trim(comment.substr(marker + kMarker.size()));
  static constexpr std::string_view kAllow = "allow(";
  if (rest.compare(0, kAllow.size(), kAllow) != 0) {
    error = "malformed suppression: expected 'allow(<rule>): <justification>'";
    return true;
  }
  rest.remove_prefix(kAllow.size());
  const std::size_t close = rest.find(')');
  if (close == std::string_view::npos) {
    error = "malformed suppression: unterminated allow(...)";
    return true;
  }
  std::string_view rule_list = rest.substr(0, close);
  rest = trim(rest.substr(close + 1));
  while (!rule_list.empty()) {
    const std::size_t comma = rule_list.find(',');
    const std::string_view rule = trim(rule_list.substr(0, comma));
    if (rule.empty() || !is_rule(rule)) {
      error = "malformed suppression: unknown rule '" + std::string(rule) +
              "' (see nldl_lint --list-rules)";
      return true;
    }
    out.rules.emplace_back(rule);
    if (comma == std::string_view::npos) break;
    rule_list.remove_prefix(comma + 1);
  }
  if (out.rules.empty()) {
    error = "malformed suppression: empty rule list";
    return true;
  }
  if (rest.empty() || rest.front() != ':') {
    error =
        "malformed suppression: missing ': <justification>' after allow()";
    return true;
  }
  rest = trim(rest.substr(1));
  if (rest.empty()) {
    error = "malformed suppression: justification must not be empty";
    return true;
  }
  return true;
}

}  // namespace

const std::vector<Rule>& rules() {
  static const std::vector<Rule> kRules = {
      {"unordered-container",
       "std::unordered_{map,set,multimap,multiset} in checked code",
       "hash-container iteration order is unspecified and seed-dependent; "
       "any loop over one feeds platform-dependent order into results — "
       "use std::map/std::set or a sorted vector"},
      {"pointer-order",
       "ordered container or comparator keyed on raw pointer values",
       "pointer order depends on the allocator and ASLR, so sorted-by-"
       "pointer output changes run to run — key on a stable id instead"},
      {"nondet-source",
       "banned nondeterminism source (rand/random_device/time/clock::now)",
       "wall clocks, C PRNGs, and entropy sources must never feed a "
       "result, seed, or scheduling decision; reported wall times in the "
       "bench harness carry justified suppressions"},
      {"locale",
       "locale-dependent float formatting/parsing (stod/atof/strtod/"
       "sscanf/setlocale)",
       "a comma-decimal locale silently corrupts JSON artifacts and CLI "
       "parsing — use std::to_chars/std::from_chars (util::json_number)"},
      {"parallel-accum",
       "scheduling-order-dependent floating accumulation "
       "(atomic<double>, std::execution::par, omp, += in a parallel_for "
       "lambda)",
       "float addition does not commute in rounding; parallel reductions "
       "must go through util::Sweep's strictly ordered fold to stay "
       "bit-identical across thread counts"},
  };
  return kRules;
}

bool is_rule(std::string_view id) {
  const auto& table = rules();
  return std::any_of(table.begin(), table.end(),
                     [id](const Rule& rule) { return rule.id == id; });
}

std::string strip_comments_and_strings(std::string_view source) {
  return split_channels(source).code;
}

std::vector<Finding> scan_source(std::string_view path_label,
                                 std::string_view source) {
  const Channels channels = split_channels(source);
  const std::vector<std::string_view> code = split_lines(channels.code);
  const std::vector<std::string_view> comments =
      split_lines(channels.comments);
  const std::vector<bool> in_parallel_for =
      parallel_for_extent(channels.code, code.size());

  std::vector<Finding> findings;
  std::vector<Suppression> suppressions(code.size());
  const std::string file(path_label);
  // The bench layer (src/bench/, bench/) is where wall time is honest:
  // the sanctioned bench::WallClock::now() funnel may only appear there.
  const bool bench_layer = file.find("bench") != std::string::npos;

  for (std::size_t i = 0; i < code.size(); ++i) {
    std::string error;
    if (parse_suppression(comments[i], suppressions[i], error) &&
        !error.empty()) {
      findings.push_back({file, i + 1, "suppression", error});
      suppressions[i].rules.clear();
    }
  }

  auto report = [&](std::size_t line_index, const char* rule,
                    std::string message) {
    Suppression& sup = suppressions[line_index];
    if (std::find(sup.rules.begin(), sup.rules.end(), rule) !=
        sup.rules.end()) {
      sup.used = true;
      return;
    }
    findings.push_back({file, line_index + 1, rule, std::move(message)});
  };

  for (std::size_t i = 0; i < code.size(); ++i) {
    const std::string_view line = code[i];
    if (line.find_first_not_of(' ') == std::string_view::npos) continue;

    // unordered-container
    for (const std::string_view token :
         {std::string_view("unordered_map"), std::string_view("unordered_set"),
          std::string_view("unordered_multimap"),
          std::string_view("unordered_multiset")}) {
      if (has_token(line, token, /*left_strict=*/false,
                    /*right_boundary=*/true)) {
        report(i, "unordered-container",
               "hash container '" + std::string(token) +
                   "': iteration order is unspecified — use an ordered "
                   "container or a sorted vector");
        break;
      }
    }

    // pointer-order
    {
      const std::string text(line);
      if (std::regex_search(text, pointer_key_regex())) {
        report(i, "pointer-order",
               "ordered container keyed on a raw pointer: pointer order "
               "is allocator/ASLR-dependent — key on a stable id");
      } else if (std::regex_search(text, pointer_less_regex())) {
        report(i, "pointer-order",
               "std::less over raw pointers orders by address — key on a "
               "stable id");
      }
    }

    // nondet-source
    {
      const char* hit = nullptr;
      if (has_token(line, "std::rand", false, true) ||
          has_token(line, "srand", false, true)) {
        hit = "C PRNG (rand/srand)";
      } else if (has_token(line, "random_device", false, true)) {
        hit = "std::random_device (nondeterministic entropy)";
      } else if (has_token(line, "std::time", false, true) ||
                 has_token(line, "time(", true, false)) {
        hit = "wall-clock time()";
      } else if (has_token(line, "std::clock", false, true)) {
        hit = "processor clock()";
      } else if (has_raw_clock_now(line)) {
        hit = "chrono clock ::now()";
      } else if (!bench_layer && has_token_ci(line, "clock::now")) {
        hit = "bench::WallClock::now() outside the bench layer (the sim "
              "domain never reads a real clock)";
      }
      if (hit != nullptr) {
        report(i, "nondet-source",
               std::string(hit) +
                   ": must not feed results, seeds, or scheduling — seed "
                   "util::Rng explicitly; timers need a justified "
                   "suppression");
      }
    }

    // locale
    {
      const char* hit = nullptr;
      if (has_token(line, "std::stod", false, true) ||
          has_token(line, "std::stof", false, true) ||
          has_token(line, "std::stold", false, true) ||
          has_token(line, "stod(", true, false) ||
          has_token(line, "stof(", true, false) ||
          has_token(line, "stold(", true, false)) {
        hit = "std::stod/stof family is locale-dependent";
      } else if (has_token(line, "atof(", false, false) ||
                 has_token(line, "strtod(", false, false) ||
                 has_token(line, "strtof(", false, false) ||
                 has_token(line, "strtold(", false, false)) {
        hit = "C float parsing (atof/strtod) is locale-dependent";
      } else if (has_token(line, "sscanf(", false, false) ||
                 has_token(line, "fscanf(", false, false) ||
                 has_token(line, "scanf(", false, false)) {
        hit = "scanf-family float conversions are locale-dependent";
      } else if (has_token(line, "setlocale", false, true) ||
                 has_token(line, "std::locale", false, true) ||
                 line.find(".imbue(") != std::string_view::npos) {
        hit = "locale mutation changes float formatting globally";
      }
      if (hit != nullptr) {
        report(i, "locale",
               std::string(hit) +
                   " — use std::from_chars/std::to_chars "
                   "(util::json_number)");
      }
    }

    // parallel-accum
    {
      const std::string text(line);
      if (std::regex_search(text, atomic_float_regex())) {
        report(i, "parallel-accum",
               "std::atomic over a floating type: fetch-add order follows "
               "thread scheduling — use util::Sweep's ordered reduction");
      } else if (has_token(line, "std::execution::par", false, false)) {
        report(i, "parallel-accum",
               "parallel execution policy reduces in unspecified order — "
               "use util::Sweep's ordered reduction");
      } else if (line.find("#pragma") != std::string_view::npos &&
                 has_token(line, "omp", false, true)) {
        report(i, "parallel-accum",
               "OpenMP pragmas schedule reductions nondeterministically — "
               "use util::ThreadPool + util::Sweep");
      } else if (in_parallel_for[i] && has_compound_float_update(line)) {
        report(i, "parallel-accum",
               "compound update inside a parallel_for lambda: if the "
               "target is shared, accumulation order follows thread "
               "scheduling — reduce through util::Sweep's ordered fold");
      }
    }
  }

  for (std::size_t i = 0; i < code.size(); ++i) {
    const Suppression& sup = suppressions[i];
    if (!sup.rules.empty() && !sup.used) {
      findings.push_back(
          {file, i + 1, "suppression",
           "unused suppression (no finding of the allowed rule on this "
           "line) — delete it"});
    }
  }

  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  return findings;
}

std::string to_string(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": error: [" +
         finding.rule + "] " + finding.message;
}

}  // namespace nldl::lint
