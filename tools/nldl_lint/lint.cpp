#include "lint.hpp"

#include <algorithm>
#include <cctype>

namespace nldl::lint {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() &&
         std::isspace(static_cast<unsigned char>(s.front())) != 0) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())) != 0) {
    s.remove_suffix(1);
  }
  return s;
}

bool ends_with_ci(std::string_view text, std::string_view suffix) {
  if (text.size() < suffix.size()) return false;
  const std::size_t base = text.size() - suffix.size();
  for (std::size_t i = 0; i < suffix.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(text[base + i])) !=
        std::tolower(static_cast<unsigned char>(suffix[i]))) {
      return false;
    }
  }
  return true;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

/// Floating literal: decimal with '.' or exponent, or hex with a p
/// exponent. "1u", "42" are not; "1.0f", "1e9", "0x1p3" are.
bool is_float_literal(std::string_view text) {
  if (starts_with(text, "0x") || starts_with(text, "0X")) {
    return text.find('p') != std::string_view::npos ||
           text.find('P') != std::string_view::npos;
  }
  for (const char c : text) {
    if (c == '.' || c == 'e' || c == 'E') return true;
  }
  return false;
}

/// Literal whose numeric value is exactly zero ("0", "0.0", "0.", "00",
/// "0e10", "0.0f"): the sanctioned sentinel-guard comparand for
/// double-eq. Scans the mantissa only.
bool is_zero_literal(std::string_view text) {
  std::string_view body = text;
  if (starts_with(body, "0x") || starts_with(body, "0X")) {
    body.remove_prefix(2);
  }
  bool saw_digit = false;
  for (const char c : body) {
    if (c == 'e' || c == 'E' || c == 'p' || c == 'P') break;  // exponent
    if (c == '.' || c == '\'') continue;
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) break;  // suffix
    if (c != '0') return false;
    saw_digit = true;
  }
  return saw_digit;
}

/// Reserved words that must never enter the floating-identifier or
/// export sets.
bool is_keyword(std::string_view s) {
  static const std::set<std::string_view> kKeywords = {
      "alignas",   "alignof",  "auto",     "bool",     "break",
      "case",      "catch",    "char",     "class",    "const",
      "consteval", "constexpr","constinit","continue", "decltype",
      "default",   "delete",   "do",       "double",   "else",
      "enum",      "explicit", "export",   "extern",   "false",
      "float",     "for",      "friend",   "goto",     "if",
      "inline",    "int",      "long",     "mutable",  "namespace",
      "new",       "noexcept", "nullptr",  "operator", "private",
      "protected", "public",   "requires", "return",   "short",
      "signed",    "sizeof",   "static",   "struct",   "switch",
      "template",  "this",     "throw",    "true",     "try",
      "typedef",   "typeid",   "typename", "union",    "unsigned",
      "using",     "virtual",  "void",     "volatile", "while",
      "final",     "override", "concept",  "co_await", "co_return",
      "co_yield",  "static_assert",
  };
  return kKeywords.count(s) != 0;
}

struct Suppression {
  std::vector<std::string> rules;
};

/// Parse a suppression directive from one line's comment text: the
/// marker (the linter's name plus a colon), then allow(rule list) and a
/// mandatory `: justification`. Returns true if a directive is present
/// at all; fills `out` on success or `error` on malformation. The exact
/// syntax is documented only in string literals (--list-rules, README):
/// spelling the marker in a real comment would itself parse as a
/// directive.
bool parse_suppression(std::string_view comment, Suppression& out,
                       std::string& error) {
  static constexpr std::string_view kMarker = "nldl-lint:";
  const std::size_t marker = comment.find(kMarker);
  if (marker == std::string_view::npos) return false;
  std::string_view rest = trim(comment.substr(marker + kMarker.size()));
  static constexpr std::string_view kAllow = "allow(";
  if (rest.compare(0, kAllow.size(), kAllow) != 0) {
    error = "malformed suppression: expected 'allow(<rule>): <justification>'";
    return true;
  }
  rest.remove_prefix(kAllow.size());
  const std::size_t close = rest.find(')');
  if (close == std::string_view::npos) {
    error = "malformed suppression: unterminated allow(...)";
    return true;
  }
  std::string_view rule_list = rest.substr(0, close);
  rest = trim(rest.substr(close + 1));
  while (!rule_list.empty()) {
    const std::size_t comma = rule_list.find(',');
    const std::string_view rule = trim(rule_list.substr(0, comma));
    if (rule.empty() || !is_rule(rule)) {
      error = "malformed suppression: unknown rule '" + std::string(rule) +
              "' (see nldl_lint --list-rules)";
      return true;
    }
    out.rules.emplace_back(rule);
    if (comma == std::string_view::npos) break;
    rule_list.remove_prefix(comma + 1);
  }
  if (out.rules.empty()) {
    error = "malformed suppression: empty rule list";
    return true;
  }
  if (rest.empty() || rest.front() != ':') {
    error =
        "malformed suppression: missing ': <justification>' after allow()";
    return true;
  }
  rest = trim(rest.substr(1));
  if (rest.empty()) {
    error = "malformed suppression: justification must not be empty";
    return true;
  }
  return true;
}

/// True when `path` lies in the tests/ driver tree (double-eq does not
/// apply there: tests legitimately pin exact float values).
bool in_tests_tree(std::string_view path) {
  return starts_with(path, "tests/") ||
         path.find("/tests/") != std::string_view::npos;
}

}  // namespace

const std::vector<Rule>& rules() {
  static const std::vector<Rule> kRules = {
      {"unordered-container",
       "std::unordered_{map,set,multimap,multiset} in checked code",
       "hash-container iteration order is unspecified and seed-dependent; "
       "any loop over one feeds platform-dependent order into results — "
       "use std::map/std::set or a sorted vector"},
      {"pointer-order",
       "ordered container or comparator keyed on raw pointer values",
       "pointer order depends on the allocator and ASLR, so sorted-by-"
       "pointer output changes run to run — key on a stable id instead"},
      {"nondet-source",
       "banned nondeterminism source (rand/random_device/time/clock::now)",
       "wall clocks, C PRNGs, and entropy sources must never feed a "
       "result, seed, or scheduling decision; reported wall times in the "
       "bench harness carry justified suppressions"},
      {"locale",
       "locale-dependent float formatting/parsing (stod/atof/strtod/"
       "sscanf/setlocale)",
       "a comma-decimal locale silently corrupts JSON artifacts and CLI "
       "parsing — use std::to_chars/std::from_chars (util::json_number)"},
      {"parallel-accum",
       "scheduling-order-dependent floating accumulation "
       "(atomic<double>, std::execution::par, omp, += in a parallel_for "
       "extent)",
       "float addition does not commute in rounding; parallel reductions "
       "must go through util::Sweep's strictly ordered fold to stay "
       "bit-identical across thread counts"},
      {"float-order",
       "compound float update ordered by hash iteration or thread "
       "scheduling (+= in a range-for over an unordered container, or on "
       "a floating identifier in a parallel_for extent)",
       "the accumulation order of a float sum is part of its value; "
       "iterating an unordered container or racing a shared target makes "
       "that order platform-dependent — iterate an ordered container or "
       "fold through util::Sweep"},
      {"double-eq",
       "==/!= with a floating-point operand outside tests/ (exact-zero "
       "sentinel guards exempt)",
       "exact float equality encodes a hidden bitwise assumption; outside "
       "pinned tests it is either a bug or a deliberate sentinel that "
       "deserves a written justification"},
      {"layer-violation",
       "#include edge contradicting the declared layer DAG "
       "(tools/nldl_lint/layers.cpp)",
       "the layer DAG is the architecture: a back-edge couples a lower "
       "layer to a higher one, breaks header standalone builds, and rots "
       "into cycles — move the code or declare a reviewed exception"},
      {"include-cycle",
       "cycle in the quoted-#include graph",
       "an include cycle means no header in it is self-contained and the "
       "build depends on inclusion order — break the cycle with a forward "
       "declaration or an interface split"},
      {"iwyu-lite",
       "#include of a project header none of whose exported names appear "
       "in this file",
       "stale includes hide the real dependency graph, slow builds, and "
       "mask layering drift; delete the include or mark a deliberate "
       "re-export with '// IWYU pragma: export'"},
  };
  return kRules;
}

bool is_rule(std::string_view id) {
  const auto& table = rules();
  return std::any_of(table.begin(), table.end(),
                     [id](const Rule& rule) { return rule.id == id; });
}

std::string strip_comments_and_strings(std::string_view source) {
  const TokenStream stream = lex(source);
  std::string out(source.size(), ' ');
  for (std::size_t i = 0; i < source.size(); ++i) {
    if (source[i] == '\n') out[i] = '\n';
  }
  for (const Token& tok : stream.tokens) {
    if (tok.kind == TokenKind::kString || tok.kind == TokenKind::kChar) {
      continue;
    }
    for (std::size_t i = 0; i < tok.text.size(); ++i) {
      if (tok.text[i] != '\n') out[tok.offset + i] = tok.text[i];
    }
  }
  return out;
}

void report(FileScan& file, std::size_t line, std::string_view rule,
            std::string message) {
  for (const Finding& prior : file.findings) {
    if (prior.line == line && prior.rule == rule) return;  // dedupe
  }
  if (line >= 1 && line <= file.suppressions.size()) {
    FileScan::LineSuppression& sup = file.suppressions[line - 1];
    if (std::find(sup.rules.begin(), sup.rules.end(), rule) !=
        sup.rules.end()) {
      sup.used = true;
      return;
    }
  }
  file.findings.push_back(
      {file.path, line, std::string(rule), std::move(message)});
}

void scan_file(FileScan& file) {
  file.stream = lex(file.source);
  const std::vector<Token>& toks = file.stream.tokens;
  const std::size_t n = toks.size();
  file.suppressions.assign(file.stream.line_count, {});

  // The bench layer (src/bench/, bench/) is where wall time is honest:
  // the sanctioned bench::WallClock::now() funnel may only appear there.
  const bool bench_layer = file.path.find("bench") != std::string::npos;
  const bool tests_tree = in_tests_tree(file.path);

  // Suppressions first, so malformed-directive findings precede same-line
  // rule findings after the final stable sort.
  for (std::size_t i = 0; i < file.stream.comment_by_line.size(); ++i) {
    Suppression sup;
    std::string error;
    if (parse_suppression(file.stream.comment_by_line[i], sup, error)) {
      if (!error.empty()) {
        file.findings.push_back({file.path, i + 1, "suppression", error});
      } else {
        file.suppressions[i].rules = std::move(sup.rules);
      }
    }
  }

  // Token accessors; index past the ends yields a harmless empty token.
  static const Token kNone{};
  auto at = [&](std::size_t i) -> const Token& {
    return i < n ? toks[i] : kNone;
  };
  auto prev = [&](std::size_t i) -> const Token& {
    return i > 0 ? toks[i - 1] : kNone;
  };
  auto is_p = [&](const Token& t, std::string_view text) {
    return t.kind == TokenKind::kPunct && t.text == text;
  };
  auto is_id = [&](const Token& t, std::string_view text) {
    return t.kind == TokenKind::kIdentifier && t.text == text;
  };

  // --- fact passes ----------------------------------------------------------

  // #include "..." directives.
  for (std::size_t i = 0; i + 2 < n; ++i) {
    if (is_p(toks[i], "#") && is_id(toks[i + 1], "include") &&
        toks[i + 2].kind == TokenKind::kString &&
        toks[i + 2].text.size() >= 2) {
      std::string_view path = toks[i + 2].text;
      path.remove_prefix(1);
      path.remove_suffix(1);
      file.includes.push_back({std::string(path), toks[i].line});
    }
  }

  // The identifier set (iwyu-lite usage side).
  for (const Token& tok : toks) {
    if (tok.kind == TokenKind::kIdentifier) file.idents.insert(tok.text);
  }

  // Floating-declared identifiers: `double x`, `float& y`, params
  // included; `auto z = 1.5;`. Pointers (`double* out`) are NOT floats —
  // comparing them is pointer equality. Template arguments
  // (`vector<double>`) declare containers, not scalars, and fall out
  // naturally because the next token is `>` or `,`.
  std::set<std::string_view> float_idents;
  for (std::size_t i = 0; i < n; ++i) {
    if (is_id(toks[i], "double") || is_id(toks[i], "float")) {
      std::size_t j = i + 1;
      while (j < n && (is_id(at(j), "const") || is_p(at(j), "&"))) {
        ++j;
      }
      if (at(j).kind == TokenKind::kIdentifier && !is_keyword(at(j).text)) {
        float_idents.insert(at(j).text);
      }
    } else if (is_id(toks[i], "auto") &&
               at(i + 1).kind == TokenKind::kIdentifier &&
               is_p(at(i + 2), "=") &&
               at(i + 3).kind == TokenKind::kNumber &&
               is_float_literal(at(i + 3).text)) {
      float_idents.insert(at(i + 1).text);
    }
  }

  // Identifiers declared as unordered containers:
  // `std::unordered_map<K, V> cache;` marks `cache`.
  std::set<std::string_view> unordered_idents;
  for (std::size_t i = 0; i < n; ++i) {
    if (toks[i].kind != TokenKind::kIdentifier ||
        !starts_with(toks[i].text, "unordered_")) {
      continue;
    }
    std::size_t j = i + 1;
    if (!is_p(at(j), "<")) continue;
    int angle = 0;
    for (; j < n; ++j) {
      if (is_p(toks[j], "<")) ++angle;
      if (is_p(toks[j], ">") && --angle == 0) break;
    }
    ++j;  // past the closing '>'
    while (is_p(at(j), "&")) ++j;
    if (at(j).kind == TokenKind::kIdentifier && !is_keyword(at(j).text)) {
      unordered_idents.insert(at(j).text);
    }
  }

  // Token extents of parallel_for(...) call arguments (lambda included),
  // and of NLDL_ASSERT/NLDL_REQUIRE-style assertion macros (double-eq is
  // exempt there: an assertion states an exact invariant loudly, which
  // is the opposite of silent float-equality control flow).
  std::vector<bool> in_parallel_for(n, false);
  std::vector<bool> in_assert(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    const bool par = is_id(toks[i], "parallel_for");
    const bool assert_macro = toks[i].kind == TokenKind::kIdentifier &&
                              starts_with(toks[i].text, "NLDL_");
    if ((!par && !assert_macro) || !is_p(at(i + 1), "(")) continue;
    std::vector<bool>& extent = par ? in_parallel_for : in_assert;
    int depth = 0;
    std::size_t j = i + 1;
    for (; j < n; ++j) {
      if (is_p(toks[j], "(")) ++depth;
      if (is_p(toks[j], ")") && --depth == 0) break;
      extent[j] = true;
    }
    extent[i] = true;
  }

  // --- single-file rules ----------------------------------------------------

  for (std::size_t i = 0; i < n; ++i) {
    const Token& tok = toks[i];

    if (tok.kind == TokenKind::kIdentifier) {
      const std::string_view id = tok.text;
      const bool std_qualified =
          is_p(prev(i), "::") && i >= 2 && is_id(toks[i - 2], "std");
      const bool member_access = is_p(prev(i), ".") || is_p(prev(i), "->");

      // unordered-container
      if (id == "unordered_map" || id == "unordered_set" ||
          id == "unordered_multimap" || id == "unordered_multiset") {
        report(file, tok.line, "unordered-container",
               "hash container '" + std::string(id) +
                   "': iteration order is unspecified — use an ordered "
                   "container or a sorted vector");
      }

      // pointer-order: std::{map,set,multimap,multiset}< ...* and
      // std::less< ...* >.
      if (std_qualified && (id == "map" || id == "set" || id == "multimap" ||
                            id == "multiset") &&
          is_p(at(i + 1), "<")) {
        for (std::size_t j = i + 2; j < n; ++j) {
          const Token& t = toks[j];
          if (is_p(t, "<") || is_p(t, ">") || is_p(t, ",") || is_p(t, ";") ||
              is_p(t, "(") || is_p(t, ")")) {
            break;
          }
          if (is_p(t, "*")) {
            report(file, tok.line, "pointer-order",
                   "ordered container keyed on a raw pointer: pointer "
                   "order is allocator/ASLR-dependent — key on a stable "
                   "id");
            break;
          }
        }
      }
      if (std_qualified && id == "less" && is_p(at(i + 1), "<")) {
        bool saw_star = false;
        for (std::size_t j = i + 2; j < n; ++j) {
          const Token& t = toks[j];
          if (is_p(t, "<")) break;
          if (is_p(t, ">")) {
            if (saw_star) {
              report(file, tok.line, "pointer-order",
                     "std::less over raw pointers orders by address — key "
                     "on a stable id");
            }
            break;
          }
          saw_star = is_p(t, "*");
        }
      }

      // nondet-source
      {
        const char* hit = nullptr;
        if ((std_qualified && id == "rand") || id == "srand") {
          hit = "C PRNG (rand/srand)";
        } else if (id == "random_device") {
          hit = "std::random_device (nondeterministic entropy)";
        } else if (id == "time" &&
                   (std_qualified ||
                    (is_p(at(i + 1), "(") && !member_access &&
                     !is_p(prev(i), "::")))) {
          hit = "wall-clock time()";
        } else if (id == "clock" && std_qualified) {
          hit = "processor clock()";
        } else if (ends_with_ci(id, "clock") && is_p(at(i + 1), "::") &&
                   is_id(at(i + 2), "now")) {
          if (ends_with_ci(id, "wallclock")) {
            if (!bench_layer) {
              hit = "bench::WallClock::now() outside the bench layer (the "
                    "sim domain never reads a real clock)";
            }
          } else {
            hit = "chrono clock ::now()";
          }
        }
        if (hit != nullptr) {
          report(file, tok.line, "nondet-source",
                 std::string(hit) +
                     ": must not feed results, seeds, or scheduling — seed "
                     "util::Rng explicitly; timers need a justified "
                     "suppression");
        }
      }

      // locale
      {
        const char* hit = nullptr;
        if ((id == "stod" || id == "stof" || id == "stold") &&
            (std_qualified ||
             (is_p(at(i + 1), "(") && !member_access && !is_p(prev(i), "::")))) {
          hit = "std::stod/stof family is locale-dependent";
        } else if ((id == "atof" || id == "strtod" || id == "strtof" ||
                    id == "strtold") &&
                   is_p(at(i + 1), "(")) {
          hit = "C float parsing (atof/strtod) is locale-dependent";
        } else if ((id == "sscanf" || id == "fscanf" || id == "scanf") &&
                   is_p(at(i + 1), "(")) {
          hit = "scanf-family float conversions are locale-dependent";
        } else if (id == "setlocale" ||
                   (std_qualified && id == "locale")) {
          hit = "locale mutation changes float formatting globally";
        } else if (id == "imbue" && is_p(prev(i), ".") &&
                   is_p(at(i + 1), "(")) {
          hit = "locale mutation changes float formatting globally";
        }
        if (hit != nullptr) {
          report(file, tok.line, "locale",
                 std::string(hit) +
                     " — use std::from_chars/std::to_chars "
                     "(util::json_number)");
        }
      }

      // parallel-accum: atomic floats, parallel policies, omp pragmas.
      if (std_qualified && id == "atomic" && is_p(at(i + 1), "<") &&
          (is_id(at(i + 2), "float") || is_id(at(i + 2), "double") ||
           (is_id(at(i + 2), "long") && is_id(at(i + 3), "double")))) {
        report(file, tok.line, "parallel-accum",
               "std::atomic over a floating type: fetch-add order follows "
               "thread scheduling — use util::Sweep's ordered reduction");
      }
      if (std_qualified && id == "execution" && is_p(at(i + 1), "::") &&
          at(i + 2).kind == TokenKind::kIdentifier &&
          starts_with(at(i + 2).text, "par")) {
        report(file, tok.line, "parallel-accum",
               "parallel execution policy reduces in unspecified order — "
               "use util::Sweep's ordered reduction");
      }
      if (id == "omp" && is_id(prev(i), "pragma") && i >= 2 &&
          is_p(toks[i - 2], "#")) {
        report(file, tok.line, "parallel-accum",
               "OpenMP pragmas schedule reductions nondeterministically — "
               "use util::ThreadPool + util::Sweep");
      }
    }

    // Compound updates inside a parallel_for extent: parallel-accum on
    // any target (the v1 syntactic rule), float-order additionally when
    // the target is floating-declared (the flow-sensitive sharpening).
    if ((is_p(tok, "+=") || is_p(tok, "-=")) && !is_id(prev(i), "operator") &&
        in_parallel_for[i]) {
      report(file, tok.line, "parallel-accum",
             "compound update inside a parallel_for extent: if the target "
             "is shared, accumulation order follows thread scheduling — "
             "reduce through util::Sweep's ordered fold");
      if (prev(i).kind == TokenKind::kIdentifier &&
          float_idents.count(prev(i).text) != 0) {
        report(file, tok.line, "float-order",
               "floating accumulation into '" + std::string(prev(i).text) +
                   "' inside a parallel_for extent: the sum's rounding "
                   "depends on thread scheduling — fold through "
                   "util::Sweep's ordered reduction");
      }
    }

    // double-eq (outside tests/ and assertion-macro extents).
    if ((is_p(tok, "==") || is_p(tok, "!=")) && !tests_tree && !in_assert[i]) {
      auto floaty = [&](const Token& t) {
        if (t.kind == TokenKind::kNumber) return is_float_literal(t.text);
        if (t.kind == TokenKind::kIdentifier) {
          return float_idents.count(t.text) != 0;
        }
        return false;
      };
      auto zero = [&](const Token& t) {
        return t.kind == TokenKind::kNumber && is_zero_literal(t.text);
      };
      // String/char literals and nullptr make the comparison non-float
      // regardless of what a same-named identifier is elsewhere in the
      // file (float_idents is file-scoped, not flow-scoped).
      auto non_float = [&](const Token& t) {
        return t.kind == TokenKind::kString || t.kind == TokenKind::kChar ||
               (t.kind == TokenKind::kIdentifier && t.text == "nullptr");
      };
      if (!zero(prev(i)) && !zero(at(i + 1)) && !non_float(prev(i)) &&
          !non_float(at(i + 1)) &&
          (floaty(prev(i)) || floaty(at(i + 1)))) {
        report(file, tok.line, "double-eq",
               "exact floating-point comparison: equality of computed "
               "floats encodes a bitwise assumption — compare against an "
               "exact-zero sentinel, restructure, or justify with a "
               "suppression");
      }
    }
  }

  // float-order, range-for case: `for (decl : range)` where the range
  // expression names an unordered container, with a compound floating
  // update anywhere in the loop body — matched across lines.
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (!is_id(toks[i], "for") || !is_p(toks[i + 1], "(")) continue;
    int depth = 0;
    std::size_t colon = 0;
    std::size_t close = 0;
    for (std::size_t j = i + 1; j < n; ++j) {
      if (is_p(toks[j], "(")) ++depth;
      if (is_p(toks[j], ")") && --depth == 0) {
        close = j;
        break;
      }
      if (depth == 1 && is_p(toks[j], ":") && colon == 0) colon = j;
    }
    if (colon == 0 || close == 0) continue;  // not a range-for
    bool unordered_range = false;
    for (std::size_t j = colon + 1; j < close; ++j) {
      if (toks[j].kind == TokenKind::kIdentifier &&
          (starts_with(toks[j].text, "unordered_") ||
           unordered_idents.count(toks[j].text) != 0)) {
        unordered_range = true;
        break;
      }
    }
    if (!unordered_range) continue;
    // Body extent: a brace block or a single statement.
    std::size_t body_end = close;
    if (is_p(at(close + 1), "{")) {
      int braces = 0;
      for (std::size_t j = close + 1; j < n; ++j) {
        if (is_p(toks[j], "{")) ++braces;
        if (is_p(toks[j], "}") && --braces == 0) {
          body_end = j;
          break;
        }
      }
    } else {
      for (std::size_t j = close + 1; j < n; ++j) {
        if (is_p(toks[j], ";")) {
          body_end = j;
          break;
        }
      }
    }
    for (std::size_t j = close + 1; j <= body_end && j < n; ++j) {
      if ((is_p(toks[j], "+=") || is_p(toks[j], "-=")) &&
          !is_id(prev(j), "operator") &&
          prev(j).kind == TokenKind::kIdentifier &&
          float_idents.count(prev(j).text) != 0) {
        report(file, toks[j].line, "float-order",
               "floating accumulation into '" + std::string(prev(j).text) +
                   "' while iterating an unordered container: the sum's "
                   "rounding depends on hash-iteration order — iterate an "
                   "ordered container or sort first");
      }
    }
  }
}

void finish_file(FileScan& file) {
  if (file.finished) return;
  file.finished = true;
  for (std::size_t i = 0; i < file.suppressions.size(); ++i) {
    const FileScan::LineSuppression& sup = file.suppressions[i];
    if (!sup.rules.empty() && !sup.used) {
      file.findings.push_back(
          {file.path, i + 1, "suppression",
           "unused suppression (no finding of the allowed rule on this "
           "line) — delete it"});
    }
  }
  std::stable_sort(file.findings.begin(), file.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
}

std::vector<Finding> scan_source(std::string_view path_label,
                                 std::string_view source) {
  FileScan file;
  file.path.assign(path_label);
  file.source.assign(source);
  scan_file(file);
  finish_file(file);
  return std::move(file.findings);
}

std::string to_string(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": error: [" +
         finding.rule + "] " + finding.message;
}

}  // namespace nldl::lint
