#include "project.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace nldl::lint {

namespace {

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

/// Lexically normalize a '/'-separated relative path ("a/./b/../c" ->
/// "a/c").
std::string normalize(std::string_view path) {
  std::vector<std::string_view> parts;
  std::size_t begin = 0;
  while (begin <= path.size()) {
    const std::size_t slash = path.find('/', begin);
    const std::size_t end = slash == std::string_view::npos ? path.size() : slash;
    const std::string_view part = path.substr(begin, end - begin);
    if (part == "..") {
      if (!parts.empty()) parts.pop_back();
    } else if (!part.empty() && part != ".") {
      parts.push_back(part);
    }
    if (slash == std::string_view::npos) break;
    begin = slash + 1;
  }
  std::string out;
  for (const std::string_view part : parts) {
    if (!out.empty()) out += '/';
    out.append(part);
  }
  return out;
}

std::string_view dirname_of(std::string_view path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string_view::npos ? std::string_view()
                                         : path.substr(0, slash);
}

std::string_view stem_of(std::string_view path) {
  const std::size_t slash = path.rfind('/');
  std::string_view name =
      slash == std::string_view::npos ? path : path.substr(slash + 1);
  const std::size_t dot = name.rfind('.');
  return dot == std::string_view::npos ? name : name.substr(0, dot);
}

bool is_keyword_name(std::string_view s) {
  static const std::set<std::string_view> kKeywords = {
      "alignas",   "alignof",  "auto",     "bool",     "break",
      "case",      "catch",    "char",     "class",    "const",
      "consteval", "constexpr","constinit","continue", "decltype",
      "default",   "delete",   "do",       "double",   "else",
      "enum",      "explicit", "export",   "extern",   "false",
      "float",     "for",      "friend",   "goto",     "if",
      "inline",    "int",      "long",     "mutable",  "namespace",
      "new",       "noexcept", "nullptr",  "operator", "private",
      "protected", "public",   "requires", "return",   "short",
      "signed",    "sizeof",   "static",   "struct",   "switch",
      "template",  "this",     "throw",    "true",     "try",
      "typedef",   "typeid",   "typename", "union",    "unsigned",
      "using",     "virtual",  "void",     "volatile", "while",
      "final",     "override", "concept",  "co_await", "co_return",
      "co_yield",  "static_assert",
  };
  return kKeywords.count(s) != 0;
}

}  // namespace

DirRank classify_path(const LayerConfig& config, std::string_view path) {
  DirRank out;
  if (starts_with(path, "src/")) {
    const std::string_view rest = path.substr(4);
    const std::size_t slash = rest.find('/');
    if (slash == std::string_view::npos) {
      out.dir = "src";  // a file directly under src/ has no layer
      out.rank = -1;
      return out;
    }
    const std::string_view layer = rest.substr(0, slash);
    out.dir = "src/" + std::string(layer);
    out.rank = layer_rank(config, layer);
    return out;
  }
  const std::size_t slash = path.find('/');
  out.dir = std::string(slash == std::string_view::npos
                            ? path
                            : path.substr(0, slash));
  out.rank = kDriverRank;
  return out;
}

std::vector<std::string> harvest_exports(const FileScan& header) {
  const std::vector<Token>& toks = header.stream.tokens;
  const std::size_t n = toks.size();
  std::set<std::string> names;

  enum class Scope { kTransparent, kEnum };
  std::vector<Scope> scopes;  // only transparent-ish scopes are pushed
  int paren_depth = 0;
  bool saw_class = false;
  bool saw_namespace = false;
  bool saw_enum = false;

  auto is_p = [&](std::size_t i, std::string_view text) {
    return i < n && toks[i].kind == TokenKind::kPunct && toks[i].text == text;
  };
  auto is_id = [&](std::size_t i, std::string_view text) {
    return i < n && toks[i].kind == TokenKind::kIdentifier &&
           toks[i].text == text;
  };

  for (std::size_t i = 0; i < n; ++i) {
    const Token& tok = toks[i];
    if (tok.kind == TokenKind::kPunct) {
      if (tok.text == "(") ++paren_depth;
      if (tok.text == ")" && paren_depth > 0) --paren_depth;
      if (tok.text == "{") {
        if (saw_enum) {
          scopes.push_back(Scope::kEnum);
        } else if (saw_class || saw_namespace) {
          scopes.push_back(Scope::kTransparent);
        } else {
          // Opaque scope (function body, initializer, lambda): nothing
          // inside is a header export — skip to the matching brace.
          int depth = 1;
          while (++i < n && depth > 0) {
            if (toks[i].kind == TokenKind::kPunct) {
              if (toks[i].text == "{") ++depth;
              if (toks[i].text == "}") --depth;
            }
          }
          --i;  // the for-loop increment lands past the '}'
        }
        saw_class = saw_namespace = saw_enum = false;
        continue;
      }
      if (tok.text == "}") {
        if (!scopes.empty()) scopes.pop_back();
        saw_class = saw_namespace = saw_enum = false;
        continue;
      }
      if (tok.text == ";") {
        saw_class = saw_namespace = saw_enum = false;
      }
      continue;
    }
    if (tok.kind != TokenKind::kIdentifier) continue;

    const std::string_view id = tok.text;
    if (!scopes.empty() && scopes.back() == Scope::kEnum) {
      if (!is_keyword_name(id)) names.insert(std::string(id));
      continue;
    }
    if (is_keyword_name(id)) {
      if (id == "class" || id == "struct" || id == "union") saw_class = true;
      if (id == "namespace") saw_namespace = true;
      if (id == "enum") saw_enum = true;
      continue;
    }
    // #define NAME exports NAME even though the body is whatever follows.
    if (i >= 2 && is_id(i - 1, "define") && is_p(i - 2, "#")) {
      names.insert(std::string(id));
      continue;
    }
    if (paren_depth > 0) continue;  // parameter names are not exports
    const bool tagged =
        i >= 1 && (is_id(i - 1, "class") || is_id(i - 1, "struct") ||
                   is_id(i - 1, "union") || is_id(i - 1, "enum"));
    if (!tagged) {
      if (i >= 1 && (is_p(i - 1, "::") || is_p(i - 1, ".") ||
                     is_p(i - 1, "->"))) {
        continue;  // qualified or member access, declared elsewhere
      }
      // A namespace name is shared by every file in the project; treating
      // it as an export would make iwyu-lite vacuously satisfied.
      if (i >= 1 && is_id(i - 1, "namespace")) continue;
      if (!(is_p(i + 1, "(") || is_p(i + 1, "=") || is_p(i + 1, ";") ||
            is_p(i + 1, "{") || is_p(i + 1, "["))) {
        continue;
      }
    }
    names.insert(std::string(id));
  }
  return {names.begin(), names.end()};
}

std::string analyze_project(FileSet& files, const LayerConfig& config,
                            ProjectGraph* graph_out) {
  {
    const std::string config_error = validate_layer_config(config);
    if (!config_error.empty()) return config_error;
  }

  ProjectGraph local;
  ProjectGraph& graph = graph_out != nullptr ? *graph_out : local;
  graph.nodes.clear();
  graph.edges.clear();

  std::map<std::string, std::size_t> index_of;
  for (const auto& file : files) {
    const DirRank dr = classify_path(config, file->path);
    if (dr.rank < 0) {
      return "layer config error: '" + file->path + "' is in directory '" +
             dr.dir + "', which is not declared in the layer table "
             "(tools/nldl_lint/layers.cpp) — declare its rank";
    }
    index_of.emplace(file->path, graph.nodes.size());
    graph.nodes.push_back({file->path, dr.dir, dr.rank});
  }

  // Resolve quoted includes: includer's directory, then src/, then
  // tools/nldl_lint/. Unresolved means external — not a project edge.
  for (std::size_t from = 0; from < files.size(); ++from) {
    for (const IncludeDirective& inc : files[from]->includes) {
      const std::string_view here = dirname_of(files[from]->path);
      const std::string candidates[3] = {
          normalize(std::string(here) + "/" + inc.path),
          normalize("src/" + inc.path),
          normalize("tools/nldl_lint/" + inc.path),
      };
      for (const std::string& candidate : candidates) {
        const auto it = index_of.find(candidate);
        if (it != index_of.end()) {
          graph.edges.push_back({from, it->second, inc.line});
          break;
        }
      }
    }
  }

  // layer-violation: an edge is legal iff the includer is a driver tree,
  // both endpoints share a directory, the includer's rank is strictly
  // greater, or an explicit exception grants it.
  auto bare_layer = [](const std::string& dir) -> std::string_view {
    return starts_with(dir, "src/") ? std::string_view(dir).substr(4)
                                    : std::string_view(dir);
  };
  for (const ProjectGraph::Edge& edge : graph.edges) {
    const ProjectGraph::Node& from = graph.nodes[edge.from];
    const ProjectGraph::Node& to = graph.nodes[edge.to];
    if (from.rank == kDriverRank || from.dir == to.dir ||
        from.rank > to.rank) {
      continue;
    }
    const bool excepted = std::any_of(
        config.exceptions.begin(), config.exceptions.end(),
        [&](const LayerEdge& e) {
          return e.from == bare_layer(from.dir) && e.to == bare_layer(to.dir);
        });
    if (excepted) continue;
    report(*files[edge.from], edge.line, "layer-violation",
           "include of '" + to.path + "' (" + to.dir + ", rank " +
               std::to_string(to.rank) + ") from " + from.dir + " (rank " +
               std::to_string(from.rank) +
               ") contradicts the layer DAG — move the code, or declare a "
               "reviewed exception in tools/nldl_lint/layers.cpp");
  }

  // include-cycle: DFS three-color; every back edge closes a cycle and
  // is reported once, at the #include that closes it.
  {
    std::vector<std::vector<const ProjectGraph::Edge*>> out_edges(
        graph.nodes.size());
    for (const ProjectGraph::Edge& edge : graph.edges) {
      out_edges[edge.from].push_back(&edge);
    }
    std::vector<int> color(graph.nodes.size(), 0);  // 0 white 1 gray 2 black
    std::vector<std::size_t> stack_path;
    // Iterative DFS with an explicit frame stack (node, next-edge index).
    for (std::size_t root = 0; root < graph.nodes.size(); ++root) {
      if (color[root] != 0) continue;
      std::vector<std::pair<std::size_t, std::size_t>> frames{{root, 0}};
      color[root] = 1;
      stack_path.push_back(root);
      while (!frames.empty()) {
        auto& [node, next] = frames.back();
        if (next >= out_edges[node].size()) {
          color[node] = 2;
          stack_path.pop_back();
          frames.pop_back();
          continue;
        }
        const ProjectGraph::Edge* edge = out_edges[node][next++];
        if (color[edge->to] == 1) {
          std::string cycle;
          const auto begin = std::find(stack_path.begin(), stack_path.end(),
                                       edge->to);
          for (auto it = begin; it != stack_path.end(); ++it) {
            cycle += graph.nodes[*it].path + " -> ";
          }
          cycle += graph.nodes[edge->to].path;
          report(*files[edge->from], edge->line, "include-cycle",
                 "include closes a cycle: " + cycle +
                     " — break it with a forward declaration or an "
                     "interface split");
        } else if (color[edge->to] == 0) {
          color[edge->to] = 1;
          stack_path.push_back(edge->to);
          frames.emplace_back(edge->to, 0);
        }
      }
    }
  }

  // iwyu-lite. Export sets per node, with `// IWYU pragma: export`
  // includes contributing their target's exports transitively.
  {
    std::vector<std::set<std::string>> exports(graph.nodes.size());
    std::vector<bool> is_included(graph.nodes.size(), false);
    for (const ProjectGraph::Edge& edge : graph.edges) {
      is_included[edge.to] = true;
    }
    for (std::size_t i = 0; i < graph.nodes.size(); ++i) {
      if (!is_included[i]) continue;
      std::vector<std::string> own = harvest_exports(*files[i]);
      exports[i].insert(own.begin(), own.end());
    }
    auto has_pragma = [&](const ProjectGraph::Edge& edge,
                          std::string_view pragma) {
      const auto& comments = files[edge.from]->stream.comment_by_line;
      return edge.line >= 1 && edge.line <= comments.size() &&
             comments[edge.line - 1].find(pragma) != std::string::npos;
    };
    // Fixpoint propagation over pragma-export edges (the graph is a DAG
    // in practice; the node-count bound terminates it regardless).
    for (std::size_t round = 0; round < graph.nodes.size(); ++round) {
      bool changed = false;
      for (const ProjectGraph::Edge& edge : graph.edges) {
        if (!has_pragma(edge, "IWYU pragma: export")) continue;
        const std::size_t before = exports[edge.from].size();
        exports[edge.from].insert(exports[edge.to].begin(),
                                  exports[edge.to].end());
        changed = changed || exports[edge.from].size() != before;
      }
      if (!changed) break;
    }
    for (const ProjectGraph::Edge& edge : graph.edges) {
      const ProjectGraph::Node& from = graph.nodes[edge.from];
      const ProjectGraph::Node& to = graph.nodes[edge.to];
      // foo.cpp -> foo.hpp in the same directory is the definition pair.
      if (dirname_of(from.path) == dirname_of(to.path) &&
          stem_of(from.path) == stem_of(to.path)) {
        continue;
      }
      if (has_pragma(edge, "IWYU pragma")) continue;  // export or keep
      const std::set<std::string>& names = exports[edge.to];
      const bool used = std::any_of(
          names.begin(), names.end(), [&](const std::string& name) {
            return files[edge.from]->idents.count(name) != 0;
          });
      if (used) continue;
      report(*files[edge.from], edge.line, "iwyu-lite",
             "unused include: no name exported by '" + to.path +
                 "' appears in this file — delete the include, or mark a "
                 "deliberate re-export with '// IWYU pragma: export'");
    }
  }

  return std::string();
}

std::string graph_to_dot(const ProjectGraph& graph) {
  // Condense to one node per directory, edges weighted by file-level
  // include count; cluster directories by rank.
  std::map<std::string, int> dirs;  // dir -> rank
  std::map<std::pair<std::string, std::string>, std::size_t> weights;
  for (const ProjectGraph::Node& node : graph.nodes) {
    dirs.emplace(node.dir, node.rank);
  }
  for (const ProjectGraph::Edge& edge : graph.edges) {
    const std::string& from = graph.nodes[edge.from].dir;
    const std::string& to = graph.nodes[edge.to].dir;
    if (from != to) ++weights[{from, to}];
  }
  std::map<int, std::vector<std::string>> by_rank;
  for (const auto& [dir, rank] : dirs) by_rank[rank].push_back(dir);

  auto id = [](std::string_view dir) {
    std::string out(dir);
    std::replace(out.begin(), out.end(), '/', '_');
    return out;
  };
  std::string dot = "digraph nldl_includes {\n  rankdir=BT;\n"
                    "  node [shape=box, fontname=\"monospace\"];\n";
  for (const auto& [rank, members] : by_rank) {
    dot += "  { rank=same;";
    for (const std::string& dir : members) {
      dot += ' ';
      dot += id(dir);
      dot += " [label=\"";
      dot += dir;
      if (rank == kDriverRank) {
        dot += " (driver)";
      } else {
        dot += " (rank ";
        dot += std::to_string(rank);
        dot += ')';
      }
      dot += "\"];";
    }
    dot += " }\n";
  }
  for (const auto& [edge, weight] : weights) {
    dot += "  ";
    dot += id(edge.first);
    dot += " -> ";
    dot += id(edge.second);
    dot += " [label=\"";
    dot += std::to_string(weight);
    dot += "\"];\n";
  }
  dot += "}\n";
  return dot;
}

std::string graph_to_json(const ProjectGraph& graph,
                          const LayerConfig& config) {
  std::string json = "{\n  \"layers\": [\n";
  for (std::size_t i = 0; i < config.layers.size(); ++i) {
    json += "    {\"dir\": \"" + config.layers[i].dir +
            "\", \"rank\": " + std::to_string(config.layers[i].rank) + "}" +
            (i + 1 < config.layers.size() ? ",\n" : "\n");
  }
  json += "  ],\n  \"nodes\": [\n";
  for (std::size_t i = 0; i < graph.nodes.size(); ++i) {
    const ProjectGraph::Node& node = graph.nodes[i];
    json += "    {\"path\": \"" + node.path + "\", \"dir\": \"" + node.dir +
            "\", \"rank\": " + std::to_string(node.rank) + "}" +
            (i + 1 < graph.nodes.size() ? ",\n" : "\n");
  }
  json += "  ],\n  \"edges\": [\n";
  for (std::size_t i = 0; i < graph.edges.size(); ++i) {
    const ProjectGraph::Edge& edge = graph.edges[i];
    json += "    {\"from\": \"" + graph.nodes[edge.from].path +
            "\", \"to\": \"" + graph.nodes[edge.to].path +
            "\", \"line\": " + std::to_string(edge.line) + "}" +
            (i + 1 < graph.edges.size() ? ",\n" : "\n");
  }
  json += "  ]\n}\n";
  return json;
}

}  // namespace nldl::lint
