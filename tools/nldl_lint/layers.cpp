#include "layers.hpp"

namespace nldl::lint {

// The declared layer DAG, derived from the repo's actual include graph
// (every edge below is realized today; no legal edge is missing):
//
//   rank 0   util                         leaf utilities, includes nothing
//   rank 1   platform, obs, partition     depend only on util (obs is the
//                                         tracing substrate the engine and
//                                         servers EMIT into, so it sits
//                                         BELOW sim — not beside qos)
//   rank 2   sim, linalg                  sim -> platform+obs, linalg ->
//                                         partition
//   rank 3   dlt, mapreduce               dlt replays through sim;
//                                         mapreduce builds on linalg
//   rank 4   sort, online                 both schedule via dlt + sim
//   rank 5   qos, core                    qos wraps online; core owns the
//                                         paper's experiments over
//                                         everything below
//   rank 6   bench                        src/bench harness: reporting
//                                         shell, never included by the
//                                         library proper
//
// Driver trees (top-level bench/, tests/, examples/, tools/) are rank
// kDriverRank and may include any layer; no src/ layer may include them.
//
// A file in directory A may include a header in directory B iff A == B
// or rank(A) > rank(B) — equal ranks do NOT grant cross-directory
// includes, so sibling layers cannot silently grow into each other. To
// legalize a genuinely new edge, either move the directory's rank here
// (reviewed, with the README diagram updated) or add an explicit
// LayerEdge exception; both changes are loud in review, which is the
// point.
const LayerConfig& default_layer_config() {
  static const LayerConfig kConfig = {
      {
          {"util", 0},
          {"platform", 1},
          {"obs", 1},
          {"partition", 1},
          {"sim", 2},
          {"linalg", 2},
          {"dlt", 3},
          {"mapreduce", 3},
          {"sort", 4},
          {"online", 4},
          {"qos", 5},
          {"core", 5},
          {"bench", 6},
      },
      // No exceptions: every legal edge today is explained by the ranks.
      {},
  };
  return kConfig;
}

std::string validate_layer_config(const LayerConfig& config) {
  if (config.layers.empty()) {
    return "layer config error: empty layer table (layers.cpp must declare "
           "every src/ directory)";
  }
  for (std::size_t i = 0; i < config.layers.size(); ++i) {
    const LayerSpec& spec = config.layers[i];
    if (spec.dir.empty()) {
      return "layer config error: empty directory name in layer table";
    }
    if (spec.dir.find('/') != std::string::npos) {
      return "layer config error: layer '" + spec.dir +
             "' must be a bare src/ subdirectory name, not a path";
    }
    if (spec.rank < 0) {
      return "layer config error: layer '" + spec.dir +
             "' has negative rank";
    }
    if (spec.rank >= kDriverRank) {
      return "layer config error: layer '" + spec.dir +
             "' uses a rank reserved for driver trees (>= " +
             std::to_string(kDriverRank) + ")";
    }
    for (std::size_t j = i + 1; j < config.layers.size(); ++j) {
      if (config.layers[j].dir == spec.dir) {
        return "layer config error: directory '" + spec.dir +
               "' declared twice in the layer table";
      }
    }
  }
  for (const LayerEdge& edge : config.exceptions) {
    if (edge.from == edge.to) {
      return "layer config error: self-edge exception '" + edge.from +
             " -> " + edge.to + "' (same-directory includes are always "
             "legal; a self-edge here is a typo)";
    }
    if (layer_rank(config, edge.from) < 0) {
      return "layer config error: exception names unknown directory '" +
             edge.from + "'";
    }
    if (layer_rank(config, edge.to) < 0) {
      return "layer config error: exception names unknown directory '" +
             edge.to + "'";
    }
  }
  return std::string();
}

int layer_rank(const LayerConfig& config, std::string_view dir) {
  for (const LayerSpec& spec : config.layers) {
    if (spec.dir == dir) return spec.rank;
  }
  return -1;
}

}  // namespace nldl::lint
