// nldl_lint CLI — scan the repo's checked trees (src/ tests/ bench/
// examples/) for determinism/correctness violations; see lint.hpp for the
// rule catalogue and suppression syntax.
//
// Usage:
//   nldl_lint [--root=DIR] [paths...]   scan (default: the four trees)
//   nldl_lint --list-rules              print the rule catalogue
//
// Exit codes: 0 clean, 1 findings reported, 2 usage/IO error. The
// report-only contract is deliberate: there is no --fix, so CI's gate and
// a developer's terminal always see the same findings.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"
#include "util/cli.hpp"

namespace {

namespace fs = std::filesystem;

bool is_source_file(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

bool is_fixture(const fs::path& path) {
  for (const fs::path& part : path) {
    if (part == "lint_fixtures") return true;
  }
  return false;
}

void collect(const fs::path& root, std::vector<fs::path>& files) {
  if (fs::is_regular_file(root)) {
    if (is_source_file(root) && !is_fixture(root)) files.push_back(root);
    return;
  }
  if (!fs::is_directory(root)) return;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (entry.is_regular_file() && is_source_file(entry.path()) &&
        !is_fixture(entry.path())) {
      files.push_back(entry.path());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const nldl::util::Args args(argc, argv);

  if (args.has("list-rules")) {
    for (const nldl::lint::Rule& rule : nldl::lint::rules()) {
      std::printf("%-20s %s\n", std::string(rule.id).c_str(),
                  std::string(rule.summary).c_str());
      std::printf("%-20s   why: %s\n", "",
                  std::string(rule.rationale).c_str());
    }
    std::printf("\nsuppress with: "
                "// nldl-lint: allow(<rule>[, <rule>]): <justification>\n");
    return 0;
  }

  const fs::path root = args.get_string("root", ".");
  std::vector<fs::path> files;
  if (!args.positional().empty()) {
    for (const std::string& path : args.positional()) collect(path, files);
  } else {
    bool any_tree = false;
    for (const char* tree : {"src", "tests", "bench", "examples"}) {
      const fs::path dir = root / tree;
      if (fs::is_directory(dir)) {
        any_tree = true;
        collect(dir, files);
      }
    }
    if (!any_tree) {
      std::fprintf(stderr,
                   "nldl_lint: no src/tests/bench/examples under '%s' "
                   "(pass --root=<repo> or explicit paths)\n",
                   root.string().c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::size_t total_findings = 0;
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "nldl_lint: cannot read %s\n",
                   file.string().c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::vector<nldl::lint::Finding> findings =
        nldl::lint::scan_source(file.string(), buffer.str());
    for (const nldl::lint::Finding& finding : findings) {
      std::printf("%s\n", nldl::lint::to_string(finding).c_str());
    }
    total_findings += findings.size();
  }

  std::printf("nldl_lint: %zu file(s) scanned, %zu finding(s)\n",
              files.size(), total_findings);
  return total_findings == 0 ? 0 : 1;
}
