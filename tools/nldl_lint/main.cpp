// nldl_lint CLI — scan the repo's checked trees (src/ tools/ tests/
// bench/ examples/) for determinism/correctness violations; see lint.hpp
// for the rule catalogue and suppression syntax, and project.hpp for the
// include-graph analyses (layer-violation, include-cycle, iwyu-lite).
//
// Usage:
//   nldl_lint [--root=DIR]            scan the five trees + project rules
//   nldl_lint [--root=DIR] --graph=F  also write the include graph to F
//                                     (DOT by default, JSON if F ends in
//                                     .json)
//   nldl_lint [paths...]              scan explicit files/dirs only
//                                     (single-file rules; no graph)
//   nldl_lint --list-rules            print the rule catalogue
//   nldl_lint --help                  this text
//
// Exit codes: 0 clean, 1 findings reported, 2 usage/IO/configuration
// error (unreadable file, malformed layer table in layers.cpp). The
// report-only contract is deliberate: there is no --fix, so CI's gate and
// a developer's terminal always see the same findings.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"
#include "project.hpp"
#include "util/cli.hpp"

namespace {

namespace fs = std::filesystem;

constexpr const char* kUsage =
    "usage: nldl_lint [--root=DIR] [--graph=FILE] [paths...]\n"
    "\n"
    "  (no paths)    scan src/ tools/ tests/ bench/ examples/ under the\n"
    "                root with every rule, including the project-wide\n"
    "                include-graph rules (layer-violation, include-cycle,\n"
    "                iwyu-lite)\n"
    "  paths...      scan just those files/directories with the\n"
    "                single-file rules (no include-graph analysis)\n"
    "  --root=DIR    repo root (default: .); findings are reported\n"
    "                root-relative\n"
    "  --graph=FILE  write the resolved include graph and layer\n"
    "                assignment to FILE: Graphviz DOT, or JSON when FILE\n"
    "                ends in .json (tree scan only)\n"
    "  --list-rules  print the rule catalogue with rationales\n"
    "  --help        this text\n"
    "\n"
    "exit codes: 0 no findings; 1 findings reported; 2 usage, IO, or\n"
    "layer-configuration error (layers.cpp must declare every src/\n"
    "directory; malformed entries never pass silently)\n";

bool is_source_file(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

bool is_fixture(const fs::path& path) {
  for (const fs::path& part : path) {
    if (part == "lint_fixtures") return true;
  }
  return false;
}

void collect(const fs::path& root, std::vector<fs::path>& files) {
  if (fs::is_regular_file(root)) {
    if (is_source_file(root) && !is_fixture(root)) files.push_back(root);
    return;
  }
  if (!fs::is_directory(root)) return;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (entry.is_regular_file() && is_source_file(entry.path()) &&
        !is_fixture(entry.path())) {
      files.push_back(entry.path());
    }
  }
}

/// Root-relative label with forward slashes — the form layers.cpp and
/// the bench-layer heuristic reason about.
std::string label_for(const fs::path& file, const fs::path& root) {
  const fs::path rel = file.lexically_relative(root);
  if (rel.empty() || *rel.begin() == "..") return file.generic_string();
  return rel.generic_string();
}

}  // namespace

int main(int argc, char** argv) {
  const nldl::util::Args args(argc, argv);

  if (args.has("help")) {
    std::fputs(kUsage, stdout);
    return 0;
  }
  if (args.has("list-rules")) {
    for (const nldl::lint::Rule& rule : nldl::lint::rules()) {
      std::printf("%-20s %s\n", std::string(rule.id).c_str(),
                  std::string(rule.summary).c_str());
      std::printf("%-20s   why: %s\n", "",
                  std::string(rule.rationale).c_str());
    }
    std::printf("\nsuppress with: "
                "// nldl-lint: allow(<rule>[, <rule>]): <justification>\n");
    return 0;
  }

  for (const auto& [key, value] : args.values()) {
    if (key != "root" && key != "graph") {
      std::fprintf(stderr, "nldl_lint: unknown option --%s\n\n%s",
                   key.c_str(), kUsage);
      return 2;
    }
  }

  const fs::path root = args.get_string("root", ".");
  const std::string graph_file = args.get_string("graph", "");
  const bool tree_scan = args.positional().empty();

  if (!graph_file.empty() && !tree_scan) {
    std::fprintf(stderr,
                 "nldl_lint: --graph requires a tree scan (drop the "
                 "explicit paths)\n");
    return 2;
  }

  std::vector<fs::path> files;
  if (tree_scan) {
    bool any_tree = false;
    for (const char* tree : {"src", "tools", "tests", "bench", "examples"}) {
      const fs::path dir = root / tree;
      if (fs::is_directory(dir)) {
        any_tree = true;
        collect(dir, files);
      }
    }
    if (!any_tree) {
      std::fprintf(stderr,
                   "nldl_lint: no src/tools/tests/bench/examples under "
                   "'%s' (pass --root=<repo> or explicit paths)\n",
                   root.string().c_str());
      return 2;
    }
  } else {
    for (const std::string& path : args.positional()) collect(path, files);
  }
  std::sort(files.begin(), files.end());

  nldl::lint::FileSet scans;
  scans.reserve(files.size());
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "nldl_lint: cannot read %s\n",
                   file.string().c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto scan = std::make_unique<nldl::lint::FileScan>();
    scan->path = tree_scan ? label_for(file, root) : file.generic_string();
    scan->source = buffer.str();
    nldl::lint::scan_file(*scan);
    scans.push_back(std::move(scan));
  }

  if (tree_scan) {
    nldl::lint::ProjectGraph graph;
    const std::string config_error = nldl::lint::analyze_project(
        scans, nldl::lint::default_layer_config(), &graph);
    if (!config_error.empty()) {
      std::fprintf(stderr, "nldl_lint: %s\n", config_error.c_str());
      return 2;
    }
    if (!graph_file.empty()) {
      const bool json = graph_file.size() >= 5 &&
                        graph_file.compare(graph_file.size() - 5, 5,
                                           ".json") == 0;
      std::ofstream out(graph_file, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "nldl_lint: cannot write %s\n",
                     graph_file.c_str());
        return 2;
      }
      out << (json ? nldl::lint::graph_to_json(
                         graph, nldl::lint::default_layer_config())
                   : nldl::lint::graph_to_dot(graph));
    }
  }

  std::size_t total_findings = 0;
  for (const auto& scan : scans) {
    nldl::lint::finish_file(*scan);
    for (const nldl::lint::Finding& finding : scan->findings) {
      std::printf("%s\n", nldl::lint::to_string(finding).c_str());
    }
    total_findings += scan->findings.size();
  }

  std::printf("nldl_lint: %zu file(s) scanned, %zu finding(s)\n",
              scans.size(), total_findings);
  return total_findings == 0 ? 0 : 1;
}
