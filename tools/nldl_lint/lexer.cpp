#include "lexer.hpp"

#include <algorithm>
#include <array>
#include <cctype>

namespace nldl::lint {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

/// Multi-char punctuators recognized by maximal munch. `<<`/`>>` are
/// deliberately absent (see lexer.hpp); `<=`/`>=` are kept because a bare
/// relational never opens or closes a template argument list this lint
/// cares about.
constexpr std::array<std::string_view, 18> kPuncts = {
    "->*", "...", "::", "->", "++", "--", "+=", "-=", "*=",
    "/=",  "%=",  "==", "!=", "<=", ">=", "&&", "||", "##",
};

/// Raw-string prefixes: R"..., uR"..., u8R"..., LR"..., UR"...
bool is_raw_string_prefix(std::string_view ident) {
  return ident == "R" || ident == "uR" || ident == "u8R" || ident == "LR" ||
         ident == "UR";
}

}  // namespace

TokenStream lex(std::string_view source) {
  TokenStream out;
  out.line_count =
      static_cast<std::size_t>(
          std::count(source.begin(), source.end(), '\n')) +
      1;
  out.comment_by_line.assign(out.line_count, std::string());

  std::size_t line = 1;
  std::size_t i = 0;
  const std::size_t n = source.size();

  auto push = [&](TokenKind kind, std::size_t begin, std::size_t end,
                  std::size_t begin_line) {
    out.tokens.push_back(
        {kind, source.substr(begin, end - begin), begin, begin_line});
  };

  while (i < n) {
    const char c = source[i];
    const char next = i + 1 < n ? source[i + 1] : '\0';

    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }

    // Line comment.
    if (c == '/' && next == '/') {
      std::size_t j = i + 2;
      while (j < n && source[j] != '\n') ++j;
      out.comment_by_line[line - 1].append(source.substr(i, j - i));
      i = j;
      continue;
    }

    // Block comment — text is distributed line by line so a suppression
    // inside a multi-line /* */ attaches to the line it is written on.
    if (c == '/' && next == '*') {
      std::size_t j = i + 2;
      std::size_t comment_line = line;
      std::size_t seg_start = i;
      while (j < n && !(source[j] == '*' && j + 1 < n && source[j + 1] == '/')) {
        if (source[j] == '\n') {
          out.comment_by_line[comment_line - 1].append(
              source.substr(seg_start, j - seg_start));
          ++comment_line;
          seg_start = j + 1;
        }
        ++j;
      }
      const std::size_t end = j < n ? j + 2 : n;
      out.comment_by_line[comment_line - 1].append(
          source.substr(seg_start, end - seg_start));
      line = comment_line;
      i = end;
      continue;
    }

    // Identifier (possibly a raw-string prefix).
    if (is_ident_start(c)) {
      std::size_t j = i;
      while (j < n && is_ident_char(source[j])) ++j;
      const std::string_view ident = source.substr(i, j - i);
      if (j < n && source[j] == '"' && is_raw_string_prefix(ident)) {
        // R"delim( ... )delim"
        std::size_t k = j + 1;
        while (k < n && source[k] != '(') ++k;
        std::string close(1, ')');
        close.append(source.substr(j + 1, k - (j + 1)));
        close.push_back('"');
        std::size_t body = k;
        const std::size_t begin_line = line;
        while (body < n && source.compare(body, close.size(), close) != 0) {
          if (source[body] == '\n') ++line;
          ++body;
        }
        const std::size_t end = body < n ? body + close.size() : n;
        push(TokenKind::kString, i, end, begin_line);
        i = end;
        continue;
      }
      push(TokenKind::kIdentifier, i, j, line);
      i = j;
      continue;
    }

    // Number (pp-number): starts with a digit, or '.' followed by a digit.
    if (is_digit(c) || (c == '.' && is_digit(next))) {
      std::size_t j = i;
      while (j < n) {
        const char d = source[j];
        if (is_ident_char(d) || d == '.') {
          // Exponent signs: e+, e-, E+, E-, p+, p- (hex floats).
          if ((d == 'e' || d == 'E' || d == 'p' || d == 'P') && j + 1 < n &&
              (source[j + 1] == '+' || source[j + 1] == '-') && j > i) {
            j += 2;
            continue;
          }
          ++j;
          continue;
        }
        if (d == '\'' && j + 1 < n && is_ident_char(source[j + 1])) {
          ++j;  // digit separator 1'000'000
          continue;
        }
        break;
      }
      push(TokenKind::kNumber, i, j, line);
      i = j;
      continue;
    }

    // String literal (a prefix like u8 was already consumed as an
    // identifier token; that is fine for this lint's purposes).
    if (c == '"') {
      std::size_t j = i + 1;
      const std::size_t begin_line = line;
      while (j < n && source[j] != '"') {
        if (source[j] == '\\' && j + 1 < n) {
          if (source[j + 1] == '\n') ++line;
          j += 2;
          continue;
        }
        if (source[j] == '\n') ++line;  // unterminated tolerance
        ++j;
      }
      const std::size_t end = j < n ? j + 1 : n;
      push(TokenKind::kString, i, end, begin_line);
      i = end;
      continue;
    }

    // Character literal.
    if (c == '\'') {
      std::size_t j = i + 1;
      const std::size_t begin_line = line;
      while (j < n && source[j] != '\'') {
        if (source[j] == '\\' && j + 1 < n) {
          j += 2;
          continue;
        }
        if (source[j] == '\n') break;  // stray quote, not a literal
        ++j;
      }
      const std::size_t end = j < n && source[j] == '\'' ? j + 1 : i + 1;
      push(TokenKind::kChar, i, end, begin_line);
      i = end;
      continue;
    }

    // Punctuator, maximal munch over the multi-char table.
    {
      std::size_t len = 1;
      for (const std::string_view p : kPuncts) {
        if (p.size() <= n - i && source.compare(i, p.size(), p) == 0) {
          len = p.size();
          break;
        }
      }
      push(TokenKind::kPunct, i, i + len, line);
      i += len;
    }
  }

  return out;
}

}  // namespace nldl::lint
