#include "online/scheduler.hpp"

#include <bit>
#include <cstdint>

#include "dlt/nonlinear_dlt.hpp"
#include "util/assert.hpp"

namespace nldl::online {

double predicted_makespan(const Job& job,
                          const platform::Platform& platform,
                          sim::CommModelKind comm) {
  NLDL_REQUIRE(job.load > 0.0, "predicted_makespan requires a positive load");
  // The same matched allocator Server::simulate_service replays under
  // each model (one-port feeds in platform order there too).
  return dlt::nonlinear_single_round_for(comm, platform, job.load,
                                         job.alpha)
      .makespan;
}

double mean_predicted_makespan(const JobMix& mix,
                               const platform::Platform& platform,
                               sim::CommModelKind comm) {
  mix.validate();
  double weighted = 0.0;
  double total_weight = 0.0;
  for (std::size_t k = 0; k < mix.alphas.size(); ++k) {
    const Job mean_job{0, 0.0, mix.mean_load(), mix.alphas[k]};
    weighted +=
        mix.alpha_weights[k] * predicted_makespan(mean_job, platform, comm);
    total_weight += mix.alpha_weights[k];
  }
  return weighted / total_weight;
}

std::size_t FcfsScheduler::pick(const std::vector<Job>& queue,
                                const platform::Platform&) const {
  NLDL_REQUIRE(!queue.empty(), "pick() on an empty queue");
  return 0;
}

FairShareScheduler::FairShareScheduler(std::size_t shares)
    : shares_(shares) {
  NLDL_REQUIRE(shares >= 1, "FairShareScheduler requires >= 1 share");
}

std::size_t FairShareScheduler::pick(const std::vector<Job>& queue,
                                     const platform::Platform&) const {
  NLDL_REQUIRE(!queue.empty(), "pick() on an empty queue");
  return 0;
}

double PredictionCache::predict(const Job& job,
                                const platform::Platform& platform,
                                sim::CommModelKind comm) {
  // Evict everything if this is a different platform than the one the
  // cached predictions were solved on. The fingerprint is plain O(p)
  // arithmetic — no allocation on the hit path — over the exact
  // per-worker bit patterns, so no two distinct platforms share it
  // short of a 64-bit hash collision.
  PlatformSignature signature;
  signature.size = platform.size();
  std::uint64_t digest = 0xCBF29CE484222325ULL;  // FNV-1a
  const auto mix = [&digest](double value) {
    digest ^= std::bit_cast<std::uint64_t>(value);
    digest *= 0x100000001B3ULL;
  };
  for (const auto& worker : platform.workers()) {
    mix(worker.c);
    mix(worker.w);
  }
  signature.digest = digest;
  if (!bound_ || !(signature == platform_signature_)) {
    cache_.clear();
    platform_signature_ = signature;
    bound_ = true;
  }

  const auto it = cache_.find(job.id);
  if (it != cache_.end() && it->second.load == job.load &&
      it->second.alpha == job.alpha && it->second.comm == comm) {
    ++hits_;
    return it->second.makespan;
  }
  ++misses_;
  const double makespan = predicted_makespan(job, platform, comm);
  cache_[job.id] = {job.load, job.alpha, comm, makespan};
  return makespan;
}

void PredictionCache::clear() {
  cache_.clear();
  bound_ = false;
}

std::size_t SpmfScheduler::pick(
    const std::vector<Job>& queue,
    const platform::Platform& slot_platform) const {
  NLDL_REQUIRE(!queue.empty(), "pick() on an empty queue");

  std::size_t best = 0;
  double best_makespan = cache_.predict(queue[0], slot_platform, comm_);
  for (std::size_t k = 1; k < queue.size(); ++k) {
    const double makespan = cache_.predict(queue[k], slot_platform, comm_);
    // Strict < keeps ties on the earliest arrival (queue is in arrival
    // order).
    if (makespan < best_makespan) {
      best = k;
      best_makespan = makespan;
    }
  }
  return best;
}

std::string to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFcfs:
      return "fcfs";
    case SchedulerKind::kFairShare:
      return "fair-share";
    case SchedulerKind::kSpmf:
      return "spmf";
  }
  NLDL_ASSERT(false, "unknown scheduler kind");
}

std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind,
                                          std::size_t shares,
                                          sim::CommModelKind comm) {
  switch (kind) {
    case SchedulerKind::kFcfs:
      return std::make_unique<FcfsScheduler>();
    case SchedulerKind::kFairShare:
      return std::make_unique<FairShareScheduler>(shares);
    case SchedulerKind::kSpmf:
      return std::make_unique<SpmfScheduler>(comm);
  }
  NLDL_ASSERT(false, "unknown scheduler kind");
}

}  // namespace nldl::online
