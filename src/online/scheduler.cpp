#include "online/scheduler.hpp"

#include "dlt/nonlinear_dlt.hpp"
#include "util/assert.hpp"

namespace nldl::online {

double predicted_makespan(const Job& job,
                          const platform::Platform& platform,
                          sim::CommModelKind comm) {
  NLDL_REQUIRE(job.load > 0.0, "predicted_makespan requires a positive load");
  // Match the allocator Server::simulate_service uses under each model
  // (one-port feeds in platform order there too).
  if (comm == sim::CommModelKind::kOnePort) {
    return dlt::nonlinear_one_port_single_round(platform, job.load,
                                                job.alpha)
        .makespan;
  }
  return dlt::nonlinear_parallel_single_round(platform, job.load, job.alpha)
      .makespan;
}

double mean_predicted_makespan(const JobMix& mix,
                               const platform::Platform& platform,
                               sim::CommModelKind comm) {
  mix.validate();
  double weighted = 0.0;
  double total_weight = 0.0;
  for (std::size_t k = 0; k < mix.alphas.size(); ++k) {
    const Job mean_job{0, 0.0, mix.mean_load(), mix.alphas[k]};
    weighted +=
        mix.alpha_weights[k] * predicted_makespan(mean_job, platform, comm);
    total_weight += mix.alpha_weights[k];
  }
  return weighted / total_weight;
}

std::size_t FcfsScheduler::pick(const std::vector<Job>& queue,
                                const platform::Platform&) const {
  NLDL_REQUIRE(!queue.empty(), "pick() on an empty queue");
  return 0;
}

FairShareScheduler::FairShareScheduler(std::size_t shares)
    : shares_(shares) {
  NLDL_REQUIRE(shares >= 1, "FairShareScheduler requires >= 1 share");
}

std::size_t FairShareScheduler::pick(const std::vector<Job>& queue,
                                     const platform::Platform&) const {
  NLDL_REQUIRE(!queue.empty(), "pick() on an empty queue");
  return 0;
}

std::size_t SpmfScheduler::pick(
    const std::vector<Job>& queue,
    const platform::Platform& slot_platform) const {
  NLDL_REQUIRE(!queue.empty(), "pick() on an empty queue");

  // Invalidate the memo if this is a different slot platform than the one
  // the cached predictions were solved on.
  double sum_c = 0.0;
  for (const auto& worker : slot_platform.workers()) sum_c += worker.c;
  const std::vector<double> signature{
      static_cast<double>(slot_platform.size()),
      slot_platform.total_speed(), sum_c};
  if (signature != platform_signature_) {
    cache_.clear();
    platform_signature_ = signature;
  }

  const auto priority_of = [&](const Job& job) {
    const auto it = cache_.find(job.id);
    if (it != cache_.end() && it->second.load == job.load &&
        it->second.alpha == job.alpha) {
      return it->second.makespan;
    }
    const double makespan = predicted_makespan(job, slot_platform, comm_);
    cache_[job.id] = {job.load, job.alpha, makespan};
    return makespan;
  };

  std::size_t best = 0;
  double best_makespan = priority_of(queue[0]);
  for (std::size_t k = 1; k < queue.size(); ++k) {
    const double makespan = priority_of(queue[k]);
    // Strict < keeps ties on the earliest arrival (queue is in arrival
    // order).
    if (makespan < best_makespan) {
      best = k;
      best_makespan = makespan;
    }
  }
  return best;
}

std::string to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFcfs:
      return "fcfs";
    case SchedulerKind::kFairShare:
      return "fair-share";
    case SchedulerKind::kSpmf:
      return "spmf";
  }
  NLDL_ASSERT(false, "unknown scheduler kind");
}

std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind,
                                          std::size_t shares,
                                          sim::CommModelKind comm) {
  switch (kind) {
    case SchedulerKind::kFcfs:
      return std::make_unique<FcfsScheduler>();
    case SchedulerKind::kFairShare:
      return std::make_unique<FairShareScheduler>(shares);
    case SchedulerKind::kSpmf:
      return std::make_unique<SpmfScheduler>(comm);
  }
  NLDL_ASSERT(false, "unknown scheduler kind");
}

}  // namespace nldl::online
