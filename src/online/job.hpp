// The job model of the online (open-system) scheduling subsystem.
//
// Where the rest of the library studies ONE divisible load in isolation,
// online/ simulates a stream of competing loads arriving over time (the
// multi-load setting of Gallet–Robert–Vivien and Wu–Cao–Robertazzi). Each
// job is itself a divisible load: `load` units of work whose compute cost
// on worker i is w_i · X^alpha for a chunk of X units, exactly the
// sim::Engine cost model. Jobs carry their own alpha so a stream can mix
// job classes (linear alpha = 1 next to quadratic alpha = 2) — the case
// where the paper's nonlinearity makes size-based priority rules mis-rank
// (see online/scheduler.hpp).
#pragma once

#include <cstddef>
#include <limits>

namespace nldl::online {

/// One divisible-load job of an open arrival stream.
struct Job {
  std::size_t id = 0;      ///< 0..n-1, in arrival order
  double arrival = 0.0;    ///< release time (>= 0)
  double load = 0.0;       ///< load units of divisible work (> 0)
  double alpha = 1.0;      ///< compute cost exponent (>= 1)
  /// Absolute completion deadline (SLO); +infinity = best-effort, no
  /// deadline. Ignored by online::Server; consumed by the qos/ admission
  /// and EDF layers.
  double deadline = std::numeric_limits<double>::infinity();
  /// Owning tenant (qos/ multi-tenant fairness); 0 in single-tenant runs.
  std::size_t tenant = 0;

  [[nodiscard]] bool has_deadline() const noexcept {
    return deadline < std::numeric_limits<double>::infinity();
  }
  /// Time between release and deadline (+infinity when best-effort).
  [[nodiscard]] double slack() const noexcept { return deadline - arrival; }
};

/// Completed-job record produced by online::Server.
struct JobStats {
  Job job;
  double dispatch = 0.0;   ///< service start (>= job.arrival)
  double finish = 0.0;     ///< last chunk's compute end
  std::size_t slot = 0;    ///< processor partition that served the job
  std::size_t workers = 0; ///< workers in that partition
  /// Σ compute busy time over the job's workers (utilization accounting).
  double compute_time = 0.0;
  /// Makespan of the job run alone on the FULL platform under the same
  /// communication model — the slowdown baseline. 0 when the server was
  /// configured not to record it.
  double isolated_makespan = 0.0;

  [[nodiscard]] double wait() const noexcept { return dispatch - job.arrival; }
  [[nodiscard]] double latency() const noexcept {
    return finish - job.arrival;
  }
  /// Latency normalized by the job's isolated makespan (>= 1 under an
  /// exclusive scheduler; can exceed 1 even with zero wait under
  /// processor partitioning, which serves jobs on a slice of the
  /// platform). 1 when no baseline was recorded.
  [[nodiscard]] double slowdown() const noexcept {
    return isolated_makespan > 0.0 ? latency() / isolated_makespan : 1.0;
  }
};

}  // namespace nldl::online
