#include "online/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace nldl::online {

std::vector<double> ServiceMetrics::signature() const {
  return {static_cast<double>(jobs),
          static_cast<double>(degenerate_slowdowns),
          horizon,
          throughput,
          utilization,
          mean_wait,
          max_wait,
          mean_latency,
          p50_latency,
          p95_latency,
          p99_latency,
          mean_slowdown,
          p50_slowdown,
          p95_slowdown,
          p99_slowdown};
}

MetricsAccumulator::MetricsAccumulator(std::size_t platform_size)
    : platform_size_(platform_size) {
  NLDL_REQUIRE(platform_size >= 1,
               "metrics require at least one worker");
}

void MetricsAccumulator::push(const JobStats& stats) {
  // Reject malformed records up front: one non-finite or negative-span
  // sample would otherwise poison every mean (and P2Quantile would throw
  // halfway through, leaving the accumulator inconsistent).
  NLDL_REQUIRE(std::isfinite(stats.finish) &&
                   std::isfinite(stats.dispatch) &&
                   std::isfinite(stats.compute_time),
               "job record with non-finite times");
  NLDL_REQUIRE(stats.dispatch >= stats.job.arrival &&
                   stats.finish >= stats.dispatch,
               "job record violates arrival <= dispatch <= finish");
  NLDL_REQUIRE(stats.compute_time >= 0.0,
               "job record with negative compute time");
  ++jobs_;
  horizon_ = std::max(horizon_, stats.finish);
  busy_ += stats.compute_time;
  wait_.push(stats.wait());
  latency_.push(stats.latency());
  latency_p50_.push(stats.latency());
  latency_p95_.push(stats.latency());
  latency_p99_.push(stats.latency());
  // Slowdown rule (see the header): a zero/epsilon isolated baseline
  // divides to a non-finite ratio — exclude the sample (and count it)
  // instead of poisoning the mean and the P² quantile state.
  const double slowdown = stats.slowdown();
  if (std::isfinite(slowdown)) {
    slowdown_.push(slowdown);
    slowdown_p50_.push(slowdown);
    slowdown_p95_.push(slowdown);
    slowdown_p99_.push(slowdown);
  } else {
    ++degenerate_slowdowns_;
  }
}

ServiceMetrics MetricsAccumulator::finish() const {
  ServiceMetrics metrics;
  metrics.jobs = jobs_;
  if (jobs_ == 0) return metrics;
  metrics.degenerate_slowdowns = degenerate_slowdowns_;
  metrics.horizon = horizon_;
  metrics.throughput =
      horizon_ > 0.0 ? static_cast<double>(jobs_) / horizon_ : 0.0;
  metrics.utilization =
      horizon_ > 0.0
          ? busy_ / (static_cast<double>(platform_size_) * horizon_)
          : 0.0;
  metrics.mean_wait = wait_.mean();
  metrics.max_wait = wait_.max();
  metrics.mean_latency = latency_.mean();
  metrics.p50_latency = latency_p50_.value();
  metrics.p95_latency = latency_p95_.value();
  metrics.p99_latency = latency_p99_.value();
  // Every slowdown sample may have been excluded as degenerate; report
  // zeros (like an empty run) instead of querying empty estimators.
  if (slowdown_.count() > 0) {
    metrics.mean_slowdown = slowdown_.mean();
    metrics.p50_slowdown = slowdown_p50_.value();
    metrics.p95_slowdown = slowdown_p95_.value();
    metrics.p99_slowdown = slowdown_p99_.value();
  }
  return metrics;
}

ServiceMetrics summarize(const std::vector<JobStats>& stats,
                         std::size_t platform_size) {
  MetricsAccumulator acc(platform_size);
  for (const JobStats& record : stats) acc.push(record);
  return acc.finish();
}

void write_service_metrics(util::JsonWriter& json,
                           const ServiceMetrics& metrics) {
  json.key("horizon").value(metrics.horizon);
  json.key("throughput").value(metrics.throughput);
  json.key("utilization").value(metrics.utilization);
  json.key("mean_wait").value(metrics.mean_wait);
  json.key("max_wait").value(metrics.max_wait);
  json.key("mean_latency").value(metrics.mean_latency);
  json.key("p50_latency").value(metrics.p50_latency);
  json.key("p95_latency").value(metrics.p95_latency);
  json.key("p99_latency").value(metrics.p99_latency);
  json.key("mean_slowdown").value(metrics.mean_slowdown);
  json.key("p50_slowdown").value(metrics.p50_slowdown);
  json.key("p95_slowdown").value(metrics.p95_slowdown);
  json.key("p99_slowdown").value(metrics.p99_slowdown);
  json.key("degenerate_slowdowns").value(metrics.degenerate_slowdowns);
}

}  // namespace nldl::online
