// The online server: an open system of divisible-load jobs on one star
// platform.
//
// The server owns the queueing/admission layer and drives every job's
// service through the event-driven sim::Engine:
//
//   - the platform is carved into scheduler.shares() disjoint worker
//     partitions ("slots"), interleaved by worker index so heterogeneous
//     platforms split evenly (worker i goes to slot i mod S);
//   - whenever a slot is idle and the queue is non-empty, the scheduler
//     picks the next job; the job's load is split across the slot's
//     workers by the OPTIMAL single-round nonlinear allocation matched to
//     the communication model (dlt::nonlinear_one_port_single_round under
//     one-port, dlt::nonlinear_parallel_single_round otherwise), and the
//     resulting schedule is replayed by sim::Engine under the configured
//     CommModel — the per-job finish time is timestamped via the engine's
//     ChunkCompletionHook;
//   - simultaneous events resolve deterministically: completions first,
//     then arrivals, then dispatches in ascending slot index. The whole
//     simulation consumes no RNG, so a run is a pure function of the job
//     stream — bit-identical wherever it executes (the property
//     bench_online's serial-vs-parallel self-check rides on).
//
// Modeling note: each slot replays its jobs through its own engine run, so
// the master's port/capacity constraint applies per slot, not across
// concurrent slots (a partitioned master). Cross-slot bandwidth contention
// is an open item in ROADMAP.md.
#pragma once

#include <limits>
#include <memory>
#include <vector>

#include "online/job.hpp"
#include "online/scheduler.hpp"
#include "platform/platform.hpp"
#include "sim/comm_model.hpp"

namespace nldl::online {

struct ServerOptions {
  sim::CommModelKind comm = sim::CommModelKind::kParallelLinks;
  /// Master capacity / concurrency (consulted for kBoundedMultiport).
  double capacity = std::numeric_limits<double>::infinity();
  std::size_t max_concurrent = sim::BoundedMultiportModel::kUnlimited;
  /// Also simulate every job alone on the full platform to fill
  /// JobStats::isolated_makespan (the slowdown baseline). Costs one extra
  /// engine run per job.
  bool record_isolated = true;
};

class Server {
 public:
  explicit Server(const platform::Platform& platform,
                  ServerOptions options = {});

  [[nodiscard]] const platform::Platform& platform() const noexcept {
    return platform_;
  }
  [[nodiscard]] const ServerOptions& options() const noexcept {
    return options_;
  }

  /// Simulate the open system to completion (every job served, however
  /// far past the last arrival that takes). `jobs` must be in
  /// non-decreasing arrival order with ids 0..n-1 — the shape every
  /// ArrivalProcess produces. Returns one JobStats per job, in id order.
  [[nodiscard]] std::vector<JobStats> run(const std::vector<Job>& jobs,
                                          const Scheduler& scheduler) const;

 private:
  /// Service time of `job` run alone on `slot_platform`; also reports the
  /// total compute busy time across the slot's workers.
  [[nodiscard]] double simulate_service(
      const platform::Platform& slot_platform, const Job& job,
      double* compute_time) const;

  const platform::Platform& platform_;
  ServerOptions options_;
  std::unique_ptr<sim::CommModel> model_;
};

}  // namespace nldl::online
