// The online server: an open system of divisible-load jobs on one star
// platform.
//
// The server owns the queueing/admission layer and drives every job's
// service through the event-driven sim::Engine:
//
//   - the platform is carved into scheduler.shares() disjoint worker
//     partitions ("slots"), interleaved by worker index so heterogeneous
//     platforms split evenly (worker i goes to slot i mod S);
//   - whenever a slot is idle and the queue is non-empty, the scheduler
//     picks the next job; the job's load is split across the slot's
//     workers by the OPTIMAL single-round nonlinear allocation matched to
//     the communication model (dlt::nonlinear_one_port_single_round under
//     one-port, dlt::nonlinear_parallel_single_round otherwise), and the
//     resulting schedule is replayed by sim::Engine under the configured
//     CommModel — the per-job finish time is timestamped via the engine's
//     ChunkCompletionHook;
//   - simultaneous events resolve deterministically: completions first,
//     then arrivals, then dispatches in ascending slot index. The whole
//     simulation consumes no RNG, so a run is a pure function of the job
//     stream — bit-identical wherever it executes (the property
//     bench_online's serial-vs-parallel self-check rides on).
//
// Master modes: under kPrivatePort (the historical model) each slot
// replays its jobs through its own engine run, so the master's
// port/capacity constraint applies per slot, not across concurrent slots
// (a partitioned master — every slot effectively gets a private port).
// Under kSharedMaster one engine run per busy period multiplexes the
// chunks of every concurrent job using time-released chunks
// (sim::ChunkAssignment::release): each job's chunks are released at its
// dispatch instant and contend with every other in-flight job's
// transfers under the ONE configured CommModel — with a
// BoundedMultiportModel capacity this is honest cross-slot bandwidth
// contention on a genuinely shared master. A busy period with a single
// job reproduces the private-port replay bit for bit (chunk times are
// kept period-relative), so exclusive schedulers are unchanged and
// fair-share only diverges where contention is real.
#pragma once

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "online/job.hpp"
#include "online/scheduler.hpp"
#include "platform/platform.hpp"
#include "sim/comm_model.hpp"
#include "sim/engine.hpp"
#include "sim/multiplex.hpp"

namespace nldl::obs {
class MetricsRegistry;
}  // namespace nldl::obs

namespace nldl::online {

/// How concurrent slots reach the master (see the file comment).
enum class MasterMode {
  kPrivatePort,   ///< per-slot engine runs: a partitioned master
  kSharedMaster,  ///< one engine run per busy period: honest contention
};

[[nodiscard]] std::string to_string(MasterMode mode);

struct ServerOptions {
  sim::CommModelKind comm = sim::CommModelKind::kParallelLinks;
  /// Master capacity / concurrency (consulted for kBoundedMultiport).
  double capacity = std::numeric_limits<double>::infinity();
  std::size_t max_concurrent = sim::BoundedMultiportModel::kUnlimited;
  /// Whether concurrent slots contend for the master's bandwidth.
  MasterMode master = MasterMode::kPrivatePort;
  /// Also simulate every job alone on the full platform to fill
  /// JobStats::isolated_makespan (the slowdown baseline). Costs one extra
  /// engine run per job.
  bool record_isolated = true;
  /// Shared-master busy periods resume each replay from a checkpoint of
  /// the settled prefix (sim::SharedMasterOptions::incremental) instead
  /// of re-simulating the whole period. Bit-identical results; off only
  /// buys the O(period²) reference behavior.
  bool incremental_replay = true;
  /// Optional trace sink (obs/trace.hpp, non-owning, must outlive the
  /// server's run). When set, the served timeline is emitted as typed
  /// events on the simulated clock: chunk transfer/compute spans with
  /// job/tenant/worker/alpha attribution, dispatch instants, whole-job
  /// spans, and (shared-master mode) the replay machinery's bookkeeping.
  /// The isolated-baseline runs (record_isolated) stay untraced — they
  /// are counterfactuals, not the served timeline. Tracing never changes
  /// results: JobStats are bit-identical with or without a sink.
  obs::TraceSink* trace = nullptr;
};

class Server {
 public:
  explicit Server(const platform::Platform& platform,
                  ServerOptions options = {});

  [[nodiscard]] const platform::Platform& platform() const noexcept {
    return platform_;
  }
  [[nodiscard]] const ServerOptions& options() const noexcept {
    return options_;
  }

  /// Simulate the open system to completion (every job served, however
  /// far past the last arrival that takes). `jobs` must be in
  /// non-decreasing arrival order with ids 0..n-1 — the shape every
  /// ArrivalProcess produces. Returns one JobStats per job, in id order.
  /// `metrics`, when non-null, accumulates shared-master replay cost as
  /// counters (replay.engine_events / replay.replays /
  /// replay.busy_periods; untouched under kPrivatePort) — the soak
  /// bench's events/sec.
  [[nodiscard]] std::vector<JobStats> run(
      const std::vector<Job>& jobs, const Scheduler& scheduler,
      obs::MetricsRegistry* metrics = nullptr) const;

 private:
  /// Service time of `job` run alone on `slot_platform`; also reports the
  /// total compute busy time across the slot's workers. When
  /// `trace_workers` is non-null and the server has a sink, the replay's
  /// spans are emitted at `trace_offset` with slot-local workers mapped
  /// to platform indices through it (null = untraced, the baseline runs).
  [[nodiscard]] double simulate_service(
      const platform::Platform& slot_platform, const Job& job,
      double* compute_time,
      const std::vector<std::size_t>* trace_workers = nullptr,
      double trace_offset = 0.0) const;

  /// The job's optimal single-round allocation on `slot_platform`
  /// (matched to the configured comm model), as an engine schedule.
  [[nodiscard]] std::vector<sim::ChunkAssignment> job_schedule(
      const platform::Platform& slot_platform, const Job& job) const;

  /// kArrival instant when tracing: the job joined the wait queue with
  /// `ahead` jobs in front of it (the queue-position cause of its wait).
  void emit_arrival(const Job& job, std::size_t ahead) const;

  /// The two event loops behind run(); `slot_platforms` are the carved
  /// partitions, `slot_workers[s][j]` the global index of slot s's j-th
  /// worker. Both fill `stats` in place.
  void run_private(const std::vector<Job>& jobs, const Scheduler& scheduler,
                   const std::vector<platform::Platform>& slot_platforms,
                   const std::vector<std::vector<std::size_t>>& slot_workers,
                   std::vector<JobStats>& stats) const;
  void run_shared(const std::vector<Job>& jobs, const Scheduler& scheduler,
                  const std::vector<platform::Platform>& slot_platforms,
                  const std::vector<std::vector<std::size_t>>& slot_workers,
                  std::vector<JobStats>& stats,
                  obs::MetricsRegistry* metrics) const;

  const platform::Platform& platform_;
  ServerOptions options_;
  std::unique_ptr<sim::CommModel> model_;
};

}  // namespace nldl::online
