#include "online/server.hpp"

#include <algorithm>
#include <limits>

#include "dlt/nonlinear_dlt.hpp"
#include "sim/engine.hpp"
#include "util/assert.hpp"

namespace nldl::online {

Server::Server(const platform::Platform& platform, ServerOptions options)
    : platform_(platform),
      options_(options),
      model_(sim::make_comm_model(options.comm, options.capacity,
                                  options.max_concurrent)) {}

double Server::simulate_service(const platform::Platform& slot_platform,
                                const Job& job, double* compute_time) const {
  const auto allocation =
      options_.comm == sim::CommModelKind::kOnePort
          ? dlt::nonlinear_one_port_single_round(slot_platform, job.load,
                                                 job.alpha)
          : dlt::nonlinear_parallel_single_round(slot_platform, job.load,
                                                 job.alpha);
  const sim::Engine engine(slot_platform, {job.alpha});
  double finish = 0.0;
  double busy = 0.0;
  const sim::SimResult result = engine.run(
      allocation.to_schedule(), *model_,
      [&](std::size_t, const sim::ChunkSpan& span) {
        finish = std::max(finish, span.compute_end);
        busy += span.compute_end - span.compute_start;
      });
  NLDL_ASSERT(finish == result.makespan,
              "completion hook disagrees with the simulated makespan");
  if (compute_time != nullptr) *compute_time = busy;
  return finish;
}

std::vector<JobStats> Server::run(const std::vector<Job>& jobs,
                                  const Scheduler& scheduler) const {
  const std::size_t p = platform_.size();
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    NLDL_REQUIRE(jobs[i].id == i, "job ids must be 0..n-1 in order");
    NLDL_REQUIRE(jobs[i].arrival >= 0.0, "job arrivals must be >= 0");
    NLDL_REQUIRE(i == 0 || jobs[i].arrival >= jobs[i - 1].arrival,
                 "jobs must be sorted by arrival time");
    NLDL_REQUIRE(jobs[i].load > 0.0, "job loads must be positive");
    NLDL_REQUIRE(jobs[i].alpha >= 1.0, "job alphas must be >= 1");
  }

  // Carve the platform into the scheduler's slots, interleaving by worker
  // index so a sorted or two-class platform splits evenly.
  const std::size_t slots = std::clamp<std::size_t>(scheduler.shares(), 1, p);
  std::vector<platform::Platform> slot_platforms;
  slot_platforms.reserve(slots);
  for (std::size_t s = 0; s < slots; ++s) {
    std::vector<platform::Processor> workers;
    for (std::size_t i = s; i < p; i += slots) {
      workers.push_back(platform_.worker(i));
    }
    slot_platforms.emplace_back(std::move(workers));
  }

  std::vector<JobStats> stats(jobs.size());
  if (options_.record_isolated) {
    for (const Job& job : jobs) {
      stats[job.id].isolated_makespan =
          simulate_service(platform_, job, nullptr);
    }
  }

  constexpr double kNever = std::numeric_limits<double>::infinity();
  std::vector<double> slot_busy_until(slots, -kNever);  // idle when <= now
  std::vector<Job> queue;  // waiting jobs, in arrival order
  std::size_t next_arrival = 0;
  double now = 0.0;

  while (true) {
    // Admit every job that has arrived by `now` (queue stays in arrival
    // order because `jobs` is sorted).
    while (next_arrival < jobs.size() &&
           jobs[next_arrival].arrival <= now) {
      queue.push_back(jobs[next_arrival++]);
    }

    // Fill idle slots in ascending slot order.
    for (std::size_t s = 0; s < slots && !queue.empty(); ++s) {
      if (slot_busy_until[s] > now) continue;
      const std::size_t k = scheduler.pick(queue, slot_platforms[s]);
      NLDL_ASSERT(k < queue.size(), "scheduler picked outside the queue");
      const Job job = queue[k];
      queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(k));

      JobStats& record = stats[job.id];
      record.job = job;
      record.dispatch = now;
      record.slot = s;
      record.workers = slot_platforms[s].size();
      const double service =
          simulate_service(slot_platforms[s], job, &record.compute_time);
      record.finish = now + service;
      slot_busy_until[s] = record.finish;
    }

    // Advance to the next event: the earliest busy-slot completion or the
    // next arrival, whichever comes first (completions before arrivals at
    // ties, so freed slots see the tying arrival in the same round).
    double next_event = kNever;
    for (const double until : slot_busy_until) {
      if (until > now) next_event = std::min(next_event, until);
    }
    if (next_arrival < jobs.size()) {
      next_event = std::min(next_event, jobs[next_arrival].arrival);
    }
    if (next_event == kNever) break;  // no work left anywhere
    now = next_event;
  }

  NLDL_ASSERT(queue.empty() && next_arrival == jobs.size(),
              "online server stopped with unserved jobs");
  return stats;
}

}  // namespace nldl::online
