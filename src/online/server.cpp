#include "online/server.hpp"

#include <algorithm>
#include <limits>

#include "dlt/nonlinear_dlt.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "sim/multiplex.hpp"
#include "util/assert.hpp"

namespace nldl::online {

namespace {
constexpr double kNever = std::numeric_limits<double>::infinity();
constexpr std::size_t kNoJob = static_cast<std::size_t>(-1);
}  // namespace

void Server::emit_arrival(const Job& job, std::size_t ahead) const {
  if (options_.trace == nullptr) return;
  obs::TraceEvent event;
  event.kind = obs::EventKind::kArrival;
  event.start = job.arrival;
  event.end = job.arrival;
  event.job = job.id;
  event.tenant = job.tenant;
  event.size = job.load;
  event.alpha = job.alpha;
  event.value = static_cast<double>(ahead);
  options_.trace->record(event);
}

std::string to_string(MasterMode mode) {
  switch (mode) {
    case MasterMode::kPrivatePort:
      return "private-port";
    case MasterMode::kSharedMaster:
      return "shared-master";
  }
  NLDL_ASSERT(false, "unknown MasterMode");
}

Server::Server(const platform::Platform& platform, ServerOptions options)
    : platform_(platform),
      options_(options),
      model_(sim::make_comm_model(options.comm, options.capacity,
                                  options.max_concurrent)) {}

std::vector<sim::ChunkAssignment> Server::job_schedule(
    const platform::Platform& slot_platform, const Job& job) const {
  return dlt::nonlinear_single_round_for(options_.comm, slot_platform,
                                         job.load, job.alpha)
      .to_schedule();
}

double Server::simulate_service(const platform::Platform& slot_platform,
                                const Job& job, double* compute_time,
                                const std::vector<std::size_t>* trace_workers,
                                double trace_offset) const {
  const sim::Engine engine(slot_platform, {job.alpha});
  sim::EngineRun run(engine, *model_);
  obs::TraceSink* sink = trace_workers != nullptr ? options_.trace : nullptr;
  if (sink != nullptr) run.set_trace(sink, trace_offset);
  double finish = 0.0;
  double busy = 0.0;
  const auto hook = [&](std::size_t, const sim::ChunkSpan& span) {
    finish = std::max(finish, span.compute_end);
    busy += span.compute_end - span.compute_start;
    if (sink != nullptr) {
      // Private-port replays run on the slot's carved platform: remap the
      // slot-local worker to its platform index so the trace's worker
      // tracks line up with the shared-master mode's.
      obs::TraceEvent event;
      event.worker = (*trace_workers)[span.worker];
      event.job = job.id;
      event.tenant = job.tenant;
      event.size = span.size;
      event.alpha = job.alpha;
      event.kind = obs::EventKind::kTransfer;
      event.start = trace_offset + span.comm_start;
      event.end = trace_offset + span.comm_end;
      sink->record(event);
      event.kind = obs::EventKind::kCompute;
      event.start = trace_offset + span.compute_start;
      event.end = trace_offset + span.compute_end;
      sink->record(event);
    }
  };
  for (const sim::ChunkAssignment& chunk : job_schedule(slot_platform, job)) {
    (void)run.append(chunk);
  }
  run.drain(sim::ChunkCompletionRef(hook));
  NLDL_ASSERT(finish == run.makespan(),
              "completion hook disagrees with the simulated makespan");
  if (compute_time != nullptr) *compute_time = busy;
  return finish;
}

std::vector<JobStats> Server::run(const std::vector<Job>& jobs,
                                  const Scheduler& scheduler,
                                  obs::MetricsRegistry* metrics) const {
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    NLDL_REQUIRE(jobs[i].id == i, "job ids must be 0..n-1 in order");
    NLDL_REQUIRE(jobs[i].arrival >= 0.0, "job arrivals must be >= 0");
    NLDL_REQUIRE(i == 0 || jobs[i].arrival >= jobs[i - 1].arrival,
                 "jobs must be sorted by arrival time");
    NLDL_REQUIRE(jobs[i].load > 0.0, "job loads must be positive");
    NLDL_REQUIRE(jobs[i].alpha >= 1.0, "job alphas must be >= 1");
  }

  // Carve the platform into the scheduler's slots (interleaved so a
  // sorted or two-class platform splits evenly); the carve also maps
  // slot-local worker indices back to the platform for the shared-master
  // mode.
  platform::Platform::Partition carve =
      platform_.interleaved_partition(scheduler.shares());
  const std::vector<platform::Platform>& slot_platforms = carve.subsets;
  const std::vector<std::vector<std::size_t>>& slot_workers = carve.workers;

  // Pre-register the replay counters so a snapshot has them (at zero) even
  // for modes/streams that never open a shared busy period.
  if (metrics != nullptr) {
    (void)metrics->counter("replay.engine_events");
    (void)metrics->counter("replay.replays");
    (void)metrics->counter("replay.busy_periods");
  }

  std::vector<JobStats> stats(jobs.size());
  if (options_.record_isolated) {
    for (const Job& job : jobs) {
      stats[job.id].isolated_makespan =
          simulate_service(platform_, job, nullptr);
    }
  }

  if (options_.master == MasterMode::kSharedMaster) {
    run_shared(jobs, scheduler, slot_platforms, slot_workers, stats, metrics);
  } else {
    run_private(jobs, scheduler, slot_platforms, slot_workers, stats);
  }

  // One kJob span per served job, in id order — the per-job track of the
  // exported timeline (span emission for chunks happened inside the mode
  // loops, where worker attribution lives).
  if (options_.trace != nullptr) {
    for (const JobStats& record : stats) {
      obs::TraceEvent event;
      event.kind = obs::EventKind::kJob;
      event.start = record.dispatch;
      event.end = record.finish;
      event.job = record.job.id;
      event.tenant = record.job.tenant;
      event.size = record.job.load;
      event.alpha = record.job.alpha;
      event.value = record.compute_time;
      options_.trace->record(event);
    }
  }
  return stats;
}

void Server::run_private(
    const std::vector<Job>& jobs, const Scheduler& scheduler,
    const std::vector<platform::Platform>& slot_platforms,
    const std::vector<std::vector<std::size_t>>& slot_workers,
    std::vector<JobStats>& stats) const {
  const std::size_t slots = slot_platforms.size();
  std::vector<double> slot_busy_until(slots, -kNever);  // idle when <= now
  std::vector<Job> queue;  // waiting jobs, in arrival order
  std::size_t next_arrival = 0;
  double now = 0.0;

  while (true) {
    // Admit every job that has arrived by `now` (queue stays in arrival
    // order because `jobs` is sorted).
    while (next_arrival < jobs.size() &&
           jobs[next_arrival].arrival <= now) {
      emit_arrival(jobs[next_arrival], queue.size());
      queue.push_back(jobs[next_arrival++]);
    }

    // Fill idle slots in ascending slot order.
    for (std::size_t s = 0; s < slots && !queue.empty(); ++s) {
      if (slot_busy_until[s] > now) continue;
      const std::size_t k = scheduler.pick(queue, slot_platforms[s]);
      NLDL_ASSERT(k < queue.size(), "scheduler picked outside the queue");
      const Job job = queue[k];
      queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(k));

      JobStats& record = stats[job.id];
      record.job = job;
      record.dispatch = now;
      record.slot = s;
      record.workers = slot_platforms[s].size();
      if (options_.trace != nullptr) {
        obs::TraceEvent event;
        event.kind = obs::EventKind::kDispatch;
        event.start = now;
        event.end = now;
        event.job = job.id;
        event.tenant = job.tenant;
        event.alpha = job.alpha;
        event.value = static_cast<double>(record.workers);
        options_.trace->record(event);
      }
      const double service =
          simulate_service(slot_platforms[s], job, &record.compute_time,
                           &slot_workers[s], now);
      record.finish = now + service;
      slot_busy_until[s] = record.finish;
    }

    // Advance to the next event: the earliest busy-slot completion or the
    // next arrival, whichever comes first (completions before arrivals at
    // ties, so freed slots see the tying arrival in the same round).
    double next_event = kNever;
    for (const double until : slot_busy_until) {
      if (until > now) next_event = std::min(next_event, until);
    }
    if (next_arrival < jobs.size()) {
      next_event = std::min(next_event, jobs[next_arrival].arrival);
    }
    if (next_event == kNever) break;  // no work left anywhere  // nldl-lint: allow(double-eq): kNever sentinel compare
    now = next_event;
  }

  NLDL_ASSERT(queue.empty() && next_arrival == jobs.size(),
              "online server stopped with unserved jobs");
}

void Server::run_shared(
    const std::vector<Job>& jobs, const Scheduler& scheduler,
    const std::vector<platform::Platform>& slot_platforms,
    const std::vector<std::vector<std::size_t>>& slot_workers,
    std::vector<JobStats>& stats, obs::MetricsRegistry* metrics) const {
  const std::size_t slots = slot_platforms.size();
  std::vector<double> slot_busy_until(slots, -kNever);
  std::vector<std::size_t> slot_owner(slots, kNoJob);
  std::vector<Job> queue;
  std::size_t next_arrival = 0;
  double now = 0.0;

  // One sim::SharedMasterPeriod per busy period multiplexes every slot's
  // chunks through a single engine run under the one configured model
  // (see sim/multiplex.hpp for the period-relative clock and the
  // finishes-only-move-later invariant the event loop rides on). Each
  // job is one period owner.
  const sim::Engine engine(platform_, {});
  sim::SharedMasterPeriod period(engine, *model_,
                                 {options_.incremental_replay});
  if (options_.trace != nullptr) period.set_trace(options_.trace);
  std::vector<std::size_t> owner_job;  // job id per period owner

  // An owner's record only becomes final when its busy period drains, so
  // per-job finish/compute land in `stats` once per period (amortized
  // O(1) per job) instead of re-writing every owner after every replay
  // (O(period) per dispatch — the same quadratic the incremental replay
  // removes). Finish estimates only move later and the last replay of a
  // period simulates its complete schedule, so the flushed values are
  // exactly the per-replay values the historical loop wrote last.
  const auto flush_period = [&]() {
    for (std::size_t owner = 0; owner < owner_job.size(); ++owner) {
      JobStats& record = stats[owner_job[owner]];
      record.finish = period.finish(owner);
      record.compute_time = period.busy(owner);
    }
    if (metrics != nullptr) ++metrics->counter("replay.busy_periods");
    period.clear();
    owner_job.clear();
    std::fill(slot_owner.begin(), slot_owner.end(), kNoJob);
  };

  while (true) {
    while (next_arrival < jobs.size() &&
           jobs[next_arrival].arrival <= now) {
      emit_arrival(jobs[next_arrival], queue.size());
      queue.push_back(jobs[next_arrival++]);
    }

    // The platform drained: every record of the period is final, so the
    // accumulated schedule can be flushed. The next dispatch re-anchors
    // the period clock at its own instant.
    bool any_busy = false;
    for (const double until : slot_busy_until) {
      if (until > now) any_busy = true;
    }
    if (!any_busy && !period.empty()) flush_period();

    // Fill idle slots in ascending slot order. One replay after the fill
    // pass refreshes every estimate: the pass itself only reads
    // slot_busy_until of slots it has not dispatched to, and those
    // cannot flip busy (a settled finish <= now is unaffected by chunks
    // released at now).
    bool dispatched = false;
    for (std::size_t s = 0; s < slots && !queue.empty(); ++s) {
      if (slot_busy_until[s] > now) continue;
      const std::size_t k = scheduler.pick(queue, slot_platforms[s]);
      NLDL_ASSERT(k < queue.size(), "scheduler picked outside the queue");
      const Job job = queue[k];
      queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(k));

      JobStats& record = stats[job.id];
      record.job = job;
      record.dispatch = now;
      record.slot = s;
      record.workers = slot_platforms[s].size();

      slot_owner[s] = period.dispatch(now, job.alpha,
                                      job_schedule(slot_platforms[s], job),
                                      slot_workers[s], job.id, job.tenant);
      owner_job.push_back(job.id);
      dispatched = true;
    }
    if (dispatched) {
      period.replay();
      // Only the active slots' finish estimates drive the event loop;
      // per-job records wait for the period flush.
      for (std::size_t s = 0; s < slots; ++s) {
        if (slot_owner[s] != kNoJob) {
          slot_busy_until[s] = period.finish(slot_owner[s]);
        }
      }
    }

    double next_event = kNever;
    for (const double until : slot_busy_until) {
      if (until > now) next_event = std::min(next_event, until);
    }
    if (next_arrival < jobs.size()) {
      next_event = std::min(next_event, jobs[next_arrival].arrival);
    }
    if (next_event == kNever) break;  // nldl-lint: allow(double-eq): kNever sentinel compare
    now = next_event;
  }

  // The loop exits with every slot idle; the final busy period has not
  // seen the drain branch yet, so flush it here.
  if (metrics != nullptr) {
    metrics->counter("replay.engine_events") += period.events();
    metrics->counter("replay.replays") += period.replays();
  }
  if (!period.empty()) flush_period();

  NLDL_ASSERT(queue.empty() && next_arrival == jobs.size(),
              "online server stopped with unserved jobs");
}

}  // namespace nldl::online
