#include "online/arrivals.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>

#include "util/assert.hpp"

namespace nldl::online {

void JobMix::validate() const {
  NLDL_REQUIRE(load_lo > 0.0, "job loads must be positive");
  NLDL_REQUIRE(load_lo <= load_hi, "JobMix requires load_lo <= load_hi");
  NLDL_REQUIRE(std::isfinite(load_hi), "JobMix requires a finite load_hi");
  if (load_dist == LoadDistribution::kPareto) {
    NLDL_REQUIRE(pareto_shape > 0.0,
                 "JobMix requires a positive Pareto shape");
  }
  NLDL_REQUIRE(!alphas.empty(), "JobMix requires at least one alpha class");
  NLDL_REQUIRE(alphas.size() == alpha_weights.size(),
               "JobMix requires one weight per alpha class");
  double total = 0.0;
  for (const double alpha : alphas) {
    NLDL_REQUIRE(alpha >= 1.0, "JobMix alphas must be >= 1");
  }
  for (const double weight : alpha_weights) {
    NLDL_REQUIRE(weight >= 0.0, "JobMix weights must be >= 0");
    total += weight;
  }
  NLDL_REQUIRE(total > 0.0, "JobMix weights must not all be zero");
}

double JobMix::mean_load() const {
  if (load_dist == LoadDistribution::kUniform || load_lo == load_hi) {
    return 0.5 * (load_lo + load_hi);
  }
  // Mean of min(X, load_hi) with X ~ Pareto(load_lo, a):
  //   ∫_lo^hi x·a·lo^a·x^(−a−1) dx + hi·P(X > hi).
  const double a = pareto_shape;
  const double lo = load_lo;
  const double hi = load_hi;
  const double tail = std::pow(lo / hi, a);  // P(X > hi)
  const double body =
      a == 1.0 ? lo * std::log(hi / lo)  // nldl-lint: allow(double-eq): exact exponent switch between closed forms at a == 1
               : (a / (a - 1.0)) * std::pow(lo, a) *
                     (std::pow(lo, 1.0 - a) - std::pow(hi, 1.0 - a));
  return body + hi * tail;
}

Job JobMix::sample(std::size_t id, double arrival, util::Rng& rng) const {
  Job job;
  job.id = id;
  job.arrival = arrival;
  if (load_lo == load_hi) {
    job.load = load_lo;
  } else if (load_dist == LoadDistribution::kPareto) {
    job.load = std::min(rng.pareto(load_lo, pareto_shape), load_hi);
  } else {
    job.load = rng.uniform(load_lo, load_hi);
  }
  double total = 0.0;
  for (const double weight : alpha_weights) total += weight;
  double draw = rng.uniform() * total;
  job.alpha = alphas.back();
  for (std::size_t k = 0; k < alphas.size(); ++k) {
    draw -= alpha_weights[k];
    if (draw < 0.0) {
      job.alpha = alphas[k];
      break;
    }
  }
  return job;
}

namespace {

void require_horizon(double horizon) {
  NLDL_REQUIRE(horizon > 0.0, "arrival horizon must be positive");
}

}  // namespace

DeterministicArrivals::DeterministicArrivals(double period, JobMix mix)
    : period_(period), mix_(std::move(mix)) {
  NLDL_REQUIRE(period > 0.0, "arrival period must be positive");
  mix_.validate();
}

std::vector<Job> DeterministicArrivals::generate(double horizon,
                                                 util::Rng& rng) const {
  require_horizon(horizon);
  util::Rng size_rng = rng.split();
  std::vector<Job> jobs;
  // t = i * period, not an accumulating sum: repeated += drifts and can
  // round the horizon tick itself to just below the horizon.
  for (std::size_t i = 0;; ++i) {
    const double t = static_cast<double>(i) * period_;
    if (t >= horizon) break;
    jobs.push_back(mix_.sample(i, t, size_rng));
  }
  return jobs;
}

PoissonArrivals::PoissonArrivals(double rate, JobMix mix)
    : rate_(rate), mix_(std::move(mix)) {
  NLDL_REQUIRE(rate > 0.0, "arrival rate must be positive");
  mix_.validate();
}

std::vector<Job> PoissonArrivals::generate(double horizon,
                                           util::Rng& rng) const {
  require_horizon(horizon);
  util::Rng arrival_rng = rng.split();
  util::Rng size_rng = rng.split();
  std::vector<Job> jobs;
  double t = arrival_rng.exponential(rate_);
  while (t < horizon) {
    jobs.push_back(mix_.sample(jobs.size(), t, size_rng));
    t += arrival_rng.exponential(rate_);
  }
  return jobs;
}

MmppArrivals::MmppArrivals(double rate_low, double rate_high,
                           double dwell_low, double dwell_high, JobMix mix)
    : rate_low_(rate_low),
      rate_high_(rate_high),
      dwell_low_(dwell_low),
      dwell_high_(dwell_high),
      mix_(std::move(mix)) {
  NLDL_REQUIRE(rate_low > 0.0 && rate_high > 0.0,
               "MMPP rates must be positive");
  NLDL_REQUIRE(dwell_low > 0.0 && dwell_high > 0.0,
               "MMPP dwell times must be positive");
  mix_.validate();
}

std::vector<Job> MmppArrivals::generate(double horizon,
                                        util::Rng& rng) const {
  require_horizon(horizon);
  util::Rng arrival_rng = rng.split();
  util::Rng size_rng = rng.split();
  std::vector<Job> jobs;
  bool burst = false;
  double t = 0.0;
  double next_switch = arrival_rng.exponential(1.0 / dwell_low_);
  while (t < horizon) {
    const double rate = burst ? rate_high_ : rate_low_;
    const double candidate = t + arrival_rng.exponential(rate);
    if (candidate < next_switch) {
      // Arrival before the next state switch.
      t = candidate;
      if (t >= horizon) break;
      jobs.push_back(mix_.sample(jobs.size(), t, size_rng));
    } else {
      // State switch first; the Poisson clock is memoryless, so the
      // discarded candidate does not bias the new state's stream.
      t = next_switch;
      burst = !burst;
      next_switch =
          t + arrival_rng.exponential(1.0 / (burst ? dwell_high_
                                                   : dwell_low_));
    }
  }
  return jobs;
}

TraceArrivals::TraceArrivals(std::vector<Job> trace)
    : trace_(std::move(trace)) {
  std::stable_sort(trace_.begin(), trace_.end(),
                   [](const Job& a, const Job& b) {
                     return a.arrival < b.arrival;
                   });
  for (std::size_t i = 0; i < trace_.size(); ++i) {
    NLDL_REQUIRE(trace_[i].arrival >= 0.0,
                 "trace arrival times must be >= 0");
    NLDL_REQUIRE(trace_[i].load > 0.0, "trace job loads must be positive");
    NLDL_REQUIRE(trace_[i].alpha >= 1.0, "trace job alphas must be >= 1");
    trace_[i].id = i;
  }
}

namespace {

double parse_trace_number(const std::string& token, const std::string& path) {
  double value = 0.0;
  const auto result =
      std::from_chars(token.data(), token.data() + token.size(), value);
  NLDL_REQUIRE(result.ec == std::errc{} &&
                   result.ptr == token.data() + token.size(),
               "malformed number in trace file: " + path);
  return value;
}

}  // namespace

TraceArrivals TraceArrivals::from_file(const std::string& path) {
  std::ifstream in(path);
  NLDL_REQUIRE(in.good(), "cannot open trace file: " + path);
  std::vector<Job> jobs;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream tokens(line);
    std::vector<std::string> fields;
    std::string token;
    while (tokens >> token) fields.push_back(token);
    if (fields.empty() || fields.front().front() == '#') continue;
    NLDL_REQUIRE(fields.size() == 3,
                 "trace rows must be 'arrival load alpha': " + path);
    Job job;
    job.arrival = parse_trace_number(fields[0], path);
    job.load = parse_trace_number(fields[1], path);
    job.alpha = parse_trace_number(fields[2], path);
    jobs.push_back(job);
  }
  return TraceArrivals(std::move(jobs));
}

std::vector<Job> TraceArrivals::generate(double horizon,
                                         util::Rng& rng) const {
  require_horizon(horizon);
  (void)rng;  // replay is deterministic by definition
  std::vector<Job> jobs;
  for (const Job& job : trace_) {
    if (job.arrival >= horizon) break;
    jobs.push_back(job);
  }
  return jobs;
}

}  // namespace nldl::online
