// Arrival processes for the online subsystem: how job streams are born.
//
// Four generators, spanning the traffic shapes the queueing literature
// cares about: deterministic (fixed period), Poisson (memoryless),
// bursty MMPP (two-state Markov-modulated Poisson — heavy bursts between
// quiet stretches), and trace replay (explicit arrival/load/alpha rows,
// e.g. recorded from production).
//
// Determinism contract: generate() consumes only the util::Rng it is
// handed, splitting it into an arrival-time sub-stream and a job-size
// sub-stream first — so the arrival point process and the size marks
// cannot perturb each other, and a stream driven from a util::Sweep
// point's pre-split RNG is bit-identical for any thread count.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "online/job.hpp"
#include "util/rng.hpp"

namespace nldl::online {

/// How job sizes (load units) are drawn.
enum class LoadDistribution {
  kUniform,  ///< uniform in [load_lo, load_hi]
  /// Pareto(scale = load_lo, shape = pareto_shape) truncated at load_hi —
  /// the heavy-tailed regime where a few giant jobs dominate the load and
  /// size-aware preemption (SRPT) classically earns its keep.
  kPareto,
};

/// How job sizes (load units) and cost exponents are drawn: loads follow
/// `load_dist` over [load_lo, load_hi]; alpha is picked from `alphas`
/// with probability proportional to `alpha_weights`. Defaults to a single
/// linear class of mid-sized uniform jobs.
struct JobMix {
  double load_lo = 50.0;
  double load_hi = 150.0;
  LoadDistribution load_dist = LoadDistribution::kUniform;
  /// Pareto tail exponent (only read under kPareto); shape <= 1 has an
  /// infinite untruncated mean, so keep it > 1 unless load_hi clamps.
  double pareto_shape = 1.5;
  std::vector<double> alphas{1.0};
  std::vector<double> alpha_weights{1.0};

  void validate() const;

  /// Expected load per job under the configured distribution (the
  /// truncated-Pareto closed form under kPareto) — the quantity the
  /// drivers use to map a load factor to an arrival rate.
  [[nodiscard]] double mean_load() const;

  /// Draw one job (load then alpha, two rng consumptions).
  [[nodiscard]] Job sample(std::size_t id, double arrival,
                           util::Rng& rng) const;
};

/// Abstract generator of job streams.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Jobs with arrival times in [0, horizon), ids 0..n-1 in
  /// non-decreasing arrival order. See the file comment for the RNG
  /// splitting contract.
  [[nodiscard]] virtual std::vector<Job> generate(double horizon,
                                                  util::Rng& rng) const = 0;
};

/// One arrival every `period` time units, starting at t = 0.
class DeterministicArrivals final : public ArrivalProcess {
 public:
  DeterministicArrivals(double period, JobMix mix);

  [[nodiscard]] std::string name() const override { return "deterministic"; }
  [[nodiscard]] std::vector<Job> generate(double horizon,
                                          util::Rng& rng) const override;

 private:
  double period_;
  JobMix mix_;
};

/// Poisson process: i.i.d. exponential inter-arrival times at `rate`.
class PoissonArrivals final : public ArrivalProcess {
 public:
  PoissonArrivals(double rate, JobMix mix);

  [[nodiscard]] std::string name() const override { return "poisson"; }
  [[nodiscard]] std::vector<Job> generate(double horizon,
                                          util::Rng& rng) const override;

 private:
  double rate_;
  JobMix mix_;
};

/// Two-state Markov-modulated Poisson process: the stream alternates
/// between a quiet state (rate_low) and a burst state (rate_high), with
/// exponentially distributed dwell times. Starts in the quiet state.
class MmppArrivals final : public ArrivalProcess {
 public:
  MmppArrivals(double rate_low, double rate_high, double dwell_low,
               double dwell_high, JobMix mix);

  [[nodiscard]] std::string name() const override { return "mmpp"; }
  [[nodiscard]] std::vector<Job> generate(double horizon,
                                          util::Rng& rng) const override;

 private:
  double rate_low_;
  double rate_high_;
  double dwell_low_;
  double dwell_high_;
  JobMix mix_;
};

/// Replay of an explicit job list (ignores the RNG). The trace is sorted
/// by arrival and re-numbered on construction; generate() keeps the jobs
/// arriving before the horizon.
class TraceArrivals final : public ArrivalProcess {
 public:
  explicit TraceArrivals(std::vector<Job> trace);

  /// Parse a whitespace-separated text trace: one `arrival load alpha`
  /// row per line; blank lines and lines starting with '#' are skipped.
  /// Numbers are parsed locale-independently (std::from_chars).
  [[nodiscard]] static TraceArrivals from_file(const std::string& path);

  [[nodiscard]] std::string name() const override { return "trace"; }
  [[nodiscard]] std::vector<Job> generate(double horizon,
                                          util::Rng& rng) const override;

  [[nodiscard]] const std::vector<Job>& trace() const noexcept {
    return trace_;
  }

 private:
  std::vector<Job> trace_;
};

}  // namespace nldl::online
