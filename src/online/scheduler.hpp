// Pluggable multi-load queue policies for the online server.
//
// A Scheduler makes two decisions: how many disjoint processor partitions
// ("slots") the server should carve the platform into, and — whenever a
// slot frees up — which queued job starts next on it. Three policies ship:
//
//   FcfsScheduler        one slot (the whole platform), jobs in arrival
//                        order: the exclusive baseline.
//   FairShareScheduler   k slots (processor-partitioning fair share): up
//                        to k jobs run concurrently, each on a 1/k slice
//                        of the platform, still FCFS within the queue.
//                        Whether those k concurrent jobs also share the
//                        MASTER's bandwidth is the server's
//                        MasterMode (online/server.hpp): private ports
//                        flatter fair share, kSharedMaster charges the
//                        real contention bill (bench_contention).
//   SpmfScheduler        one slot, shortest-PREDICTED-makespan first: the
//                        priority is the nonlinear optimal makespan of
//                        dlt::nonlinear_parallel_single_round, not the raw
//                        load. With alpha > 1 jobs in the mix this
//                        matters: compute cost is superlinear in size, so
//                        a small quadratic job can out-cost a much larger
//                        linear one, and the classical smallest-size-first
//                        rule mis-ranks exactly where the paper's no-free-
//                        lunch effect bites (tests/test_analysis.cpp pins
//                        the ranking flip).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "online/arrivals.hpp"
#include "online/job.hpp"
#include "platform/platform.hpp"
#include "sim/comm_model.hpp"

namespace nldl::online {

/// Predicted makespan of `job` run alone on `platform`: the common finish
/// time of the optimal single-round nonlinear allocation MATCHED to the
/// communication model — one-port optimality conditions under kOnePort,
/// parallel-links otherwise (bounded multiport has no closed-form
/// allocator; parallel links is its uncapped limit). This is the SPMF
/// priority and the quantity whose predicted-vs-simulated agreement
/// test_analysis.cpp checks.
[[nodiscard]] double predicted_makespan(
    const Job& job, const platform::Platform& platform,
    sim::CommModelKind comm = sim::CommModelKind::kParallelLinks);

/// Weighted mean predicted makespan of the mix's mean-load job across its
/// alpha classes: the exclusive-service capacity reference the drivers use
/// to map a target load factor to an arrival rate (rate = load / this).
[[nodiscard]] double mean_predicted_makespan(
    const JobMix& mix, const platform::Platform& platform,
    sim::CommModelKind comm = sim::CommModelKind::kParallelLinks);

/// Memo of predicted_makespan keyed by job id — one nonlinear solver run
/// per distinct job instead of one per ranking decision.
///
/// A prediction is a pure function of (load, alpha, platform, comm), so
/// every input is stored next to the cached makespan: querying the same
/// job id with a different load/alpha (an id reused across streams) or a
/// different communication model re-solves and overwrites the entry, and
/// a change of platform (one cache reused across differently-carved
/// slots or servers) evicts everything. Stale answers are structurally
/// impossible; tests/test_online.cpp pins the eviction behavior via the
/// hit/miss counters. Not safe for concurrent use.
class PredictionCache {
 public:
  [[nodiscard]] double predict(const Job& job,
                               const platform::Platform& platform,
                               sim::CommModelKind comm);

  void clear();
  [[nodiscard]] std::size_t size() const noexcept { return cache_.size(); }
  /// Queries answered from the memo / by running the solver.
  [[nodiscard]] std::size_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::size_t misses() const noexcept { return misses_; }

 private:
  struct Entry {
    double load = 0.0;
    double alpha = 0.0;
    sim::CommModelKind comm = sim::CommModelKind::kParallelLinks;
    double makespan = 0.0;
  };

  /// Allocation-free platform fingerprint (predict() recomputes it per
  /// query, so it must stay O(p) arithmetic with no heap traffic): the
  /// worker count plus an FNV-1a digest over every worker's exact
  /// (c, w) bit pattern, so platforms that merely tie on aggregate
  /// speed/cost sums cannot collide.
  struct PlatformSignature {
    std::size_t size = 0;
    std::uint64_t digest = 0;

    bool operator==(const PlatformSignature&) const = default;
  };

  /// Ordered map (nldl-lint unordered-container rule): lookups are by
  /// exact job id so ordering is irrelevant today, but an ordered memo
  /// guarantees any future walk (eviction stats, serialization) visits
  /// entries in id order on every run.
  std::map<std::size_t, Entry> cache_;
  PlatformSignature platform_signature_;
  bool bound_ = false;  ///< platform_signature_ is meaningful
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Number of disjoint processor partitions the server should run; the
  /// server clamps it to the worker count. 1 = exclusive whole-platform
  /// service.
  [[nodiscard]] virtual std::size_t shares() const { return 1; }

  /// Index into `queue` (non-empty, in arrival order) of the job to start
  /// next on `slot_platform`.
  [[nodiscard]] virtual std::size_t pick(
      const std::vector<Job>& queue,
      const platform::Platform& slot_platform) const = 0;
};

/// FCFS on the whole platform, one job at a time.
class FcfsScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "fcfs"; }
  [[nodiscard]] std::size_t pick(
      const std::vector<Job>& queue,
      const platform::Platform& slot_platform) const override;
};

/// FCFS over `shares` disjoint processor partitions.
class FairShareScheduler final : public Scheduler {
 public:
  explicit FairShareScheduler(std::size_t shares);

  [[nodiscard]] std::string name() const override { return "fair-share"; }
  [[nodiscard]] std::size_t shares() const override { return shares_; }
  [[nodiscard]] std::size_t pick(
      const std::vector<Job>& queue,
      const platform::Platform& slot_platform) const override;

 private:
  std::size_t shares_;
};

/// Shortest-predicted-makespan first on the whole platform, with the
/// prediction matched to the communication model the server simulates
/// under (pass the same CommModelKind as ServerOptions::comm). Ties go to
/// the earliest arrival.
///
/// Predictions are memoized per job id through a PredictionCache (a job's
/// priority on a fixed slot platform never changes), so a dispatch costs
/// one solver run per NEW queued job instead of one per queued job. The
/// memo self-invalidates when the slot platform changes, so one instance
/// can be reused across servers; concurrent pick() calls on one instance
/// are not supported (construct one scheduler per sweep point, as
/// bench_online does).
class SpmfScheduler final : public Scheduler {
 public:
  explicit SpmfScheduler(
      sim::CommModelKind comm = sim::CommModelKind::kParallelLinks)
      : comm_(comm) {}

  [[nodiscard]] std::string name() const override { return "spmf"; }
  [[nodiscard]] std::size_t pick(
      const std::vector<Job>& queue,
      const platform::Platform& slot_platform) const override;

  [[nodiscard]] const PredictionCache& cache() const noexcept {
    return cache_;
  }

 private:
  sim::CommModelKind comm_;
  mutable PredictionCache cache_;
};

/// Discriminator for the built-in schedulers (bench/example sweep axis).
enum class SchedulerKind {
  kFcfs,
  kFairShare,
  kSpmf,
};

[[nodiscard]] std::string to_string(SchedulerKind kind);

/// Factory; `shares` is only consulted for kFairShare, `comm` (the
/// server's communication model, for matched predictions) only for kSpmf.
[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(
    SchedulerKind kind, std::size_t shares = 4,
    sim::CommModelKind comm = sim::CommModelKind::kParallelLinks);

}  // namespace nldl::online
