// Service metrics of an online run: latency/slowdown percentiles,
// throughput, utilization.
//
// The accumulator is streaming: means via util::RunningStats, percentiles
// via the P² estimator (util::P2Quantile) — O(1) memory, so a run of
// millions of simulated jobs never stores per-job samples. Push order is
// part of the result (P² is order-sensitive); pushing in job-id order, as
// summarize() does, keeps metrics bit-identical across runs.
#pragma once

#include <cstddef>
#include <vector>

#include "online/job.hpp"
#include "util/stats.hpp"

namespace nldl::online {

struct ServiceMetrics {
  std::size_t jobs = 0;
  double horizon = 0.0;      ///< last finish time (0 when no jobs)
  double throughput = 0.0;   ///< jobs / horizon
  double utilization = 0.0;  ///< Σ compute busy time / (p · horizon)
  double mean_wait = 0.0;
  double max_wait = 0.0;
  double mean_latency = 0.0;
  double p50_latency = 0.0;
  double p95_latency = 0.0;
  double p99_latency = 0.0;
  double mean_slowdown = 0.0;
  double p50_slowdown = 0.0;
  double p95_slowdown = 0.0;
  double p99_slowdown = 0.0;

  /// Flat numeric signature (bench serial-vs-parallel bitwise self-check).
  [[nodiscard]] std::vector<double> signature() const;
};

/// Streaming accumulator over completed jobs.
///
/// Edge cases are total, never NaN: zero jobs finish() to an all-zero
/// ServiceMetrics, a single job's percentiles are exactly that sample,
/// and a zero-length horizon (every finish at t = 0) reports zero
/// throughput/utilization instead of dividing by zero. push() rejects
/// non-finite or out-of-order records up front rather than poisoning the
/// running means.
class MetricsAccumulator {
 public:
  /// `platform_size` = worker count p of the serving platform, for the
  /// utilization denominator.
  explicit MetricsAccumulator(std::size_t platform_size);

  void push(const JobStats& stats);

  [[nodiscard]] std::size_t jobs() const noexcept { return jobs_; }
  [[nodiscard]] ServiceMetrics finish() const;

 private:
  std::size_t platform_size_;
  std::size_t jobs_ = 0;
  double horizon_ = 0.0;
  double busy_ = 0.0;
  util::RunningStats wait_;
  util::RunningStats latency_;
  util::RunningStats slowdown_;
  util::P2Quantile latency_p50_{0.50};
  util::P2Quantile latency_p95_{0.95};
  util::P2Quantile latency_p99_{0.99};
  util::P2Quantile slowdown_p50_{0.50};
  util::P2Quantile slowdown_p95_{0.95};
  util::P2Quantile slowdown_p99_{0.99};
};

/// Accumulate `stats` in order and finish. (The vector the Server returns
/// is in job-id order, so this is deterministic.)
[[nodiscard]] ServiceMetrics summarize(const std::vector<JobStats>& stats,
                                       std::size_t platform_size);

}  // namespace nldl::online
