// Service metrics of an online run: latency/slowdown percentiles,
// throughput, utilization.
//
// The accumulator is streaming: means via util::RunningStats, percentiles
// via the P² estimator (util::P2Quantile) — O(1) memory, so a run of
// millions of simulated jobs never stores per-job samples. Push order is
// part of the result (P² is order-sensitive); pushing in job-id order, as
// summarize() does, keeps metrics bit-identical across runs.
#pragma once

#include <cstddef>
#include <vector>

#include "online/job.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"

namespace nldl::online {

struct ServiceMetrics {
  std::size_t jobs = 0;
  double horizon = 0.0;      ///< last finish time (0 when no jobs)
  double throughput = 0.0;   ///< jobs / horizon
  double utilization = 0.0;  ///< Σ compute busy time / (p · horizon)
  /// Jobs whose slowdown sample was excluded as degenerate (see
  /// MetricsAccumulator): a zero/epsilon isolated-service baseline makes
  /// latency / baseline overflow to inf (or NaN), which would poison the
  /// slowdown mean and the P² quantile state. Such jobs still count
  /// toward every other metric.
  std::size_t degenerate_slowdowns = 0;
  double mean_wait = 0.0;
  double max_wait = 0.0;
  double mean_latency = 0.0;
  double p50_latency = 0.0;
  double p95_latency = 0.0;
  double p99_latency = 0.0;
  double mean_slowdown = 0.0;
  double p50_slowdown = 0.0;
  double p95_slowdown = 0.0;
  double p99_slowdown = 0.0;

  /// Flat numeric signature (bench serial-vs-parallel bitwise self-check).
  [[nodiscard]] std::vector<double> signature() const;
};

/// Streaming accumulator over completed jobs.
///
/// Edge cases are total, never NaN: zero jobs finish() to an all-zero
/// ServiceMetrics, a single job's percentiles are exactly that sample,
/// and a zero-length horizon (every finish at t = 0) reports zero
/// throughput/utilization instead of dividing by zero. push() rejects
/// non-finite or out-of-order records up front rather than poisoning the
/// running means.
///
/// Slowdown rule: a job's slowdown sample enters the statistics only
/// when it is finite. A zero- or epsilon-service job (isolated baseline
/// ~0, e.g. a denormal makespan from a degenerate platform) divides to
/// inf — one such sample would drag the mean to inf forever and throw
/// inside the P² estimator mid-push, leaving the accumulator
/// inconsistent. Degenerate samples are instead counted in
/// ServiceMetrics::degenerate_slowdowns and the job contributes to every
/// other metric, so p50/p95/p99 slowdowns stay finite whatever the
/// stream contains.
class MetricsAccumulator {
 public:
  /// `platform_size` = worker count p of the serving platform, for the
  /// utilization denominator.
  explicit MetricsAccumulator(std::size_t platform_size);

  void push(const JobStats& stats);

  [[nodiscard]] std::size_t jobs() const noexcept { return jobs_; }
  [[nodiscard]] ServiceMetrics finish() const;

 private:
  std::size_t platform_size_;
  std::size_t jobs_ = 0;
  std::size_t degenerate_slowdowns_ = 0;
  double horizon_ = 0.0;
  double busy_ = 0.0;
  util::RunningStats wait_;
  util::RunningStats latency_;
  util::RunningStats slowdown_;
  util::P2Quantile latency_p50_{0.50};
  util::P2Quantile latency_p95_{0.95};
  util::P2Quantile latency_p99_{0.99};
  util::P2Quantile slowdown_p50_{0.50};
  util::P2Quantile slowdown_p95_{0.95};
  util::P2Quantile slowdown_p99_{0.99};
};

/// Accumulate `stats` in order and finish. (The vector the Server returns
/// is in job-id order, so this is deterministic.)
[[nodiscard]] ServiceMetrics summarize(const std::vector<JobStats>& stats,
                                       std::size_t platform_size);

/// Emit every ServiceMetrics field as key/value pairs into the currently
/// open JSON object — the ONE schema every bench driver's per-point
/// record shares, so the committed BENCH_*.json artifacts cannot drift
/// apart when a field is added.
void write_service_metrics(util::JsonWriter& json,
                           const ServiceMetrics& metrics);

}  // namespace nldl::online
