// Extension: straggler injection and speculative re-execution.
//
// The paper's Section 1.1 credits MapReduce's success partly to "a
// detection of nodes that perform poorly (in order to re-assign tasks that
// slow down the process)". This module reproduces that mechanism on the
// simulated cluster: some workers are degraded by a slowdown factor, and
// an optional speculation policy re-launches the slowest in-flight tasks
// on idle workers (Hadoop-style backup tasks), taking whichever copy
// finishes first.
#pragma once

#include <cstdint>
#include <vector>

#include "mapreduce/cluster_sim.hpp"

namespace nldl::mapreduce {

struct StragglerConfig {
  std::vector<double> speeds;  ///< nominal worker speeds
  /// Per-worker slowdown factor (>= 1; 1 = healthy). Effective speed is
  /// speeds[i] / slowdown[i]. Must match speeds in size (or be empty for
  /// all-healthy).
  std::vector<double> slowdown;
  /// Enable backup tasks: when the task queue drains and a worker idles,
  /// it re-executes the unfinished task with the latest expected finish.
  bool speculative_execution = false;
  double bytes_per_block = 1.0;
};

struct SpeculationOutcome {
  double makespan = 0.0;
  double total_bytes = 0.0;       ///< incl. duplicate fetches for backups
  std::size_t backup_launches = 0;
  std::size_t backups_won = 0;    ///< backups that beat the original
  std::vector<double> worker_busy;
};

/// Run the demand-driven schedule with stragglers, optionally launching
/// speculative backups once the queue is empty. Deterministic.
[[nodiscard]] SpeculationOutcome run_with_stragglers(
    const std::vector<SimTask>& tasks, const StragglerConfig& config);

}  // namespace nldl::mapreduce
