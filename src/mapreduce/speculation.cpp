#include "mapreduce/speculation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <set>

#include "util/assert.hpp"

namespace nldl::mapreduce {

namespace {

struct Running {
  std::size_t task = 0;
  std::size_t worker = 0;
  double finish = 0.0;
  bool is_backup = false;
};

}  // namespace

SpeculationOutcome run_with_stragglers(const std::vector<SimTask>& tasks,
                                       const StragglerConfig& config) {
  const std::size_t p = config.speeds.size();
  NLDL_REQUIRE(p >= 1, "at least one worker required");
  for (const double s : config.speeds) {
    NLDL_REQUIRE(s > 0.0, "speeds must be positive");
  }
  std::vector<double> slowdown = config.slowdown;
  if (slowdown.empty()) slowdown.assign(p, 1.0);
  NLDL_REQUIRE(slowdown.size() == p,
               "slowdown must match the worker count");
  for (const double f : slowdown) {
    NLDL_REQUIRE(f >= 1.0, "slowdown factors must be >= 1");
  }

  std::vector<double> effective(p);
  for (std::size_t i = 0; i < p; ++i) {
    effective[i] = config.speeds[i] / slowdown[i];
  }

  SpeculationOutcome out;
  out.worker_busy.assign(p, 0.0);
  if (tasks.empty()) return out;

  // Ordered set for the same reason as cluster_sim.cpp: membership-only
  // today, deterministic iteration if anyone ever walks it.
  std::vector<std::set<BlockId>> cache(p);
  auto fetch_inputs = [&](std::size_t task, std::size_t worker) {
    for (const BlockId block : tasks[task].inputs) {
      if (cache[worker].insert(block).second) {
        out.total_bytes += config.bytes_per_block;
      }
    }
  };

  // Event-driven: (time, worker) idle events; running copies tracked to
  // support backups. A task completes when its earliest copy finishes.
  using Event = std::pair<double, std::size_t>;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> idle;
  for (std::size_t w = 0; w < p; ++w) idle.push({0.0, w});

  std::vector<bool> done(tasks.size(), false);
  std::vector<Running> in_flight;
  std::size_t next_task = 0;
  std::size_t remaining = tasks.size();

  // Each idle event either takes a fresh task, a backup, or parks the
  // worker (parked workers are re-woken by completions — modeled simply by
  // processing completions in time order through the in_flight list).
  //
  // Simulation loop: always advance the earliest of (idle event, earliest
  // in-flight completion). For simplicity and determinism we process idle
  // events; completions are realized lazily when scanning in_flight.
  // A task completes when its *earliest* copy finishes; losing copies run
  // to completion (their worker stays busy) but do not extend the job —
  // the job is done once every task has one finished copy.
  auto realize_completions = [&](double now) {
    std::vector<Running> ready;
    for (auto it = in_flight.begin(); it != in_flight.end();) {
      if (it->finish <= now + 1e-15) {
        ready.push_back(*it);
        it = in_flight.erase(it);
      } else {
        ++it;
      }
    }
    std::sort(ready.begin(), ready.end(),
              [](const Running& a, const Running& b) {
                return a.finish < b.finish;
              });
    for (const Running& run : ready) {
      if (done[run.task]) continue;  // a faster copy already won
      done[run.task] = true;
      --remaining;
      if (run.is_backup) ++out.backups_won;
      out.makespan = std::max(out.makespan, run.finish);
    }
  };

  while (remaining > 0) {
    NLDL_ASSERT(!idle.empty(), "deadlock: no idle events while work remains");
    const auto [now, worker] = idle.top();
    idle.pop();
    realize_completions(now);
    if (remaining == 0) break;

    // Choose work for this worker.
    while (next_task < tasks.size() && done[next_task]) ++next_task;
    std::size_t chosen = tasks.size();
    bool is_backup = false;
    if (next_task < tasks.size()) {
      chosen = next_task++;
    } else if (config.speculative_execution) {
      // Back up the unfinished task with the latest expected finish,
      // unless this worker already runs a copy of it.
      double worst = -1.0;
      for (const Running& run : in_flight) {
        if (done[run.task] || run.worker == worker) continue;
        if (run.finish > worst) {
          // Only back up if we could plausibly beat the running copy.
          const double eta =
              now + tasks[run.task].compute_cost / effective[worker];
          if (eta < run.finish) {
            worst = run.finish;
            chosen = run.task;
          }
        }
      }
      if (chosen != tasks.size()) {
        is_backup = true;
        ++out.backup_launches;
      }
    }
    if (chosen == tasks.size()) {
      // Nothing to do: park until the next in-flight completion.
      double next_completion = std::numeric_limits<double>::infinity();
      for (const Running& run : in_flight) {
        next_completion = std::min(next_completion, run.finish);
      }
      if (std::isfinite(next_completion)) {
        idle.push({next_completion, worker});
      }
      // else: queue drained and nothing in flight — remaining must be 0.
      continue;
    }

    fetch_inputs(chosen, worker);
    const double duration =
        tasks[chosen].compute_cost / effective[worker];
    out.worker_busy[worker] += duration;
    in_flight.push_back({chosen, worker, now + duration, is_backup});
    idle.push({now + duration, worker});
  }
  return out;
}

}  // namespace nldl::mapreduce
