// A miniature in-memory MapReduce engine.
//
// The paper contrasts DLT with MapReduce throughout; this engine supplies
// the MapReduce *semantics* — map over input splits, hash shuffle, reduce
// per key — executed multi-threaded on one node, with counters for every
// record and byte moved. It is deliberately small: the experiments need a
// faithful accounting of data movement (the paper's Section 4 objective),
// not a distributed filesystem.
//
// Keys are uint64 (jobs encode their structured keys, e.g. (i,j) block
// coordinates, into 64 bits); values are doubles. An optional combiner
// merges map-side records with equal keys before the shuffle — exactly the
// optimization MapReduce uses to cut the replication overhead the paper's
// introduction describes for matrix multiplication.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "util/threadpool.hpp"

namespace nldl::mapreduce {

struct KV {
  std::uint64_t key = 0;
  double value = 0.0;
};

struct Counters {
  std::size_t map_tasks = 0;
  std::size_t map_output_records = 0;
  std::size_t combine_output_records = 0;  ///< == map_output if no combiner
  std::size_t shuffle_bytes = 0;           ///< records shuffled × sizeof(KV)
  std::size_t reduce_groups = 0;
  std::size_t reduce_output_records = 0;
};

struct JobResult {
  /// (key, reduced value) pairs, sorted by key.
  std::vector<KV> output;
  Counters counters;
};

/// Map function: given the split index, emit records into `out`.
using MapFn = std::function<void(std::size_t split, std::vector<KV>& out)>;

/// Reduce function: fold all values of one key into one value.
using ReduceFn =
    std::function<double(std::uint64_t key, std::span<const double> values)>;

struct JobConfig {
  std::size_t num_splits = 0;
  std::size_t num_reducers = 1;
  /// Sum map-side records with equal keys before shuffling (valid whenever
  /// the reducer is a sum — true for both jobs in this library).
  bool use_combiner = false;
  util::ThreadPool* pool = nullptr;  ///< nullptr = run serially
};

/// Run a complete map→shuffle→reduce job.
[[nodiscard]] JobResult run_job(const JobConfig& config, const MapFn& map_fn,
                                const ReduceFn& reduce_fn);

}  // namespace nldl::mapreduce
