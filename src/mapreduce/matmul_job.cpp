#include "mapreduce/matmul_job.hpp"

#include "util/assert.hpp"

namespace nldl::mapreduce {

linalg::Matrix matmul_mapreduce(const linalg::Matrix& a,
                                const linalg::Matrix& b,
                                std::size_t block_dim,
                                const JobConfig& engine_config,
                                Counters* counters) {
  const std::size_t n = a.rows();
  NLDL_REQUIRE(a.cols() == n && b.rows() == n && b.cols() == n,
               "matmul_mapreduce requires square N×N inputs");
  NLDL_REQUIRE(block_dim >= 1 && n % block_dim == 0,
               "N must be divisible by the block dimension");
  const std::size_t g = n / block_dim;  // blocks per side

  JobConfig config = engine_config;
  config.num_splits = g * g * g;

  MapFn map_fn = [&](std::size_t split, std::vector<KV>& out) {
    const std::size_t bi = split / (g * g);
    const std::size_t bk = (split / g) % g;
    const std::size_t bj = split % g;
    out.reserve(block_dim * block_dim);
    // Partial product of A(bi, bk) × B(bk, bj), emitted per C cell. This
    // in-task accumulation is the map-side combining every practical
    // implementation performs.
    for (std::size_t i = bi * block_dim; i < (bi + 1) * block_dim; ++i) {
      for (std::size_t j = bj * block_dim; j < (bj + 1) * block_dim; ++j) {
        double sum = 0.0;
        for (std::size_t k = bk * block_dim; k < (bk + 1) * block_dim; ++k) {
          sum += a(i, k) * b(k, j);
        }
        out.push_back(KV{static_cast<std::uint64_t>(i) * n + j, sum});
      }
    }
  };
  ReduceFn reduce_fn = [](std::uint64_t, std::span<const double> values) {
    double sum = 0.0;
    for (const double v : values) sum += v;
    return sum;
  };

  const JobResult job = run_job(config, map_fn, reduce_fn);
  if (counters != nullptr) *counters = job.counters;

  linalg::Matrix result(n, n);
  for (const KV& record : job.output) {
    const std::size_t i = static_cast<std::size_t>(record.key / n);
    const std::size_t j = static_cast<std::size_t>(record.key % n);
    result(i, j) = record.value;
  }
  return result;
}

double matmul_replication_volume(double n, double block_dim) {
  NLDL_REQUIRE(n >= 1.0 && block_dim >= 1.0, "n and block_dim must be >= 1");
  NLDL_REQUIRE(block_dim <= n, "block dimension cannot exceed n");
  return 2.0 * n * n * n / block_dim;
}

std::vector<SimTask> matmul_tasks(long long n, long long block_dim) {
  NLDL_REQUIRE(n >= 1 && block_dim >= 1, "n and block_dim must be >= 1");
  NLDL_REQUIRE(n % block_dim == 0,
               "n must be divisible by the block dimension");
  const long long g = n / block_dim;
  std::vector<SimTask> tasks;
  tasks.reserve(static_cast<std::size_t>(g * g * g));
  const double cost = static_cast<double>(block_dim) *
                      static_cast<double>(block_dim) *
                      static_cast<double>(block_dim);
  for (long long bi = 0; bi < g; ++bi) {
    for (long long bk = 0; bk < g; ++bk) {
      for (long long bj = 0; bj < g; ++bj) {
        SimTask task;
        task.compute_cost = cost;
        task.inputs = {static_cast<BlockId>(bi * g + bk),
                       kBMatrixBase + static_cast<BlockId>(bk * g + bj)};
        tasks.push_back(std::move(task));
      }
    }
  }
  return tasks;
}

}  // namespace nldl::mapreduce
