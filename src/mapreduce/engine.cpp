#include "mapreduce/engine.hpp"

#include <algorithm>
#include <mutex>

#include "util/assert.hpp"

namespace nldl::mapreduce {

namespace {

/// Sort by key and sum equal keys in place.
void combine(std::vector<KV>& records) {
  std::sort(records.begin(), records.end(),
            [](const KV& a, const KV& b) { return a.key < b.key; });
  std::size_t out = 0;
  for (std::size_t i = 0; i < records.size();) {
    KV merged = records[i];
    std::size_t j = i + 1;
    while (j < records.size() && records[j].key == merged.key) {
      merged.value += records[j].value;
      ++j;
    }
    records[out++] = merged;
    i = j;
  }
  records.resize(out);
}

}  // namespace

JobResult run_job(const JobConfig& config, const MapFn& map_fn,
                  const ReduceFn& reduce_fn) {
  NLDL_REQUIRE(config.num_reducers >= 1, "at least one reducer required");
  NLDL_REQUIRE(static_cast<bool>(map_fn), "map function required");
  NLDL_REQUIRE(static_cast<bool>(reduce_fn), "reduce function required");

  JobResult result;
  result.counters.map_tasks = config.num_splits;

  // ---- Map phase: one task per split, partitioned output per reducer.
  const std::size_t reducers = config.num_reducers;
  std::vector<std::vector<KV>> partitions(reducers);
  std::mutex merge_mutex;
  std::size_t map_records = 0;
  std::size_t combined_records = 0;

  auto run_map_task = [&](std::size_t split) {
    std::vector<KV> out;
    map_fn(split, out);
    const std::size_t emitted = out.size();
    if (config.use_combiner) combine(out);
    const std::size_t kept = out.size();
    std::lock_guard lock(merge_mutex);
    map_records += emitted;
    combined_records += kept;
    for (const KV& record : out) {
      partitions[record.key % reducers].push_back(record);
    }
  };

  if (config.pool != nullptr) {
    std::vector<std::future<void>> futures;
    futures.reserve(config.num_splits);
    for (std::size_t split = 0; split < config.num_splits; ++split) {
      futures.push_back(
          config.pool->submit([&, split] { run_map_task(split); }));
    }
    for (auto& future : futures) future.get();
  } else {
    for (std::size_t split = 0; split < config.num_splits; ++split) {
      run_map_task(split);
    }
  }
  result.counters.map_output_records = map_records;
  result.counters.combine_output_records = combined_records;
  result.counters.shuffle_bytes = combined_records * sizeof(KV);

  // ---- Reduce phase: group each partition by key and fold.
  std::vector<std::vector<KV>> reduced(reducers);
  auto run_reduce_task = [&](std::size_t r) {
    std::vector<KV>& part = partitions[r];
    std::sort(part.begin(), part.end(),
              [](const KV& a, const KV& b) { return a.key < b.key; });
    std::vector<double> values;
    for (std::size_t i = 0; i < part.size();) {
      const std::uint64_t key = part[i].key;
      values.clear();
      std::size_t j = i;
      while (j < part.size() && part[j].key == key) {
        values.push_back(part[j].value);
        ++j;
      }
      reduced[r].push_back(
          KV{key, reduce_fn(key, std::span<const double>(values))});
      i = j;
    }
  };

  if (config.pool != nullptr) {
    std::vector<std::future<void>> futures;
    futures.reserve(reducers);
    for (std::size_t r = 0; r < reducers; ++r) {
      futures.push_back(config.pool->submit([&, r] { run_reduce_task(r); }));
    }
    for (auto& future : futures) future.get();
  } else {
    for (std::size_t r = 0; r < reducers; ++r) run_reduce_task(r);
  }

  for (auto& part : reduced) {
    result.counters.reduce_groups += part.size();
    result.output.insert(result.output.end(), part.begin(), part.end());
  }
  std::sort(result.output.begin(), result.output.end(),
            [](const KV& a, const KV& b) { return a.key < b.key; });
  result.counters.reduce_output_records = result.output.size();
  return result;
}

}  // namespace nldl::mapreduce
