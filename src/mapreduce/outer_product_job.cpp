#include "mapreduce/outer_product_job.hpp"

#include "util/assert.hpp"

namespace nldl::mapreduce {

linalg::Matrix outer_product_mapreduce(const std::vector<double>& a,
                                       const std::vector<double>& b,
                                       std::size_t block_dim,
                                       const JobConfig& engine_config,
                                       Counters* counters) {
  NLDL_REQUIRE(a.size() == b.size(), "outer product inputs must match");
  NLDL_REQUIRE(block_dim >= 1, "block dimension must be >= 1");
  const std::size_t n = a.size();
  NLDL_REQUIRE(n % block_dim == 0,
               "vector length must be divisible by the block dimension");
  const std::size_t blocks_per_side = n / block_dim;

  JobConfig config = engine_config;
  config.num_splits = blocks_per_side * blocks_per_side;

  MapFn map_fn = [&](std::size_t split, std::vector<KV>& out) {
    const std::size_t bi = split / blocks_per_side;
    const std::size_t bj = split % blocks_per_side;
    out.reserve(block_dim * block_dim);
    for (std::size_t i = bi * block_dim; i < (bi + 1) * block_dim; ++i) {
      for (std::size_t j = bj * block_dim; j < (bj + 1) * block_dim; ++j) {
        out.push_back(KV{static_cast<std::uint64_t>(i) * n + j, a[i] * b[j]});
      }
    }
  };
  ReduceFn reduce_fn = [](std::uint64_t, std::span<const double> values) {
    double sum = 0.0;
    for (const double v : values) sum += v;
    return sum;
  };

  const JobResult job = run_job(config, map_fn, reduce_fn);
  if (counters != nullptr) *counters = job.counters;

  linalg::Matrix result(n, n);
  for (const KV& record : job.output) {
    const std::size_t i = static_cast<std::size_t>(record.key / n);
    const std::size_t j = static_cast<std::size_t>(record.key % n);
    result(i, j) = record.value;
  }
  return result;
}

std::vector<SimTask> outer_product_tasks(long long n, long long block_dim) {
  NLDL_REQUIRE(n >= 1 && block_dim >= 1, "n and block_dim must be >= 1");
  NLDL_REQUIRE(n % block_dim == 0,
               "n must be divisible by the block dimension");
  const long long blocks_per_side = n / block_dim;
  std::vector<SimTask> tasks;
  tasks.reserve(
      static_cast<std::size_t>(blocks_per_side * blocks_per_side));
  const double cost =
      static_cast<double>(block_dim) * static_cast<double>(block_dim);
  for (long long bi = 0; bi < blocks_per_side; ++bi) {
    for (long long bj = 0; bj < blocks_per_side; ++bj) {
      SimTask task;
      task.compute_cost = cost;
      task.inputs = {static_cast<BlockId>(bi),
                     kBSegmentBase + static_cast<BlockId>(bj)};
      tasks.push_back(std::move(task));
    }
  }
  return tasks;
}

}  // namespace nldl::mapreduce
