// Outer product as a MapReduce job (paper Sections 1.1 and 4.1).
//
// Two artifacts:
//   1. An engine-executable job (map over square blocks, reduce = sum) used
//      to verify numerics end-to-end on small N.
//   2. A SimTask builder for the cluster simulator: one task per D×D block,
//      whose inputs are the a-segment and b-segment blocks it touches —
//      this is what the demand-driven and affinity-aware schedulers consume.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "mapreduce/cluster_sim.hpp"
#include "mapreduce/engine.hpp"

namespace nldl::mapreduce {

/// Compute a·bᵀ through the MapReduce engine. One map task per block of the
/// N×N domain; keys encode (i, j) as i·N + j. Intended for small N
/// (the output materializes all N² keys).
[[nodiscard]] linalg::Matrix outer_product_mapreduce(
    const std::vector<double>& a, const std::vector<double>& b,
    std::size_t block_dim, const JobConfig& engine_config,
    Counters* counters = nullptr);

/// Build cluster-simulator tasks for the blocked outer product: the domain
/// is split into (n/block_dim)² blocks; task (bi, bj) reads a-segment block
/// bi and b-segment block bj and costs block_dim² work units. Each block of
/// a/b is `block_dim` elements, i.e. block_dim·bytes_per_element bytes.
[[nodiscard]] std::vector<SimTask> outer_product_tasks(long long n,
                                                       long long block_dim);

/// Block ids used by outer_product_tasks: a-segments are [0, n/d),
/// b-segments are offset by kBSegmentBase.
inline constexpr BlockId kBSegmentBase = BlockId{1} << 32;

}  // namespace nldl::mapreduce
