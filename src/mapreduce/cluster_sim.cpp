#include "mapreduce/cluster_sim.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>

#include "util/assert.hpp"
#include "util/stats.hpp"

namespace nldl::mapreduce {

ClusterOutcome run_cluster(const std::vector<SimTask>& tasks,
                           const ClusterConfig& config) {
  NLDL_REQUIRE(!config.speeds.empty(), "cluster requires at least one worker");
  for (const double s : config.speeds) {
    NLDL_REQUIRE(s > 0.0, "worker speeds must be positive");
  }
  const std::size_t p = config.speeds.size();

  ClusterOutcome out;
  out.owner.assign(tasks.size(), 0);
  out.worker_time.assign(p, 0.0);
  out.bytes_per_worker.assign(p, 0.0);

  // Per-worker block cache. Ordered set: only membership is queried
  // today, but an ordered container keeps any future iteration (cache
  // eviction, debugging dumps) deterministic by construction —
  // tests/test_determinism_order.cpp pins insertion-order independence.
  std::vector<std::set<BlockId>> cache(p);

  // Event queue of (time worker becomes idle, worker).
  using Event = std::pair<double, std::size_t>;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> idle;
  for (std::size_t w = 0; w < p; ++w) idle.push({0.0, w});

  std::vector<bool> done(tasks.size(), false);
  std::size_t next_undone = 0;  // plain-mode cursor
  std::size_t remaining = tasks.size();

  auto missing_blocks = [&](std::size_t task, std::size_t worker) {
    std::size_t missing = 0;
    for (const BlockId block : tasks[task].inputs) {
      if (cache[worker].count(block) == 0) ++missing;
    }
    return missing;
  };

  while (remaining > 0) {
    const auto [now, worker] = idle.top();
    idle.pop();

    // Pick a task for this worker.
    std::size_t chosen = tasks.size();
    if (!config.affinity_aware) {
      while (next_undone < tasks.size() && done[next_undone]) ++next_undone;
      chosen = next_undone;
    } else {
      std::size_t best_missing = std::numeric_limits<std::size_t>::max();
      for (std::size_t t = 0; t < tasks.size(); ++t) {
        if (done[t]) continue;
        const std::size_t missing = missing_blocks(t, worker);
        if (missing < best_missing) {
          best_missing = missing;
          chosen = t;
          if (missing == 0) break;  // cannot do better
        }
      }
    }
    NLDL_ASSERT(chosen < tasks.size(), "scheduler found no task");

    done[chosen] = true;
    --remaining;
    out.owner[chosen] = worker;

    // Fetch missing inputs (volume accounting only).
    for (const BlockId block : tasks[chosen].inputs) {
      if (cache[worker].insert(block).second) {
        out.bytes_per_worker[worker] += config.bytes_per_block;
      }
    }
    const double duration = tasks[chosen].compute_cost / config.speeds[worker];
    out.worker_time[worker] += duration;
    idle.push({now + duration, worker});
  }

  double t_max = 0.0;
  for (std::size_t w = 0; w < p; ++w) {
    out.total_bytes += out.bytes_per_worker[w];
    t_max = std::max(t_max, out.worker_time[w]);
  }
  out.makespan = t_max;
  // Shared definition: e over the workers that got tasks; an idle worker
  // does not turn the statistic into +infinity.
  out.imbalance = util::imbalance_over_busy(out.worker_time);
  out.idle_workers = util::count_idle(out.worker_time);
  return out;
}

}  // namespace nldl::mapreduce
