// Matrix multiplication as a MapReduce job (paper Sections 1.1 and 4.2).
//
// The introduction's motivating example: to run C = A·B over MapReduce, the
// N²-sized inputs are *replicated* into an N³-sized intermediate dataset —
// conceptually all compatible pairs (a_ik, b_kj). The practical blocked
// version maps over (bi, bk, bj) block triples: each task reads an A block
// and a B block (2·b² elements), computes a partial b×b product, and the
// reducer sums the N/b partials per C block. The replication factor on the
// inputs is therefore N/b — the "large redundancy in data communication"
// the paper describes.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "mapreduce/cluster_sim.hpp"
#include "mapreduce/engine.hpp"

namespace nldl::mapreduce {

/// Execute C = A·B through the MapReduce engine with b×b blocks.
/// Keys encode C cells as i·N + j. Intended for small N.
[[nodiscard]] linalg::Matrix matmul_mapreduce(const linalg::Matrix& a,
                                              const linalg::Matrix& b,
                                              std::size_t block_dim,
                                              const JobConfig& engine_config,
                                              Counters* counters = nullptr);

/// Elements of A and B shipped to map tasks for the blocked job, assuming
/// no reuse (plain MapReduce accounting): (N/b)³ tasks × 2b² = 2N³/b.
[[nodiscard]] double matmul_replication_volume(double n, double block_dim);

/// Build cluster-simulator tasks for the blocked matmul: task (bi, bk, bj)
/// reads A block (bi, bk) and B block (bk, bj) and costs b³ work units.
/// Block ids: A blocks are bi·(n/b) + bk, B blocks offset by kBMatrixBase.
[[nodiscard]] std::vector<SimTask> matmul_tasks(long long n,
                                                long long block_dim);

inline constexpr BlockId kBMatrixBase = BlockId{1} << 32;

}  // namespace nldl::mapreduce
