// Simulated heterogeneous MapReduce cluster: demand-driven task pulls with
// byte-level data-shipping accounting.
//
// This is the substrate for the paper's Section 4 comparison and for the
// Conclusion's proposal ("favoring among all available tasks those that
// share blocks with data already stored on a slave processor"): tasks name
// the input *blocks* they touch; a worker that already holds a block (from
// an earlier task) need not fetch it again. Plain MapReduce scheduling is
// affinity-blind — the scheduler hands the next queued task to whichever
// worker asks first; the affinity-aware variant lets an idle worker pick
// the queued task with the most cached inputs.
#pragma once

#include <cstdint>
#include <vector>

namespace nldl::mapreduce {

using BlockId = std::uint64_t;

struct SimTask {
  double compute_cost = 0.0;       ///< abstract work units
  std::vector<BlockId> inputs;     ///< blocks this task reads
};

struct ClusterConfig {
  std::vector<double> speeds;      ///< worker speeds (work units / time)
  bool affinity_aware = false;     ///< Conclusion's scheduling proposal
  double bytes_per_block = 1.0;
  /// Workers keep every block they ever fetched (the model of the paper's
  /// discussion; caches are "free" within one job).
};

struct ClusterOutcome {
  std::vector<std::size_t> owner;       ///< task index -> worker index
  std::vector<double> worker_time;      ///< total compute time per worker
  std::vector<double> bytes_per_worker; ///< data shipped to each worker
  double makespan = 0.0;
  /// e over the workers that got at least one task (always finite; see
  /// util::imbalance_over_busy).
  double imbalance = 0.0;
  std::size_t idle_workers = 0;         ///< workers that got no task
  double total_bytes = 0.0;
};

/// Run the demand-driven schedule: whenever a worker is idle, it takes the
/// next task (plain) or its best-affinity task (affinity_aware). Workers
/// are seeded as all idle at t = 0; ties broken by worker index. Fetches
/// are accounted but take no simulated time (the paper's model studies
/// communication *volume*, keeping computation the bottleneck).
[[nodiscard]] ClusterOutcome run_cluster(const std::vector<SimTask>& tasks,
                                         const ClusterConfig& config);

}  // namespace nldl::mapreduce
