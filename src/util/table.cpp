#include "util/table.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>

#include "util/assert.hpp"

namespace nldl::util {

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  NLDL_REQUIRE(!headers_.empty(), "Table requires at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  NLDL_REQUIRE(cells.size() == headers_.size(),
               "row width does not match header width");
  rows_.push_back(std::move(cells));
}

Table::RowBuilder& Table::RowBuilder::cell(std::string value) {
  cells_.push_back(std::move(value));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(double value, int precision) {
  cells_.push_back(format_double(value, precision));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(std::size_t value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(long long value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

void Table::RowBuilder::done() { table_.add_row(std::move(cells_)); }

const std::string& Table::cell(std::size_t row, std::size_t column) const {
  NLDL_REQUIRE(row < rows_.size(), "table row out of range");
  NLDL_REQUIRE(column < headers_.size(), "table column out of range");
  return rows_[row][column];
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << cells[c];
      out << std::string(widths[c] - cells[c].size(), ' ');
    }
    out << " |\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  out << "-|\n";
  for (const auto& row : rows_) emit_row(row);
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::write_csv(std::ostream& out) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) out << ',';
      out << csv_escape(cells[c]);
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

void Table::save_csv(const std::string& path) const {
  std::ofstream out(path);
  NLDL_REQUIRE(out.good(), "cannot open CSV output file: " + path);
  write_csv(out);
}

}  // namespace nldl::util
