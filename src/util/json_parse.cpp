#include "util/json_parse.hpp"

#include <charconv>
#include <cstdint>

#include "util/assert.hpp"

namespace nldl::util {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

bool JsonValue::operator==(const JsonValue& other) const {
  if (kind != other.kind) return false;
  switch (kind) {
    case Kind::kNull:
      return true;
    case Kind::kBool:
      return boolean == other.boolean;
    case Kind::kNumber:
      return number == other.number;
    case Kind::kString:
      return string == other.string;
    case Kind::kArray:
      return array == other.array;
    case Kind::kObject:
      return object == other.object;
  }
  return false;
}

namespace {

// Hand-rolled cursor; errors report the byte offset they fired at.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue root = parse_value();
    skip_whitespace();
    NLDL_REQUIRE(pos_ == text_.size(),
                 "trailing characters after JSON document at byte " +
                     std::to_string(pos_));
    return root;
  }

 private:
  static constexpr std::size_t kMaxDepth = 192;

  [[noreturn]] void fail(const std::string& what) const {
    throw PreconditionError("json parse error at byte " +
                            std::to_string(pos_) + ": " + what);
  }

  [[nodiscard]] bool eof() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const {
    if (eof()) fail("unexpected end of input");
    return text_[pos_];
  }
  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void skip_whitespace() {
    while (!eof()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  void expect_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      fail("invalid literal (expected " + std::string(literal) + ")");
    }
    pos_ += literal.size();
  }

  JsonValue parse_value() {
    if (depth_ > kMaxDepth) fail("nesting deeper than 192 levels");
    skip_whitespace();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = parse_string();
        return v;
      }
      case 't': {
        expect_literal("true");
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        expect_literal("false");
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = false;
        return v;
      }
      case 'n': {
        expect_literal("null");
        return JsonValue{};
      }
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    ++depth_;
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return v;
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      const char c = take();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    --depth_;
    return v;
  }

  JsonValue parse_array() {
    ++depth_;
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_whitespace();
      const char c = take();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    --depth_;
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u':
          append_utf8(out, parse_codepoint());
          break;
        default:
          fail("invalid escape sequence");
      }
    }
    return out;
  }

  std::uint32_t parse_hex4() {
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape digit");
      }
    }
    return value;
  }

  std::uint32_t parse_codepoint() {
    std::uint32_t code = parse_hex4();
    if (code >= 0xD800 && code <= 0xDBFF) {
      // High surrogate: must be followed by \uDC00..\uDFFF.
      if (eof() || text_.substr(pos_, 2) != "\\u") {
        fail("unpaired high surrogate");
      }
      pos_ += 2;
      const std::uint32_t low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail("unpaired low surrogate");
    }
    return code;
  }

  static void append_utf8(std::string& out, std::uint32_t code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  JsonValue parse_number() {
    const std::size_t begin = pos_;
    if (!eof() && text_[pos_] == '-') ++pos_;
    const std::size_t digits_begin = pos_;
    while (!eof() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    if (pos_ == digits_begin) fail("invalid number");
    // Leading zeros are not JSON ("0" alone is fine, "01" is not).
    if (text_[digits_begin] == '0' && pos_ - digits_begin > 1) {
      fail("number with leading zero");
    }
    if (!eof() && text_[pos_] == '.') {
      ++pos_;
      const std::size_t frac_begin = pos_;
      while (!eof() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
      if (pos_ == frac_begin) fail("missing digits after decimal point");
    }
    if (!eof() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (!eof() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      const std::size_t exp_begin = pos_;
      while (!eof() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
      if (pos_ == exp_begin) fail("missing digits in exponent");
    }
    const std::string_view token = text_.substr(begin, pos_ - begin);
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    const auto result = std::from_chars(token.data(),
                                        token.data() + token.size(), v.number);
    if (result.ec != std::errc{} ||
        result.ptr != token.data() + token.size()) {
      fail("unparsable number '" + std::string(token) + "'");
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  Parser parser(text);
  return parser.parse_document();
}

}  // namespace nldl::util
