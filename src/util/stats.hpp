// Streaming and batch statistics used by the experiment harness.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace nldl::util {

/// Numerically stable streaming statistics (Welford's algorithm).
///
/// Used to aggregate the 100-trial sweeps of the paper's Figure 4 without
/// storing every sample.
class RunningStats {
 public:
  void push(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }

  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }

  [[nodiscard]] double stddev() const noexcept;

  /// Population variance (n denominator); 0 when empty.
  [[nodiscard]] double population_variance() const noexcept {
    return count_ < 1 ? 0.0 : m2_ / static_cast<double>(count_);
  }

  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Linear-interpolation quantile of an *unsorted* sample (the input is
/// copied and sorted). q must lie in [0, 1]; the sample must be non-empty.
[[nodiscard]] double quantile(std::vector<double> sample, double q);

/// Quantile of an already-sorted sample (no copy).
[[nodiscard]] double quantile_sorted(const std::vector<double>& sorted,
                                     double q);

/// Mean of a non-empty sample.
[[nodiscard]] double mean_of(const std::vector<double>& sample);

/// Load imbalance e = (t_max − t_min)/t_min over the *positive* entries
/// of `times` — the workers that actually received work. Returns 0 when
/// fewer than two entries are positive. This is the one shared definition
/// (paper Section 4.3) used by the sim engine, the partitioners, and the
/// workload executors: idle workers are counted via count_idle(), never
/// folded in as +infinity.
[[nodiscard]] double imbalance_over_busy(const std::vector<double>& times);

/// Number of non-positive entries of `times` (idle workers).
[[nodiscard]] std::size_t count_idle(const std::vector<double>& times);

/// Sample standard deviation of a sample (0 for fewer than two values).
[[nodiscard]] double stddev_of(const std::vector<double>& sample);

/// Jain's fairness index J = (Σx)² / (n·Σx²) over per-entity allocations
/// (Jain, Chiu, Hawe 1984): 1 when every entity receives the same share,
/// 1/n when one entity receives everything. Entries must be >= 0 and
/// finite. Degenerate inputs — an empty vector or an all-zero allocation —
/// return 1 (nothing is shared unfairly), never NaN.
[[nodiscard]] double jain_index(const std::vector<double>& allocations);

/// Streaming hit/miss counter with NaN-free rates: the deadline-miss
/// accumulator of the qos subsystem. miss_rate() is 0 over zero trials,
/// never 0/0.
class HitRate {
 public:
  void push(bool hit) noexcept {
    ++trials_;
    if (hit) ++hits_;
  }

  [[nodiscard]] std::size_t trials() const noexcept { return trials_; }
  [[nodiscard]] std::size_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::size_t misses() const noexcept {
    return trials_ - hits_;
  }
  [[nodiscard]] double hit_rate() const noexcept {
    return trials_ == 0
               ? 0.0
               : static_cast<double>(hits_) / static_cast<double>(trials_);
  }
  [[nodiscard]] double miss_rate() const noexcept {
    return trials_ == 0 ? 0.0 : 1.0 - hit_rate();
  }

 private:
  std::size_t trials_ = 0;
  std::size_t hits_ = 0;
};

/// Streaming quantile estimator (the P² algorithm of Jain & Chlamtac,
/// CACM 1985): tracks one quantile of a sample in O(1) memory by
/// maintaining five markers whose heights are nudged toward their ideal
/// positions with piecewise-parabolic interpolation.
///
/// Used by the online subsystem for latency/slowdown p50/p95/p99 over
/// arbitrarily long job streams without storing every sample. For five or
/// fewer observations the estimate is the *exact* linear-interpolation
/// quantile of the sample seen so far, so `quantile()` (the batch oracle
/// the tests compare against) matches bit for bit on tiny samples.
class P2Quantile {
 public:
  /// q must lie in [0, 1].
  explicit P2Quantile(double q);

  void push(double x);

  /// Current estimate; requires at least one sample.
  [[nodiscard]] double value() const;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double probability() const noexcept { return q_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

 private:
  double q_;
  std::size_t count_ = 0;
  double heights_[5] = {};    ///< marker heights (sorted)
  double positions_[5] = {};  ///< actual marker positions (1-based ranks)
  double desired_[5] = {};    ///< desired marker positions
  double increments_[5] = {}; ///< per-sample growth of desired positions
};

/// Fixed-width histogram over [lo, hi); values outside — including the
/// infinities — are clamped to the boundary bins. NaN samples are rejected
/// from the bins but counted (nan_count()) so callers can report them.
/// Used by the examples' ASCII visualizations.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void push(double x) noexcept;

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const;
  /// Number of binned samples (NaN pushes are excluded).
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  /// Number of NaN samples pushed (never binned).
  [[nodiscard]] std::size_t nan_count() const noexcept { return nan_count_; }
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  [[nodiscard]] double bin_hi(std::size_t bin) const;

  /// Render as rows of "[lo, hi) ####" bars, `width` chars at the mode.
  [[nodiscard]] std::string ascii(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t nan_count_ = 0;
};

}  // namespace nldl::util
