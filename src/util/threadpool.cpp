#include "util/threadpool.hpp"

#include <algorithm>

namespace nldl::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  NLDL_REQUIRE(num_threads >= 1, "ThreadPool requires at least one thread");
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  std::size_t grain,
                  const std::function<void(std::size_t)>& fn) {
  NLDL_REQUIRE(begin <= end, "parallel_for requires begin <= end");
  if (begin == end) return;
  grain = std::max<std::size_t>(grain, 1);
  std::vector<std::future<void>> futures;
  for (std::size_t chunk = begin; chunk < end; chunk += grain) {
    const std::size_t chunk_end = std::min(chunk + grain, end);
    futures.push_back(pool.submit([chunk, chunk_end, &fn] {
      for (std::size_t i = chunk; i < chunk_end; ++i) fn(i);
    }));
  }
  // Wait for *every* chunk before rethrowing: queued tasks hold references
  // to `fn` and the chunk state in this frame, so unwinding while any of
  // them is still pending would leave them with dangling captures.
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace nldl::util
