// Scalar root-finding for the nonlinear DLT allocators.
//
// The paper's nonlinear allocation equations (w·X^α terms) have no closed
// form on heterogeneous platforms, and the reproduction guidance notes that
// external solver libraries are inconvenient here — so nldl ships its own
// robust scalar solvers: plain bisection and a bisection-safeguarded Newton
// iteration. Both assume a bracketing interval.
#pragma once

#include <cmath>
#include <cstdint>

#include "util/assert.hpp"

namespace nldl::util {

/// Result of a root search.
struct RootResult {
  double x = 0.0;        ///< approximate root
  int iterations = 0;    ///< iterations consumed
  bool converged = false;
};

struct RootOptions {
  double x_tol = 1e-12;   ///< absolute tolerance on the bracket width
  double f_tol = 1e-13;   ///< absolute tolerance on |f(x)|
  int max_iterations = 200;
};

/// Find x in [lo, hi] with f(x) = 0 by bisection.
///
/// Requires f(lo) and f(hi) to have opposite signs (or one of them to be an
/// exact root). Converges unconditionally for continuous f.
template <typename F>
RootResult bisect(F&& f, double lo, double hi, RootOptions opts = {}) {
  NLDL_REQUIRE(lo <= hi, "bisect requires lo <= hi");
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return {lo, 0, true};
  if (fhi == 0.0) return {hi, 0, true};
  NLDL_REQUIRE(std::signbit(flo) != std::signbit(fhi),
               "bisect requires a sign change over [lo, hi]");
  RootResult result;
  for (result.iterations = 0; result.iterations < opts.max_iterations;
       ++result.iterations) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    if (std::abs(fmid) <= opts.f_tol || (hi - lo) <= opts.x_tol) {
      result.x = mid;
      result.converged = true;
      return result;
    }
    if (std::signbit(fmid) == std::signbit(flo)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
    }
  }
  result.x = 0.5 * (lo + hi);
  result.converged = (hi - lo) <= opts.x_tol * 16;
  return result;
}

/// Newton's method safeguarded by a bisection bracket: whenever the Newton
/// step leaves [lo, hi] (or the derivative vanishes), fall back to bisection.
/// Keeps Newton's quadratic convergence near the root with bisection's
/// global robustness.
template <typename F, typename DF>
RootResult newton_safeguarded(F&& f, DF&& df, double lo, double hi,
                              RootOptions opts = {}) {
  NLDL_REQUIRE(lo <= hi, "newton_safeguarded requires lo <= hi");
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return {lo, 0, true};
  if (fhi == 0.0) return {hi, 0, true};
  NLDL_REQUIRE(std::signbit(flo) != std::signbit(fhi),
               "newton_safeguarded requires a sign change over [lo, hi]");
  double x = 0.5 * (lo + hi);
  RootResult result;
  for (result.iterations = 0; result.iterations < opts.max_iterations;
       ++result.iterations) {
    const double fx = f(x);
    if (std::abs(fx) <= opts.f_tol || (hi - lo) <= opts.x_tol) {
      result.x = x;
      result.converged = true;
      return result;
    }
    // Shrink the bracket around the root.
    if (std::signbit(fx) == std::signbit(flo)) {
      lo = x;
      flo = fx;
    } else {
      hi = x;
    }
    const double dfx = df(x);
    double next = (dfx != 0.0) ? x - fx / dfx : lo - 1.0;  // force fallback
    if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);
    x = next;
  }
  result.x = x;
  result.converged = false;
  return result;
}

/// Convenience wrapper: root of a strictly increasing function, expanding
/// the upper bracket geometrically from `hi_guess` until f turns positive.
template <typename F>
RootResult solve_increasing(F&& f, double lo, double hi_guess,
                            RootOptions opts = {}) {
  NLDL_REQUIRE(hi_guess > lo, "solve_increasing requires hi_guess > lo");
  double hi = hi_guess;
  int expansions = 0;
  while (f(hi) < 0.0) {
    hi = lo + (hi - lo) * 2.0;
    NLDL_REQUIRE(++expansions < 200,
                 "solve_increasing: no sign change found (f not increasing "
                 "to a root?)");
  }
  return bisect(f, lo, hi, opts);
}

}  // namespace nldl::util
