#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/assert.hpp"

namespace nldl::util {

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  // std::to_chars is locale-independent and emits the shortest string that
  // round-trips the exact double — unlike %g/%lf, which honor the C locale
  // and would print a comma decimal point (invalid JSON) under e.g. de_DE.
  char buffer[40];
  const auto result =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  NLDL_ASSERT(result.ec == std::errc{}, "double does not fit json buffer");
  double parsed = 0.0;
  const auto back =
      std::from_chars(buffer, result.ptr, parsed);
  NLDL_ASSERT(back.ec == std::errc{} && parsed == value,
              "json_number failed to round-trip");
  return std::string(buffer, result.ptr);
}

std::string json_quote(const std::string& value) {
  std::string out = "\"";
  for (const char ch : value) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(ch));
          out += buffer;
        } else {
          out += ch;
        }
    }
  }
  out += "\"";
  return out;
}

void JsonWriter::indent() {
  out_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) out_ << "  ";
}

void JsonWriter::prepare_value() {
  NLDL_ASSERT(!wrote_root_ || !stack_.empty(),
              "JSON document already complete");
  if (stack_.empty()) {
    wrote_root_ = true;
    return;
  }
  if (stack_.back() == Scope::kObject) {
    NLDL_ASSERT(pending_key_, "object values need a key() first");
    pending_key_ = false;
    return;
  }
  if (scope_has_items_.back()) out_ << ',';
  scope_has_items_.back() = true;
  indent();
}

JsonWriter& JsonWriter::key(const std::string& name) {
  NLDL_ASSERT(!stack_.empty() && stack_.back() == Scope::kObject,
              "key() outside an object");
  NLDL_ASSERT(!pending_key_, "two key() calls in a row");
  if (scope_has_items_.back()) out_ << ',';
  scope_has_items_.back() = true;
  indent();
  out_ << json_quote(name) << ": ";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  prepare_value();
  out_ << '{';
  stack_.push_back(Scope::kObject);
  scope_has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  NLDL_ASSERT(!stack_.empty() && stack_.back() == Scope::kObject,
              "end_object() without begin_object()");
  NLDL_ASSERT(!pending_key_, "dangling key() at end_object()");
  const bool had_items = scope_has_items_.back();
  stack_.pop_back();
  scope_has_items_.pop_back();
  if (had_items) indent();
  out_ << '}';
  if (stack_.empty()) out_ << '\n';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  prepare_value();
  out_ << '[';
  stack_.push_back(Scope::kArray);
  scope_has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  NLDL_ASSERT(!stack_.empty() && stack_.back() == Scope::kArray,
              "end_array() without begin_array()");
  const bool had_items = scope_has_items_.back();
  stack_.pop_back();
  scope_has_items_.pop_back();
  if (had_items) indent();
  out_ << ']';
  if (stack_.empty()) out_ << '\n';
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  prepare_value();
  out_ << json_number(number);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  prepare_value();
  out_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(std::size_t number) {
  prepare_value();
  out_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(bool boolean) {
  prepare_value();
  out_ << (boolean ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& text) {
  prepare_value();
  out_ << json_quote(text);
  return *this;
}

JsonWriter& JsonWriter::value(const char* text) {
  return value(std::string(text));
}

}  // namespace nldl::util
