// Tiny command-line argument parser for examples and benches.
//
// Supports --key=value and --flag forms; anything else is a positional
// argument. Unknown keys are tolerated by default (benches pass flags
// through); strict CLIs can validate against values().
#pragma once

#include <map>
#include <string>
#include <vector>

namespace nldl::util {

class Args {
 public:
  Args(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;

  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] long long get_int(const std::string& key,
                                  long long fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  /// --flag or --flag=true/1/yes => true; --flag=false/0/no => false.
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Every parsed --key, for CLIs that reject flags they don't know.
  [[nodiscard]] const std::map<std::string, std::string>& values()
      const noexcept {
    return values_;
  }

  [[nodiscard]] const std::string& program() const noexcept {
    return program_;
  }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace nldl::util
