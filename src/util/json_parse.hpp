// Minimal recursive-descent JSON parser — the read side of util/json.hpp.
//
// Exists for the observability tooling: validating exported Chrome
// trace-event files and diffing the deterministic payload of two
// BENCH_*.json artifacts (tools/trace_check, obs/validate.hpp). It
// parses strict JSON into an order-preserving document tree; numbers go
// through std::from_chars so parsing is locale-independent (the same
// rule util::json_number follows on the write side).
//
// Deliberately small: no streaming, no comments, no trailing commas, no
// duplicate-key policy beyond "both are kept in order". Malformed input
// throws util::PreconditionError with a byte offset.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace nldl::util {

/// One JSON document node. A tagged aggregate rather than a std::variant
/// so the tree is cheap to walk and structurally comparable; object
/// members preserve source order (determinism culture: no unordered
/// containers).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] bool is_null() const noexcept { return kind == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind == Kind::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind == Kind::kString;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind == Kind::kArray; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind == Kind::kObject;
  }

  /// First member with this key, or nullptr (also nullptr when not an
  /// object). Lookup is linear — documents here are small.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// Structural equality: same kind, same contents, doubles compared
  /// exactly (bitwise reproduction is the whole point of the diff tool).
  [[nodiscard]] bool operator==(const JsonValue& other) const;
};

/// Parse a complete JSON document. Throws util::PreconditionError on
/// malformed input, trailing garbage, or nesting deeper than 192 levels.
[[nodiscard]] JsonValue parse_json(std::string_view text);

}  // namespace nldl::util
