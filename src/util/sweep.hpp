// Deterministic parallel parameter sweeps.
//
// Every experiment family in this repo — the Figure 4 trials, the Section 2
// capacity sweep, the ablations, the extension benches — is a parameter
// grid evaluated point by point. This header extracts the pattern that
// core::run_fig4 hand-rolled into a reusable framework:
//
//   1. declare the grid (named axes, cartesian product, row-major order);
//   2. the sweep pre-splits one RNG sub-stream per grid point, in flat
//      index order, exactly as a serial loop would consume them;
//   3. points dispatch onto a util::ThreadPool (any width, including the
//      serial width 1) in contiguous chunks;
//   4. results land in a vector indexed by flat grid index, so any
//      reduction performed over that vector in index order is strictly
//      ordered.
//
// Steps 2–4 make the output bit-identical for every thread count: no trial
// ever observes another trial's RNG, and no accumulator ever sees results
// out of order. bench::Harness builds the runtime serial-vs-parallel
// self-check and the BENCH_*.json emission on top.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "util/rng.hpp"
#include "util/threadpool.hpp"

namespace nldl::util {

/// Declarative parameter grid: the cartesian product of named axes, laid
/// out row-major (the first axis declared varies slowest). Axis values are
/// doubles; categorical axes (speed models, platforms, kernels) are
/// declared by count and read back as indices.
class Grid {
 public:
  /// Append a named axis with explicit coordinate values.
  Grid& axis(std::string name, std::vector<double> values);

  /// Append a categorical axis: `count` positions 0, 1, ..., count-1.
  Grid& axis(std::string name, std::size_t count);

  [[nodiscard]] std::size_t axes() const noexcept { return axes_.size(); }

  /// Total number of grid points (product of axis sizes; 1 for an empty
  /// grid — the single point with no coordinates).
  [[nodiscard]] std::size_t size() const noexcept;

  /// Coordinate of flat point `index` along the named axis.
  [[nodiscard]] double value(std::size_t index, const std::string& axis) const;

  /// Coordinate as a container index (for categorical axes). The value
  /// must be an exact non-negative integer.
  [[nodiscard]] std::size_t index_of(std::size_t index,
                                     const std::string& axis) const;

 private:
  struct Axis {
    std::string name;
    std::vector<double> values;
  };

  std::vector<Axis> axes_;
};

/// One point of a running sweep, handed to the point function.
class SweepPoint {
 public:
  SweepPoint(const Grid& grid, std::size_t index)
      : grid_(&grid), index_(index) {}

  /// Flat index in [0, grid.size()).
  [[nodiscard]] std::size_t index() const noexcept { return index_; }

  [[nodiscard]] double value(const std::string& axis) const {
    return grid_->value(index_, axis);
  }
  [[nodiscard]] std::size_t index_of(const std::string& axis) const {
    return grid_->index_of(index_, axis);
  }

 private:
  const Grid* grid_;
  std::size_t index_;
};

struct SweepOptions {
  /// Worker threads: 1 = serial on the calling thread, 0 = one per
  /// hardware thread. The results are the same bit for bit regardless.
  std::size_t threads = 1;
  /// Master seed; each grid point receives its own sub-stream split from
  /// it (jump-ahead by 2^128 per point, so streams never overlap).
  std::uint64_t seed = Rng::kDefaultSeed;
  /// Contiguous grid points per pool task.
  std::size_t grain = 1;
};

/// Resolve a thread-count knob: 0 means one thread per hardware thread,
/// clamped to at least 1.
[[nodiscard]] std::size_t resolve_threads(std::size_t threads) noexcept;

/// A deterministic parallel sweep over a Grid.
class Sweep {
 public:
  explicit Sweep(Grid grid, SweepOptions options = {})
      : grid_(std::move(grid)), options_(options) {}

  [[nodiscard]] const Grid& grid() const noexcept { return grid_; }
  [[nodiscard]] const SweepOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return grid_.size(); }

  /// Evaluate fn(point, rng) at every grid point — in any order, possibly
  /// concurrently — and return the results in flat-index order. Result
  /// must be default-constructible. Exceptions from any point propagate
  /// after every dispatched point has finished.
  template <typename Result>
  [[nodiscard]] std::vector<Result> map(
      const std::function<Result(const SweepPoint&, Rng&)>& fn) const {
    const std::size_t total = grid_.size();

    // Pre-split one sub-stream per point, in flat order — the exact
    // sequence a serial sweep would consume. This is the whole trick:
    // sampling is decoupled from scheduling.
    Rng master(options_.seed);
    std::vector<Rng> streams;
    streams.reserve(total);
    for (std::size_t i = 0; i < total; ++i) streams.push_back(master.split());

    std::vector<Result> results(total);
    const auto run_one = [&](std::size_t index) {
      const SweepPoint point(grid_, index);
      results[index] = fn(point, streams[index]);
    };

    const std::size_t threads =
        std::min(resolve_threads(options_.threads), total);
    if (threads <= 1 || total <= 1) {
      for (std::size_t i = 0; i < total; ++i) run_one(i);
    } else {
      ThreadPool pool(threads);
      parallel_for(pool, 0, total, std::max<std::size_t>(options_.grain, 1),
                   run_one);
    }
    return results;
  }

  /// map() followed by a strictly ordered reduction: fold(acc, result,
  /// point) is called for every point in ascending flat index, whatever
  /// the thread count — so order-sensitive accumulators (Welford stats,
  /// streaming min/max) stay bit-identical to a serial sweep.
  template <typename Result, typename Acc>
  [[nodiscard]] Acc run(
      const std::function<Result(const SweepPoint&, Rng&)>& fn, Acc acc,
      const std::function<void(Acc&, const Result&, const SweepPoint&)>&
          fold) const {
    const std::vector<Result> results = map<Result>(fn);
    for (std::size_t i = 0; i < results.size(); ++i) {
      fold(acc, results[i], SweepPoint(grid_, i));
    }
    return acc;
  }

 private:
  Grid grid_;
  SweepOptions options_;
};

}  // namespace nldl::util
