// Lightweight tabular output for the benchmark harness.
//
// Every figure/table reproduction prints both a human-readable ASCII table
// (the "paper view") and machine-readable CSV, so results can be diffed or
// re-plotted.
#pragma once

#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace nldl::util {

/// Format a double with `precision` significant decimal digits after the
/// point, trimming to a compact fixed representation.
[[nodiscard]] std::string format_double(double value, int precision = 4);

/// A rectangular table with a header row. Cells are stored as strings;
/// numeric helpers format on insertion.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a fully formed row. Must match the header width.
  void add_row(std::vector<std::string> cells);

  /// Row builder that accepts strings and arithmetic values.
  class RowBuilder {
   public:
    explicit RowBuilder(Table& table) : table_(table) {}
    RowBuilder& cell(std::string value);
    RowBuilder& cell(double value, int precision = 4);
    RowBuilder& cell(std::size_t value);
    RowBuilder& cell(long long value);
    RowBuilder& cell(int value) { return cell(static_cast<long long>(value)); }
    /// Commit the row to the table (validates the width).
    void done();

   private:
    Table& table_;
    std::vector<std::string> cells_;
  };

  [[nodiscard]] RowBuilder row() { return RowBuilder(*this); }

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t num_columns() const noexcept {
    return headers_.size();
  }
  [[nodiscard]] const std::string& cell(std::size_t row,
                                        std::size_t column) const;

  /// Pretty-print with aligned columns and a separator under the header.
  void print(std::ostream& out) const;

  /// RFC-4180-ish CSV (quotes cells containing commas/quotes/newlines).
  void write_csv(std::ostream& out) const;

  /// Convenience: CSV into a file, creating/truncating it.
  void save_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace nldl::util
