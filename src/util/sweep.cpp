#include "util/sweep.hpp"

#include <cmath>
#include <thread>

namespace nldl::util {

Grid& Grid::axis(std::string name, std::vector<double> values) {
  NLDL_REQUIRE(!values.empty(), "grid axis needs at least one value");
  for (const Axis& existing : axes_) {
    NLDL_REQUIRE(existing.name != name, "duplicate grid axis name");
  }
  axes_.push_back(Axis{std::move(name), std::move(values)});
  return *this;
}

Grid& Grid::axis(std::string name, std::size_t count) {
  NLDL_REQUIRE(count >= 1, "grid axis needs at least one value");
  std::vector<double> values;
  values.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    values.push_back(static_cast<double>(i));
  }
  return axis(std::move(name), std::move(values));
}

std::size_t Grid::size() const noexcept {
  std::size_t total = 1;
  for (const Axis& axis : axes_) total *= axis.values.size();
  return total;
}

double Grid::value(std::size_t index, const std::string& axis) const {
  NLDL_REQUIRE(index < size(), "grid index out of range");
  // Row-major: the last axis varies fastest.
  std::size_t stride = 1;
  for (std::size_t a = axes_.size(); a-- > 0;) {
    const Axis& candidate = axes_[a];
    const std::size_t coordinate = (index / stride) % candidate.values.size();
    if (candidate.name == axis) return candidate.values[coordinate];
    stride *= candidate.values.size();
  }
  throw_precondition("known axis name", __FILE__, __LINE__,
                     "unknown grid axis: " + axis);
}

std::size_t Grid::index_of(std::size_t index, const std::string& axis) const {
  const double v = value(index, axis);
  NLDL_REQUIRE(v >= 0.0 && v == std::floor(v),
               "axis value is not a container index: " + axis);
  return static_cast<std::size_t>(v);
}

std::size_t resolve_threads(std::size_t threads) noexcept {
  if (threads != 0) return threads;
  return std::max(1U, std::thread::hardware_concurrency());
}

}  // namespace nldl::util
