// Deterministic, portable random number generation.
//
// The standard library's distribution objects (std::normal_distribution,
// std::lognormal_distribution, ...) produce implementation-defined sequences,
// which would make the paper's figures non-reproducible across toolchains.
// nldl therefore ships its own generator (xoshiro256**, seeded via SplitMix64)
// and its own distribution transforms, so that every experiment is
// bit-reproducible given a seed.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace nldl::util {

/// SplitMix64 — used to expand a single 64-bit seed into generator state.
/// Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — Blackman & Vigna's general-purpose generator.
/// Satisfies the C++ UniformRandomBitGenerator requirements.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256StarStar(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Advance the state by 2^128 steps; used to derive non-overlapping
  /// streams for parallel workers.
  void jump() noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// High-level seeded RNG with the distribution transforms nldl needs.
///
/// All transforms are implemented in-library (not via <random> distribution
/// objects) for cross-platform reproducibility; see the file comment.
class Rng {
 public:
  static constexpr std::uint64_t kDefaultSeed = 0x5EEDBA5EBA11ULL;

  explicit Rng(std::uint64_t seed = kDefaultSeed) noexcept : gen_(seed) {}

  /// Raw 64 uniformly random bits.
  std::uint64_t next_u64() noexcept { return gen_(); }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() noexcept {
    return static_cast<double>(gen_() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi). Requires lo < hi.
  double uniform(double lo, double hi);

  /// Uniform integer in the inclusive range [lo, hi] (unbiased, via
  /// rejection sampling).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via the Box–Muller transform (pairs are cached).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation (stddev >= 0).
  double normal(double mean, double stddev);

  /// Log-normal: exp(N(mu, sigma^2)). This is the distribution used by the
  /// paper's Figure 4(c) platform generator with mu = 0, sigma = 1.
  double lognormal(double mu, double sigma);

  /// Exponential with the given rate (mean 1/rate; rate > 0), via
  /// inversion. Drives the Poisson/MMPP arrival processes of online/.
  double exponential(double rate);

  /// Pareto (type I) with the given scale x_m > 0 and shape a > 0, via
  /// inversion: x_m · (1 − U)^(−1/a), always >= x_m. The heavy-tailed job
  /// size distribution of the qos/ traffic generators (mean a·x_m/(a−1)
  /// for a > 1, infinite otherwise).
  double pareto(double scale, double shape);

  /// Derive an independent sub-stream (jump-ahead by 2^128).
  Rng split() noexcept {
    Rng child = *this;
    child.gen_.jump();
    child.has_cached_normal_ = false;
    // Desynchronize the parent too so repeated split() calls differ.
    (void)gen_();
    return child;
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    if (values.size() < 2) return;
    for (std::size_t i = values.size() - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i)));
      using std::swap;
      swap(values[i], values[j]);
    }
  }

 private:
  Xoshiro256StarStar gen_;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace nldl::util
