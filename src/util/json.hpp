// Minimal streaming JSON writer for the benchmark harness.
//
// The benches emit machine-readable BENCH_*.json files so the performance
// trajectory can be tracked across commits. The writer covers exactly what
// those files need — objects, arrays, strings, numbers, booleans — with
// round-trip double formatting. Non-finite doubles serialize as null
// (JSON has no Infinity/NaN literals).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace nldl::util {

/// Round-trip (shortest-exact) JSON representation of a double via
/// std::to_chars, so the output is locale-independent; "null" for NaN and
/// infinities.
[[nodiscard]] std::string json_number(double value);

/// JSON string literal with the mandatory escapes.
[[nodiscard]] std::string json_quote(const std::string& value);

/// Streaming writer with explicit scopes:
///
///   JsonWriter json(out);
///   json.begin_object();
///   json.key("trials").value(100);
///   json.key("points").begin_array();
///   ...
///   json.end_array();
///   json.end_object();
///
/// The writer validates scope nesting (misuse throws InvariantError) and
/// pretty-prints with two-space indentation.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emit an object key; the next value/begin_* call supplies its value.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(double number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(std::size_t number);
  JsonWriter& value(int number) {
    return value(static_cast<std::int64_t>(number));
  }
  JsonWriter& value(bool boolean);
  JsonWriter& value(const std::string& text);
  JsonWriter& value(const char* text);

  /// True when every scope has been closed.
  [[nodiscard]] bool complete() const noexcept {
    return stack_.empty() && wrote_root_;
  }

 private:
  enum class Scope { kObject, kArray };

  void prepare_value();
  void indent();

  std::ostream& out_;
  std::vector<Scope> stack_;
  std::vector<bool> scope_has_items_;
  bool pending_key_ = false;
  bool wrote_root_ = false;
};

}  // namespace nldl::util
