// Minimal ASCII line chart, used by the figure benches to render the
// paper's plots directly in the terminal (one glyph per series).
#pragma once

#include <string>
#include <vector>

namespace nldl::util {

class AsciiChart {
 public:
  /// Plot area of `width` × `height` character cells (excluding axes).
  AsciiChart(std::size_t width, std::size_t height);

  /// Add a named series; `glyph` marks its points. X values should be
  /// shared across series for a meaningful x-axis, but any positive
  /// monotone x works.
  void add_series(std::string name, char glyph, std::vector<double> xs,
                  std::vector<double> ys);

  /// Optional y-axis label.
  void set_y_label(std::string label) { y_label_ = std::move(label); }
  void set_x_label(std::string label) { x_label_ = std::move(label); }

  /// Render: axes with min/max ticks, series points, legend.
  [[nodiscard]] std::string render() const;

 private:
  struct Series {
    std::string name;
    char glyph;
    std::vector<double> xs;
    std::vector<double> ys;
  };

  std::size_t width_;
  std::size_t height_;
  std::string y_label_;
  std::string x_label_;
  std::vector<Series> series_;
};

}  // namespace nldl::util
