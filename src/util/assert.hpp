// Contract-checking macros used across the nldl libraries.
//
// All checks are active in every build type: the library is a research
// instrument and silent precondition violations would corrupt experiment
// results. Violations throw, so tests can assert on them.
#pragma once

#include <stdexcept>
#include <string>

namespace nldl::util {

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant fails (a library bug, not a user error).
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  throw PreconditionError(std::string(file) + ":" + std::to_string(line) +
                          ": precondition failed: " + expr +
                          (msg.empty() ? "" : (" — " + msg)));
}

[[noreturn]] inline void throw_invariant(const char* expr, const char* file,
                                         int line, const std::string& msg) {
  throw InvariantError(std::string(file) + ":" + std::to_string(line) +
                       ": invariant failed: " + expr +
                       (msg.empty() ? "" : (" — " + msg)));
}

}  // namespace nldl::util

/// Validate a documented precondition of a public API entry point.
#define NLDL_REQUIRE(cond, msg)                                          \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::nldl::util::throw_precondition(#cond, __FILE__, __LINE__, msg);  \
    }                                                                    \
  } while (0)

/// Validate an internal invariant; failure indicates a bug in nldl itself.
#define NLDL_ASSERT(cond, msg)                                        \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::nldl::util::throw_invariant(#cond, __FILE__, __LINE__, msg);  \
    }                                                                 \
  } while (0)
