#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/assert.hpp"

namespace nldl::util {

void Xoshiro256StarStar::jump() noexcept {
  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL, 0xA9582618E03FC9AAULL,
      0x39ABDC4529B1661CULL};
  std::array<std::uint64_t, 4> acc{};
  for (const std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (std::uint64_t{1} << bit)) {
        for (std::size_t i = 0; i < state_.size(); ++i) acc[i] ^= state_[i];
      }
      (void)(*this)();
    }
  }
  state_ = acc;
}

double Rng::uniform(double lo, double hi) {
  NLDL_REQUIRE(lo < hi, "uniform(lo, hi) requires lo < hi");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  NLDL_REQUIRE(lo <= hi, "uniform_int(lo, hi) requires lo <= hi");
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range requested
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
  std::uint64_t draw = next_u64();
  while (draw >= limit) draw = next_u64();
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller: two uniforms -> two independent standard normals.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();  // avoid log(0)
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  NLDL_REQUIRE(stddev >= 0.0, "normal() requires stddev >= 0");
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) {
  NLDL_REQUIRE(sigma >= 0.0, "lognormal() requires sigma >= 0");
  return std::exp(mu + sigma * normal());
}

double Rng::exponential(double rate) {
  NLDL_REQUIRE(rate > 0.0, "exponential() requires rate > 0");
  // Inversion: -log(1 - U)/rate; log1p keeps precision for small U and
  // 1 - U > 0 since uniform() < 1.
  return -std::log1p(-uniform()) / rate;
}

double Rng::pareto(double scale, double shape) {
  NLDL_REQUIRE(scale > 0.0, "pareto() requires scale > 0");
  NLDL_REQUIRE(shape > 0.0, "pareto() requires shape > 0");
  // Inversion of the survival function: 1 - U in (0, 1] since
  // uniform() < 1, so the draw is finite and >= scale.
  return scale * std::pow(1.0 - uniform(), -1.0 / shape);
}

}  // namespace nldl::util
