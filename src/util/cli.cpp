#include "util/cli.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdlib>

#include "util/assert.hpp"

namespace nldl::util {

Args::Args(int argc, const char* const* argv) {
  NLDL_REQUIRE(argc >= 1, "argc must include the program name");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "";  // bare flag
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

bool Args::has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::string Args::get_string(const std::string& key,
                             const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

long long Args::get_int(const std::string& key, long long fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end() || it->second.empty()) return fallback;
  return std::stoll(it->second);
}

double Args::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end() || it->second.empty()) return fallback;
  // Locale-independent parse: std::stod honors LC_NUMERIC, so a
  // comma-decimal locale would silently misread "--load=1.5".
  const std::string& text = it->second;
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  NLDL_REQUIRE(ec == std::errc() && ptr == text.data() + text.size(),
               "unparseable number for --" + key + ": " + text);
  return value;
}

bool Args::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::string value = it->second;
  std::transform(value.begin(), value.end(), value.begin(),
                 [](unsigned char ch) { return std::tolower(ch); });
  if (value.empty() || value == "1" || value == "true" || value == "yes") {
    return true;
  }
  if (value == "0" || value == "false" || value == "no") return false;
  NLDL_REQUIRE(false, "unparseable boolean for --" + key + ": " + value);
  return fallback;  // unreachable
}

}  // namespace nldl::util
