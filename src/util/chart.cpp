#include "util/chart.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/assert.hpp"

namespace nldl::util {

AsciiChart::AsciiChart(std::size_t width, std::size_t height)
    : width_(width), height_(height) {
  NLDL_REQUIRE(width >= 16 && height >= 4, "chart area too small");
}

void AsciiChart::add_series(std::string name, char glyph,
                            std::vector<double> xs, std::vector<double> ys) {
  NLDL_REQUIRE(xs.size() == ys.size(), "series x/y lengths differ");
  NLDL_REQUIRE(!xs.empty(), "series must not be empty");
  series_.push_back(
      Series{std::move(name), glyph, std::move(xs), std::move(ys)});
}

std::string AsciiChart::render() const {
  NLDL_REQUIRE(!series_.empty(), "no series to render");
  double x_min = series_[0].xs[0];
  double x_max = x_min;
  double y_min = series_[0].ys[0];
  double y_max = y_min;
  for (const Series& s : series_) {
    for (const double x : s.xs) {
      x_min = std::min(x_min, x);
      x_max = std::max(x_max, x);
    }
    for (const double y : s.ys) {
      y_min = std::min(y_min, y);
      y_max = std::max(y_max, y);
    }
  }
  if (x_max == x_min) x_max = x_min + 1.0;  // nldl-lint: allow(double-eq): degenerate-range guard on exact min/max copies
  if (y_max == y_min) y_max = y_min + 1.0;  // nldl-lint: allow(double-eq): degenerate-range guard on exact min/max copies
  // A little headroom above so the top points are visible; the bottom
  // stays at the data minimum (ratio plots should not show fake
  // negatives).
  y_max += 0.05 * (y_max - y_min);

  std::vector<std::string> canvas(height_, std::string(width_, ' '));
  auto plot = [&](double x, double y, char glyph) {
    const auto col = static_cast<std::size_t>(std::llround(
        (x - x_min) / (x_max - x_min) * static_cast<double>(width_ - 1)));
    const auto row_from_bottom = static_cast<std::size_t>(std::llround(
        (y - y_min) / (y_max - y_min) * static_cast<double>(height_ - 1)));
    canvas[height_ - 1 - row_from_bottom][col] = glyph;
  };
  for (const Series& s : series_) {
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      plot(s.xs[i], s.ys[i], s.glyph);
    }
  }

  std::string out;
  if (!y_label_.empty()) out += y_label_ + "\n";
  char tick[32];
  for (std::size_t row = 0; row < height_; ++row) {
    if (row == 0) {
      std::snprintf(tick, sizeof(tick), "%9.3g |", y_max);
    } else if (row + 1 == height_) {
      std::snprintf(tick, sizeof(tick), "%9.3g |", y_min);
    } else {
      std::snprintf(tick, sizeof(tick), "%9s |", "");
    }
    out += tick;
    out += canvas[row];
    out += "\n";
  }
  out += std::string(10, ' ') + '+' + std::string(width_, '-') + "\n";
  std::snprintf(tick, sizeof(tick), "%9.3g", x_min);
  out += std::string(10, ' ') + tick;
  std::snprintf(tick, sizeof(tick), "%.3g", x_max);
  const std::string right = tick;
  const std::size_t used = 10 + 9;
  if (width_ > right.size() + 9) {
    out += std::string(width_ - right.size() - 9 + (10 - used + 9), ' ');
    out += right;
  }
  out += "\n";
  if (!x_label_.empty()) {
    out += std::string(10 + width_ / 2 - x_label_.size() / 2, ' ') +
           x_label_ + "\n";
  }
  for (const Series& s : series_) {
    out += "  ";
    out += s.glyph;
    out += " = " + s.name + "\n";
  }
  return out;
}

}  // namespace nldl::util
