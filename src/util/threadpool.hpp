// Minimal fixed-size thread pool.
//
// Used where the paper's algorithms are actually *executed* on one node
// (sample sort local sorts, matmul kernels, the MapReduce engine) as opposed
// to where platform time is *simulated* (src/sim). Follows the C++ Core
// Guidelines concurrency rules: no detached threads, joins in the
// destructor, futures for results.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/assert.hpp"

namespace nldl::util {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; the returned future yields its result (or exception).
  template <typename F>
  [[nodiscard]] auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using Result = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<Result()>>(
        std::forward<F>(fn));
    std::future<Result> future = task->get_future();
    {
      std::lock_guard lock(mutex_);
      NLDL_REQUIRE(!stopping_, "submit() on a stopping ThreadPool");
      tasks_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Run fn(i) for i in [begin, end) across the pool, blocking until all
/// indices complete. Work is split into contiguous chunks of at least
/// `grain` indices. Every chunk is waited on even when one throws — only
/// then is the first exception (in chunk order) rethrown, so no queued
/// task can outlive the caller's `fn` or chunk state.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  std::size_t grain,
                  const std::function<void(std::size_t)>& fn);

}  // namespace nldl::util
