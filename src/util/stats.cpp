#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/assert.hpp"

namespace nldl::util {

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double quantile_sorted(const std::vector<double>& sorted, double q) {
  NLDL_REQUIRE(!sorted.empty(), "quantile of empty sample");
  NLDL_REQUIRE(q >= 0.0 && q <= 1.0, "quantile order must be in [0,1]");
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double quantile(std::vector<double> sample, double q) {
  std::sort(sample.begin(), sample.end());
  return quantile_sorted(sample, q);
}

double mean_of(const std::vector<double>& sample) {
  NLDL_REQUIRE(!sample.empty(), "mean of empty sample");
  double acc = 0.0;
  for (const double x : sample) acc += x;
  return acc / static_cast<double>(sample.size());
}

double stddev_of(const std::vector<double>& sample) {
  RunningStats stats;
  for (const double x : sample) stats.push(x);
  return stats.stddev();
}

double jain_index(const std::vector<double>& allocations) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : allocations) {
    NLDL_REQUIRE(std::isfinite(x) && x >= 0.0,
                 "jain_index requires finite allocations >= 0");
    sum += x;
    sum_sq += x * x;
  }
  if (allocations.empty() || sum_sq == 0.0) return 1.0;
  return sum * sum /
         (static_cast<double>(allocations.size()) * sum_sq);
}

double imbalance_over_busy(const std::vector<double>& times) {
  double t_min = std::numeric_limits<double>::infinity();
  double t_max = 0.0;
  std::size_t busy = 0;
  for (const double t : times) {
    if (t <= 0.0) continue;
    ++busy;
    t_min = std::min(t_min, t);
    t_max = std::max(t_max, t);
  }
  if (busy < 2) return 0.0;
  return (t_max - t_min) / t_min;
}

std::size_t count_idle(const std::vector<double>& times) {
  std::size_t idle = 0;
  for (const double t : times) {
    if (t <= 0.0) ++idle;
  }
  return idle;
}

P2Quantile::P2Quantile(double q) : q_(q) {
  NLDL_REQUIRE(q >= 0.0 && q <= 1.0, "quantile order must be in [0,1]");
  increments_[0] = 0.0;
  increments_[1] = q / 2.0;
  increments_[2] = q;
  increments_[3] = (1.0 + q) / 2.0;
  increments_[4] = 1.0;
}

void P2Quantile::push(double x) {
  // Infinities are rejected too, not only NaN: a single +/-inf sample
  // permanently poisons the marker heights (inf - inf in the parabolic
  // update) and every later value() would silently be NaN.
  NLDL_REQUIRE(std::isfinite(x), "P2Quantile requires finite samples");
  if (count_ < 5) {
    // Warm-up: keep the first five observations sorted in the heights.
    std::size_t i = count_;
    while (i > 0 && heights_[i - 1] > x) {
      heights_[i] = heights_[i - 1];
      --i;
    }
    heights_[i] = x;
    ++count_;
    if (count_ == 5) {
      for (std::size_t m = 0; m < 5; ++m) {
        positions_[m] = static_cast<double>(m + 1);
        desired_[m] = 1.0 + 4.0 * increments_[m];
      }
    }
    return;
  }

  // Locate the cell [h_k, h_{k+1}) containing x, extending the extremes.
  std::size_t k = 0;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = std::max(heights_[4], x);
    k = 3;
  } else {
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }
  ++count_;
  for (std::size_t m = k + 1; m < 5; ++m) positions_[m] += 1.0;
  for (std::size_t m = 0; m < 5; ++m) desired_[m] += increments_[m];

  // Nudge the three interior markers toward their desired positions.
  for (std::size_t m = 1; m <= 3; ++m) {
    const double d = desired_[m] - positions_[m];
    const double ahead = positions_[m + 1] - positions_[m];
    const double behind = positions_[m - 1] - positions_[m];
    if ((d >= 1.0 && ahead > 1.0) || (d <= -1.0 && behind < -1.0)) {
      const double s = d >= 0.0 ? 1.0 : -1.0;
      // Piecewise-parabolic (P²) prediction of the adjusted height.
      const double hp =
          heights_[m] +
          s / (positions_[m + 1] - positions_[m - 1]) *
              ((positions_[m] - positions_[m - 1] + s) *
                   (heights_[m + 1] - heights_[m]) / ahead +
               (positions_[m + 1] - positions_[m] - s) *
                   (heights_[m] - heights_[m - 1]) / (-behind));
      if (heights_[m - 1] < hp && hp < heights_[m + 1]) {
        heights_[m] = hp;
      } else {
        // Parabolic prediction broke monotonicity: fall back to linear.
        const std::size_t n = s > 0.0 ? m + 1 : m - 1;
        heights_[m] += s * (heights_[n] - heights_[m]) /
                       (positions_[n] - positions_[m]);
      }
      positions_[m] += s;
    }
  }
}

double P2Quantile::value() const {
  NLDL_REQUIRE(count_ > 0, "P2Quantile estimate of empty sample");
  if (count_ <= 5) {
    // Up to and including the fifth sample the heights still hold the
    // whole sorted sample (markers only move from the sixth push on):
    // Exact linear-interpolation quantile of the (sorted) warm-up sample —
    // identical to the batch quantile_sorted() oracle.
    return quantile_sorted(
        std::vector<double>(heights_, heights_ + count_), q_);
  }
  return heights_[2];
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  NLDL_REQUIRE(lo < hi, "Histogram requires lo < hi");
  NLDL_REQUIRE(bins > 0, "Histogram requires at least one bin");
}

void Histogram::push(double x) noexcept {
  // NaN has no bin; counting it silently anywhere would skew the shape.
  if (std::isnan(x)) {
    ++nan_count_;
    return;
  }
  // Clamp in floating point *before* the integer cast: casting an
  // out-of-range double (e.g. +/-inf scaled by the bin count) to an
  // integer is undefined behavior. Infinities land on the boundary bins,
  // consistent with the documented clamping of out-of-range samples.
  const double span = hi_ - lo_;
  const double pos = std::clamp(
      (x - lo_) / span * static_cast<double>(counts_.size()), 0.0,
      static_cast<double>(counts_.size() - 1));
  ++counts_[static_cast<std::size_t>(pos)];
  ++total_;
}

std::size_t Histogram::count(std::size_t bin) const {
  NLDL_REQUIRE(bin < counts_.size(), "histogram bin out of range");
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  NLDL_REQUIRE(bin < counts_.size(), "histogram bin out of range");
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  return bin_lo(bin) + (hi_ - lo_) / static_cast<double>(counts_.size());
}

std::string Histogram::ascii(std::size_t width) const {
  std::size_t mode = 0;
  for (const std::size_t c : counts_) mode = std::max(mode, c);
  std::string out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    char label[64];
    std::snprintf(label, sizeof(label), "[%9.3f, %9.3f) %8zu |", bin_lo(b),
                  bin_hi(b), counts_[b]);
    out += label;
    const std::size_t bar =
        mode == 0 ? 0 : counts_[b] * width / std::max<std::size_t>(mode, 1);
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace nldl::util
