#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/assert.hpp"

namespace nldl::util {

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double quantile_sorted(const std::vector<double>& sorted, double q) {
  NLDL_REQUIRE(!sorted.empty(), "quantile of empty sample");
  NLDL_REQUIRE(q >= 0.0 && q <= 1.0, "quantile order must be in [0,1]");
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double quantile(std::vector<double> sample, double q) {
  std::sort(sample.begin(), sample.end());
  return quantile_sorted(sample, q);
}

double mean_of(const std::vector<double>& sample) {
  NLDL_REQUIRE(!sample.empty(), "mean of empty sample");
  double acc = 0.0;
  for (const double x : sample) acc += x;
  return acc / static_cast<double>(sample.size());
}

double stddev_of(const std::vector<double>& sample) {
  RunningStats stats;
  for (const double x : sample) stats.push(x);
  return stats.stddev();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  NLDL_REQUIRE(lo < hi, "Histogram requires lo < hi");
  NLDL_REQUIRE(bins > 0, "Histogram requires at least one bin");
}

void Histogram::push(double x) noexcept {
  const double span = hi_ - lo_;
  auto bin = static_cast<long long>((x - lo_) / span *
                                    static_cast<double>(counts_.size()));
  bin = std::clamp(bin, 0LL, static_cast<long long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::size_t Histogram::count(std::size_t bin) const {
  NLDL_REQUIRE(bin < counts_.size(), "histogram bin out of range");
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  NLDL_REQUIRE(bin < counts_.size(), "histogram bin out of range");
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  return bin_lo(bin) + (hi_ - lo_) / static_cast<double>(counts_.size());
}

std::string Histogram::ascii(std::size_t width) const {
  std::size_t mode = 0;
  for (const std::size_t c : counts_) mode = std::max(mode, c);
  std::string out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    char label[64];
    std::snprintf(label, sizeof(label), "[%9.3f, %9.3f) %8zu |", bin_lo(b),
                  bin_hi(b), counts_[b]);
    out += label;
    const std::size_t bar =
        mode == 0 ? 0 : counts_[b] * width / std::max<std::size_t>(mode, 1);
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace nldl::util
