#include "sort/theory.hpp"

#include <algorithm>
#include <cmath>

#include "dlt/analysis.hpp"
#include "sort/sample_sort.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace nldl::sort {

namespace {

/// Draw a sample of `sample_size` uniform keys, pick splitters at `ranks`,
/// and return the bucket counts of `n` uniform keys — computed analytically
/// from the splitter values: a uniform key lands below splitter value v
/// with probability v, so counts follow a multinomial we sample directly.
std::vector<std::size_t> bucket_counts_one_trial(
    std::size_t n, std::size_t sample_size,
    const std::vector<std::size_t>& ranks, util::Rng& rng) {
  std::vector<double> sample(sample_size);
  for (double& key : sample) key = rng.uniform();
  std::sort(sample.begin(), sample.end());

  std::vector<double> splitters;
  splitters.reserve(ranks.size());
  for (const std::size_t rank : ranks) splitters.push_back(sample[rank]);

  // Multinomial draw via sequential binomials. Binomial sampled by
  // normal approximation for large counts, exact Bernoulli sum otherwise.
  const std::size_t buckets = ranks.size() + 1;
  std::vector<std::size_t> counts(buckets, 0);
  std::size_t remaining = n;
  double mass_left = 1.0;
  double previous = 0.0;
  for (std::size_t b = 0; b + 1 < buckets; ++b) {
    const double width = splitters[b] - previous;
    previous = splitters[b];
    if (remaining == 0 || mass_left <= 0.0) break;
    const double prob = std::clamp(width / mass_left, 0.0, 1.0);
    std::size_t draw;
    const double mean = static_cast<double>(remaining) * prob;
    const double var = mean * (1.0 - prob);
    if (remaining > 1000 && var > 25.0) {
      const double g = rng.normal(mean, std::sqrt(var));
      draw = static_cast<std::size_t>(std::clamp(
          std::llround(g), 0LL, static_cast<long long>(remaining)));
    } else {
      draw = 0;
      for (std::size_t t = 0; t < remaining; ++t) {
        if (rng.uniform() < prob) ++draw;
      }
    }
    counts[b] = draw;
    remaining -= draw;
    mass_left -= width;
  }
  counts[buckets - 1] = remaining;
  return counts;
}

}  // namespace

BucketBoundCheck validate_max_bucket_bound(std::size_t n, std::size_t p,
                                           std::size_t trials,
                                           std::uint64_t seed) {
  NLDL_REQUIRE(n > 1 && p >= 2, "need n > 1 and p >= 2");
  NLDL_REQUIRE(trials >= 1, "need at least one trial");
  BucketBoundCheck check;
  check.n = n;
  check.p = p;
  check.trials = trials;
  check.threshold = dlt::max_bucket_bound(static_cast<double>(n), p);
  check.probability_bound =
      dlt::max_bucket_bound_probability(static_cast<double>(n));

  const std::size_t s = default_oversampling(n);
  check.oversampling = s;
  const std::size_t sample_size = s * p;
  const std::vector<std::size_t> ranks = homogeneous_splitter_ranks(p, s);

  util::Rng rng(seed);
  double sum_ratio = 0.0;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    const auto counts = bucket_counts_one_trial(n, sample_size, ranks, rng);
    const std::size_t max_bucket =
        *std::max_element(counts.begin(), counts.end());
    if (static_cast<double>(max_bucket) >= check.threshold) {
      ++check.violations;
    }
    sum_ratio += static_cast<double>(max_bucket) /
                 (static_cast<double>(n) / static_cast<double>(p));
  }
  check.violation_rate =
      static_cast<double>(check.violations) / static_cast<double>(trials);
  check.mean_max_over_expected = sum_ratio / static_cast<double>(trials);
  return check;
}

BucketBoundCheck validate_max_bucket_bound_heterogeneous(
    std::size_t n, const std::vector<double>& speeds, std::size_t trials,
    std::uint64_t seed) {
  NLDL_REQUIRE(n > 1 && speeds.size() >= 2, "need n > 1 and p >= 2");
  NLDL_REQUIRE(trials >= 1, "need at least one trial");
  const std::size_t p = speeds.size();
  BucketBoundCheck check;
  check.n = n;
  check.p = p;
  check.trials = trials;
  // Same slack factor, applied to each bucket's own expected share x_i·N.
  const double slack =
      1.0 + std::pow(1.0 / std::log(static_cast<double>(n)), 1.0 / 3.0);
  check.threshold = slack;  // interpreted as a per-bucket relative threshold
  check.probability_bound =
      dlt::max_bucket_bound_probability(static_cast<double>(n));

  const std::size_t s = default_oversampling(n);
  check.oversampling = s;
  const std::size_t sample_size = s * p;
  const std::vector<std::size_t> ranks =
      heterogeneous_splitter_ranks(speeds, sample_size);

  double total_speed = 0.0;
  for (const double v : speeds) total_speed += v;

  util::Rng rng(seed);
  double sum_ratio = 0.0;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    const auto counts = bucket_counts_one_trial(n, sample_size, ranks, rng);
    double worst = 0.0;
    for (std::size_t i = 0; i < p; ++i) {
      const double expected =
          static_cast<double>(n) * speeds[i] / total_speed;
      worst = std::max(worst, static_cast<double>(counts[i]) / expected);
    }
    if (worst >= slack) ++check.violations;
    sum_ratio += worst;
  }
  check.violation_rate =
      static_cast<double>(check.violations) / static_cast<double>(trials);
  check.mean_max_over_expected = sum_ratio / static_cast<double>(trials);
  return check;
}

}  // namespace nldl::sort
