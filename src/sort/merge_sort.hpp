// Parallel merge sort — the comparison baseline for sample sort.
//
// Sample sort's selling point in the paper is that its *parallel phase* is
// a divisible load (independent buckets, no merging). Parallel merge sort
// is the natural contrast: its local sorts are embarrassingly parallel,
// but the p-way merge at the end is inherently sequential-ish work that
// does NOT divide — exactly the kind of residual dependency the paper's
// framework highlights. The bench pits the two against each other.
#pragma once

#include <algorithm>
#include <vector>

#include "util/assert.hpp"
#include "util/threadpool.hpp"

namespace nldl::sort {

/// Sort by splitting into `ways` equal runs, sorting each (in the pool if
/// provided), then k-way merging. Stable ordering is not guaranteed.
template <typename T>
std::vector<T> parallel_merge_sort(std::vector<T> data, std::size_t ways,
                                   util::ThreadPool* pool = nullptr) {
  NLDL_REQUIRE(ways >= 1, "ways must be >= 1");
  if (data.size() < 2 || ways == 1) {
    std::sort(data.begin(), data.end());
    return data;
  }
  const std::size_t n = data.size();
  // Run boundaries.
  std::vector<std::size_t> bounds(ways + 1, 0);
  for (std::size_t r = 0; r <= ways; ++r) bounds[r] = n * r / ways;

  auto sort_run = [&](std::size_t r) {
    std::sort(data.begin() + static_cast<std::ptrdiff_t>(bounds[r]),
              data.begin() + static_cast<std::ptrdiff_t>(bounds[r + 1]));
  };
  if (pool != nullptr) {
    std::vector<std::future<void>> futures;
    futures.reserve(ways);
    for (std::size_t r = 0; r < ways; ++r) {
      futures.push_back(pool->submit([&, r] { sort_run(r); }));
    }
    for (auto& future : futures) future.get();
  } else {
    for (std::size_t r = 0; r < ways; ++r) sort_run(r);
  }

  // Iterative pairwise merge (log2(ways) passes).
  std::vector<T> buffer(n);
  std::vector<std::size_t> current = bounds;
  while (current.size() > 2) {
    std::vector<std::size_t> next;
    next.push_back(0);
    for (std::size_t r = 0; r + 2 < current.size(); r += 2) {
      std::merge(data.begin() + static_cast<std::ptrdiff_t>(current[r]),
                 data.begin() + static_cast<std::ptrdiff_t>(current[r + 1]),
                 data.begin() + static_cast<std::ptrdiff_t>(current[r + 1]),
                 data.begin() + static_cast<std::ptrdiff_t>(current[r + 2]),
                 buffer.begin() + static_cast<std::ptrdiff_t>(current[r]));
      next.push_back(current[r + 2]);
    }
    if (current.size() % 2 == 0) {  // odd number of runs: copy the last
      std::copy(data.begin() +
                    static_cast<std::ptrdiff_t>(current[current.size() - 2]),
                data.end(),
                buffer.begin() +
                    static_cast<std::ptrdiff_t>(current[current.size() - 2]));
      next.back() = current[current.size() - 2];
      next.push_back(current.back());
    }
    data.swap(buffer);
    current = std::move(next);
  }
  return data;
}

}  // namespace nldl::sort
