// Extension: the Section 3 sorting pipeline placed on the Section 1.2
// star platform — making "sorting is amenable to DLT" a simulated
// end-to-end schedule rather than a cost formula.
//
// Phases on the model platform:
//   Step 1 (master): sort the s·p sample               — w₀·s·p·log₂(s·p)
//   Step 2 (master): bucketize N keys (binary search)  — w₀·N·log₂(p)
//   Scatter: send bucket i to worker i                 — c_i·bucket_i
//            (parallel links: transfers overlap; one-port: serialized)
//   Step 3 (worker): local sort                        — w_i·b_i·log₂(b_i)
//
// The makespan is compared against the ideal fully-divisible time
// (Σ-speed-weighted N·log₂N), quantifying the "almost" in almost
// divisible.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "platform/platform.hpp"
#include "sim/engine.hpp"

namespace nldl::sort {

struct DistributedSortConfig {
  double master_w = 1.0;    ///< master's time per unit of comparison work
  std::size_t oversampling = 0;  ///< 0 = paper's log²N
  /// Communication model for the scatter phase (simulated by sim::Engine).
  sim::CommModelKind comm_model = sim::CommModelKind::kParallelLinks;
  /// Master aggregate bandwidth, used when comm_model is kBoundedMultiport.
  double master_capacity = std::numeric_limits<double>::infinity();
  /// Use speed-proportional buckets (Section 3.2) instead of equal shares.
  bool heterogeneous_buckets = true;
};

struct DistributedSortPlan {
  std::vector<double> bucket_sizes;  ///< expected b_i per worker
  double step1_time = 0.0;           ///< sample sort on the master
  double step2_time = 0.0;           ///< bucketize on the master
  double scatter_time = 0.0;         ///< bucket transfers (model-dependent)
  double step3_time = 0.0;           ///< slowest worker's local sort
  double makespan = 0.0;             ///< total pipeline time
  /// Ideal divisible-load time: all comparison work spread over all
  /// workers by speed, ignoring preprocessing and transfers.
  double ideal_time = 0.0;
  /// makespan / ideal_time — tends to 1 for large N (the Section 3 claim).
  double overhead_ratio = 0.0;
};

/// Build the model schedule for sorting `n` keys on the platform.
/// Bucket sizes use the *expected* shares (the w.h.p. values of Theorem
/// B.4); the Monte-Carlo machinery in sort/theory.hpp quantifies deviations.
[[nodiscard]] DistributedSortPlan plan_distributed_sort(
    const platform::Platform& platform, double n,
    const DistributedSortConfig& config = {});

}  // namespace nldl::sort
