// Monte-Carlo validation of the sample-sort bucket-size bound
// (Theorem B.4 of Blelloch et al., as used in paper Section 3.1).
#pragma once

#include <cstdint>
#include <vector>

namespace nldl::sort {

struct BucketBoundCheck {
  std::size_t n = 0;
  std::size_t p = 0;
  std::size_t oversampling = 0;   ///< s = log²N used for the trials
  double threshold = 0.0;         ///< (N/p)·(1 + (1/ln N)^(1/3))
  double probability_bound = 0.0; ///< N^(−1/3)
  std::size_t trials = 0;
  std::size_t violations = 0;     ///< trials with MaxSize >= threshold
  double violation_rate = 0.0;
  double mean_max_over_expected = 0.0;  ///< E[MaxSize/(N/p)]
};

/// Run `trials` independent splitter draws over uniformly random keys and
/// count how often the largest bucket exceeds the theorem's threshold.
/// Only bucket *counts* are computed (no sorting), so large N is cheap.
[[nodiscard]] BucketBoundCheck validate_max_bucket_bound(std::size_t n,
                                                         std::size_t p,
                                                         std::size_t trials,
                                                         std::uint64_t seed);

/// Same Monte-Carlo check for the heterogeneous splitters of Section 3.2:
/// verifies that max_i bucket_i/(x_i·N) stays within the same slack factor.
[[nodiscard]] BucketBoundCheck validate_max_bucket_bound_heterogeneous(
    std::size_t n, const std::vector<double>& speeds, std::size_t trials,
    std::uint64_t seed);

}  // namespace nldl::sort
