#include "sort/sample_sort.hpp"

#include <cmath>

namespace nldl::sort {

std::size_t default_oversampling(std::size_t n) {
  if (n < 2) return 1;
  const double log_n = std::log2(static_cast<double>(n));
  return static_cast<std::size_t>(std::max(1.0, std::ceil(log_n * log_n)));
}

std::vector<std::size_t> homogeneous_splitter_ranks(std::size_t p,
                                                    std::size_t s) {
  NLDL_REQUIRE(p >= 1, "p must be >= 1");
  NLDL_REQUIRE(s >= 1, "oversampling must be >= 1");
  std::vector<std::size_t> ranks;
  ranks.reserve(p - 1);
  for (std::size_t i = 1; i < p; ++i) ranks.push_back(i * s);
  return ranks;
}

std::vector<std::size_t> heterogeneous_splitter_ranks(
    const std::vector<double>& speeds, std::size_t sample_size) {
  NLDL_REQUIRE(!speeds.empty(), "speeds must not be empty");
  NLDL_REQUIRE(sample_size >= speeds.size(),
               "sample must contain at least one key per bucket");
  double total = 0.0;
  for (const double s : speeds) {
    NLDL_REQUIRE(s > 0.0, "speeds must be positive");
    total += s;
  }
  std::vector<std::size_t> ranks;
  ranks.reserve(speeds.size() - 1);
  double cumulative = 0.0;
  std::size_t previous = 0;
  for (std::size_t i = 0; i + 1 < speeds.size(); ++i) {
    cumulative += speeds[i];
    auto rank = static_cast<std::size_t>(
        cumulative / total * static_cast<double>(sample_size - 1));
    // Ranks must be strictly increasing so buckets stay well-formed even
    // when some share rounds to zero sample keys.
    rank = std::max(rank, previous + (i > 0 ? 1 : 0));
    rank = std::min(rank, sample_size - 1);
    ranks.push_back(rank);
    previous = rank;
  }
  // Backward pass: the forward forcing can push trailing ranks past the
  // sample when a huge share sits first (e.g. speeds {1e9, ε, ε}); pull
  // them back while keeping strict monotonicity. Feasible because
  // sample_size >= p.
  for (std::size_t i = ranks.size(); i-- > 0;) {
    const std::size_t cap = sample_size - (ranks.size() - i);
    ranks[i] = std::min(ranks[i], cap);
    if (i + 1 < ranks.size() && ranks[i] >= ranks[i + 1]) {
      ranks[i] = ranks[i + 1] - 1;
    }
  }
  return ranks;
}

}  // namespace nldl::sort
