#include "sort/distributed.hpp"

#include <algorithm>
#include <cmath>

#include "sort/sample_sort.hpp"
#include "util/assert.hpp"

namespace nldl::sort {

DistributedSortPlan plan_distributed_sort(
    const platform::Platform& platform, double n,
    const DistributedSortConfig& config) {
  NLDL_REQUIRE(n > 1.0, "need more than one key");
  NLDL_REQUIRE(config.master_w > 0.0, "master speed must be positive");
  const std::size_t p = platform.size();

  DistributedSortPlan plan;

  // Bucket shares.
  plan.bucket_sizes.resize(p);
  const double total_speed = platform.total_speed();
  for (std::size_t i = 0; i < p; ++i) {
    const double share = config.heterogeneous_buckets
                             ? platform.speed(i) / total_speed
                             : 1.0 / static_cast<double>(p);
    plan.bucket_sizes[i] = share * n;
  }

  // Master preprocessing.
  const double s =
      config.oversampling != 0
          ? static_cast<double>(config.oversampling)
          : static_cast<double>(default_oversampling(
                static_cast<std::size_t>(n)));
  const double sample = s * static_cast<double>(p);
  plan.step1_time =
      config.master_w * sample * std::log2(std::max(2.0, sample));
  plan.step2_time =
      config.master_w * n * std::log2(std::max(2.0, double(p)));

  // Scatter + local sorts. Workers start sorting when their bucket lands;
  // arrival times come from the engine under the configured comm model.
  const sim::Engine engine(platform);
  const auto model = sim::make_comm_model(config.comm_model,
                                          config.master_capacity);
  const sim::SimResult scatter =
      engine.run_single_round(plan.bucket_sizes, *model);
  double makespan = 0.0;
  double scatter_end = 0.0;
  for (const sim::ChunkSpan& span : scatter.spans) {
    const std::size_t i = span.worker;
    const double arrive = span.comm_end;
    scatter_end = std::max(scatter_end, arrive);
    const double bucket = std::max(2.0, plan.bucket_sizes[i]);
    const double local_sort =
        platform.w(i) * plan.bucket_sizes[i] * std::log2(bucket);
    makespan = std::max(makespan, arrive + local_sort);
  }
  plan.scatter_time = scatter_end;
  plan.step3_time = makespan - 0.0;  // relative to scatter start
  plan.makespan = plan.step1_time + plan.step2_time + makespan;

  // Ideal: all N·log2 N comparison work spread over aggregate speed.
  plan.ideal_time = n * std::log2(n) / total_speed;
  plan.overhead_ratio = plan.makespan / plan.ideal_time;
  return plan;
}

}  // namespace nldl::sort
