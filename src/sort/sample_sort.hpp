// Parallel sample sort (paper Section 3).
//
// Sorting costs N·log N — "almost linear" — and becomes a genuine divisible
// load after a cheap preprocessing phase (Frazer–McKellar sample sort):
//   Step 1: draw and sort a sample of s·p keys; keep p−1 splitters
//           (oversampling ratio s reduces bucket-size skew; the paper takes
//           s = log² N).
//   Step 2: route every key to its bucket by binary search (N·log p, on the
//           master).
//   Step 3: sort the p buckets independently — this is the divisible phase
//           (one bucket per worker).
//
// Section 3.2 extends the scheme to heterogeneous workers: splitters are
// taken at sample ranks proportional to cumulative normalized speeds, so
// bucket i has expected size x_i·N and every worker finishes in ≈ the same
// time w.h.p.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"

namespace nldl::sort {

struct SampleSortConfig {
  std::size_t num_buckets = 1;  ///< p (one bucket per worker)
  /// Oversampling ratio s; 0 selects the paper's s = ⌈log₂²N⌉.
  std::size_t oversampling = 0;
  std::uint64_t seed = util::Rng::kDefaultSeed;
  /// Optional pool for parallel Step-3 local sorts (nullptr = serial).
  util::ThreadPool* pool = nullptr;
};

struct SampleSortStats {
  std::size_t n = 0;
  std::size_t num_buckets = 0;
  std::size_t oversampling = 0;
  std::vector<std::size_t> bucket_sizes;
  std::size_t max_bucket = 0;
  /// MaxSize / (N/p): the quantity bounded by Theorem B.4 (homogeneous).
  double max_over_expected = 0.0;
  double step1_seconds = 0.0;
  double step2_seconds = 0.0;
  double step3_seconds = 0.0;
};

namespace detail {

/// Step 1: splitter keys at the given sample ranks. `ranks` must be
/// strictly increasing and < sample size.
template <typename T>
std::vector<T> select_splitters(const std::vector<T>& data,
                                std::size_t sample_size,
                                const std::vector<std::size_t>& ranks,
                                util::Rng& rng) {
  std::vector<T> sample;
  sample.reserve(sample_size);
  for (std::size_t i = 0; i < sample_size; ++i) {
    const auto index = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(data.size()) - 1));
    sample.push_back(data[index]);
  }
  std::sort(sample.begin(), sample.end());
  std::vector<T> splitters;
  splitters.reserve(ranks.size());
  for (const std::size_t rank : ranks) {
    NLDL_ASSERT(rank < sample.size(), "splitter rank out of sample range");
    splitters.push_back(sample[rank]);
  }
  return splitters;
}

/// Step 2: bucket index of each key (binary search over splitters).
template <typename T>
std::vector<std::uint32_t> classify(const std::vector<T>& data,
                                    const std::vector<T>& splitters) {
  std::vector<std::uint32_t> bucket_of(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto it =
        std::upper_bound(splitters.begin(), splitters.end(), data[i]);
    bucket_of[i] =
        static_cast<std::uint32_t>(std::distance(splitters.begin(), it));
  }
  return bucket_of;
}

}  // namespace detail

/// Compute the paper's oversampling ratio ⌈log₂²N⌉ (at least 1).
[[nodiscard]] std::size_t default_oversampling(std::size_t n);

/// Splitter sample ranks for homogeneous buckets: s, 2s, …, (p−1)s.
[[nodiscard]] std::vector<std::size_t> homogeneous_splitter_ranks(
    std::size_t p, std::size_t s);

/// Splitter sample ranks for heterogeneous buckets (Section 3.2): rank of
/// splitter i is ⌊cum_x_i · (sample_size − 1)⌋ where cum_x_i is the
/// cumulative normalized speed of workers 1..i.
[[nodiscard]] std::vector<std::size_t> heterogeneous_splitter_ranks(
    const std::vector<double>& speeds, std::size_t sample_size);

/// Full sample sort with equal-share buckets. Returns the sorted data.
template <typename T>
std::vector<T> sample_sort(std::vector<T> data, const SampleSortConfig& config,
                           SampleSortStats* stats = nullptr);

/// Sample sort with speed-proportional buckets; bucket i targets share
/// x_i·N. speeds.size() defines the bucket count (overrides config).
template <typename T>
std::vector<T> sample_sort_heterogeneous(std::vector<T> data,
                                         const std::vector<double>& speeds,
                                         const SampleSortConfig& config,
                                         SampleSortStats* stats = nullptr);

// ---------------------------------------------------------------------------
// implementation
// ---------------------------------------------------------------------------

namespace detail {

template <typename T>
std::vector<T> sample_sort_impl(std::vector<T> data,
                                const std::vector<std::size_t>& ranks,
                                std::size_t num_buckets,
                                std::size_t sample_size,
                                const SampleSortConfig& config,
                                SampleSortStats* stats) {
  using Clock = std::chrono::steady_clock;
  const auto seconds_between = [](Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double>(b - a).count();
  };

  if (stats != nullptr) {
    *stats = SampleSortStats{};
    stats->n = data.size();
    stats->num_buckets = num_buckets;
  }
  if (data.size() < 2 || num_buckets < 2) {
    const auto t0 = Clock::now();  // nldl-lint: allow(nondet-source): step wall-time instrumentation reported in SampleSortStats — never feeds the sort
    std::sort(data.begin(), data.end());
    if (stats != nullptr) {
      stats->bucket_sizes.assign(1, data.size());
      stats->max_bucket = data.size();
      stats->max_over_expected = 1.0;
      stats->step3_seconds = seconds_between(t0, Clock::now());  // nldl-lint: allow(nondet-source): step wall-time instrumentation reported in SampleSortStats — never feeds the sort
    }
    return data;
  }

  util::Rng rng(config.seed);

  // Step 1: splitters.
  const auto t0 = Clock::now();  // nldl-lint: allow(nondet-source): step wall-time instrumentation reported in SampleSortStats — never feeds the sort
  const std::vector<T> splitters =
      select_splitters(data, sample_size, ranks, rng);
  const auto t1 = Clock::now();  // nldl-lint: allow(nondet-source): step wall-time instrumentation reported in SampleSortStats — never feeds the sort

  // Step 2: classify and scatter (stable counting scatter).
  const std::vector<std::uint32_t> bucket_of = classify(data, splitters);
  std::vector<std::size_t> counts(num_buckets, 0);
  for (const std::uint32_t b : bucket_of) ++counts[b];
  std::vector<std::size_t> offsets(num_buckets + 1, 0);
  for (std::size_t b = 0; b < num_buckets; ++b) {
    offsets[b + 1] = offsets[b] + counts[b];
  }
  std::vector<T> scattered(data.size());
  {
    std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
    for (std::size_t i = 0; i < data.size(); ++i) {
      scattered[cursor[bucket_of[i]]++] = data[i];
    }
  }
  const auto t2 = Clock::now();  // nldl-lint: allow(nondet-source): step wall-time instrumentation reported in SampleSortStats — never feeds the sort

  // Step 3: local sorts, one bucket per (virtual) worker.
  if (config.pool != nullptr) {
    std::vector<std::future<void>> futures;
    futures.reserve(num_buckets);
    for (std::size_t b = 0; b < num_buckets; ++b) {
      futures.push_back(config.pool->submit([&scattered, &offsets, b] {
        std::sort(scattered.begin() + static_cast<std::ptrdiff_t>(offsets[b]),
                  scattered.begin() +
                      static_cast<std::ptrdiff_t>(offsets[b + 1]));
      }));
    }
    for (auto& future : futures) future.get();
  } else {
    for (std::size_t b = 0; b < num_buckets; ++b) {
      std::sort(scattered.begin() + static_cast<std::ptrdiff_t>(offsets[b]),
                scattered.begin() + static_cast<std::ptrdiff_t>(offsets[b + 1]));
    }
  }
  const auto t3 = Clock::now();  // nldl-lint: allow(nondet-source): step wall-time instrumentation reported in SampleSortStats — never feeds the sort

  if (stats != nullptr) {
    stats->oversampling = sample_size / num_buckets;
    stats->bucket_sizes = counts;
    stats->max_bucket = *std::max_element(counts.begin(), counts.end());
    stats->max_over_expected =
        static_cast<double>(stats->max_bucket) /
        (static_cast<double>(data.size()) / static_cast<double>(num_buckets));
    stats->step1_seconds = seconds_between(t0, t1);
    stats->step2_seconds = seconds_between(t1, t2);
    stats->step3_seconds = seconds_between(t2, t3);
  }
  return scattered;
}

}  // namespace detail

template <typename T>
std::vector<T> sample_sort(std::vector<T> data, const SampleSortConfig& config,
                           SampleSortStats* stats) {
  NLDL_REQUIRE(config.num_buckets >= 1, "num_buckets must be >= 1");
  const std::size_t p = config.num_buckets;
  std::size_t s = config.oversampling != 0 ? config.oversampling
                                           : default_oversampling(data.size());
  // The sample must contain rank (p-1)·s, and we cannot use more keys than
  // we have.
  std::size_t sample_size = s * p;
  if (sample_size > data.size() && p >= 2) {
    sample_size = std::max<std::size_t>(data.size(), p);
    s = std::max<std::size_t>(sample_size / p, 1);
    sample_size = s * p;
  }
  return detail::sample_sort_impl(std::move(data),
                                  homogeneous_splitter_ranks(p, s), p,
                                  sample_size, config, stats);
}

template <typename T>
std::vector<T> sample_sort_heterogeneous(std::vector<T> data,
                                         const std::vector<double>& speeds,
                                         const SampleSortConfig& config,
                                         SampleSortStats* stats) {
  NLDL_REQUIRE(!speeds.empty(), "speeds must not be empty");
  const std::size_t p = speeds.size();
  std::size_t s = config.oversampling != 0 ? config.oversampling
                                           : default_oversampling(data.size());
  std::size_t sample_size = s * p;
  if (sample_size > data.size() && p >= 2) {
    sample_size = std::max<std::size_t>(data.size(), p);
  }
  return detail::sample_sort_impl(
      std::move(data), heterogeneous_splitter_ranks(speeds, sample_size), p,
      sample_size, config, stats);
}

}  // namespace nldl::sort
