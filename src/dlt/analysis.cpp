#include "dlt/analysis.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace nldl::dlt {

double remaining_fraction_homogeneous(std::size_t p, double alpha) {
  NLDL_REQUIRE(p >= 1, "p must be >= 1");
  NLDL_REQUIRE(alpha >= 1.0, "alpha must be >= 1");
  return 1.0 - std::pow(static_cast<double>(p), 1.0 - alpha);
}

double sorting_remaining_fraction(double n, std::size_t p) {
  NLDL_REQUIRE(n > 1.0, "n must exceed 1");
  NLDL_REQUIRE(p >= 1, "p must be >= 1");
  return std::log(static_cast<double>(p)) / std::log(n);
}

double sample_sort_oversampling(double n) {
  NLDL_REQUIRE(n > 1.0, "n must exceed 1");
  const double log_n = std::log2(n);
  return log_n * log_n;
}

double sample_sort_step1_cost(double n, std::size_t p) {
  NLDL_REQUIRE(p >= 1, "p must be >= 1");
  const double sample = sample_sort_oversampling(n) * static_cast<double>(p);
  return sample * std::log2(sample);
}

double sample_sort_step2_cost(double n, std::size_t p) {
  NLDL_REQUIRE(n > 1.0, "n must exceed 1");
  NLDL_REQUIRE(p >= 1, "p must be >= 1");
  return n * std::log2(static_cast<double>(p < 2 ? 2 : p));
}

double sample_sort_step3_cost(double n, std::size_t p) {
  NLDL_REQUIRE(n > 1.0, "n must exceed 1");
  NLDL_REQUIRE(p >= 1, "p must be >= 1");
  return n / static_cast<double>(p) * std::log2(n);
}

double max_bucket_bound(double n, std::size_t p) {
  NLDL_REQUIRE(n > 1.0, "n must exceed 1");
  NLDL_REQUIRE(p >= 1, "p must be >= 1");
  const double slack = std::pow(1.0 / std::log(n), 1.0 / 3.0);
  return n / static_cast<double>(p) * (1.0 + slack);
}

double max_bucket_bound_probability(double n) {
  NLDL_REQUIRE(n > 1.0, "n must exceed 1");
  return std::pow(n, -1.0 / 3.0);
}

}  // namespace nldl::dlt
