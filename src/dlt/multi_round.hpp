// Multi-round (multi-installment) divisible load scheduling.
//
// The paper's Section 1.2 recalls the two classical dissemination modes:
// single installment and multiple rounds, where "the communications will
// be shorter (less latency) and pipelined, and the workers will be able to
// compute the current chunk while receiving data for the next one". This
// module provides the multi-round machinery for the one-port star:
//   - uniform rounds (equal installments),
//   - geometric rounds (installments growing by a fixed ratio — the shape
//     the classical multi-round analyses derive for one-port stars),
//   - an auto-tuner that picks the best round count by simulation.
#pragma once

#include <cstddef>
#include <vector>

#include "platform/platform.hpp"
#include "sim/engine.hpp"

namespace nldl::dlt {

struct MultiRoundPlan {
  std::vector<sim::ChunkAssignment> schedule;
  std::size_t rounds = 1;
  double simulated_makespan = 0.0;
};

/// Uniform multi-round: the one-port single-round allocation split into R
/// equal installments per worker, interleaved round-robin. Simulated under
/// the one-port model with pipelining.
[[nodiscard]] MultiRoundPlan uniform_multi_round(
    const platform::Platform& platform, double total_load,
    std::size_t rounds);

/// Geometric multi-round: per-worker installments grow by `ratio` from
/// round to round (ratio > 1 front-loads later rounds, shrinking the
/// startup gap). Total per worker matches the single-round optimum.
[[nodiscard]] MultiRoundPlan geometric_multi_round(
    const platform::Platform& platform, double total_load,
    std::size_t rounds, double ratio);

/// Try round counts 1..max_rounds (uniform and a small grid of geometric
/// ratios) and return the plan with the smallest simulated makespan.
[[nodiscard]] MultiRoundPlan best_multi_round(
    const platform::Platform& platform, double total_load,
    std::size_t max_rounds = 16);

}  // namespace nldl::dlt
