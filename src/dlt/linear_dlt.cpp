#include "dlt/linear_dlt.hpp"

#include <algorithm>
#include <numeric>

#include "util/assert.hpp"

namespace nldl::dlt {

double Allocation::total() const noexcept {
  double sum = 0.0;
  for (const double amount : amounts) sum += amount;
  return sum;
}

std::vector<sim::ChunkAssignment> Allocation::to_schedule() const {
  return sim::single_round_schedule(amounts);
}

std::vector<sim::ChunkAssignment> Allocation::to_schedule(
    const std::vector<std::size_t>& send_order) const {
  return sim::single_round_schedule(amounts, send_order);
}

Allocation linear_parallel_single_round(const platform::Platform& platform,
                                        double total_load) {
  NLDL_REQUIRE(total_load >= 0.0, "total_load must be >= 0");
  const std::size_t p = platform.size();
  double inv_sum = 0.0;
  for (std::size_t i = 0; i < p; ++i) {
    inv_sum += 1.0 / (platform.c(i) + platform.w(i));
  }
  const double makespan = total_load / inv_sum;
  Allocation alloc;
  alloc.makespan = makespan;
  alloc.amounts.resize(p);
  for (std::size_t i = 0; i < p; ++i) {
    alloc.amounts[i] = makespan / (platform.c(i) + platform.w(i));
  }
  return alloc;
}

Allocation linear_one_port_single_round(
    const platform::Platform& platform, double total_load,
    const std::vector<std::size_t>& send_order) {
  NLDL_REQUIRE(total_load >= 0.0, "total_load must be >= 0");
  const std::size_t p = platform.size();
  NLDL_REQUIRE(send_order.size() == p,
               "send order must cover every worker exactly once");
  std::vector<bool> seen(p, false);
  for (const std::size_t worker : send_order) {
    NLDL_REQUIRE(worker < p, "send order index out of range");
    NLDL_REQUIRE(!seen[worker], "send order repeats a worker");
    seen[worker] = true;
  }

  // Unnormalized amounts along the order: m_0 = 1,
  // m_{j} = m_{j-1} * w_{prev} / (c_j + w_j).
  std::vector<double> unnormalized(p, 0.0);
  double prev = 1.0;
  unnormalized[send_order[0]] = prev;
  for (std::size_t idx = 1; idx < p; ++idx) {
    const std::size_t prev_worker = send_order[idx - 1];
    const std::size_t worker = send_order[idx];
    prev = prev * platform.w(prev_worker) /
           (platform.c(worker) + platform.w(worker));
    unnormalized[worker] = prev;
  }
  double sum = 0.0;
  for (const double m : unnormalized) sum += m;
  const double scale = total_load / sum;

  Allocation alloc;
  alloc.amounts.resize(p);
  for (std::size_t i = 0; i < p; ++i) {
    alloc.amounts[i] = unnormalized[i] * scale;
  }
  // Finish time of the first-fed worker = (c+w)·n for that worker.
  const std::size_t first = send_order[0];
  alloc.makespan =
      (platform.c(first) + platform.w(first)) * alloc.amounts[first];
  return alloc;
}

Allocation linear_one_port_single_round(const platform::Platform& platform,
                                        double total_load) {
  std::vector<std::size_t> order(platform.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  return linear_one_port_single_round(platform, total_load, order);
}

std::vector<std::size_t> one_port_optimal_order(
    const platform::Platform& platform) {
  std::vector<std::size_t> order(platform.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) {
              if (platform.c(a) != platform.c(b)) {
                return platform.c(a) < platform.c(b);
              }
              return platform.w(a) < platform.w(b);
            });
  return order;
}

std::vector<sim::ChunkAssignment> multi_round_schedule(
    const Allocation& allocation, std::size_t rounds) {
  NLDL_REQUIRE(rounds >= 1, "multi_round_schedule requires rounds >= 1");
  std::vector<sim::ChunkAssignment> schedule;
  schedule.reserve(allocation.amounts.size() * rounds);
  for (std::size_t round = 0; round < rounds; ++round) {
    for (std::size_t worker = 0; worker < allocation.amounts.size();
         ++worker) {
      const double piece =
          allocation.amounts[worker] / static_cast<double>(rounds);
      if (piece > 0.0) schedule.push_back({worker, piece});
    }
  }
  return schedule;
}

}  // namespace nldl::dlt
