// Closed-form analysis formulas from the paper (Sections 2 and 3).
//
// These are the exact expressions the benchmarks validate the simulators
// against. Logarithms for sorting costs are base 2 (comparison sorting);
// ratios of logarithms are base-invariant.
#pragma once

#include <cstddef>

namespace nldl::dlt {

/// Section 2: fraction of the total work left undone by one DLT round on a
/// homogeneous platform, (W − W_partial)/W = 1 − 1/p^(alpha−1).
/// Tends to 1 as p → ∞ for alpha > 1; identically 0 for alpha = 1.
[[nodiscard]] double remaining_fraction_homogeneous(std::size_t p,
                                                    double alpha);

/// Section 3.1: fraction of the N·log N sorting work *not* covered by the
/// parallel DLT phase, log p / log N. Tends to 0 as N → ∞.
[[nodiscard]] double sorting_remaining_fraction(double n, std::size_t p);

/// Section 3.1: the paper's oversampling ratio s = log² N.
[[nodiscard]] double sample_sort_oversampling(double n);

/// Step 1 cost: sorting the sample of s·p keys on the master, s·p·log(s·p).
[[nodiscard]] double sample_sort_step1_cost(double n, std::size_t p);

/// Step 2 cost: bucketizing N keys via binary search, N·log p.
[[nodiscard]] double sample_sort_step2_cost(double n, std::size_t p);

/// Step 3 cost: sorting the largest bucket, ~ (N/p)·log N.
[[nodiscard]] double sample_sort_step3_cost(double n, std::size_t p);

/// Theorem B.4 bound (Blelloch et al.): with oversampling s = log² N,
/// Pr[MaxSize >= (N/p)·(1 + (1/log N)^(1/3))] <= N^(−1/3).
/// Returns the bucket-size threshold (N/p)·(1 + (1/log N)^(1/3)).
[[nodiscard]] double max_bucket_bound(double n, std::size_t p);

/// The failure-probability side of the same bound: N^(−1/3).
[[nodiscard]] double max_bucket_bound_probability(double n);

}  // namespace nldl::dlt
