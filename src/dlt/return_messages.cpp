#include "dlt/return_messages.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/assert.hpp"

namespace nldl::dlt {

namespace {

void validate_order(const std::vector<std::size_t>& order, std::size_t p) {
  NLDL_REQUIRE(order.size() == p,
               "order must cover every worker exactly once");
  std::vector<bool> seen(p, false);
  for (const std::size_t worker : order) {
    NLDL_REQUIRE(worker < p, "order index out of range");
    NLDL_REQUIRE(!seen[worker], "order repeats a worker");
    seen[worker] = true;
  }
}

/// Fill `amounts` with the largest per-worker chunks finishing (including
/// their return) by time T under the one-port model with the given orders;
/// returns Σ amounts. Monotone non-decreasing in T, enabling bisection.
///
/// Greedy feasibility: walk the send order, giving worker i the largest
/// n_i such that the *whole schedule so far* remains feasible for
/// deadline T. Because sends serialize in order and returns serialize in
/// `return_order`, feasibility of a candidate n_i is checked by simulating
/// the partial schedule. A scalar bisection per worker keeps this robust
/// for both FIFO and LIFO (exact chain formulas exist for special cases,
/// but the greedy-simulate approach covers arbitrary permutations and
/// degenerate idle-gap cases uniformly).
double fill_one_port_with_return(const platform::Platform& platform,
                                 double T, double delta,
                                 const std::vector<std::size_t>& send_order,
                                 const std::vector<std::size_t>& return_order,
                                 std::vector<double>& amounts) {
  const std::size_t p = platform.size();
  amounts.assign(p, 0.0);
  double total = 0.0;
  for (std::size_t idx = 0; idx < p; ++idx) {
    const std::size_t worker = send_order[idx];
    // Upper bracket: even with a free bus and no contention, worker
    // cannot process more than (c(1+δ) + w) n = T.
    const double solo_cap =
        T / (platform.c(worker) * (1.0 + delta) + platform.w(worker));
    if (solo_cap <= 0.0) continue;
    double lo = 0.0;
    double hi = solo_cap;
    auto feasible = [&](double candidate) {
      amounts[worker] = candidate;
      const double makespan = simulate_one_port_with_return(
          platform, amounts, delta, send_order, return_order);
      return makespan <= T * (1.0 + 1e-12);
    };
    if (feasible(hi)) {
      amounts[worker] = hi;
    } else {
      for (int iter = 0; iter < 60; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (feasible(mid)) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      amounts[worker] = lo;
    }
    total += amounts[worker];
  }
  return total;
}

ReturnAllocation solve_one_port(const platform::Platform& platform,
                                double total_load, double delta,
                                const std::vector<std::size_t>& send_order,
                                const std::vector<std::size_t>& return_order) {
  NLDL_REQUIRE(total_load >= 0.0, "total_load must be >= 0");
  NLDL_REQUIRE(delta >= 0.0, "delta must be >= 0");
  const std::size_t p = platform.size();
  validate_order(send_order, p);
  validate_order(return_order, p);

  ReturnAllocation alloc;
  alloc.delta = delta;
  alloc.amounts.assign(p, 0.0);
  if (total_load == 0.0) return alloc;

  const std::size_t first = send_order[0];
  double t_hi = (platform.c(first) * (1.0 + delta) + platform.w(first)) *
                total_load;
  std::vector<double> scratch(p, 0.0);
  auto assigned = [&](double T) {
    return fill_one_port_with_return(platform, T, delta, send_order,
                                     return_order, scratch);
  };
  while (assigned(t_hi) < total_load) t_hi *= 2.0;

  double lo = 0.0;
  double hi = t_hi;
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (assigned(mid) >= total_load) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  fill_one_port_with_return(platform, hi, delta, send_order, return_order,
                            scratch);
  // Scale the residual rounding error onto the allocation.
  double sum = 0.0;
  for (const double n : scratch) sum += n;
  NLDL_ASSERT(sum > 0.0, "one-port with-return fill produced nothing");
  const double scale = total_load / sum;
  for (double& n : scratch) n *= scale;
  alloc.amounts = scratch;
  alloc.makespan = simulate_one_port_with_return(
      platform, alloc.amounts, delta, send_order, return_order);
  return alloc;
}

}  // namespace

ReturnAllocation linear_parallel_with_return(
    const platform::Platform& platform, double total_load, double delta) {
  NLDL_REQUIRE(total_load >= 0.0, "total_load must be >= 0");
  NLDL_REQUIRE(delta >= 0.0, "delta must be >= 0");
  const std::size_t p = platform.size();
  double inv_sum = 0.0;
  for (std::size_t i = 0; i < p; ++i) {
    inv_sum += 1.0 / (platform.c(i) * (1.0 + delta) + platform.w(i));
  }
  ReturnAllocation alloc;
  alloc.delta = delta;
  alloc.makespan = total_load / inv_sum;
  alloc.amounts.resize(p);
  for (std::size_t i = 0; i < p; ++i) {
    alloc.amounts[i] = alloc.makespan /
                       (platform.c(i) * (1.0 + delta) + platform.w(i));
  }
  return alloc;
}

ReturnAllocation one_port_lifo_with_return(
    const platform::Platform& platform, double total_load, double delta,
    const std::vector<std::size_t>& send_order) {
  std::vector<std::size_t> return_order(send_order.rbegin(),
                                        send_order.rend());
  return solve_one_port(platform, total_load, delta, send_order,
                        return_order);
}

ReturnAllocation one_port_fifo_with_return(
    const platform::Platform& platform, double total_load, double delta,
    const std::vector<std::size_t>& send_order) {
  return solve_one_port(platform, total_load, delta, send_order,
                        send_order);
}

double simulate_one_port_with_return(
    const platform::Platform& platform, const std::vector<double>& amounts,
    double delta, const std::vector<std::size_t>& send_order,
    const std::vector<std::size_t>& return_order) {
  const std::size_t p = platform.size();
  NLDL_REQUIRE(amounts.size() == p, "one amount per worker required");
  NLDL_REQUIRE(delta >= 0.0, "delta must be >= 0");
  validate_order(send_order, p);
  validate_order(return_order, p);
  for (const double n : amounts) {
    NLDL_REQUIRE(n >= 0.0, "amounts must be >= 0");
  }

  // Phase 1: serialized sends; compute starts on full receipt. The
  // forward half is exactly a one-port engine run over the send order.
  const sim::Engine engine(platform);
  const sim::SimResult forward =
      engine.run(sim::single_round_schedule(amounts, send_order),
                 sim::CommModelKind::kOnePort);
  std::vector<double> compute_done(p, 0.0);
  double port = 0.0;
  for (const sim::ChunkSpan& span : forward.spans) {
    compute_done[span.worker] = span.compute_end;
    port = std::max(port, span.comm_end);
  }
  // Phase 2: returns honor return_order on the same port.
  double makespan = 0.0;
  double return_port = port;  // returns cannot start before sends end on
                              // a single half-duplex port
  for (const std::size_t worker : return_order) {
    const double ready = compute_done[worker];
    const double start = std::max(return_port, ready);
    const double duration = platform.c(worker) * delta * amounts[worker];
    return_port = start + duration;
    makespan = std::max(makespan, return_port);
  }
  return makespan;
}

}  // namespace nldl::dlt
