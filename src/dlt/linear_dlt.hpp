// Classical (linear-cost) Divisible Load Theory allocators.
//
// These are the "success stories" the paper's introduction recalls: for
// linear workloads, optimal allocations have closed forms. Both the
// parallel-links model (the paper's Section 1.2 model) and the classical
// one-port star model (Bharadwaj–Ghose–Mani–Robertazzi) are provided, plus
// a multi-round schedule builder.
#pragma once

#include <cstddef>
#include <vector>

#include "platform/platform.hpp"
#include "sim/engine.hpp"

namespace nldl::dlt {

/// A single-round load allocation: amounts[i] load units to worker i.
struct Allocation {
  std::vector<double> amounts;
  /// Predicted optimal makespan (all workers finish simultaneously).
  double makespan = 0.0;

  [[nodiscard]] double total() const noexcept;

  /// Convert to a simulator schedule (one chunk per worker, in the given
  /// send order; defaults to worker order).
  [[nodiscard]] std::vector<sim::ChunkAssignment> to_schedule() const;
  [[nodiscard]] std::vector<sim::ChunkAssignment> to_schedule(
      const std::vector<std::size_t>& send_order) const;
};

/// Optimal single-round allocation under the parallel-links model with
/// linear compute cost: worker i receives n_i with
///   c_i·n_i + w_i·n_i = T  for all i,   Σ n_i = total_load.
/// Closed form: n_i = T / (c_i + w_i), T = total_load / Σ 1/(c_k + w_k).
[[nodiscard]] Allocation linear_parallel_single_round(
    const platform::Platform& platform, double total_load);

/// Optimal single-round allocation under the one-port model with linear
/// compute cost, for a *given* send order (workers are fed sequentially,
/// all finish simultaneously):
///   w_i·n_i = (c_j + w_j)·n_j  for j immediately after i in the order.
[[nodiscard]] Allocation linear_one_port_single_round(
    const platform::Platform& platform, double total_load,
    const std::vector<std::size_t>& send_order);

/// Same, feeding workers in platform order 0..p-1.
[[nodiscard]] Allocation linear_one_port_single_round(
    const platform::Platform& platform, double total_load);

/// The classical optimal one-port send order: by non-decreasing
/// communication cost c_i (fastest links first); ties broken by faster
/// compute first. (See Bharadwaj et al., "Scheduling Divisible Loads in
/// Parallel and Distributed Systems".)
[[nodiscard]] std::vector<std::size_t> one_port_optimal_order(
    const platform::Platform& platform);

/// Split a single-round allocation into `rounds` equal installments per
/// worker, interleaved round-robin (round 0 for all workers, then round 1,
/// ...). With pipelining this shortens the communication ramp-up.
[[nodiscard]] std::vector<sim::ChunkAssignment> multi_round_schedule(
    const Allocation& allocation, std::size_t rounds);

}  // namespace nldl::dlt
