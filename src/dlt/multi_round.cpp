#include "dlt/multi_round.hpp"

#include <cmath>

#include "dlt/linear_dlt.hpp"
#include "util/assert.hpp"

namespace nldl::dlt {

namespace {

MultiRoundPlan simulate_plan(const platform::Platform& platform,
                             std::vector<sim::ChunkAssignment> schedule,
                             std::size_t rounds) {
  MultiRoundPlan plan;
  plan.schedule = std::move(schedule);
  plan.rounds = rounds;
  const sim::Engine engine(platform);
  plan.simulated_makespan =
      engine.run(plan.schedule, sim::CommModelKind::kOnePort).makespan;
  return plan;
}

}  // namespace

MultiRoundPlan uniform_multi_round(const platform::Platform& platform,
                                   double total_load, std::size_t rounds) {
  NLDL_REQUIRE(rounds >= 1, "at least one round required");
  const Allocation base = linear_one_port_single_round(platform, total_load);
  return simulate_plan(platform, multi_round_schedule(base, rounds), rounds);
}

MultiRoundPlan geometric_multi_round(const platform::Platform& platform,
                                     double total_load, std::size_t rounds,
                                     double ratio) {
  NLDL_REQUIRE(rounds >= 1, "at least one round required");
  NLDL_REQUIRE(ratio > 0.0, "round growth ratio must be positive");
  const Allocation base = linear_one_port_single_round(platform, total_load);
  const std::size_t p = platform.size();

  // Normalizing constant for the geometric weights r^0..r^(R-1).
  double weight_sum = 0.0;
  for (std::size_t round = 0; round < rounds; ++round) {
    weight_sum += std::pow(ratio, static_cast<double>(round));
  }

  std::vector<sim::ChunkAssignment> schedule;
  schedule.reserve(p * rounds);
  for (std::size_t round = 0; round < rounds; ++round) {
    const double weight =
        std::pow(ratio, static_cast<double>(round)) / weight_sum;
    for (std::size_t worker = 0; worker < p; ++worker) {
      const double piece = base.amounts[worker] * weight;
      if (piece > 0.0) schedule.push_back({worker, piece});
    }
  }
  return simulate_plan(platform, std::move(schedule), rounds);
}

MultiRoundPlan best_multi_round(const platform::Platform& platform,
                                double total_load, std::size_t max_rounds) {
  NLDL_REQUIRE(max_rounds >= 1, "at least one round required");
  MultiRoundPlan best = uniform_multi_round(platform, total_load, 1);
  for (std::size_t rounds = 2; rounds <= max_rounds; ++rounds) {
    for (const double ratio : {1.0, 1.5, 2.0, 3.0}) {
      MultiRoundPlan candidate =
          ratio == 1.0  // nldl-lint: allow(double-eq): ratio is an exact literal from the candidate list
              ? uniform_multi_round(platform, total_load, rounds)
              : geometric_multi_round(platform, total_load, rounds, ratio);
      if (candidate.simulated_makespan < best.simulated_makespan) {
        best = std::move(candidate);
      }
    }
  }
  return best;
}

}  // namespace nldl::dlt
