// Extension: divisible loads *with return messages* (refs [28], [29], [30]
// of the paper — Beaumont, Marchal, Rehn, Robert). The paper's Section 1.2
// deliberately sets results return aside "in order to concentrate on the
// influence of non-linearity"; this module supplies it so users can lift
// that restriction.
//
// Model: processing X load units on worker i produces δ·X units of output
// that must travel back to the master over the same link (time c_i·δ·X).
//   - Parallel links: the return simply extends each worker's private
//     timeline; the equal-finish closed form gains a +c_i·δ term.
//   - One-port: send order and *return order* both matter. The classical
//     results study FIFO (first fed, first returning) and LIFO (last fed,
//     first returning) permutations; nldl provides allocators for both and
//     a simulator-backed evaluator for arbitrary permutations.
#pragma once

#include <cstddef>
#include <vector>

#include "dlt/linear_dlt.hpp"
#include "platform/platform.hpp"
#include "sim/engine.hpp"

namespace nldl::dlt {

/// Allocation plus predicted makespan for a with-return schedule.
struct ReturnAllocation {
  std::vector<double> amounts;
  double makespan = 0.0;
  /// Output-to-input size ratio δ used to build the allocation.
  double delta = 0.0;
};

/// Parallel-links, linear cost, with return messages:
///   c_i·n_i + w_i·n_i + δ·c_i·n_i = T  for all i,  Σ n_i = total_load.
/// (Each worker's link is private, so its send, compute and return
/// serialize on its own timeline; all workers finish returning at T.)
[[nodiscard]] ReturnAllocation linear_parallel_with_return(
    const platform::Platform& platform, double total_load, double delta);

/// One-port with return messages, LIFO order: workers are fed in
/// `send_order` and return results in the *reverse* order.
///
/// Solved numerically: bisection on the deadline T around a greedy
/// maximal-fill (each worker, in send order, takes the largest chunk that
/// keeps the whole schedule feasible for T, checked by simulation). This
/// is the natural "maximal stream" heuristic, not a proof-grade optimum:
/// as ref [29] shows, optimal with-return schedules may leave processors
/// idle, and a fixed all-workers order can even lose to a single fast
/// worker — a behaviour the tests document deliberately.
[[nodiscard]] ReturnAllocation one_port_lifo_with_return(
    const platform::Platform& platform, double total_load, double delta,
    const std::vector<std::size_t>& send_order);

/// One-port with return messages, FIFO order (returns in the same order
/// as sends). Solved numerically like LIFO.
[[nodiscard]] ReturnAllocation one_port_fifo_with_return(
    const platform::Platform& platform, double total_load, double delta,
    const std::vector<std::size_t>& send_order);

/// Simulate a one-port with-return schedule for a *given* allocation:
/// sends happen in `send_order` (master port serializes), each worker
/// computes after full receipt, and returns are granted on the port in
/// `return_order` — a return can only start once the worker finished
/// computing and the port is free, and returns must respect the order.
/// Returns the makespan (time the last return completes).
[[nodiscard]] double simulate_one_port_with_return(
    const platform::Platform& platform, const std::vector<double>& amounts,
    double delta, const std::vector<std::size_t>& send_order,
    const std::vector<std::size_t>& return_order);

}  // namespace nldl::dlt
