#include "dlt/nonlinear_dlt.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/roots.hpp"

namespace nldl::dlt {

std::vector<sim::ChunkAssignment> NonlinearAllocation::to_schedule() const {
  return sim::single_round_schedule(amounts);
}

std::vector<sim::ChunkAssignment> NonlinearAllocation::to_schedule(
    const std::vector<std::size_t>& send_order) const {
  return sim::single_round_schedule(amounts, send_order);
}

namespace {

/// Solve c·n + w·n^alpha = budget for n >= 0 (unique root; 0 if budget <= 0).
double chunk_for_budget(double c, double w, double alpha, double budget) {
  if (budget <= 0.0) return 0.0;
  // Upper bracket: n <= budget / c (communication alone) and
  // n <= (budget / w)^(1/alpha) (computation alone); either bounds the root.
  const double hi = std::min(budget / c, std::pow(budget / w, 1.0 / alpha));
  auto f = [&](double n) { return c * n + w * std::pow(n, alpha) - budget; };
  auto df = [&](double n) {
    return c + w * alpha * std::pow(n, alpha - 1.0);
  };
  // hi satisfies f(hi) <= 0 is impossible: both single-resource bounds give
  // f >= 0 at their own bound, and min of them keeps f(hi) <= budget-level
  // uncertainty; use a slightly inflated bracket to be safe.
  double lo = 0.0;
  double bracket_hi = hi;
  while (f(bracket_hi) < 0.0) bracket_hi *= 2.0;
  // Tolerances must scale with the problem: |f| carries the magnitude of
  // `budget` (double precision bottoms out near 1e-16·budget), and the
  // bracket carries the magnitude of the chunk size.
  util::RootOptions opts;
  opts.f_tol = 1e-12 * std::max(1.0, budget);
  opts.x_tol = 1e-13 * std::max(1.0, bracket_hi);
  const auto result = util::newton_safeguarded(f, df, lo, bracket_hi, opts);
  NLDL_ASSERT(result.converged, "nonlinear chunk solve did not converge");
  return result.x;
}

void finalize(NonlinearAllocation& alloc, double total_load, double alpha) {
  alloc.alpha = alpha;
  alloc.total_work = std::pow(total_load, alpha);
  alloc.work_done = 0.0;
  for (const double n : alloc.amounts) {
    alloc.work_done += std::pow(n, alpha);
  }
  alloc.remaining_fraction =
      alloc.total_work > 0.0 ? 1.0 - alloc.work_done / alloc.total_work : 0.0;
}

}  // namespace

NonlinearAllocation nonlinear_parallel_single_round(
    const platform::Platform& platform, double total_load, double alpha,
    const NonlinearOptions& options) {
  NLDL_REQUIRE(total_load >= 0.0, "total_load must be >= 0");
  NLDL_REQUIRE(alpha >= 1.0, "alpha must be >= 1");
  const std::size_t p = platform.size();

  NonlinearAllocation alloc;
  alloc.amounts.assign(p, 0.0);
  if (total_load == 0.0) {
    finalize(alloc, total_load, alpha);
    return alloc;
  }

  // Σ n_i(T) is continuous and strictly increasing in T, so bisect on T.
  auto assigned_load = [&](double T) {
    double sum = 0.0;
    for (std::size_t i = 0; i < p; ++i) {
      sum += chunk_for_budget(platform.c(i), platform.w(i), alpha, T);
    }
    return sum;
  };

  // Upper bound: any single worker processing the whole load alone finishes
  // by (c + w·N^alpha-ish); at that T, Σ n_i(T) >= N.
  double t_hi = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < p; ++i) {
    t_hi = std::min(t_hi, platform.c(i) * total_load +
                              platform.w(i) * std::pow(total_load, alpha));
  }

  auto f = [&](double T) { return assigned_load(T) - total_load; };
  util::RootOptions root_opts;
  root_opts.x_tol = options.tolerance * t_hi;
  root_opts.f_tol = options.tolerance * total_load;
  root_opts.max_iterations = options.max_iterations;
  const auto root = util::bisect(f, 0.0, t_hi, root_opts);
  NLDL_ASSERT(root.converged, "nonlinear outer bisection did not converge");

  alloc.makespan = root.x;
  alloc.solver_iterations = root.iterations;
  for (std::size_t i = 0; i < p; ++i) {
    alloc.amounts[i] =
        chunk_for_budget(platform.c(i), platform.w(i), alpha, root.x);
  }
  // Rescale the tiny residual so Σ n_i == total_load exactly.
  const double sum = assigned_load(root.x);
  if (sum > 0.0) {
    const double scale = total_load / sum;
    for (double& n : alloc.amounts) n *= scale;
    alloc.makespan = 0.0;
    for (std::size_t i = 0; i < p; ++i) {
      alloc.makespan = std::max(
          alloc.makespan, platform.c(i) * alloc.amounts[i] +
                              platform.w(i) *
                                  std::pow(alloc.amounts[i], alpha));
    }
  }
  finalize(alloc, total_load, alpha);
  return alloc;
}

NonlinearAllocation nonlinear_one_port_single_round(
    const platform::Platform& platform, double total_load, double alpha,
    const std::vector<std::size_t>& send_order,
    const NonlinearOptions& options) {
  NLDL_REQUIRE(total_load >= 0.0, "total_load must be >= 0");
  NLDL_REQUIRE(alpha >= 1.0, "alpha must be >= 1");
  const std::size_t p = platform.size();
  NLDL_REQUIRE(send_order.size() == p,
               "send order must cover every worker exactly once");
  std::vector<bool> seen(p, false);
  for (const std::size_t worker : send_order) {
    NLDL_REQUIRE(worker < p, "send order index out of range");
    NLDL_REQUIRE(!seen[worker], "send order repeats a worker");
    seen[worker] = true;
  }

  NonlinearAllocation alloc;
  alloc.amounts.assign(p, 0.0);
  if (total_load == 0.0) {
    finalize(alloc, total_load, alpha);
    return alloc;
  }

  // For a candidate makespan T, feed workers in order; each takes the
  // largest chunk it can finish by T given when its reception can start.
  auto fill_for = [&](double T, std::vector<double>& amounts) {
    double clock = 0.0;  // master port becomes free
    double sum = 0.0;
    for (const std::size_t worker : send_order) {
      const double budget = T - clock;
      const double n = chunk_for_budget(platform.c(worker),
                                        platform.w(worker), alpha, budget);
      amounts[worker] = n;
      clock += platform.c(worker) * n;
      sum += n;
    }
    return sum;
  };

  const std::size_t first = send_order[0];
  const double t_hi = platform.c(first) * total_load +
                      platform.w(first) * std::pow(total_load, alpha);

  std::vector<double> scratch(p, 0.0);
  auto f = [&](double T) { return fill_for(T, scratch) - total_load; };
  util::RootOptions root_opts;
  root_opts.x_tol = options.tolerance * t_hi;
  root_opts.f_tol = options.tolerance * total_load;
  root_opts.max_iterations = options.max_iterations;
  const auto root = util::bisect(f, 0.0, t_hi, root_opts);
  NLDL_ASSERT(root.converged, "one-port outer bisection did not converge");

  alloc.makespan = root.x;
  alloc.solver_iterations = root.iterations;
  fill_for(root.x, alloc.amounts);
  // Rescale the residual onto the allocation (keeps Σ n_i exact; the
  // perturbation of finish times is within solver tolerance).
  double sum = 0.0;
  for (const double n : alloc.amounts) sum += n;
  if (sum > 0.0) {
    const double scale = total_load / sum;
    for (double& n : alloc.amounts) n *= scale;
  }
  finalize(alloc, total_load, alpha);
  return alloc;
}

NonlinearAllocation nonlinear_one_port_single_round(
    const platform::Platform& platform, double total_load, double alpha,
    const NonlinearOptions& options) {
  std::vector<std::size_t> order(platform.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  return nonlinear_one_port_single_round(platform, total_load, alpha, order,
                                         options);
}

double homogeneous_nonlinear_makespan(std::size_t p, double c, double w,
                                      double total_load, double alpha) {
  NLDL_REQUIRE(p >= 1, "p must be >= 1");
  NLDL_REQUIRE(c > 0.0 && w > 0.0, "c and w must be positive");
  NLDL_REQUIRE(alpha >= 1.0, "alpha must be >= 1");
  const double share = total_load / static_cast<double>(p);
  return share * c + w * std::pow(share, alpha);
}

NonlinearAllocation nonlinear_single_round_for(
    sim::CommModelKind comm, const platform::Platform& platform,
    double total_load, double alpha, const NonlinearOptions& options) {
  if (comm == sim::CommModelKind::kOnePort) {
    return nonlinear_one_port_single_round(platform, total_load, alpha,
                                           options);
  }
  return nonlinear_parallel_single_round(platform, total_load, alpha,
                                         options);
}

}  // namespace nldl::dlt
