// Nonlinear divisible load allocation (paper Section 2).
//
// Compute cost on worker i for a chunk of X load units is w_i · X^alpha with
// alpha > 1 (e.g. alpha = 2 for the "quadratic loads" of Hung & Robertazzi,
// Suresh et al. — refs [31–35] of the paper). Optimal single-round
// allocations equalize finish times; they have no closed form on
// heterogeneous platforms, so nldl solves the optimality conditions with its
// own bracketed root-finders (util/roots.hpp).
//
// The headline quantity is `remaining_fraction`: the share of the total
// work W = N^alpha that is *not* performed by the single DLT round,
//   1 − Σ n_i^alpha / N^alpha,
// which the paper proves tends to 1 as p grows (homogeneous closed form:
// 1 − 1/p^(alpha−1)) — the "no free lunch" theorem.
#pragma once

#include <cstddef>
#include <vector>

#include "platform/platform.hpp"
#include "sim/engine.hpp"

namespace nldl::dlt {

struct NonlinearAllocation {
  std::vector<double> amounts;  ///< n_i load units to worker i
  double makespan = 0.0;        ///< common finish time T
  double alpha = 1.0;

  /// Convert to an engine schedule (one chunk per worker, in the given
  /// send order; defaults to worker order). Replaying it with
  /// sim::Engine{platform, {alpha}} reproduces `makespan`.
  [[nodiscard]] std::vector<sim::ChunkAssignment> to_schedule() const;
  [[nodiscard]] std::vector<sim::ChunkAssignment> to_schedule(
      const std::vector<std::size_t>& send_order) const;

  /// Work performed by the round, in unit-speed time: Σ n_i^alpha.
  double work_done = 0.0;
  /// Total work of the monolithic job: N^alpha.
  double total_work = 0.0;
  /// 1 − work_done / total_work (the paper's (W − W_partial)/W).
  double remaining_fraction = 0.0;

  int solver_iterations = 0;  ///< outer bisection iterations
};

struct NonlinearOptions {
  double tolerance = 1e-10;   ///< relative tolerance on the load balance
  int max_iterations = 200;
};

/// Optimal single-round allocation under the parallel-links model:
///   c_i·n_i + w_i·n_i^alpha = T for all i,  Σ n_i = total_load.
/// Solved by nested bisection (outer on T, inner on each n_i(T)).
/// Requires alpha >= 1; with alpha == 1 this matches the linear closed form.
[[nodiscard]] NonlinearAllocation nonlinear_parallel_single_round(
    const platform::Platform& platform, double total_load, double alpha,
    const NonlinearOptions& options = {});

/// Optimal single-round allocation under the one-port model for a given
/// send order: worker fed at time τ_i = Σ_{j before i} c_j·n_j satisfies
///   τ_i + c_i·n_i + w_i·n_i^alpha = T.
/// This is the setting of the nonlinear-DLT literature ([31–35]); workers
/// that cannot receive anything before T contribute n_i = 0.
[[nodiscard]] NonlinearAllocation nonlinear_one_port_single_round(
    const platform::Platform& platform, double total_load, double alpha,
    const std::vector<std::size_t>& send_order,
    const NonlinearOptions& options = {});

/// Same, feeding workers in platform order 0..p-1.
[[nodiscard]] NonlinearAllocation nonlinear_one_port_single_round(
    const platform::Platform& platform, double total_load, double alpha,
    const NonlinearOptions& options = {});

/// The optimal single-round allocation MATCHED to a communication model
/// kind: the one-port optimality conditions under kOnePort (the master
/// serializes sends, platform feed order), parallel links otherwise —
/// bounded multiport has no closed-form allocator, and parallel links is
/// its uncapped limit. This is the one dispatch every scheduler, server,
/// and service-plan layer shares, so predictions and replays always
/// solve the same allocation for a given comm kind.
[[nodiscard]] NonlinearAllocation nonlinear_single_round_for(
    sim::CommModelKind comm, const platform::Platform& platform,
    double total_load, double alpha, const NonlinearOptions& options = {});

/// Closed-form makespan of the homogeneous optimum (paper Section 2):
/// every worker gets N/p, finishing at (N/p)·c + w·(N/p)^alpha.
[[nodiscard]] double homogeneous_nonlinear_makespan(std::size_t p, double c,
                                                    double w, double total_load,
                                                    double alpha);

}  // namespace nldl::dlt
