// ASCII Gantt rendering of simulated timelines, for the example programs
// and the observability layer's attribution summaries.
//
// The renderer is built on the obs::TraceEvent stream (obs/trace.hpp):
// any traced run — a single-job private replay, a shared-master busy
// period with many concurrent jobs, a whole qos run — renders with the
// same code path. The historical (platform, SimResult) overload is kept
// as an adapter that synthesizes unattributed events from the result's
// chunk spans.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "sim/engine.hpp"

namespace nldl::sim {

/// Render a per-worker timeline from a trace event stream: one row per
/// worker, `width` character columns spanning [0, horizon], where the
/// horizon is the latest event end. Cells show 'A' + job % 26 while
/// computing for that job ('#' when the compute span carries no job
/// attribution, '*' when installments of DIFFERENT jobs share the cell),
/// '-' while receiving only, '=' while receiving and computing, '.'
/// idle. When the stream holds dispatch instants (shared-master runs), a
/// release-marker header row puts a 'v' at every dispatch barrier.
/// `workers` = 0 infers the worker count from the events. `max_cols`
/// caps the effective width (0 = uncapped): soak-scale traces ask for a
/// readable terminal width instead of a column per event — painting
/// already aggregates per column, so downsampling is just a narrower
/// grid.
[[nodiscard]] std::string ascii_gantt(
    const std::vector<obs::TraceEvent>& events, std::size_t workers = 0,
    std::size_t width = 72, std::size_t max_cols = 0);

/// Render a per-worker timeline of one simulation result: '-' while
/// receiving, '#' while computing, '=' while doing both (pipelined
/// multi-round), '.' idle. One row per worker, `width` character columns
/// spanning [0, makespan]. Adapter over the event-stream renderer.
[[nodiscard]] std::string ascii_gantt(const platform::Platform& platform,
                                      const SimResult& result,
                                      std::size_t width = 72);

}  // namespace nldl::sim
