// ASCII Gantt rendering of simulation results, for the example programs.
#pragma once

#include <string>

#include "sim/engine.hpp"

namespace nldl::sim {

/// Render a per-worker timeline: '-' while receiving, '#' while computing,
/// '=' while doing both (pipelined multi-round), '.' idle. One row per
/// worker, `width` character columns spanning [0, makespan].
[[nodiscard]] std::string ascii_gantt(const platform::Platform& platform,
                                      const SimResult& result,
                                      std::size_t width = 72);

}  // namespace nldl::sim
