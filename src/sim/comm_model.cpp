#include "sim/comm_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace nldl::sim {

std::string to_string(CommModelKind kind) {
  switch (kind) {
    case CommModelKind::kParallelLinks:
      return "parallel-links";
    case CommModelKind::kOnePort:
      return "one-port";
    case CommModelKind::kBoundedMultiport:
      return "bounded-multiport";
  }
  NLDL_ASSERT(false, "unknown CommModelKind");
}

std::vector<double> max_min_fair_rates(const std::vector<double>& caps,
                                       double capacity) {
  // Water-filling garbage in, garbage out: a NaN or negative capacity
  // would silently propagate NaN shares (NaN comparisons are all false,
  // so no cap ever "saturates") and a NaN cap would poison the remaining
  // budget. Reject both up front; +inf capacity and +inf caps are
  // legitimate (uncapped master / uncapped link).
  NLDL_REQUIRE(!std::isnan(capacity) && capacity >= 0.0,
               "aggregate capacity must be >= 0 (NaN is not a capacity)");
  for (const double cap : caps) {
    NLDL_REQUIRE(!std::isnan(cap) && cap >= 0.0,
                 "private link caps must be >= 0 (NaN is not a rate)");
  }
  const std::size_t count = caps.size();
  std::vector<double> rates(count, 0.0);
  std::vector<bool> saturated(count, false);
  double remaining = capacity;
  std::size_t unsaturated = count;
  for (std::size_t pass = 0; pass < count && unsaturated > 0; ++pass) {
    const double share = remaining / static_cast<double>(unsaturated);
    bool any_saturated = false;
    for (std::size_t i = 0; i < count; ++i) {
      if (saturated[i]) continue;
      if (caps[i] <= share) {
        rates[i] = caps[i];
        remaining -= caps[i];
        saturated[i] = true;
        --unsaturated;
        any_saturated = true;
      }
    }
    if (!any_saturated) {
      // Everyone is share-limited: split the remainder equally.
      for (std::size_t i = 0; i < count; ++i) {
        if (!saturated[i]) rates[i] = share;
      }
      break;
    }
  }
  return rates;
}

void ParallelLinksModel::assign_rates(
    const std::vector<TransferView>& eligible,
    std::vector<double>& rates) const {
  for (std::size_t j = 0; j < eligible.size(); ++j) {
    rates[j] = eligible[j].link_rate;
  }
}

void OnePortModel::assign_rates(const std::vector<TransferView>& eligible,
                                std::vector<double>& rates) const {
  // The engine hands transfers sorted by schedule position; the port goes
  // to the first one.
  std::fill(rates.begin(), rates.end(), 0.0);
  if (!eligible.empty()) rates[0] = eligible[0].link_rate;
}

BoundedMultiportModel::BoundedMultiportModel(double capacity,
                                             std::size_t max_concurrent)
    : capacity_(capacity), max_concurrent_(max_concurrent) {
  // Degenerate knobs are rejected, not water-filled: capacity <= 0 would
  // starve every transfer forever (the engine would assert on the first
  // event), NaN would silently produce NaN rates, and max_concurrent == 0
  // is a master that never serves anyone. +inf capacity with unlimited
  // concurrency is the parallel-links limit and stays legal.
  NLDL_REQUIRE(!std::isnan(capacity),
               "master capacity must not be NaN");
  NLDL_REQUIRE(capacity > 0.0, "master capacity must be positive");
  NLDL_REQUIRE(max_concurrent >= 1,
               "master must serve at least one transfer at a time");
}

std::string BoundedMultiportModel::name() const {
  std::string out = "bounded-multiport(capacity=";
  out += std::isfinite(capacity_) ? std::to_string(capacity_) : "inf";
  if (max_concurrent_ != kUnlimited) {
    out += ", concurrency=" + std::to_string(max_concurrent_);
  }
  out += ")";
  return out;
}

void BoundedMultiportModel::assign_rates(
    const std::vector<TransferView>& eligible,
    std::vector<double>& rates) const {
  std::fill(rates.begin(), rates.end(), 0.0);
  const std::size_t admitted =
      std::min<std::size_t>(eligible.size(), max_concurrent_);
  if (admitted == 0) return;
  std::vector<double> caps(admitted);
  for (std::size_t j = 0; j < admitted; ++j) {
    caps[j] = eligible[j].link_rate;
  }
  const std::vector<double> fair = max_min_fair_rates(caps, capacity_);
  std::copy(fair.begin(), fair.end(), rates.begin());
}

BoundedMultiportModel BoundedMultiportModel::one_port() {
  return BoundedMultiportModel(std::numeric_limits<double>::infinity(), 1);
}

BoundedMultiportModel BoundedMultiportModel::parallel_links() {
  return BoundedMultiportModel(std::numeric_limits<double>::infinity(),
                               kUnlimited);
}

std::unique_ptr<CommModel> make_comm_model(CommModelKind kind,
                                           double capacity,
                                           std::size_t max_concurrent) {
  switch (kind) {
    case CommModelKind::kParallelLinks:
      return std::make_unique<ParallelLinksModel>();
    case CommModelKind::kOnePort:
      return std::make_unique<OnePortModel>();
    case CommModelKind::kBoundedMultiport:
      return std::make_unique<BoundedMultiportModel>(capacity,
                                                     max_concurrent);
  }
  NLDL_ASSERT(false, "unknown CommModelKind");
}

}  // namespace nldl::sim
