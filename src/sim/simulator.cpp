#include "sim/simulator.hpp"

namespace nldl::sim {

SimResult simulate(const platform::Platform& platform,
                   const std::vector<ChunkAssignment>& schedule,
                   const SimOptions& options) {
  const Engine engine(platform, EngineOptions{options.alpha});
  return engine.run(schedule, options.comm_model);
}

}  // namespace nldl::sim
