#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace nldl::sim {

double SimResult::load_imbalance() const noexcept {
  if (worker_compute_time.size() < 2) return 0.0;
  double t_min = std::numeric_limits<double>::infinity();
  double t_max = 0.0;
  for (const double t : worker_compute_time) {
    t_min = std::min(t_min, t);
    t_max = std::max(t_max, t);
  }
  if (t_min <= 0.0) return std::numeric_limits<double>::infinity();
  return (t_max - t_min) / t_min;
}

SimResult simulate(const platform::Platform& platform,
                   const std::vector<ChunkAssignment>& schedule,
                   const SimOptions& options) {
  NLDL_REQUIRE(options.alpha >= 1.0, "alpha must be >= 1");
  const std::size_t p = platform.size();

  SimResult result;
  result.spans.reserve(schedule.size());
  result.worker_finish.assign(p, 0.0);
  result.worker_compute_time.assign(p, 0.0);
  result.worker_comm_time.assign(p, 0.0);

  // Next time each worker's incoming link is free (parallel-links model),
  // or next time the master's outgoing port is free (one-port model).
  std::vector<double> link_free(p, 0.0);
  double master_free = 0.0;
  // Next time each worker's CPU is free.
  std::vector<double> cpu_free(p, 0.0);

  for (const ChunkAssignment& chunk : schedule) {
    NLDL_REQUIRE(chunk.worker < p, "chunk assigned to unknown worker");
    NLDL_REQUIRE(chunk.size >= 0.0, "chunk size must be >= 0");
    const auto& proc = platform.worker(chunk.worker);

    ChunkSpan span;
    span.worker = chunk.worker;
    span.size = chunk.size;

    const double comm_duration = proc.c * chunk.size;
    if (options.comm_model == CommModel::kParallelLinks) {
      span.comm_start = link_free[chunk.worker];
      span.comm_end = span.comm_start + comm_duration;
      link_free[chunk.worker] = span.comm_end;
    } else {
      span.comm_start = master_free;
      span.comm_end = span.comm_start + comm_duration;
      master_free = span.comm_end;
    }

    const double compute_duration =
        proc.w * std::pow(chunk.size, options.alpha);
    span.compute_start = std::max(span.comm_end, cpu_free[chunk.worker]);
    span.compute_end = span.compute_start + compute_duration;
    cpu_free[chunk.worker] = span.compute_end;

    result.worker_comm_time[chunk.worker] += comm_duration;
    result.worker_compute_time[chunk.worker] += compute_duration;
    result.worker_finish[chunk.worker] = span.compute_end;
    result.makespan = std::max(result.makespan, span.compute_end);
    result.spans.push_back(span);
  }
  return result;
}

}  // namespace nldl::sim
