// Pluggable communication models for the event-driven simulation engine
// (sim/engine.hpp).
//
// A CommModel decides, whenever the set of in-flight transfers changes, at
// what instantaneous rate every eligible transfer proceeds. Three models
// ship with nldl, spanning the spectrum the paper compares:
//
//   ParallelLinksModel    every worker has a private link; each eligible
//                         transfer runs at its full link rate 1/c_i (the
//                         paper's primary Section 1.2 model).
//   OnePortModel          the master transmits to one worker at a time;
//                         transfers are granted the port in schedule order
//                         (the model of the nonlinear-DLT papers the paper
//                         critiques).
//   BoundedMultiportModel the master's aggregate outgoing bandwidth is
//                         capped (Hong & Prasanna style): admitted transfers
//                         share the capacity by max-min fairness
//                         (water-filling), each additionally capped by its
//                         private link rate 1/c_i. An optional concurrency
//                         limit bounds how many transfers the master serves
//                         at once (admission in schedule order).
//
// BoundedMultiportModel strictly generalizes the two extremes:
//   - capacity = +inf, unlimited concurrency  ==  parallel links (every
//     transfer saturates its private cap);
//   - concurrency = 1 (with capacity >= the served link's rate)  ==
//     one-port (transfers serialize in schedule order at full link speed).
// Note the one-port limit requires the *concurrency* knob, not just a small
// capacity: fluid max-min sharing with capacity equal to one link's rate
// moves the same aggregate volume as a serialized port but divides it among
// all pending workers, so per-worker completion times (and hence compute
// start times) differ. "One transfer at a time" is what the one-port model
// means, and that is a concurrency constraint.
#pragma once

#include <cstddef>
#include <limits>
#include <memory>
#include <string>
#include <vector>

namespace nldl::sim {

/// Discriminator for the built-in communication models. (This is the old
/// `enum class CommModel` of the pre-engine simulator, renamed; the
/// `CommModel` class below carries compatibility aliases so existing
/// `sim::CommModel::kOnePort`-style spellings keep compiling.)
enum class CommModelKind {
  kParallelLinks,
  kOnePort,
  kBoundedMultiport,
};

[[nodiscard]] std::string to_string(CommModelKind kind);

/// A transfer the engine asks the model to rate. Transfers are handed to
/// assign_rates() sorted by ascending schedule position, and only transfers
/// that are at the head of their worker's link queue (per-worker FIFO) are
/// eligible.
struct TransferView {
  std::size_t chunk = 0;     ///< index of the chunk in the schedule
  std::size_t worker = 0;
  double link_rate = 0.0;    ///< private cap 1/c_i (load units per time)
  double remaining = 0.0;    ///< load units still to transfer
  double released = 0.0;     ///< time the transfer reached its link's head
};

/// Abstract communication model: maps the eligible transfer set to
/// instantaneous rates. Implementations must be stateless with respect to
/// simulation time (the engine re-asks after every event), deterministic,
/// and must never exceed a transfer's private link_rate.
class CommModel {
 public:
  // Compatibility aliases for the old `enum class CommModel` values, so the
  // pre-engine spelling `sim::CommModel::kParallelLinks` still denotes the
  // corresponding CommModelKind.
  static constexpr CommModelKind kParallelLinks =
      CommModelKind::kParallelLinks;
  static constexpr CommModelKind kOnePort = CommModelKind::kOnePort;
  static constexpr CommModelKind kBoundedMultiport =
      CommModelKind::kBoundedMultiport;

  virtual ~CommModel() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual CommModelKind kind() const = 0;

  /// Fill `rates` (resized to eligible.size() by the caller) with the
  /// instantaneous rate of every eligible transfer; 0 keeps a transfer
  /// waiting. At least one rate must be positive when `eligible` is
  /// non-empty (the engine enforces this to guarantee progress).
  virtual void assign_rates(const std::vector<TransferView>& eligible,
                            std::vector<double>& rates) const = 0;
};

/// Every eligible transfer runs at its private link rate.
class ParallelLinksModel final : public CommModel {
 public:
  [[nodiscard]] std::string name() const override { return "parallel-links"; }
  [[nodiscard]] CommModelKind kind() const override {
    return CommModelKind::kParallelLinks;
  }
  void assign_rates(const std::vector<TransferView>& eligible,
                    std::vector<double>& rates) const override;
};

/// The earliest-scheduled eligible transfer runs at its full link rate;
/// everything else waits for the port.
class OnePortModel final : public CommModel {
 public:
  [[nodiscard]] std::string name() const override { return "one-port"; }
  [[nodiscard]] CommModelKind kind() const override {
    return CommModelKind::kOnePort;
  }
  void assign_rates(const std::vector<TransferView>& eligible,
                    std::vector<double>& rates) const override;
};

/// Max-min fair (water-filling) sharing of a capped master under an
/// optional concurrency limit. See the file comment for the degenerate
/// cases that recover the other two models.
class BoundedMultiportModel final : public CommModel {
 public:
  static constexpr std::size_t kUnlimited =
      std::numeric_limits<std::size_t>::max();

  /// capacity: aggregate outgoing bandwidth of the master (> 0 and not
  /// NaN; +inf for an uncapped master). max_concurrent: how many
  /// transfers the master serves at once (>= 1), admitted in schedule
  /// order. Degenerate knobs (capacity <= 0 or NaN, max_concurrent == 0)
  /// throw util::PreconditionError instead of silently water-filling
  /// garbage.
  explicit BoundedMultiportModel(double capacity,
                                 std::size_t max_concurrent = kUnlimited);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] CommModelKind kind() const override {
    return CommModelKind::kBoundedMultiport;
  }
  void assign_rates(const std::vector<TransferView>& eligible,
                    std::vector<double>& rates) const override;

  [[nodiscard]] double capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t max_concurrent() const noexcept {
    return max_concurrent_;
  }

  /// The one-port special case: one transfer at a time, full link speed.
  [[nodiscard]] static BoundedMultiportModel one_port();
  /// The parallel-links special case: uncapped, unlimited concurrency.
  [[nodiscard]] static BoundedMultiportModel parallel_links();

 private:
  double capacity_;
  std::size_t max_concurrent_;
};

/// Factory for the built-in models. `capacity` and `max_concurrent` are
/// only consulted for kBoundedMultiport.
[[nodiscard]] std::unique_ptr<CommModel> make_comm_model(
    CommModelKind kind,
    double capacity = std::numeric_limits<double>::infinity(),
    std::size_t max_concurrent = BoundedMultiportModel::kUnlimited);

/// Max-min fair rates for transfers with private caps `caps` sharing an
/// aggregate `capacity`: repeatedly grant every unsaturated transfer an
/// equal share of the remaining capacity; transfers whose private cap is
/// below their share saturate at the cap. Exposed for tests and for model
/// implementations. `capacity` and every cap must be >= 0 and not NaN
/// (+inf is legal on both sides); anything else throws
/// util::PreconditionError rather than water-filling NaN shares.
[[nodiscard]] std::vector<double> max_min_fair_rates(
    const std::vector<double>& caps, double capacity);

}  // namespace nldl::sim
