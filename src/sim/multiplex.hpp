// Busy-period multiplexing of time-released chunk schedules — the shared
// machinery behind online::MasterMode::kSharedMaster and the qos
// server's concurrent installment subsets.
//
// A SharedMasterPeriod accumulates the chunks of every unit of work
// ("owner" — a whole job for the online server, one installment for the
// qos server) dispatched during one busy period of a shared master, and
// simulates the accumulated schedule through sim::EngineRun state under
// one CommModel after each dispatch:
//
//   - chunk times are PERIOD-RELATIVE: the period's first dispatch is
//     the engine's t = 0, so a single-owner period reproduces a private
//     replay of that owner's schedule bit for bit;
//   - each owner's chunks are released at its dispatch instant and carry
//     its own compute exponent, so concurrent owners of different cost
//     classes contend honestly under the model;
//   - re-simulating after a dispatch never rewrites history: chunks
//     released at `now` are not eligible earlier, and rate sharing is
//     monotone (a newcomer never speeds anyone up), so an owner's finish
//     estimate only ever moves LATER — and is settled once simulated
//     time passes it. The servers' event loops re-read finishes after
//     every replay and advance on the current estimates, which is
//     exactly causal under that invariant.
//
// Incremental replay (the default): the settled prefix of a busy period
// never changes, so the period keeps a persistent EngineRun advanced
// exactly to the latest dispatch's release — every event before that
// barrier is final — and each replay() checkpoints that run (a capacity-
// reusing copy) and drains only the speculative tail. Each replay is
// amortized O(new + in-flight chunk events) instead of O(period), which
// is the difference between O(n) and O(n²) total work for an n-dispatch
// busy period. Owner totals split the same way: settled contributions
// accumulate once, forever; only owners the speculative tail touched are
// re-estimated (and rolled back to settled before the next drain).
//
// Full replay (SharedMasterOptions::incremental = false) re-simulates
// the whole period from scratch on every call — the original semantics,
// kept as the bit-identity reference: the incremental path must and does
// produce bitwise equal finish()/busy() sequences, which
// tests/test_incremental_replay.cpp pins on randomized schedules under
// all three CommModels.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/trace.hpp"
#include "sim/comm_model.hpp"
#include "sim/engine.hpp"

namespace nldl::sim {

struct SharedMasterOptions {
  /// Resume each replay from a checkpoint of the settled prefix instead
  /// of re-simulating the whole busy period. Bit-identical to full
  /// replay; off only buys the O(n²) reference behavior.
  bool incremental = true;
  /// Compact the settled run (drop finalized chunks, EngineRun::compact)
  /// once it holds at least this many finalized chunks and they are the
  /// majority — keeps the per-replay checkpoint copy O(live chunks) even
  /// for a busy period that never drains (a saturated open system), at
  /// amortized O(1) per chunk. Identical results either way.
  std::size_t compact_threshold = 1024;
};

/// One open busy period of a shared master. Holds references to the
/// engine and model, which must outlive it.
///
/// Replay-cost accounting (events()/replays()) is what the servers fold
/// into an obs::MetricsRegistry as replay.engine_events / replay.replays
/// / replay.busy_periods — the successor of the removed ad-hoc
/// ReplayTelemetry struct.
class SharedMasterPeriod {
 public:
  SharedMasterPeriod(const Engine& engine, const CommModel& model,
                     SharedMasterOptions options = {});

  /// No dispatches accumulated (a replay would be empty). Owner-based:
  /// compaction may drop every chunk of a fully drained period while its
  /// owners still await a flush.
  [[nodiscard]] bool empty() const noexcept { return finish_.empty(); }
  [[nodiscard]] std::size_t owners() const noexcept {
    return finish_.size();
  }
  [[nodiscard]] bool incremental() const noexcept {
    return options_.incremental;
  }
  /// Chunk-level engine events simulated by this period so far, across
  /// clears (speculative drains included — this is the work actually
  /// done, which is what makes incremental vs full comparable).
  [[nodiscard]] std::uint64_t events() const noexcept { return events_; }
  /// replay() calls so far, across clears.
  [[nodiscard]] std::uint64_t replays() const noexcept { return replays_; }

  /// Attach a trace sink (obs/trace.hpp) for the NEXT busy period; must
  /// be called while the period is empty. When attached, the period owns
  /// span emission for its chunks: every transfer/compute span is
  /// emitted exactly once, in absolute time, attributed to the
  /// dispatching owner's job/tenant/alpha — as the chunk settles under
  /// incremental replay, or in one final replay at clear() under full
  /// replay. Dispatch barriers, checkpoints, compactions, and replays
  /// emit instants. Tracing never changes finish()/busy()/events()
  /// accounting: results are bit-identical with or without a sink.
  void set_trace(obs::TraceSink* sink);
  [[nodiscard]] obs::TraceSink* trace() const noexcept { return trace_; }

  /// Register one unit of work dispatched at absolute time `now` (>= the
  /// period's first dispatch): `chunks` in their allocator's (subset-
  /// local) worker indices, mapped to engine workers through
  /// `worker_map`, released at `now` and computing at `alpha`. The first
  /// dispatch anchors the period clock. Under incremental replay this
  /// also advances the settled prefix to the new release barrier —
  /// everything simulated before it is final. Returns the owner index to
  /// query finish()/busy() with after the next replay(). `job`/`tenant`
  /// attribute the owner's trace spans (ignored untraced).
  std::size_t dispatch(double now, double alpha,
                       const std::vector<ChunkAssignment>& chunks,
                       const std::vector<std::size_t>& worker_map,
                       std::size_t job = obs::kNoIndex,
                       std::size_t tenant = obs::kNoIndex);

  /// Refresh every owner's finish and busy time: full mode re-simulates
  /// the accumulated schedule, incremental mode drains a checkpoint of
  /// the settled prefix. Identical results either way.
  void replay();

  /// Latest compute end of the owner's chunks, absolute (>= its dispatch
  /// instant). Valid after a replay(); settled once simulated time has
  /// passed it.
  [[nodiscard]] double finish(std::size_t owner) const;
  /// Σ compute busy time of the owner's chunks.
  [[nodiscard]] double busy(std::size_t owner) const;

  /// Drop the drained period (call only once every owner has settled).
  /// Keeps buffer capacity for the next burst, but shrinks automatically
  /// when capacity dwarfs a decaying high-water mark of recent period
  /// sizes — a long-running server's buffers track its bursts instead of
  /// growing monotonically toward the largest burst ever seen.
  void clear();

  /// Release excess buffer capacity now (clear() calls this through the
  /// high-water heuristic; exposed for explicit memory ceilings).
  void shrink();

 private:
  void on_settled(std::size_t chunk, const ChunkSpan& span);
  void on_speculative(std::size_t chunk, const ChunkSpan& span);
  void replay_full();
  void replay_incremental();
  void emit_chunk_spans(std::size_t chunk, const ChunkSpan& span);
  void emit_instant(obs::EventKind kind, double at, double value,
                    std::size_t job, std::size_t tenant, double alpha);
  void flush_trace();

  const Engine& engine_;
  const CommModel& model_;
  SharedMasterOptions options_;
  double start_ = 0.0;

  /// Full mode: the accumulated period-relative schedule to re-simulate.
  /// Incremental mode keeps the schedule inside settled_ instead.
  std::vector<ChunkAssignment> schedule_;
  std::vector<std::size_t> chunk_owner_;

  /// Per owner: current (served) totals — settled plus the latest
  /// speculative drain's contributions.
  std::vector<double> finish_;  ///< absolute
  std::vector<double> busy_;

  // Incremental state. settled_ is the persistent run advanced to the
  // latest release barrier; scratch_ is the reusable checkpoint it is
  // copied into and drained speculatively. settled_finish_/settled_busy_
  // hold only contributions of chunks the settled run finalized; owners
  // in touched_ diverge from settled in finish_/busy_ and are rolled
  // back before the next speculative drain.
  EngineRun settled_;
  EngineRun scratch_;
  std::vector<double> settled_finish_;
  std::vector<double> settled_busy_;
  std::vector<std::uint8_t> touched_flag_;
  std::vector<std::size_t> touched_;
  std::vector<std::size_t> compact_remap_;  ///< EngineRun::compact scratch

  std::uint64_t events_ = 0;
  std::uint64_t replays_ = 0;
  std::size_t high_water_ = 0;

  // Tracing (null = fast path). Per-owner attribution for span emission;
  // last_barrier_ is the latest dispatch's absolute time, stamping the
  // replay/checkpoint bookkeeping instants.
  obs::TraceSink* trace_ = nullptr;
  double last_barrier_ = 0.0;
  std::vector<std::size_t> owner_job_;
  std::vector<std::size_t> owner_tenant_;
  std::vector<double> owner_alpha_;
};

}  // namespace nldl::sim
