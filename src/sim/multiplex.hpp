// Busy-period multiplexing of time-released chunk schedules — the shared
// machinery behind online::MasterMode::kSharedMaster and the qos
// server's concurrent installment subsets.
//
// A SharedMasterPeriod accumulates the chunks of every unit of work
// ("owner" — a whole job for the online server, one installment for the
// qos server) dispatched during one busy period of a shared master, and
// re-simulates the accumulated schedule through one sim::Engine run
// under one CommModel after each dispatch:
//
//   - chunk times are PERIOD-RELATIVE: the period's first dispatch is
//     the engine's t = 0, so a single-owner period reproduces a private
//     replay of that owner's schedule bit for bit;
//   - each owner's chunks are released at its dispatch instant and carry
//     its own compute exponent, so concurrent owners of different cost
//     classes contend honestly under the model;
//   - re-simulating after a dispatch never rewrites history: chunks
//     released at `now` are not eligible earlier, and rate sharing is
//     monotone (a newcomer never speeds anyone up), so an owner's finish
//     estimate only ever moves LATER — and is settled once simulated
//     time passes it. The servers' event loops re-read finishes after
//     every replay and advance on the current estimates, which is
//     exactly causal under that invariant.
//
// Cost: replay() re-simulates the period from its anchor, so a busy
// period of n dispatches costs O(n^2) chunk-events in total. Periods are
// flushed whenever the platform drains, which bounds n by the burst
// length in practice (the contention bench's worst cell simulates in
// milliseconds). The settled prefix never changes, so an incremental
// replay resuming from a checkpoint of engine state is possible if a
// workload ever needs it — noted in ROADMAP under dynamic
// repartitioning.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/comm_model.hpp"
#include "sim/engine.hpp"

namespace nldl::sim {

/// One open busy period of a shared master. Holds references to the
/// engine and model, which must outlive it.
class SharedMasterPeriod {
 public:
  SharedMasterPeriod(const Engine& engine, const CommModel& model);

  /// No dispatches accumulated (a replay would be empty).
  [[nodiscard]] bool empty() const noexcept { return schedule_.empty(); }
  [[nodiscard]] std::size_t owners() const noexcept {
    return finish_.size();
  }

  /// Register one unit of work dispatched at absolute time `now` (>= the
  /// period's first dispatch): `chunks` in their allocator's (subset-
  /// local) worker indices, mapped to engine workers through
  /// `worker_map`, released at `now` and computing at `alpha`. The first
  /// dispatch anchors the period clock. Returns the owner index to
  /// query finish()/busy() with after the next replay().
  std::size_t dispatch(double now, double alpha,
                       const std::vector<ChunkAssignment>& chunks,
                       const std::vector<std::size_t>& worker_map);

  /// Re-simulate the accumulated schedule, refreshing every owner's
  /// finish and busy time.
  void replay();

  /// Latest compute end of the owner's chunks, absolute (>= its dispatch
  /// instant). Valid after a replay(); settled once simulated time has
  /// passed it.
  [[nodiscard]] double finish(std::size_t owner) const;
  /// Σ compute busy time of the owner's chunks.
  [[nodiscard]] double busy(std::size_t owner) const;

  /// Drop the drained period (call only once every owner has settled).
  void clear();

 private:
  const Engine& engine_;
  const CommModel& model_;
  double start_ = 0.0;
  std::vector<ChunkAssignment> schedule_;
  std::vector<std::size_t> chunk_owner_;
  std::vector<double> finish_;  ///< per owner, absolute
  std::vector<double> busy_;    ///< per owner
};

}  // namespace nldl::sim
