// Deprecated shim over the event-driven engine (sim/engine.hpp).
//
// The original closed-form simulator handled the parallel-links and
// one-port models for arbitrary chunk schedules; it is now a thin wrapper
// so code and tests written against `sim::simulate()` keep working. New
// code should construct a `sim::Engine` and pick a `CommModel` directly —
// that API also covers the bounded-multiport model and single-round
// helpers.
//
// The old `enum class CommModel` became `CommModelKind`; the spelling
// `sim::CommModel::kOnePort` still compiles via compatibility aliases on
// the CommModel base class (sim/comm_model.hpp).
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "platform/platform.hpp"
#include "sim/engine.hpp"

namespace nldl::sim {

struct SimOptions {
  CommModelKind comm_model = CommModelKind::kParallelLinks;
  /// Computational complexity exponent: cost = w_i * size^alpha.
  /// alpha = 1 is the classical linear divisible load; alpha > 1 is the
  /// paper's nonlinear case.
  double alpha = 1.0;
};

/// Simulate the schedule on the platform. Chunk sizes must be >= 0; zero-
/// size chunks are allowed and consume no time. Equivalent to
/// `Engine(platform, {options.alpha}).run(schedule, options.comm_model)`.
[[nodiscard]] SimResult simulate(const platform::Platform& platform,
                                 const std::vector<ChunkAssignment>& schedule,
                                 const SimOptions& options = {});

}  // namespace nldl::sim
