// Deterministic simulator for master→worker divisible-load schedules
// (paper Section 1.2 model).
//
// The master sends chunks in a prescribed order. Two communication models:
//   - kParallelLinks: every worker has a private link (the paper's primary
//     model); chunks to the *same* worker serialize on its link, chunks to
//     different workers overlap.
//   - kOnePort: the master can send to only one worker at a time; all
//     communications serialize globally in schedule order (the model of the
//     nonlinear-DLT papers the paper critiques).
// A worker may compute one chunk while receiving the next (multi-round
// pipelining), but can start computing a chunk only once it is fully
// received. Compute time for a chunk of size X on worker i is w_i · X^alpha.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "platform/platform.hpp"

namespace nldl::sim {

enum class CommModel {
  kParallelLinks,
  kOnePort,
};

/// One master→worker transfer: `size` load units to `worker`.
struct ChunkAssignment {
  std::size_t worker = 0;
  double size = 0.0;
};

/// Timeline of a single chunk.
struct ChunkSpan {
  std::size_t worker = 0;
  double size = 0.0;
  double comm_start = 0.0;
  double comm_end = 0.0;
  double compute_start = 0.0;
  double compute_end = 0.0;
};

struct SimOptions {
  CommModel comm_model = CommModel::kParallelLinks;
  /// Computational complexity exponent: cost = w_i * size^alpha.
  /// alpha = 1 is the classical linear divisible load; alpha > 1 is the
  /// paper's nonlinear case.
  double alpha = 1.0;
};

struct SimResult {
  std::vector<ChunkSpan> spans;             ///< in schedule order
  std::vector<double> worker_finish;        ///< last compute end, 0 if unused
  std::vector<double> worker_compute_time;  ///< total compute busy time
  std::vector<double> worker_comm_time;     ///< total receive busy time
  double makespan = 0.0;

  /// Load imbalance e = (t_max - t_min) / t_min over per-worker computation
  /// times (paper Section 4.3). Returns +infinity when some worker computed
  /// nothing (t_min = 0), and 0 for a single-worker platform.
  [[nodiscard]] double load_imbalance() const noexcept;
};

/// Simulate the schedule on the platform. Chunk sizes must be >= 0; zero-size
/// chunks are allowed and consume no time.
[[nodiscard]] SimResult simulate(const platform::Platform& platform,
                                 const std::vector<ChunkAssignment>& schedule,
                                 const SimOptions& options = {});

}  // namespace nldl::sim
