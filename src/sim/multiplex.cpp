#include "sim/multiplex.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace nldl::sim {

SharedMasterPeriod::SharedMasterPeriod(const Engine& engine,
                                       const CommModel& model,
                                       SharedMasterOptions options)
    : engine_(engine),
      model_(model),
      options_(options),
      settled_(engine, model),
      scratch_(engine, model) {}

// A chunk finalized by the settled (persistent) run is final forever: its
// contribution lands in the settled totals once. The served totals mirror
// it unless the owner is currently speculatively estimated — the same
// chunk was then already simulated (identically) by the last speculative
// drain, so the served totals already include it.
void SharedMasterPeriod::on_settled(std::size_t chunk,
                                    const ChunkSpan& span) {
  const std::size_t owner = chunk_owner_[chunk];
  settled_finish_[owner] =
      std::max(settled_finish_[owner], start_ + span.compute_end);
  settled_busy_[owner] += span.compute_end - span.compute_start;
  if (!touched_flag_[owner]) {
    finish_[owner] = settled_finish_[owner];
    busy_[owner] = settled_busy_[owner];
  }
  // A settling chunk is final — the one moment its spans can be emitted
  // exactly once (speculative drains re-estimate and must stay silent).
  if (trace_ != nullptr) emit_chunk_spans(chunk, span);
}

void SharedMasterPeriod::set_trace(obs::TraceSink* sink) {
  NLDL_REQUIRE(empty(), "attach/detach the trace only between busy periods");
  trace_ = sink;
}

// Emit the transfer + compute spans of a finalized chunk, shifted to
// absolute time and attributed to the dispatching owner.
void SharedMasterPeriod::emit_chunk_spans(std::size_t chunk,
                                          const ChunkSpan& span) {
  const std::size_t owner = chunk_owner_[chunk];
  obs::TraceEvent event;
  event.worker = span.worker;
  event.job = owner_job_[owner];
  event.tenant = owner_tenant_[owner];
  event.size = span.size;
  event.alpha = owner_alpha_[owner];
  event.kind = obs::EventKind::kTransfer;
  event.start = start_ + span.comm_start;
  event.end = start_ + span.comm_end;
  trace_->record(event);
  event.kind = obs::EventKind::kCompute;
  event.start = start_ + span.compute_start;
  event.end = start_ + span.compute_end;
  trace_->record(event);
}

void SharedMasterPeriod::emit_instant(obs::EventKind kind, double at,
                                      double value, std::size_t job,
                                      std::size_t tenant, double alpha) {
  obs::TraceEvent event;
  event.kind = kind;
  event.start = at;
  event.end = at;
  event.job = job;
  event.tenant = tenant;
  event.alpha = alpha;
  event.value = value;
  trace_->record(event);
}

void SharedMasterPeriod::on_speculative(std::size_t chunk,
                                        const ChunkSpan& span) {
  const std::size_t owner = chunk_owner_[chunk];
  if (!touched_flag_[owner]) {
    touched_flag_[owner] = 1;
    touched_.push_back(owner);
  }
  finish_[owner] = std::max(finish_[owner], start_ + span.compute_end);
  busy_[owner] += span.compute_end - span.compute_start;
}

std::size_t SharedMasterPeriod::dispatch(
    double now, double alpha, const std::vector<ChunkAssignment>& chunks,
    const std::vector<std::size_t>& worker_map, std::size_t job,
    std::size_t tenant) {
  if (finish_.empty()) {
    start_ = now;
    // The settled run emits the period's re-rate instants (shifted by the
    // anchor); speculative scratch copies detach the sink after copying.
    if (options_.incremental) settled_.set_trace(trace_, start_);
  }
  NLDL_REQUIRE(now >= start_,
               "dispatches must not precede the period's first dispatch");
  const double release = now - start_;
  const std::size_t owner = finish_.size();
  last_barrier_ = now;
  if (trace_ != nullptr) {
    emit_instant(obs::EventKind::kDispatch, now,
                 static_cast<double>(chunks.size()), job, tenant, alpha);
  }

  if (options_.incremental) {
    // Everything simulated before the new release barrier is final (a
    // chunk released at `release` cannot influence any earlier event):
    // advance the persistent run to the barrier, folding the chunks it
    // finalizes into the settled totals.
    const std::uint64_t before = settled_.events();
    const auto hook = [this](std::size_t chunk, const ChunkSpan& span) {
      on_settled(chunk, span);
    };
    settled_.advance_to(release, ChunkCompletionRef(hook));
    events_ += settled_.events() - before;

    // Once finalized chunks dominate the settled run, drop them and
    // renumber chunk_owner_ to match — the per-replay checkpoint copy
    // stays O(live chunks) even when one busy period spans the whole
    // stream (a saturated open system never drains).
    if (settled_.finalized() >= options_.compact_threshold &&
        settled_.finalized() * 2 >= settled_.chunks()) {
      const std::size_t dropped = settled_.compact(compact_remap_);
      if (dropped > 0) {
        constexpr std::size_t kDropped =
            std::numeric_limits<std::size_t>::max();
        std::size_t out = 0;
        for (std::size_t old = 0; old < chunk_owner_.size(); ++old) {
          if (compact_remap_[old] == kDropped) continue;
          chunk_owner_[compact_remap_[old]] = chunk_owner_[old];
          ++out;
        }
        chunk_owner_.resize(out);
        if (trace_ != nullptr) {
          emit_instant(obs::EventKind::kCompact, now,
                       static_cast<double>(dropped), obs::kNoIndex,
                       obs::kNoIndex, 0.0);
        }
      }
    }
  }

  for (const ChunkAssignment& chunk : chunks) {
    NLDL_REQUIRE(chunk.worker < worker_map.size(),
                 "chunk outside the dispatch's worker map");
    ChunkAssignment shared = chunk;
    shared.worker = worker_map[chunk.worker];
    shared.release = release;
    shared.alpha = alpha;
    if (options_.incremental) {
      (void)settled_.append(shared);
    } else {
      schedule_.push_back(shared);
    }
    chunk_owner_.push_back(owner);
  }
  finish_.push_back(start_);
  busy_.push_back(0.0);
  settled_finish_.push_back(start_);
  settled_busy_.push_back(0.0);
  touched_flag_.push_back(0);
  owner_job_.push_back(job);
  owner_tenant_.push_back(tenant);
  owner_alpha_.push_back(alpha);
  return owner;
}

void SharedMasterPeriod::replay() {
  ++replays_;
  if (options_.incremental) {
    replay_incremental();
  } else {
    replay_full();
  }
}

// The reference semantics: wipe every owner and re-simulate the whole
// accumulated schedule from scratch. Reuses the scratch run's buffers so
// even the O(n²) mode stops re-allocating per replay.
void SharedMasterPeriod::replay_full() {
  std::fill(finish_.begin(), finish_.end(), start_);
  std::fill(busy_.begin(), busy_.end(), 0.0);
  const std::uint64_t before = scratch_.events();
  scratch_.reset();
  for (const ChunkAssignment& chunk : schedule_) (void)scratch_.append(chunk);
  const auto hook = [this](std::size_t chunk, const ChunkSpan& span) {
    const std::size_t owner = chunk_owner_[chunk];
    finish_[owner] = std::max(finish_[owner], start_ + span.compute_end);
    busy_[owner] += span.compute_end - span.compute_start;
  };
  scratch_.drain(ChunkCompletionRef(hook));
  events_ += scratch_.events() - before;
  if (trace_ != nullptr) {
    emit_instant(obs::EventKind::kReplay, last_barrier_,
                 static_cast<double>(scratch_.events() - before),
                 obs::kNoIndex, obs::kNoIndex, 0.0);
  }
}

// Incremental: roll the owners the previous speculative drain touched
// back to their settled totals (O(touched), not O(owners) — settled
// owners keep their totals untouched), checkpoint the settled run, and
// drain only the speculative tail.
void SharedMasterPeriod::replay_incremental() {
  for (const std::size_t owner : touched_) {
    finish_[owner] = settled_finish_[owner];
    busy_[owner] = settled_busy_[owner];
    touched_flag_[owner] = 0;
  }
  touched_.clear();

  scratch_ = settled_;
  // The checkpoint copy carries the sink; a speculative drain re-simulates
  // events a later drain (or the settled advance) will simulate again, so
  // it must stay silent.
  scratch_.set_trace(nullptr);
  const auto hook = [this](std::size_t chunk, const ChunkSpan& span) {
    on_speculative(chunk, span);
  };
  scratch_.drain(ChunkCompletionRef(hook));
  events_ += scratch_.events() - settled_.events();
  if (trace_ != nullptr) {
    emit_instant(obs::EventKind::kCheckpoint, last_barrier_,
                 static_cast<double>(settled_.chunks() - settled_.finalized()),
                 obs::kNoIndex, obs::kNoIndex, 0.0);
    emit_instant(obs::EventKind::kReplay, last_barrier_,
                 static_cast<double>(scratch_.events() - settled_.events()),
                 obs::kNoIndex, obs::kNoIndex, 0.0);
  }
}

double SharedMasterPeriod::finish(std::size_t owner) const {
  NLDL_REQUIRE(owner < finish_.size(), "unknown period owner");
  return finish_[owner];
}

double SharedMasterPeriod::busy(std::size_t owner) const {
  NLDL_REQUIRE(owner < busy_.size(), "unknown period owner");
  return busy_[owner];
}

// Emit the spans the period still owes before its state is dropped.
// Incremental mode: drain the settled run to the period's end — every
// not-yet-settled chunk finalizes through on_settled, which emits it
// (chunks that settled earlier were emitted at their barrier). Full mode:
// the speculative replays were silent, so one final replay of the whole
// schedule emits everything (the trajectory is bit-identical to the last
// replay() the server read its finishes from). Neither path touches
// events_/replays_ accounting: tracing is telemetry-neutral.
void SharedMasterPeriod::flush_trace() {
  if (options_.incremental) {
    const auto hook = [this](std::size_t chunk, const ChunkSpan& span) {
      on_settled(chunk, span);
    };
    settled_.drain(ChunkCompletionRef(hook));
  } else {
    scratch_.reset();
    scratch_.set_trace(trace_, start_);
    for (const ChunkAssignment& chunk : schedule_) {
      (void)scratch_.append(chunk);
    }
    const auto hook = [this](std::size_t chunk, const ChunkSpan& span) {
      emit_chunk_spans(chunk, span);
    };
    scratch_.drain(ChunkCompletionRef(hook));
    scratch_.set_trace(nullptr);
  }
}

void SharedMasterPeriod::clear() {
  if (trace_ != nullptr && !finish_.empty()) flush_trace();
  // Decaying high-water mark of period sizes: remembers the recent burst
  // scale, forgets one-off spikes within a few periods.
  high_water_ = std::max(chunk_owner_.size(), high_water_ - high_water_ / 4);
  schedule_.clear();
  chunk_owner_.clear();
  finish_.clear();
  busy_.clear();
  settled_finish_.clear();
  settled_busy_.clear();
  touched_flag_.clear();
  touched_.clear();
  owner_job_.clear();
  owner_tenant_.clear();
  owner_alpha_.clear();
  settled_.set_trace(nullptr);
  settled_.reset();
  scratch_.reset();
  start_ = 0.0;
  last_barrier_ = 0.0;
  if (chunk_owner_.capacity() > 4 * high_water_ + 64) shrink();
}

void SharedMasterPeriod::shrink() {
  schedule_.shrink_to_fit();
  chunk_owner_.shrink_to_fit();
  finish_.shrink_to_fit();
  busy_.shrink_to_fit();
  settled_finish_.shrink_to_fit();
  settled_busy_.shrink_to_fit();
  touched_flag_.shrink_to_fit();
  touched_.shrink_to_fit();
  owner_job_.shrink_to_fit();
  owner_tenant_.shrink_to_fit();
  owner_alpha_.shrink_to_fit();
  settled_.shrink();
  scratch_.shrink();
}

}  // namespace nldl::sim
