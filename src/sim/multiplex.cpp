#include "sim/multiplex.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace nldl::sim {

SharedMasterPeriod::SharedMasterPeriod(const Engine& engine,
                                       const CommModel& model)
    : engine_(engine), model_(model) {}

std::size_t SharedMasterPeriod::dispatch(
    double now, double alpha, const std::vector<ChunkAssignment>& chunks,
    const std::vector<std::size_t>& worker_map) {
  if (schedule_.empty()) start_ = now;
  NLDL_REQUIRE(now >= start_,
               "dispatches must not precede the period's first dispatch");
  const double release = now - start_;
  const std::size_t owner = finish_.size();
  for (const ChunkAssignment& chunk : chunks) {
    NLDL_REQUIRE(chunk.worker < worker_map.size(),
                 "chunk outside the dispatch's worker map");
    ChunkAssignment shared = chunk;
    shared.worker = worker_map[chunk.worker];
    shared.release = release;
    shared.alpha = alpha;
    schedule_.push_back(shared);
    chunk_owner_.push_back(owner);
  }
  finish_.push_back(start_);
  busy_.push_back(0.0);
  return owner;
}

void SharedMasterPeriod::replay() {
  std::fill(finish_.begin(), finish_.end(), start_);
  std::fill(busy_.begin(), busy_.end(), 0.0);
  (void)engine_.run(schedule_, model_,
                    [&](std::size_t chunk, const ChunkSpan& span) {
                      const std::size_t owner = chunk_owner_[chunk];
                      finish_[owner] = std::max(
                          finish_[owner], start_ + span.compute_end);
                      busy_[owner] +=
                          span.compute_end - span.compute_start;
                    });
}

double SharedMasterPeriod::finish(std::size_t owner) const {
  NLDL_REQUIRE(owner < finish_.size(), "unknown period owner");
  return finish_[owner];
}

double SharedMasterPeriod::busy(std::size_t owner) const {
  NLDL_REQUIRE(owner < busy_.size(), "unknown period owner");
  return busy_[owner];
}

void SharedMasterPeriod::clear() {
  schedule_.clear();
  chunk_owner_.clear();
  finish_.clear();
  busy_.clear();
}

}  // namespace nldl::sim
