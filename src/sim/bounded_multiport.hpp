// Bounded-multiport communication model (Hong & Prasanna style): the
// master can feed any number of workers concurrently, but its aggregate
// outgoing bandwidth is capped. This sits between the paper's two
// extremes — fully parallel links (infinite master capacity) and the
// one-port model (capacity = one transfer at a time) — and lets the
// experiments quantify how much of the Section 2 conclusion depends on
// the communication model.
//
// Semantics: a single round (one chunk per worker, all transfers start at
// t = 0). Transfer i's instantaneous rate is at most 1/c_i (its private
// link) and the sum of all active rates is at most `master_capacity`.
// Rates follow max-min fairness (water-filling), recomputed whenever a
// transfer completes. A worker starts computing (cost w_i·X^alpha) when
// its transfer finishes.
#pragma once

#include <vector>

#include "platform/platform.hpp"

namespace nldl::sim {

struct BoundedMultiportResult {
  std::vector<double> comm_finish;     ///< per worker
  std::vector<double> compute_finish;  ///< per worker (comm + compute)
  double makespan = 0.0;
};

/// Simulate the single round. `amounts[i]` load units go to worker i
/// (0 allowed); alpha is the computation-cost exponent. master_capacity
/// must be positive (use +infinity for the paper's parallel-links model).
[[nodiscard]] BoundedMultiportResult simulate_bounded_multiport(
    const platform::Platform& platform, const std::vector<double>& amounts,
    double master_capacity, double alpha = 1.0);

}  // namespace nldl::sim
