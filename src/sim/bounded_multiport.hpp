// Deprecated shim over the event-driven engine (sim/engine.hpp).
//
// The original single-round bounded-multiport simulator (Hong & Prasanna
// style max-min fair water-filling) is subsumed by
// `Engine::run_single_round(amounts, BoundedMultiportModel(capacity))`,
// which additionally handles arbitrary multi-round schedules and returns
// the unified SimResult. This wrapper keeps the old signature and result
// type alive for existing tests; new code should use the engine.
#pragma once

#include <vector>

#include "platform/platform.hpp"
#include "sim/engine.hpp"

namespace nldl::sim {

struct BoundedMultiportResult {
  std::vector<double> comm_finish;     ///< per worker
  std::vector<double> compute_finish;  ///< per worker (comm + compute)
  double makespan = 0.0;
};

/// Simulate the single round. `amounts[i]` load units go to worker i
/// (0 allowed); alpha is the computation-cost exponent. master_capacity
/// must be positive (use +infinity for the paper's parallel-links model).
[[nodiscard]] BoundedMultiportResult simulate_bounded_multiport(
    const platform::Platform& platform, const std::vector<double>& amounts,
    double master_capacity, double alpha = 1.0);

}  // namespace nldl::sim
