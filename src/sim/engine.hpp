// Event-driven simulation engine for master→worker divisible-load
// schedules (paper Section 1.2 model), with pluggable communication models.
//
// The engine replays an arbitrary multi-round schedule of chunks under one
// platform and one CommModel (sim/comm_model.hpp):
//
//   - Chunks destined to the same worker serialize on that worker's
//     incoming link, in schedule order (per-worker FIFO).
//   - Every chunk carries an optional release time: it may not enter its
//     link queue before that instant. Release times let one engine run
//     multiplex the chunks of several concurrent jobs through one shared
//     master (each job released at its dispatch time), which is how the
//     online/qos shared-master modes obtain honest cross-job bandwidth
//     contention. A chunk may also override the engine's compute
//     exponent, so multiplexed jobs of different cost classes coexist.
//   - The communication model assigns an instantaneous rate to every
//     transfer currently at the head of its link queue; rates are
//     piecewise-constant between events (a transfer completing, a link
//     freeing), and the engine advances event to event.
//   - A worker may compute one chunk while receiving the next (multi-round
//     pipelining) but starts computing a chunk only once it is fully
//     received. Compute time for a chunk of size X on worker i is
//     w_i · X^alpha (alpha = 1 is classical linear DLT; alpha > 1 is the
//     paper's nonlinear case).
//
// Under ParallelLinksModel and OnePortModel every transfer runs at its full
// link rate for its entire lifetime, and the engine reproduces the retired
// closed-form simulator (sim/simulator.hpp) bit for bit. Under
// BoundedMultiportModel the rates follow max-min fair water-filling,
// recomputed at every completion, generalizing the retired single-round
// simulate_bounded_multiport() to arbitrary schedules.
//
// Run-state / checkpoint semantics: the whole event loop lives in the
// copyable EngineRun object. A run can be advanced up to a time barrier,
// have chunks appended at the barrier, and be resumed — and the resumed
// trajectory is bit-identical to a from-scratch replay of the combined
// schedule, because (a) a chunk released at time t cannot influence any
// event before t, and (b) pausing never re-anchors an in-flight transfer
// (rate assignments are cached while the eligible set is unchanged).
// Copying an EngineRun checkpoints it: the incremental shared-master
// replay (sim/multiplex.hpp) copies the settled prefix and drains only
// the speculative tail of each busy period.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <type_traits>
#include <vector>

#include "platform/platform.hpp"
#include "sim/comm_model.hpp"

namespace nldl::obs {
class TraceSink;
}  // namespace nldl::obs

namespace nldl::sim {

/// One master→worker transfer: `size` load units to `worker`.
///
/// `release` is the chunk's release time: the instant before which the
/// chunk may not enter its worker's link queue. Chunks to one worker
/// still serialize in schedule order (per-worker FIFO) — a released
/// chunk never overtakes an earlier chunk to the same worker; it starts
/// transferring at max(release, time the link frees). Release times are
/// what lets ONE engine run multiplex the chunks of several concurrent
/// jobs through one shared master: each job's chunks are released at its
/// dispatch instant and contend with every other in-flight job's
/// transfers under the run's CommModel (the online/qos shared-master
/// modes ride on this). The default 0 is the classical schedule where
/// everything is available up front.
///
/// `alpha` optionally overrides the engine's compute exponent for this
/// chunk (cost = w_i · size^alpha): 0 means "use EngineOptions::alpha",
/// any value >= 1 is the chunk's own exponent. Multiplexed runs need
/// this because concurrent jobs can belong to different cost classes
/// (linear next to quadratic) while sharing one engine run.
struct ChunkAssignment {
  std::size_t worker = 0;
  double size = 0.0;
  double release = 0.0;
  double alpha = 0.0;
};

/// Build the single-round schedule sending amounts[w] to worker w, in
/// worker order or in an explicit `send_order` (which must be a
/// permutation of all workers). This is the shape of every classical DLT
/// allocation; the dlt allocators' to_schedule() methods delegate here.
[[nodiscard]] std::vector<ChunkAssignment> single_round_schedule(
    const std::vector<double>& amounts);
[[nodiscard]] std::vector<ChunkAssignment> single_round_schedule(
    const std::vector<double>& amounts,
    const std::vector<std::size_t>& send_order);

/// Timeline of a single chunk. `cancelled` marks a chunk a paused replay
/// (Engine::run_until) cut: the span keeps its worker/size identity for
/// positional lookup but its timeline is zeroed and it contributed no
/// work — which is how a cancelled chunk is told apart from a zero-size
/// chunk that genuinely completed at t = 0 (identical timelines).
struct ChunkSpan {
  std::size_t worker = 0;
  double size = 0.0;
  double comm_start = 0.0;
  double comm_end = 0.0;
  double compute_start = 0.0;
  double compute_end = 0.0;
  bool cancelled = false;
};

struct SimResult {
  std::vector<ChunkSpan> spans;             ///< in schedule order
  std::vector<double> worker_finish;        ///< last compute end, 0 if unused
  std::vector<double> worker_compute_time;  ///< total compute busy time
  std::vector<double> worker_comm_time;     ///< total receive busy time
  double makespan = 0.0;

  /// Load imbalance e = (t_max - t_min) / t_min over per-worker computation
  /// times (paper Section 4.3), restricted to workers that computed
  /// something: workers the schedule never fed do not turn the statistic
  /// into +infinity (use idle_workers() to count them). Cancelled spans
  /// (a paused run_until replay) contribute no compute time, so the
  /// statistic covers only the work that actually happened. Returns 0
  /// when fewer than two workers computed.
  [[nodiscard]] double load_imbalance() const noexcept;

  /// Number of workers that computed nothing under this schedule.
  /// Cancelled spans are ignored: a worker whose only chunks were cut by
  /// a pause was scheduled to compute (its load comes back via
  /// PartialRun::remaining), so a paused run does not misclassify it as
  /// a worker the schedule never fed.
  [[nodiscard]] std::size_t idle_workers() const noexcept;
};

struct EngineOptions {
  /// Computational complexity exponent: cost = w_i * size^alpha.
  double alpha = 1.0;
};

/// Outcome of a paused replay (Engine::run_until). Divisible loads
/// checkpoint naturally at chunk boundaries: a chunk whose compute
/// finished by the pause boundary is durable progress, everything else —
/// queued, in transfer, or still computing — is cancelled and must be
/// re-dispatched from scratch (its partial communication/computation is
/// lost, which is exactly the nonlinear restart cost the qos subsystem
/// charges for preemption).
struct PartialRun {
  /// Spans and per-worker statistics of the chunks that completed by
  /// `pause_time`. Cancelled chunks keep their worker/size in
  /// result.spans for positional lookup but are flagged
  /// (ChunkSpan::cancelled), have zeroed timelines, and contribute
  /// nothing to makespan/worker totals or to idle_workers() /
  /// load_imbalance().
  SimResult result;
  /// The cancelled chunks at full size, in schedule order — feed them to
  /// a fresh run() (or re-allocate their total) to resume. Release times
  /// and per-chunk alphas are preserved verbatim; releases are absolute
  /// to the original run's clock, so shift them if the resume run starts
  /// its own clock at 0.
  std::vector<ChunkAssignment> remaining;
  /// The chunk boundary actually honored: the earliest chunk
  /// compute-completion >= the requested stop time (the in-flight chunk
  /// is never abandoned mid-compute), or the full makespan when the
  /// schedule finishes first.
  double pause_time = 0.0;
  /// Σ sizes of the completed chunks.
  double completed_load = 0.0;
};

/// Observer invoked as each chunk's timeline is finalized — at the chunk's
/// communication-completion event, once its compute start/end are known
/// (`span` is the same record that lands in SimResult::spans[chunk]).
/// Chunks are reported in event order (non-decreasing comm_end), which is
/// generally *not* schedule order. This is the hook the online subsystem
/// uses to timestamp per-job completions without re-walking the spans of
/// every finished run.
using ChunkCompletionHook =
    std::function<void(std::size_t chunk, const ChunkSpan& span)>;

/// Non-owning, non-allocating reference to a chunk-completion observer —
/// the hot-path replacement for passing a std::function into the event
/// loop (a std::function costs a potential allocation at every call site
/// and an opaque indirect call; the ref is two raw pointers). The callable
/// bound must outlive every advance_to()/drain() call it is passed to.
/// A default-constructed ref is empty and safely "no hook".
class ChunkCompletionRef {
 public:
  ChunkCompletionRef() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, ChunkCompletionRef>>>
  ChunkCompletionRef(const F& fn)  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(static_cast<const void*>(&fn))),
        fn_([](void* obj, std::size_t chunk, const ChunkSpan& span) {
          (*static_cast<const F*>(obj))(chunk, span);
        }) {}

  [[nodiscard]] explicit operator bool() const noexcept {
    return fn_ != nullptr;
  }
  void operator()(std::size_t chunk, const ChunkSpan& span) const {
    fn_(obj_, chunk, span);
  }

 private:
  void* obj_ = nullptr;
  void (*fn_)(void*, std::size_t, const ChunkSpan&) = nullptr;
};

class Engine;

/// The engine's event loop as a first-class, resumable, copyable value.
///
/// An EngineRun owns a schedule plus every piece of mutable replay state:
/// per-worker link-queue heads, in-flight transfer progress (anchored
/// remaining/rate pairs), per-worker cpu_free, the pending-release heap,
/// and the event clock. The lifecycle is
///
///     EngineRun run(engine, model);
///     run.append(chunk);            // any number, releases >= clock()
///     run.advance_to(t, hook);      // process every event at time <= t
///     run.append(later_chunk);      // released at the barrier
///     run.drain(hook);              // run the rest to completion
///
/// and the fundamental contract is bit-identity: interleaving
/// advance_to()/append() in release order produces spans bitwise equal to
/// appending everything up front and draining once — which is itself
/// bitwise equal to the historical Engine::run() on the same schedule.
/// Copy-assigning an EngineRun checkpoints it (plain value semantics; the
/// copy reuses the destination's buffer capacity), which is what makes
/// the shared-master busy-period replay incremental: keep a persistent
/// run advanced to the last dispatch, copy it, and drain only the copy.
///
/// Scratch buffers (model views, rate arrays, completion batches) live in
/// the run and are reused across events, appends, and reset() — a
/// long-lived run allocates only when the schedule outgrows every
/// previous high-water mark.
///
/// Engine and CommModel are referenced, not owned, and must outlive the
/// run. Determinism notes: the rate assignment is cached while the
/// eligible transfer set is unchanged (models are deterministic and
/// stateless per the CommModel contract), so pausing at a barrier never
/// inserts an extra, state-perturbing model call into the trajectory.
class EngineRun {
 public:
  EngineRun(const Engine& engine, const CommModel& model);

  /// Simulated clock: every event at time <= clock() has been processed.
  [[nodiscard]] double clock() const noexcept { return now_; }
  /// Engine events processed over this run object's lifetime (loop
  /// iterations that advanced the clock) — the soak bench's events/sec.
  [[nodiscard]] std::uint64_t events() const noexcept { return events_; }
  [[nodiscard]] std::size_t chunks() const noexcept {
    return schedule_.size();
  }
  /// Every appended chunk has been finalized.
  [[nodiscard]] bool drained() const noexcept {
    return finalized_ == schedule_.size();
  }
  /// Chunks finalized and still occupying slots in the per-chunk arrays
  /// (compact() drops them and resets this to 0).
  [[nodiscard]] std::size_t finalized() const noexcept { return finalized_; }
  /// Spans in schedule order; a span is meaningful once its chunk has
  /// been finalized (reported to the completion hook).
  [[nodiscard]] const std::vector<ChunkSpan>& spans() const noexcept {
    return spans_;
  }
  [[nodiscard]] double makespan() const noexcept { return makespan_; }
  [[nodiscard]] const std::vector<ChunkAssignment>& schedule()
      const noexcept {
    return schedule_;
  }

  /// Append one chunk at the schedule tail. The chunk's release must be
  /// >= clock(): appending cannot rewrite the already-simulated past.
  /// Returns the chunk's schedule index.
  std::size_t append(const ChunkAssignment& chunk);

  /// Process every event with time <= `barrier`, invoking the hook as
  /// chunk timelines are finalized, then advance the clock to the barrier
  /// (when finite). Events strictly after the barrier are untouched — in
  /// particular no in-flight transfer is re-anchored, so resuming later
  /// (with or without appends at the barrier) is bit-identical to never
  /// having paused. A barrier <= clock() is a no-op.
  void advance_to(double barrier, ChunkCompletionRef on_chunk_complete = {});

  /// advance_to(+infinity): run the remaining schedule to completion.
  void drain(ChunkCompletionRef on_chunk_complete = {});

  /// Forget the schedule and every event, returning to an empty run at
  /// clock 0. Buffer capacity is kept (the reuse path of a long-running
  /// server); call shrink() to release it.
  void reset();

  /// Release excess buffer capacity (after reset(), frees everything).
  void shrink();

  /// Drop every finalized chunk from the per-chunk arrays, renumbering
  /// the survivors (stable: relative schedule order is preserved, which
  /// is what the comm models' schedule-order semantics key on — the
  /// event trajectory is bit-identical with or without compaction).
  /// `old_to_new` is resized to the pre-compaction chunk count and maps
  /// each old index to its new one, or to SIZE_MAX for dropped chunks.
  /// Returns the number of chunks dropped. Dropped chunks vanish from
  /// spans()/schedule()/take_result(), so callers that keep chunk
  /// indices (or want the batch result) must remap via `old_to_new` /
  /// harvest spans through the completion hook instead. The checkpoint
  /// copy of a long-lived run shrinks from O(all chunks ever) to O(live
  /// chunks) — what keeps an open-ended busy period's replay cost flat.
  std::size_t compact(std::vector<std::size_t>& old_to_new);

  /// Move the accumulated spans / per-worker statistics out as a
  /// SimResult (the historical batch-API shape). The run must be fully
  /// drained; afterwards the run is only good for reset().
  [[nodiscard]] SimResult take_result();

  /// Attach a trace sink (obs/trace.hpp): every rate (re)assignment emits
  /// a kRerate instant at `offset` + clock() — the water-fill re-rate
  /// instants of the bounded-multiport model, and the discrete models'
  /// queue-head changes. Chunk spans are deliberately NOT emitted here:
  /// span emission is owned by the layer that can attribute chunks to
  /// jobs/tenants (sim::SharedMasterPeriod, online::Server), via the
  /// completion hook. Null (the default) is the zero-cost fast path and
  /// never changes the trajectory. NOTE: copying a run copies the sink
  /// pointer — speculative copies that must stay silent (the incremental
  /// replay's scratch drains) detach it immediately after the copy.
  void set_trace(obs::TraceSink* sink, double offset = 0.0) noexcept {
    trace_ = sink;
    trace_offset_ = offset;
  }
  [[nodiscard]] obs::TraceSink* trace() const noexcept { return trace_; }

 private:
  /// Per-chunk transfer state. `remaining` is measured at `anchor_time`;
  /// the pair is only refreshed when the rate actually changes, so a
  /// transfer that runs at one rate its whole life (both discrete models)
  /// finishes at the exact closed-form instant with no integration drift.
  struct Transfer {
    double remaining = 0.0;
    double rate = 0.0;
    double anchor_time = 0.0;
    double released = 0.0;
    double comm_start = 0.0;
    bool started = false;
  };

  /// Pending-release heap entry (min-heap on `time`, lazy deletion: an
  /// entry is stale once ready_at_[worker] != time).
  struct ParkedRelease {
    double time = 0.0;
    std::size_t worker = 0;
  };

  void release_head(std::size_t worker);
  [[nodiscard]] double peek_release();
  bool pop_due_releases();
  void assign_rates();
  void finish_chunk(std::size_t idx, ChunkCompletionRef hook);

  const Engine* engine_ = nullptr;
  const CommModel* model_ = nullptr;

  double now_ = 0.0;
  std::uint64_t events_ = 0;
  std::size_t finalized_ = 0;
  double makespan_ = 0.0;
  /// rates_/transfers_ reflect a model call on the current eligible set.
  bool rates_valid_ = false;
  /// Optional re-rate instant sink; survives reset() like events_ does.
  obs::TraceSink* trace_ = nullptr;
  double trace_offset_ = 0.0;

  // Per chunk, indexed by schedule position.
  std::vector<ChunkAssignment> schedule_;
  std::vector<ChunkSpan> spans_;
  std::vector<Transfer> transfers_;
  std::vector<std::size_t> fifo_next_;  ///< next chunk to the same worker

  // Per worker.
  std::vector<std::size_t> q_head_;  ///< front of the link queue (kNoChunk)
  std::vector<std::size_t> q_tail_;
  std::vector<double> cpu_free_;
  std::vector<double> ready_at_;  ///< parked head's release, +inf otherwise
  std::vector<double> worker_finish_;
  std::vector<double> worker_compute_;
  std::vector<double> worker_comm_;

  // Event machinery (flat, reused across events and resets).
  std::vector<ParkedRelease> release_heap_;
  std::vector<std::size_t> eligible_;  ///< chunk indices, ascending
  std::vector<TransferView> views_;
  std::vector<double> rates_;
  std::vector<std::size_t> done_;
};

/// The single simulation entry point. Holds a reference to the platform
/// (which must outlive the engine) and replays schedules under any
/// communication model. The batch run() APIs are one-shot conveniences
/// over EngineRun (append everything, drain, harvest); use EngineRun
/// directly to checkpoint, resume, or append mid-run.
class Engine {
 public:
  explicit Engine(const platform::Platform& platform,
                  EngineOptions options = {});

  [[nodiscard]] const platform::Platform& platform() const noexcept {
    return platform_;
  }
  [[nodiscard]] const EngineOptions& options() const noexcept {
    return options_;
  }

  /// Simulate the schedule under the given model. Chunk sizes must be
  /// >= 0; zero-size chunks are allowed and consume no time (they still
  /// queue like any transfer — e.g. the one-port model serializes them at
  /// the port in schedule order — but complete the instant they are
  /// served). Release times must be finite and >= 0: a chunk enters its
  /// worker's link queue head no earlier than its release, and simulated
  /// time simply advances to the next release when every in-flight
  /// transfer has drained first. With all releases 0 (the default) the
  /// replay is bit-identical to the pre-release engine.
  [[nodiscard]] SimResult run(const std::vector<ChunkAssignment>& schedule,
                              const CommModel& model) const;

  /// Same, additionally invoking `on_chunk_complete` (when non-empty) as
  /// each chunk's span is finalized; see ChunkCompletionHook.
  [[nodiscard]] SimResult run(const std::vector<ChunkAssignment>& schedule,
                              const CommModel& model,
                              const ChunkCompletionHook& on_chunk_complete)
      const;

  /// Convenience: simulate under a built-in model with default parameters
  /// (kBoundedMultiport defaults to an uncapped master, i.e. parallel
  /// links — pass a configured BoundedMultiportModel for a real cap).
  [[nodiscard]] SimResult run(const std::vector<ChunkAssignment>& schedule,
                              CommModelKind kind) const;

  /// Replay `schedule` but pause at the first chunk boundary at or after
  /// `stop_after`: chunks whose compute completed by that boundary are
  /// kept, every other chunk is cancelled and returned for re-dispatch
  /// (see PartialRun). Pausing never rewrites history — the kept chunks'
  /// spans are bit-identical to the uninterrupted run's, including any
  /// bandwidth the cancelled transfers consumed before the boundary.
  /// stop_after >= the makespan completes everything (empty `remaining`).
  [[nodiscard]] PartialRun run_until(
      const std::vector<ChunkAssignment>& schedule, const CommModel& model,
      double stop_after) const;

  /// Convenience: one chunk per worker (amounts[i] to worker i, in worker
  /// order), the single-round shape of every classical DLT allocation.
  [[nodiscard]] SimResult run_single_round(const std::vector<double>& amounts,
                                           const CommModel& model) const;

 private:
  const platform::Platform& platform_;
  EngineOptions options_;
};

}  // namespace nldl::sim
