// Event-driven simulation engine for master→worker divisible-load
// schedules (paper Section 1.2 model), with pluggable communication models.
//
// The engine replays an arbitrary multi-round schedule of chunks under one
// platform and one CommModel (sim/comm_model.hpp):
//
//   - Chunks destined to the same worker serialize on that worker's
//     incoming link, in schedule order (per-worker FIFO).
//   - Every chunk carries an optional release time: it may not enter its
//     link queue before that instant. Release times let one engine run
//     multiplex the chunks of several concurrent jobs through one shared
//     master (each job released at its dispatch time), which is how the
//     online/qos shared-master modes obtain honest cross-job bandwidth
//     contention. A chunk may also override the engine's compute
//     exponent, so multiplexed jobs of different cost classes coexist.
//   - The communication model assigns an instantaneous rate to every
//     transfer currently at the head of its link queue; rates are
//     piecewise-constant between events (a transfer completing, a link
//     freeing), and the engine advances event to event.
//   - A worker may compute one chunk while receiving the next (multi-round
//     pipelining) but starts computing a chunk only once it is fully
//     received. Compute time for a chunk of size X on worker i is
//     w_i · X^alpha (alpha = 1 is classical linear DLT; alpha > 1 is the
//     paper's nonlinear case).
//
// Under ParallelLinksModel and OnePortModel every transfer runs at its full
// link rate for its entire lifetime, and the engine reproduces the retired
// closed-form simulator (sim/simulator.hpp) bit for bit. Under
// BoundedMultiportModel the rates follow max-min fair water-filling,
// recomputed at every completion, generalizing the retired single-round
// simulate_bounded_multiport() to arbitrary schedules.
#pragma once

#include <cstddef>
#include <functional>
#include <limits>
#include <vector>

#include "platform/platform.hpp"
#include "sim/comm_model.hpp"

namespace nldl::sim {

/// One master→worker transfer: `size` load units to `worker`.
///
/// `release` is the chunk's release time: the instant before which the
/// chunk may not enter its worker's link queue. Chunks to one worker
/// still serialize in schedule order (per-worker FIFO) — a released
/// chunk never overtakes an earlier chunk to the same worker; it starts
/// transferring at max(release, time the link frees). Release times are
/// what lets ONE engine run multiplex the chunks of several concurrent
/// jobs through one shared master: each job's chunks are released at its
/// dispatch instant and contend with every other in-flight job's
/// transfers under the run's CommModel (the online/qos shared-master
/// modes ride on this). The default 0 is the classical schedule where
/// everything is available up front.
///
/// `alpha` optionally overrides the engine's compute exponent for this
/// chunk (cost = w_i · size^alpha): 0 means "use EngineOptions::alpha",
/// any value >= 1 is the chunk's own exponent. Multiplexed runs need
/// this because concurrent jobs can belong to different cost classes
/// (linear next to quadratic) while sharing one engine run.
struct ChunkAssignment {
  std::size_t worker = 0;
  double size = 0.0;
  double release = 0.0;
  double alpha = 0.0;
};

/// Build the single-round schedule sending amounts[w] to worker w, in
/// worker order or in an explicit `send_order` (which must be a
/// permutation of all workers). This is the shape of every classical DLT
/// allocation; the dlt allocators' to_schedule() methods delegate here.
[[nodiscard]] std::vector<ChunkAssignment> single_round_schedule(
    const std::vector<double>& amounts);
[[nodiscard]] std::vector<ChunkAssignment> single_round_schedule(
    const std::vector<double>& amounts,
    const std::vector<std::size_t>& send_order);

/// Timeline of a single chunk. `cancelled` marks a chunk a paused replay
/// (Engine::run_until) cut: the span keeps its worker/size identity for
/// positional lookup but its timeline is zeroed and it contributed no
/// work — which is how a cancelled chunk is told apart from a zero-size
/// chunk that genuinely completed at t = 0 (identical timelines).
struct ChunkSpan {
  std::size_t worker = 0;
  double size = 0.0;
  double comm_start = 0.0;
  double comm_end = 0.0;
  double compute_start = 0.0;
  double compute_end = 0.0;
  bool cancelled = false;
};

struct SimResult {
  std::vector<ChunkSpan> spans;             ///< in schedule order
  std::vector<double> worker_finish;        ///< last compute end, 0 if unused
  std::vector<double> worker_compute_time;  ///< total compute busy time
  std::vector<double> worker_comm_time;     ///< total receive busy time
  double makespan = 0.0;

  /// Load imbalance e = (t_max - t_min) / t_min over per-worker computation
  /// times (paper Section 4.3), restricted to workers that computed
  /// something: workers the schedule never fed do not turn the statistic
  /// into +infinity (use idle_workers() to count them). Cancelled spans
  /// (a paused run_until replay) contribute no compute time, so the
  /// statistic covers only the work that actually happened. Returns 0
  /// when fewer than two workers computed.
  [[nodiscard]] double load_imbalance() const noexcept;

  /// Number of workers that computed nothing under this schedule.
  /// Cancelled spans are ignored: a worker whose only chunks were cut by
  /// a pause was scheduled to compute (its load comes back via
  /// PartialRun::remaining), so a paused run does not misclassify it as
  /// a worker the schedule never fed.
  [[nodiscard]] std::size_t idle_workers() const noexcept;
};

struct EngineOptions {
  /// Computational complexity exponent: cost = w_i * size^alpha.
  double alpha = 1.0;
};

/// Outcome of a paused replay (Engine::run_until). Divisible loads
/// checkpoint naturally at chunk boundaries: a chunk whose compute
/// finished by the pause boundary is durable progress, everything else —
/// queued, in transfer, or still computing — is cancelled and must be
/// re-dispatched from scratch (its partial communication/computation is
/// lost, which is exactly the nonlinear restart cost the qos subsystem
/// charges for preemption).
struct PartialRun {
  /// Spans and per-worker statistics of the chunks that completed by
  /// `pause_time`. Cancelled chunks keep their worker/size in
  /// result.spans for positional lookup but are flagged
  /// (ChunkSpan::cancelled), have zeroed timelines, and contribute
  /// nothing to makespan/worker totals or to idle_workers() /
  /// load_imbalance().
  SimResult result;
  /// The cancelled chunks at full size, in schedule order — feed them to
  /// a fresh run() (or re-allocate their total) to resume. Release times
  /// and per-chunk alphas are preserved verbatim; releases are absolute
  /// to the original run's clock, so shift them if the resume run starts
  /// its own clock at 0.
  std::vector<ChunkAssignment> remaining;
  /// The chunk boundary actually honored: the earliest chunk
  /// compute-completion >= the requested stop time (the in-flight chunk
  /// is never abandoned mid-compute), or the full makespan when the
  /// schedule finishes first.
  double pause_time = 0.0;
  /// Σ sizes of the completed chunks.
  double completed_load = 0.0;
};

/// Observer invoked as each chunk's timeline is finalized — at the chunk's
/// communication-completion event, once its compute start/end are known
/// (`span` is the same record that lands in SimResult::spans[chunk]).
/// Chunks are reported in event order (non-decreasing comm_end), which is
/// generally *not* schedule order. This is the hook the online subsystem
/// uses to timestamp per-job completions without re-walking the spans of
/// every finished run.
using ChunkCompletionHook =
    std::function<void(std::size_t chunk, const ChunkSpan& span)>;

/// The single simulation entry point. Holds a reference to the platform
/// (which must outlive the engine) and replays schedules under any
/// communication model.
class Engine {
 public:
  explicit Engine(const platform::Platform& platform,
                  EngineOptions options = {});

  [[nodiscard]] const platform::Platform& platform() const noexcept {
    return platform_;
  }
  [[nodiscard]] const EngineOptions& options() const noexcept {
    return options_;
  }

  /// Simulate the schedule under the given model. Chunk sizes must be
  /// >= 0; zero-size chunks are allowed and consume no time (they still
  /// queue like any transfer — e.g. the one-port model serializes them at
  /// the port in schedule order — but complete the instant they are
  /// served). Release times must be finite and >= 0: a chunk enters its
  /// worker's link queue head no earlier than its release, and simulated
  /// time simply advances to the next release when every in-flight
  /// transfer has drained first. With all releases 0 (the default) the
  /// replay is bit-identical to the pre-release engine.
  [[nodiscard]] SimResult run(const std::vector<ChunkAssignment>& schedule,
                              const CommModel& model) const;

  /// Same, additionally invoking `on_chunk_complete` (when non-empty) as
  /// each chunk's span is finalized; see ChunkCompletionHook.
  [[nodiscard]] SimResult run(const std::vector<ChunkAssignment>& schedule,
                              const CommModel& model,
                              const ChunkCompletionHook& on_chunk_complete)
      const;

  /// Convenience: simulate under a built-in model with default parameters
  /// (kBoundedMultiport defaults to an uncapped master, i.e. parallel
  /// links — pass a configured BoundedMultiportModel for a real cap).
  [[nodiscard]] SimResult run(const std::vector<ChunkAssignment>& schedule,
                              CommModelKind kind) const;

  /// Replay `schedule` but pause at the first chunk boundary at or after
  /// `stop_after`: chunks whose compute completed by that boundary are
  /// kept, every other chunk is cancelled and returned for re-dispatch
  /// (see PartialRun). Pausing never rewrites history — the kept chunks'
  /// spans are bit-identical to the uninterrupted run's, including any
  /// bandwidth the cancelled transfers consumed before the boundary.
  /// stop_after >= the makespan completes everything (empty `remaining`).
  [[nodiscard]] PartialRun run_until(
      const std::vector<ChunkAssignment>& schedule, const CommModel& model,
      double stop_after) const;

  /// Convenience: one chunk per worker (amounts[i] to worker i, in worker
  /// order), the single-round shape of every classical DLT allocation.
  [[nodiscard]] SimResult run_single_round(const std::vector<double>& amounts,
                                           const CommModel& model) const;

 private:
  const platform::Platform& platform_;
  EngineOptions options_;
};

}  // namespace nldl::sim
