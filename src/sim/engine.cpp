#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/stats.hpp"

namespace nldl::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::size_t kNoChunk = std::numeric_limits<std::size_t>::max();

/// Remaining transfer time. Full-link-rate transfers use the exact c·size
/// formula (the retired simulator's arithmetic); shared-rate transfers
/// divide by the fluid rate.
double time_left(double remaining, double rate, double link_rate, double c) {
  if (rate == link_rate) return remaining * c;  // nldl-lint: allow(double-eq): rates copied verbatim; equality picks the shared-link form
  return remaining / rate;
}

}  // namespace

double SimResult::load_imbalance() const noexcept {
  // Imbalance is defined over the workers that actually computed
  // something: a worker the schedule never fed is a scheduling decision,
  // not an infinite imbalance, and returning +inf would poison any
  // statistic aggregated over trials. Callers that care about unused
  // workers can count them via idle_workers(). Cancelled spans already
  // contribute zero compute time, so a paused replay's statistic covers
  // exactly the work that happened before the pause.
  return util::imbalance_over_busy(worker_compute_time);
}

std::size_t SimResult::idle_workers() const noexcept {
  // A worker whose only chunks a pause cancelled computed nothing, but it
  // was not idle by scheduling decision — the pause cut it off and its
  // load is coming back via PartialRun::remaining. Skip those workers so
  // a paused run's statistic keeps the full run's meaning ("the schedule
  // never fed this worker"). Only run_until produces cancelled spans, so
  // the common full-run path stays the plain O(p) count; no allocation
  // anywhere (noexcept must hold).
  bool any_cancelled = false;
  for (const ChunkSpan& span : spans) {
    if (span.cancelled) {
      any_cancelled = true;
      break;
    }
  }
  if (!any_cancelled) return util::count_idle(worker_compute_time);
  std::size_t idle = 0;
  for (std::size_t w = 0; w < worker_compute_time.size(); ++w) {
    if (worker_compute_time[w] > 0.0) continue;
    bool cancelled_here = false;
    for (const ChunkSpan& span : spans) {
      if (span.cancelled && span.worker == w) {
        cancelled_here = true;
        break;
      }
    }
    if (!cancelled_here) ++idle;
  }
  return idle;
}

Engine::Engine(const platform::Platform& platform, EngineOptions options)
    : platform_(platform), options_(options) {
  NLDL_REQUIRE(options.alpha >= 1.0, "alpha must be >= 1");
}

std::vector<ChunkAssignment> single_round_schedule(
    const std::vector<double>& amounts) {
  std::vector<std::size_t> order(amounts.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  return single_round_schedule(amounts, order);
}

std::vector<ChunkAssignment> single_round_schedule(
    const std::vector<double>& amounts,
    const std::vector<std::size_t>& send_order) {
  NLDL_REQUIRE(send_order.size() == amounts.size(),
               "send order must cover every worker exactly once");
  std::vector<bool> seen(amounts.size(), false);
  std::vector<ChunkAssignment> schedule;
  schedule.reserve(amounts.size());
  for (const std::size_t worker : send_order) {
    NLDL_REQUIRE(worker < amounts.size(), "send order index out of range");
    NLDL_REQUIRE(!seen[worker], "send order repeats a worker");
    seen[worker] = true;
    schedule.push_back({worker, amounts[worker]});
  }
  return schedule;
}

// ---------------------------------------------------------------------------
// EngineRun

EngineRun::EngineRun(const Engine& engine, const CommModel& model)
    : engine_(&engine), model_(&model) {
  const std::size_t p = engine.platform().size();
  q_head_.assign(p, kNoChunk);
  q_tail_.assign(p, kNoChunk);
  cpu_free_.assign(p, 0.0);
  ready_at_.assign(p, kInf);
  worker_finish_.assign(p, 0.0);
  worker_compute_.assign(p, 0.0);
  worker_comm_.assign(p, 0.0);
}

// Move worker w's next queued chunk to the head of its link at clock(),
// or park it (ready_at_ + release heap) when its release time is still in
// the future. Zero-size chunks travel through the model like any other
// transfer (so e.g. the one-port model still serializes them at the port
// in schedule order, as the retired simulator did); they just take no
// time once served.
void EngineRun::release_head(std::size_t worker) {
  const std::size_t idx = q_head_[worker];
  if (idx == kNoChunk) {
    ready_at_[worker] = kInf;
    return;
  }
  const ChunkAssignment& chunk = schedule_[idx];
  if (chunk.release > now_) {
    ready_at_[worker] = chunk.release;
    release_heap_.push_back({chunk.release, worker});
    std::push_heap(release_heap_.begin(), release_heap_.end(),
                   [](const ParkedRelease& a, const ParkedRelease& b) {
                     return a.time > b.time;
                   });
    return;
  }
  ready_at_[worker] = kInf;
  Transfer& transfer = transfers_[idx];
  transfer.remaining = chunk.size;
  transfer.anchor_time = now_;
  transfer.released = now_;
  eligible_.insert(std::lower_bound(eligible_.begin(), eligible_.end(), idx),
                   idx);
  rates_valid_ = false;
}

// Earliest pending release, lazily discarding stale heap entries (a
// worker's entry is stale once ready_at_ no longer matches it: its head
// was released through another path, or the queue moved on). A worker has
// at most one fresh entry, so the heap holds O(workers) fresh entries and
// stale ones are dropped exactly once — O(log n) amortized against the
// historical O(workers) min_element scan per event.
double EngineRun::peek_release() {
  const auto later = [](const ParkedRelease& a, const ParkedRelease& b) {
    return a.time > b.time;
  };
  while (!release_heap_.empty()) {
    const ParkedRelease& top = release_heap_.front();
    if (ready_at_[top.worker] == top.time) return top.time;
    std::pop_heap(release_heap_.begin(), release_heap_.end(), later);
    release_heap_.pop_back();
  }
  return kInf;
}

// Release every parked head whose time has come (ready_at_ <= clock()).
bool EngineRun::pop_due_releases() {
  const auto later = [](const ParkedRelease& a, const ParkedRelease& b) {
    return a.time > b.time;
  };
  bool any = false;
  while (!release_heap_.empty() && release_heap_.front().time <= now_) {
    const ParkedRelease top = release_heap_.front();
    std::pop_heap(release_heap_.begin(), release_heap_.end(), later);
    release_heap_.pop_back();
    if (ready_at_[top.worker] == top.time) {
      release_head(top.worker);
      any = true;
    }
  }
  return any;
}

// Ask the model to rate the eligible transfers (sorted by schedule
// position, at most one per worker) and apply the rates, re-anchoring
// only transfers whose rate changed. Cached while the eligible set is
// unchanged: models are deterministic and stateless (the CommModel
// contract), so re-asking with the same set is both wasted work and — at
// a checkpoint barrier — a potential source of divergence from the
// uninterrupted trajectory. The cache guarantees the model sees exactly
// the same call sequence whether or not the run was paused.
void EngineRun::assign_rates() {
  const platform::Platform& plat = engine_->platform();
  views_.clear();
  for (const std::size_t idx : eligible_) {
    const std::size_t w = schedule_[idx].worker;
    TransferView view;
    view.chunk = idx;
    view.worker = w;
    view.link_rate = plat.worker(w).bandwidth();
    // Progress the view (not the anchor) to the clock, so models relying
    // on remaining see current data.
    view.remaining = std::max(
        0.0, transfers_[idx].remaining -
                 transfers_[idx].rate * (now_ - transfers_[idx].anchor_time));
    view.released = transfers_[idx].released;
    views_.push_back(view);
  }
  rates_.assign(views_.size(), 0.0);
  model_->assign_rates(views_, rates_);

  bool any_positive = false;
  for (std::size_t j = 0; j < views_.size(); ++j) {
    const std::size_t idx = views_[j].chunk;
    Transfer& transfer = transfers_[idx];
    NLDL_ASSERT(rates_[j] >= 0.0, "comm model assigned a negative rate");
    const double rate = std::min(rates_[j], views_[j].link_rate);
    if (rate > 0.0) any_positive = true;
    if (rate != transfer.rate) {  // nldl-lint: allow(double-eq): rate-change detection on values copied verbatim
      transfer.remaining =
          std::max(0.0, transfer.remaining -
                            transfer.rate * (now_ - transfer.anchor_time));
      transfer.anchor_time = now_;
      transfer.rate = rate;
    }
    if (rate > 0.0 && !transfer.started) {
      transfer.started = true;
      transfer.comm_start = now_;
    }
  }
  NLDL_ASSERT(any_positive, "comm model starves every pending transfer");
  rates_valid_ = true;

  if (trace_ != nullptr) {
    obs::TraceEvent event;
    event.kind = obs::EventKind::kRerate;
    event.start = trace_offset_ + now_;
    event.end = event.start;
    event.value = static_cast<double>(eligible_.size());
    trace_->record(event);
  }
}

// Record the chunk's span once its communication is over, queueing its
// computation on the worker's CPU (receive/compute pipelining: compute of
// chunk k overlaps the receive of chunk k+1).
void EngineRun::finish_chunk(std::size_t idx, ChunkCompletionRef hook) {
  const ChunkAssignment& chunk = schedule_[idx];
  const auto& proc = engine_->platform().worker(chunk.worker);
  const Transfer& transfer = transfers_[idx];
  ChunkSpan& span = spans_[idx];
  span.worker = chunk.worker;
  span.size = chunk.size;
  span.comm_start = transfer.started ? transfer.comm_start : now_;
  span.comm_end = now_;
  const double compute_duration =
      proc.w * std::pow(chunk.size, chunk.alpha > 0.0 ? chunk.alpha
                                                      : engine_->options().alpha);
  span.compute_start = std::max(span.comm_end, cpu_free_[chunk.worker]);
  span.compute_end = span.compute_start + compute_duration;
  cpu_free_[chunk.worker] = span.compute_end;

  worker_comm_[chunk.worker] += span.comm_end - span.comm_start;
  worker_compute_[chunk.worker] += compute_duration;
  worker_finish_[chunk.worker] = span.compute_end;
  makespan_ = std::max(makespan_, span.compute_end);
  if (hook) hook(idx, span);
}

std::size_t EngineRun::append(const ChunkAssignment& chunk) {
  NLDL_REQUIRE(chunk.worker < engine_->platform().size(),
               "chunk assigned to unknown worker");
  NLDL_REQUIRE(chunk.size >= 0.0, "chunk size must be >= 0");
  NLDL_REQUIRE(std::isfinite(chunk.release) && chunk.release >= 0.0,
               "chunk release time must be finite and >= 0");
  NLDL_REQUIRE(chunk.alpha == 0.0 || chunk.alpha >= 1.0,
               "per-chunk alpha must be 0 (engine default) or >= 1");
  NLDL_REQUIRE(chunk.release >= now_,
               "appended chunk released in the simulated past");

  const std::size_t idx = schedule_.size();
  schedule_.push_back(chunk);
  spans_.emplace_back();
  transfers_.emplace_back();
  fifo_next_.push_back(kNoChunk);

  // Chunks to one worker serialize in schedule order, release times
  // notwithstanding: a released chunk never overtakes an earlier chunk to
  // the same worker.
  const std::size_t w = chunk.worker;
  const bool queue_was_empty = q_head_[w] == kNoChunk;
  if (q_tail_[w] != kNoChunk) fifo_next_[q_tail_[w]] = idx;
  q_tail_[w] = idx;
  if (queue_was_empty) {
    q_head_[w] = idx;
    release_head(w);
  }
  return idx;
}

void EngineRun::advance_to(double barrier, ChunkCompletionRef hook) {
  const platform::Platform& plat = engine_->platform();
  while (true) {
    const double next_release = peek_release();
    if (eligible_.empty()) {
      // Nothing in flight. Jump to the next release (a quiet gap between
      // releases) — unless it lies beyond the barrier, or the schedule
      // has drained.
      if (next_release == kInf || next_release > barrier) break;  // nldl-lint: allow(double-eq): kInf sentinel compare
      now_ = std::max(now_, next_release);
      ++events_;
      pop_due_releases();
      continue;
    }
    if (!rates_valid_) assign_rates();

    // Advance to the earliest transfer completion — or to the next
    // release, whose newcomer changes the rate assignment (water-filling
    // must be recomputed the instant a transfer joins the master).
    double next = next_release;
    for (const std::size_t idx : eligible_) {
      const Transfer& transfer = transfers_[idx];
      if (transfer.rate <= 0.0) continue;
      const auto& proc = plat.worker(schedule_[idx].worker);
      next = std::min(next, transfer.anchor_time +
                                time_left(transfer.remaining, transfer.rate,
                                          proc.bandwidth(), proc.c));
    }
    NLDL_ASSERT(std::isfinite(next), "no finite next event");
    // Events strictly after the barrier belong to a later advance — stop
    // with every transfer's anchor untouched so resuming is bit-identical
    // to never having paused.
    if (next > barrier) break;
    now_ = std::max(now_, next);
    ++events_;

    // Chunks whose release has come enter their link head now. They were
    // not part of the rate interval that just elapsed; the next rate
    // assignment includes the newcomers.
    const bool any_released = pop_due_releases();

    // Complete every transfer done at the clock. Transfers running below
    // their private link rate (fluid sharing) additionally snap within
    // the retired water-filling simulator's tolerance: fair sharing
    // leaves O(eps)-sized residues on transfers that tie in exact
    // arithmetic. Full-link-rate transfers never snap, so the discrete
    // models keep their exact closed-form finish times even in near-ties.
    done_.clear();
    for (const std::size_t idx : eligible_) {
      const Transfer& transfer = transfers_[idx];
      if (transfer.rate <= 0.0) continue;
      const auto& proc = plat.worker(schedule_[idx].worker);
      const double finish =
          transfer.anchor_time + time_left(transfer.remaining, transfer.rate,
                                           proc.bandwidth(), proc.c);
      const bool shared_rate = transfer.rate != proc.bandwidth();  // nldl-lint: allow(double-eq): rates copied verbatim; equality picks the shared-link form
      const double left =
          transfer.remaining - transfer.rate * (now_ - transfer.anchor_time);
      if (finish <= now_ ||
          (shared_rate &&
           left <= 1e-12 * std::max(1.0, schedule_[idx].size))) {
        done_.push_back(idx);
      }
    }
    NLDL_ASSERT(!done_.empty() || any_released,
                "event advanced time without a completion or a release");
    if (done_.empty()) continue;

    for (const std::size_t idx : done_) {
      const std::size_t w = schedule_[idx].worker;
      q_head_[w] = fifo_next_[idx];
      finish_chunk(idx, hook);
      release_head(w);
    }
    // Batch-remove the completed chunks from the eligible set: both
    // sequences are ascending (successors released above insert in
    // sorted position past their finished predecessors), so one
    // two-pointer sweep replaces the historical per-chunk erase+find.
    std::size_t next_done = 0;
    std::size_t out = 0;
    for (std::size_t i = 0; i < eligible_.size(); ++i) {
      if (next_done < done_.size() && eligible_[i] == done_[next_done]) {
        ++next_done;
        continue;
      }
      eligible_[out++] = eligible_[i];
    }
    eligible_.resize(out);
    finalized_ += done_.size();
    rates_valid_ = false;
  }
  // All events up to the barrier are processed; the clock advances to the
  // barrier itself (when finite) so appends at the barrier are legal and
  // repeated advances are idempotent.
  if (std::isfinite(barrier) && barrier > now_) now_ = barrier;
}

void EngineRun::drain(ChunkCompletionRef hook) { advance_to(kInf, hook); }

void EngineRun::reset() {
  const std::size_t p = engine_->platform().size();
  schedule_.clear();
  spans_.clear();
  transfers_.clear();
  fifo_next_.clear();
  q_head_.assign(p, kNoChunk);
  q_tail_.assign(p, kNoChunk);
  cpu_free_.assign(p, 0.0);
  ready_at_.assign(p, kInf);
  worker_finish_.assign(p, 0.0);
  worker_compute_.assign(p, 0.0);
  worker_comm_.assign(p, 0.0);
  release_heap_.clear();
  eligible_.clear();
  views_.clear();
  rates_.clear();
  done_.clear();
  now_ = 0.0;
  finalized_ = 0;
  makespan_ = 0.0;
  rates_valid_ = false;
  // events_ deliberately survives: it counts over the run object's
  // lifetime, so a server reusing one scratch run across busy periods
  // keeps a cumulative event tally for telemetry.
}

void EngineRun::shrink() {
  schedule_.shrink_to_fit();
  spans_.shrink_to_fit();
  transfers_.shrink_to_fit();
  fifo_next_.shrink_to_fit();
  release_heap_.shrink_to_fit();
  eligible_.shrink_to_fit();
  views_.shrink_to_fit();
  rates_.shrink_to_fit();
  done_.shrink_to_fit();
}

std::size_t EngineRun::compact(std::vector<std::size_t>& old_to_new) {
  const std::size_t n = schedule_.size();
  old_to_new.assign(n, kNoChunk);

  // A chunk is live iff it is still on some worker's link FIFO: q_head_
  // only advances past a chunk when finish_chunk finalizes it, and
  // eligible (in-flight) chunks are their queues' heads. Everything not
  // reachable from a head is finalized.
  for (std::size_t w = 0; w < q_head_.size(); ++w) {
    for (std::size_t idx = q_head_[w]; idx != kNoChunk;
         idx = fifo_next_[idx]) {
      old_to_new[idx] = 0;
    }
  }

  // Renumber survivors in ascending old order and slide their state down
  // in place (new <= old throughout, so the moves never clobber).
  std::size_t next = 0;
  for (std::size_t idx = 0; idx < n; ++idx) {
    if (old_to_new[idx] == kNoChunk) continue;
    old_to_new[idx] = next;
    schedule_[next] = schedule_[idx];
    spans_[next] = spans_[idx];
    transfers_[next] = transfers_[idx];
    fifo_next_[next] = fifo_next_[idx];  // old target; remapped below
    ++next;
  }
  const std::size_t dropped = n - next;
  schedule_.resize(next);
  spans_.resize(next);
  transfers_.resize(next);
  fifo_next_.resize(next);

  for (std::size_t i = 0; i < next; ++i) {
    if (fifo_next_[i] != kNoChunk) fifo_next_[i] = old_to_new[fifo_next_[i]];
  }
  for (std::size_t w = 0; w < q_head_.size(); ++w) {
    if (q_head_[w] == kNoChunk) {
      // Empty queue: the stale tail (a dropped chunk, or soon-reused
      // index) must not receive an append's fifo link.
      q_tail_[w] = kNoChunk;
    } else {
      q_head_[w] = old_to_new[q_head_[w]];
      q_tail_[w] = old_to_new[q_tail_[w]];
    }
  }
  for (std::size_t& idx : eligible_) idx = old_to_new[idx];
  done_.clear();  // last advance's completions: old indices, all dropped
  // views_ may hold stale chunk indices, but they are only ever read by
  // assign_rates, which rebuilds them; the rates_valid_ cache (and every
  // Transfer's anchor/rate) is untouched, so the event trajectory
  // continues exactly as if compaction had not happened.
  finalized_ = 0;
  return dropped;
}

SimResult EngineRun::take_result() {
  NLDL_REQUIRE(drained(), "take_result requires a fully drained run");
  SimResult result;
  result.spans = std::move(spans_);
  result.worker_finish = std::move(worker_finish_);
  result.worker_compute_time = std::move(worker_compute_);
  result.worker_comm_time = std::move(worker_comm_);
  result.makespan = makespan_;
  return result;
}

// ---------------------------------------------------------------------------
// Engine batch API — one-shot conveniences over EngineRun.

SimResult Engine::run(const std::vector<ChunkAssignment>& schedule,
                      const CommModel& model) const {
  EngineRun run(*this, model);
  for (const ChunkAssignment& chunk : schedule) (void)run.append(chunk);
  run.drain();
  return run.take_result();
}

SimResult Engine::run(const std::vector<ChunkAssignment>& schedule,
                      const CommModel& model,
                      const ChunkCompletionHook& on_chunk_complete) const {
  EngineRun run(*this, model);
  for (const ChunkAssignment& chunk : schedule) (void)run.append(chunk);
  if (on_chunk_complete) {
    run.drain(ChunkCompletionRef(on_chunk_complete));
  } else {
    run.drain();
  }
  return run.take_result();
}

SimResult Engine::run(const std::vector<ChunkAssignment>& schedule,
                      CommModelKind kind) const {
  const auto model = make_comm_model(kind);
  return run(schedule, *model);
}

PartialRun Engine::run_until(const std::vector<ChunkAssignment>& schedule,
                             const CommModel& model,
                             double stop_after) const {
  // The uninterrupted run IS the history up to any boundary: pausing only
  // stops future dispatches, so the completed chunks' spans can be read
  // straight off the full replay. The honored boundary — the earliest
  // compute completion at or after the requested stop — falls out of the
  // completion hook, so the spans are walked exactly once below.
  double boundary = kInf;
  EngineRun staged(*this, model);
  for (const ChunkAssignment& chunk : schedule) (void)staged.append(chunk);
  const auto observe = [&](std::size_t, const ChunkSpan& span) {
    if (span.compute_end >= stop_after && span.compute_end < boundary) {
      boundary = span.compute_end;
    }
  };
  staged.drain(ChunkCompletionRef(observe));
  SimResult full = staged.take_result();

  PartialRun partial;
  if (stop_after >= full.makespan) {
    partial.pause_time = full.makespan;
    for (const ChunkAssignment& chunk : schedule) {
      partial.completed_load += chunk.size;
    }
    partial.result = std::move(full);
    return partial;
  }

  // stop_after < makespan, so the chunk achieving the makespan bounds
  // `boundary` (the in-flight chunk finishes; nothing past it is kept).
  const std::size_t p = platform_.size();
  partial.pause_time = boundary;
  partial.result.spans.resize(schedule.size());
  partial.result.worker_finish.assign(p, 0.0);
  partial.result.worker_compute_time.assign(p, 0.0);
  partial.result.worker_comm_time.assign(p, 0.0);
  for (std::size_t idx = 0; idx < schedule.size(); ++idx) {
    const ChunkSpan& span = full.spans[idx];
    if (span.compute_end <= boundary) {
      partial.result.spans[idx] = span;
      partial.result.worker_comm_time[span.worker] +=
          span.comm_end - span.comm_start;
      partial.result.worker_compute_time[span.worker] +=
          span.compute_end - span.compute_start;
      partial.result.worker_finish[span.worker] = std::max(
          partial.result.worker_finish[span.worker], span.compute_end);
      partial.result.makespan =
          std::max(partial.result.makespan, span.compute_end);
      partial.completed_load += schedule[idx].size;
    } else {
      // Cancelled: keep the identity for positional lookup, zero the
      // timeline, flag the span (so SimResult statistics and callers can
      // tell it from a completed zero-size chunk), and hand the chunk
      // back at full size with its release/alpha intact.
      partial.result.spans[idx].worker = schedule[idx].worker;
      partial.result.spans[idx].size = schedule[idx].size;
      partial.result.spans[idx].cancelled = true;
      partial.remaining.push_back(schedule[idx]);
    }
  }
  return partial;
}

SimResult Engine::run_single_round(const std::vector<double>& amounts,
                                   const CommModel& model) const {
  NLDL_REQUIRE(amounts.size() == platform_.size(),
               "one amount per worker required");
  return run(single_round_schedule(amounts), model);
}

}  // namespace nldl::sim
