#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/assert.hpp"
#include "util/stats.hpp"

namespace nldl::sim {

double SimResult::load_imbalance() const noexcept {
  // Imbalance is defined over the workers that actually computed
  // something: a worker the schedule never fed is a scheduling decision,
  // not an infinite imbalance, and returning +inf would poison any
  // statistic aggregated over trials. Callers that care about unused
  // workers can count them via idle_workers(). Cancelled spans already
  // contribute zero compute time, so a paused replay's statistic covers
  // exactly the work that happened before the pause.
  return util::imbalance_over_busy(worker_compute_time);
}

std::size_t SimResult::idle_workers() const noexcept {
  // A worker whose only chunks a pause cancelled computed nothing, but it
  // was not idle by scheduling decision — the pause cut it off and its
  // load is coming back via PartialRun::remaining. Skip those workers so
  // a paused run's statistic keeps the full run's meaning ("the schedule
  // never fed this worker"). Only run_until produces cancelled spans, so
  // the common full-run path stays the plain O(p) count; no allocation
  // anywhere (noexcept must hold).
  bool any_cancelled = false;
  for (const ChunkSpan& span : spans) {
    if (span.cancelled) {
      any_cancelled = true;
      break;
    }
  }
  if (!any_cancelled) return util::count_idle(worker_compute_time);
  std::size_t idle = 0;
  for (std::size_t w = 0; w < worker_compute_time.size(); ++w) {
    if (worker_compute_time[w] > 0.0) continue;
    bool cancelled_here = false;
    for (const ChunkSpan& span : spans) {
      if (span.cancelled && span.worker == w) {
        cancelled_here = true;
        break;
      }
    }
    if (!cancelled_here) ++idle;
  }
  return idle;
}

Engine::Engine(const platform::Platform& platform, EngineOptions options)
    : platform_(platform), options_(options) {
  NLDL_REQUIRE(options.alpha >= 1.0, "alpha must be >= 1");
}

std::vector<ChunkAssignment> single_round_schedule(
    const std::vector<double>& amounts) {
  std::vector<std::size_t> order(amounts.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  return single_round_schedule(amounts, order);
}

std::vector<ChunkAssignment> single_round_schedule(
    const std::vector<double>& amounts,
    const std::vector<std::size_t>& send_order) {
  NLDL_REQUIRE(send_order.size() == amounts.size(),
               "send order must cover every worker exactly once");
  std::vector<bool> seen(amounts.size(), false);
  std::vector<ChunkAssignment> schedule;
  schedule.reserve(amounts.size());
  for (const std::size_t worker : send_order) {
    NLDL_REQUIRE(worker < amounts.size(), "send order index out of range");
    NLDL_REQUIRE(!seen[worker], "send order repeats a worker");
    seen[worker] = true;
    schedule.push_back({worker, amounts[worker]});
  }
  return schedule;
}

namespace {

/// Per-chunk transfer state. `remaining` is measured at `anchor_time`; the
/// pair is only refreshed when the rate actually changes, so a transfer
/// that runs at one rate its whole life (both discrete models) finishes at
/// the exact closed-form instant with no integration drift.
struct Transfer {
  double remaining = 0.0;
  double rate = 0.0;
  double anchor_time = 0.0;
  double released = 0.0;
  double comm_start = 0.0;
  bool started = false;
};

/// Remaining transfer time. Full-link-rate transfers use the exact c·size
/// formula (the retired simulator's arithmetic); shared-rate transfers
/// divide by the fluid rate.
double time_left(const Transfer& transfer, double link_rate, double c) {
  if (transfer.rate == link_rate) return transfer.remaining * c;
  return transfer.remaining / transfer.rate;
}

}  // namespace

SimResult Engine::run(const std::vector<ChunkAssignment>& schedule,
                      const CommModel& model) const {
  return run(schedule, model, ChunkCompletionHook{});
}

SimResult Engine::run(const std::vector<ChunkAssignment>& schedule,
                      const CommModel& model,
                      const ChunkCompletionHook& on_chunk_complete) const {
  const std::size_t p = platform_.size();
  const double alpha = options_.alpha;

  SimResult result;
  result.spans.resize(schedule.size());
  result.worker_finish.assign(p, 0.0);
  result.worker_compute_time.assign(p, 0.0);
  result.worker_comm_time.assign(p, 0.0);

  // Validate the schedule and build the per-worker link queues (chunks to
  // one worker serialize in schedule order, release times notwithstanding:
  // a released chunk never overtakes an earlier chunk to the same worker).
  std::vector<std::vector<std::size_t>> queue(p);
  for (std::size_t idx = 0; idx < schedule.size(); ++idx) {
    const ChunkAssignment& chunk = schedule[idx];
    NLDL_REQUIRE(chunk.worker < p, "chunk assigned to unknown worker");
    NLDL_REQUIRE(chunk.size >= 0.0, "chunk size must be >= 0");
    NLDL_REQUIRE(std::isfinite(chunk.release) && chunk.release >= 0.0,
                 "chunk release time must be finite and >= 0");
    NLDL_REQUIRE(chunk.alpha == 0.0 || chunk.alpha >= 1.0,
                 "per-chunk alpha must be 0 (engine default) or >= 1");
    queue[chunk.worker].push_back(idx);
  }

  std::vector<std::size_t> head(p, 0);
  std::vector<Transfer> transfers(schedule.size());
  std::vector<double> cpu_free(p, 0.0);
  std::vector<std::size_t> eligible;  // chunk indices, ascending

  // Record the chunk's span once its communication is over, queueing its
  // computation on the worker's CPU (receive/compute pipelining: compute
  // of chunk k overlaps the receive of chunk k+1).
  auto finish_chunk = [&](std::size_t idx, double comm_end) {
    const ChunkAssignment& chunk = schedule[idx];
    const auto& proc = platform_.worker(chunk.worker);
    ChunkSpan& span = result.spans[idx];
    span.worker = chunk.worker;
    span.size = chunk.size;
    span.comm_start =
        transfers[idx].started ? transfers[idx].comm_start : comm_end;
    span.comm_end = comm_end;
    const double compute_duration =
        proc.w *
        std::pow(chunk.size, chunk.alpha > 0.0 ? chunk.alpha : alpha);
    span.compute_start = std::max(span.comm_end, cpu_free[chunk.worker]);
    span.compute_end = span.compute_start + compute_duration;
    cpu_free[chunk.worker] = span.compute_end;

    result.worker_comm_time[chunk.worker] += span.comm_end - span.comm_start;
    result.worker_compute_time[chunk.worker] += compute_duration;
    result.worker_finish[chunk.worker] = span.compute_end;
    result.makespan = std::max(result.makespan, span.compute_end);
    if (on_chunk_complete) on_chunk_complete(idx, span);
  };

  // `ready_at[w]` is the instant worker w's head chunk may enter the link:
  // its link is free but the chunk's release time has not come yet.
  // +infinity when the worker has no pending head (link busy, queue
  // drained, or head already eligible).
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> ready_at(p, kInf);

  // Move worker w's next queued chunk to the head of its link at `now`,
  // or park it in ready_at when its release time is still in the future.
  // Zero-size chunks travel through the model like any other transfer
  // (so e.g. the one-port model still serializes them at the port in
  // schedule order, as the retired simulator did); they just take no time
  // once served.
  auto release_head = [&](std::size_t w, double now) {
    if (head[w] >= queue[w].size()) {
      ready_at[w] = kInf;
      return;
    }
    const std::size_t idx = queue[w][head[w]];
    if (schedule[idx].release > now) {
      ready_at[w] = schedule[idx].release;
      return;
    }
    ready_at[w] = kInf;
    Transfer& transfer = transfers[idx];
    transfer.remaining = schedule[idx].size;
    transfer.anchor_time = now;
    transfer.released = now;
    eligible.insert(
        std::lower_bound(eligible.begin(), eligible.end(), idx), idx);
  };

  for (std::size_t w = 0; w < p; ++w) release_head(w, 0.0);

  std::vector<TransferView> views;
  std::vector<double> rates;
  std::vector<std::size_t> done;
  double now = 0.0;

  while (true) {
    const double next_release =
        *std::min_element(ready_at.begin(), ready_at.end());
    if (eligible.empty()) {
      // Nothing in flight. Jump to the next release (a quiet gap between
      // releases) or finish the replay.
      if (next_release == kInf) break;
      now = std::max(now, next_release);
      for (std::size_t w = 0; w < p; ++w) {
        if (ready_at[w] <= now) release_head(w, now);
      }
      continue;
    }
    // 1. Ask the model to rate the eligible transfers (sorted by schedule
    // position, at most one per worker).
    views.clear();
    for (const std::size_t idx : eligible) {
      const std::size_t w = schedule[idx].worker;
      TransferView view;
      view.chunk = idx;
      view.worker = w;
      view.link_rate = platform_.worker(w).bandwidth();
      // Progress the view (not the anchor) to `now`, so models relying on
      // remaining see current data.
      view.remaining = std::max(
          0.0, transfers[idx].remaining -
                   transfers[idx].rate * (now - transfers[idx].anchor_time));
      view.released = transfers[idx].released;
      views.push_back(view);
    }
    rates.assign(views.size(), 0.0);
    model.assign_rates(views, rates);

    // 2. Apply the rates, re-anchoring only transfers whose rate changed.
    bool any_positive = false;
    for (std::size_t j = 0; j < views.size(); ++j) {
      const std::size_t idx = views[j].chunk;
      Transfer& transfer = transfers[idx];
      NLDL_ASSERT(rates[j] >= 0.0, "comm model assigned a negative rate");
      const double rate = std::min(rates[j], views[j].link_rate);
      if (rate > 0.0) any_positive = true;
      if (rate != transfer.rate) {
        transfer.remaining = std::max(
            0.0, transfer.remaining -
                     transfer.rate * (now - transfer.anchor_time));
        transfer.anchor_time = now;
        transfer.rate = rate;
      }
      if (rate > 0.0 && !transfer.started) {
        transfer.started = true;
        transfer.comm_start = now;
      }
    }
    NLDL_ASSERT(any_positive, "comm model starves every pending transfer");

    // 3. Advance to the earliest transfer completion — or to the next
    // release, whose newcomer changes the rate assignment (water-filling
    // must be recomputed the instant a transfer joins the master).
    double next = next_release;
    for (const std::size_t idx : eligible) {
      const Transfer& transfer = transfers[idx];
      if (transfer.rate <= 0.0) continue;
      const auto& proc = platform_.worker(schedule[idx].worker);
      next = std::min(next, transfer.anchor_time +
                                time_left(transfer, proc.bandwidth(),
                                          proc.c));
    }
    NLDL_ASSERT(std::isfinite(next), "no finite next event");
    now = std::max(now, next);

    // 3b. Chunks whose release has come enter their link head at `now`.
    // They were not part of the rate interval that just elapsed; the next
    // iteration re-rates everyone with the newcomers included.
    bool any_released = false;
    for (std::size_t w = 0; w < p; ++w) {
      if (ready_at[w] <= now) {
        release_head(w, now);
        any_released = true;
      }
    }

    // 4. Complete every transfer done at `now`. Transfers running below
    // their private link rate (fluid sharing) additionally snap within
    // the retired water-filling simulator's tolerance: fair sharing
    // leaves O(eps)-sized residues on transfers that tie in exact
    // arithmetic. Full-link-rate transfers never snap, so the discrete
    // models keep their exact closed-form finish times even in
    // near-ties.
    done.clear();
    for (const std::size_t idx : eligible) {
      const Transfer& transfer = transfers[idx];
      if (transfer.rate <= 0.0) continue;
      const auto& proc = platform_.worker(schedule[idx].worker);
      const double finish =
          transfer.anchor_time + time_left(transfer, proc.bandwidth(),
                                           proc.c);
      const bool shared_rate = transfer.rate != proc.bandwidth();
      const double left =
          transfer.remaining - transfer.rate * (now - transfer.anchor_time);
      if (finish <= now ||
          (shared_rate &&
           left <= 1e-12 * std::max(1.0, schedule[idx].size))) {
        done.push_back(idx);
      }
    }
    NLDL_ASSERT(!done.empty() || any_released,
                "event advanced time without a completion or a release");
    for (const std::size_t idx : done) {
      eligible.erase(
          std::find(eligible.begin(), eligible.end(), idx));
      const std::size_t w = schedule[idx].worker;
      ++head[w];
      finish_chunk(idx, now);
      release_head(w, now);
    }
  }

  return result;
}

SimResult Engine::run(const std::vector<ChunkAssignment>& schedule,
                      CommModelKind kind) const {
  const auto model = make_comm_model(kind);
  return run(schedule, *model);
}

PartialRun Engine::run_until(const std::vector<ChunkAssignment>& schedule,
                             const CommModel& model,
                             double stop_after) const {
  // The uninterrupted run IS the history up to any boundary: pausing only
  // stops future dispatches, so the completed chunks' spans can be read
  // straight off the full replay.
  const SimResult full = run(schedule, model);

  PartialRun partial;
  if (stop_after >= full.makespan) {
    partial.result = full;
    partial.pause_time = full.makespan;
    for (const ChunkAssignment& chunk : schedule) {
      partial.completed_load += chunk.size;
    }
    return partial;
  }

  // The honored boundary: the earliest compute completion at or after the
  // requested stop (the in-flight chunk finishes; it exists because
  // stop_after < makespan = the latest compute completion).
  double boundary = full.makespan;
  for (const ChunkSpan& span : full.spans) {
    if (span.compute_end >= stop_after) {
      boundary = std::min(boundary, span.compute_end);
    }
  }

  const std::size_t p = platform_.size();
  partial.pause_time = boundary;
  partial.result.spans.resize(schedule.size());
  partial.result.worker_finish.assign(p, 0.0);
  partial.result.worker_compute_time.assign(p, 0.0);
  partial.result.worker_comm_time.assign(p, 0.0);
  for (std::size_t idx = 0; idx < schedule.size(); ++idx) {
    const ChunkSpan& span = full.spans[idx];
    if (span.compute_end <= boundary) {
      partial.result.spans[idx] = span;
      partial.result.worker_comm_time[span.worker] +=
          span.comm_end - span.comm_start;
      partial.result.worker_compute_time[span.worker] +=
          span.compute_end - span.compute_start;
      partial.result.worker_finish[span.worker] = std::max(
          partial.result.worker_finish[span.worker], span.compute_end);
      partial.result.makespan =
          std::max(partial.result.makespan, span.compute_end);
      partial.completed_load += schedule[idx].size;
    } else {
      // Cancelled: keep the identity for positional lookup, zero the
      // timeline, flag the span (so SimResult statistics and callers can
      // tell it from a completed zero-size chunk), and hand the chunk
      // back at full size with its release/alpha intact.
      partial.result.spans[idx].worker = schedule[idx].worker;
      partial.result.spans[idx].size = schedule[idx].size;
      partial.result.spans[idx].cancelled = true;
      partial.remaining.push_back(schedule[idx]);
    }
  }
  return partial;
}

SimResult Engine::run_single_round(const std::vector<double>& amounts,
                                   const CommModel& model) const {
  NLDL_REQUIRE(amounts.size() == platform_.size(),
               "one amount per worker required");
  return run(single_round_schedule(amounts), model);
}

}  // namespace nldl::sim
