#include "sim/bounded_multiport.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace nldl::sim {

namespace {

/// Max-min fair rates for the active transfers: each transfer i has a
/// private cap 1/c_i; the sum is capped by `capacity`. Water-filling:
/// repeatedly give every unsaturated transfer an equal share of the
/// remaining capacity; transfers whose private cap is below their share
/// saturate at the cap.
std::vector<double> fair_rates(const std::vector<double>& caps,
                               double capacity) {
  const std::size_t count = caps.size();
  std::vector<double> rates(count, 0.0);
  std::vector<bool> saturated(count, false);
  double remaining = capacity;
  std::size_t unsaturated = count;
  for (std::size_t pass = 0; pass < count && unsaturated > 0; ++pass) {
    const double share = remaining / static_cast<double>(unsaturated);
    bool any_saturated = false;
    for (std::size_t i = 0; i < count; ++i) {
      if (saturated[i]) continue;
      if (caps[i] <= share) {
        rates[i] = caps[i];
        remaining -= caps[i];
        saturated[i] = true;
        --unsaturated;
        any_saturated = true;
      }
    }
    if (!any_saturated) {
      // Everyone is share-limited: split the remainder equally.
      for (std::size_t i = 0; i < count; ++i) {
        if (!saturated[i]) rates[i] = share;
      }
      break;
    }
  }
  return rates;
}

}  // namespace

BoundedMultiportResult simulate_bounded_multiport(
    const platform::Platform& platform, const std::vector<double>& amounts,
    double master_capacity, double alpha) {
  const std::size_t p = platform.size();
  NLDL_REQUIRE(amounts.size() == p, "one amount per worker required");
  NLDL_REQUIRE(master_capacity > 0.0, "master capacity must be positive");
  NLDL_REQUIRE(alpha >= 1.0, "alpha must be >= 1");
  for (const double amount : amounts) {
    NLDL_REQUIRE(amount >= 0.0, "amounts must be >= 0");
  }

  BoundedMultiportResult result;
  result.comm_finish.assign(p, 0.0);
  result.compute_finish.assign(p, 0.0);

  // Remaining data per transfer; workers with nothing to receive are done.
  std::vector<double> remaining(p);
  std::vector<bool> active(p, false);
  std::size_t active_count = 0;
  for (std::size_t i = 0; i < p; ++i) {
    remaining[i] = amounts[i];
    if (amounts[i] > 0.0) {
      active[i] = true;
      ++active_count;
    }
  }

  double now = 0.0;
  // Piecewise-constant rates: advance to the next completion, recompute.
  while (active_count > 0) {
    std::vector<double> caps;
    std::vector<std::size_t> index;
    caps.reserve(active_count);
    index.reserve(active_count);
    for (std::size_t i = 0; i < p; ++i) {
      if (active[i]) {
        caps.push_back(platform.worker(i).bandwidth());
        index.push_back(i);
      }
    }
    const std::vector<double> rates = fair_rates(caps, master_capacity);

    // Time to the earliest completion under these rates.
    double step = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < index.size(); ++j) {
      NLDL_ASSERT(rates[j] > 0.0, "active transfer with zero rate");
      step = std::min(step, remaining[index[j]] / rates[j]);
    }
    now += step;
    for (std::size_t j = 0; j < index.size(); ++j) {
      const std::size_t i = index[j];
      remaining[i] -= rates[j] * step;
      if (remaining[i] <= 1e-12 * std::max(1.0, amounts[i])) {
        remaining[i] = 0.0;
        active[i] = false;
        --active_count;
        result.comm_finish[i] = now;
      }
    }
  }

  for (std::size_t i = 0; i < p; ++i) {
    const double compute =
        platform.w(i) * std::pow(amounts[i], alpha);
    result.compute_finish[i] = result.comm_finish[i] + compute;
    result.makespan = std::max(result.makespan, result.compute_finish[i]);
  }
  return result;
}

}  // namespace nldl::sim
