#include "sim/bounded_multiport.hpp"

#include "util/assert.hpp"

namespace nldl::sim {

BoundedMultiportResult simulate_bounded_multiport(
    const platform::Platform& platform, const std::vector<double>& amounts,
    double master_capacity, double alpha) {
  const std::size_t p = platform.size();
  NLDL_REQUIRE(amounts.size() == p, "one amount per worker required");
  NLDL_REQUIRE(master_capacity > 0.0, "master capacity must be positive");
  NLDL_REQUIRE(alpha >= 1.0, "alpha must be >= 1");
  for (const double amount : amounts) {
    NLDL_REQUIRE(amount >= 0.0, "amounts must be >= 0");
  }

  const Engine engine(platform, EngineOptions{alpha});
  const BoundedMultiportModel model(master_capacity);
  const SimResult sim = engine.run_single_round(amounts, model);

  BoundedMultiportResult result;
  result.comm_finish.assign(p, 0.0);
  result.compute_finish.assign(p, 0.0);
  for (const ChunkSpan& span : sim.spans) {
    result.comm_finish[span.worker] = span.comm_end;
    result.compute_finish[span.worker] = span.compute_end;
  }
  result.makespan = sim.makespan;
  return result;
}

}  // namespace nldl::sim
