#include "sim/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "util/assert.hpp"

namespace nldl::sim {

namespace {

/// One character column of one worker row.
struct Cell {
  unsigned bits = 0;  ///< 1 = receiving, 2 = computing
  std::size_t job = obs::kNoIndex;  ///< compute owner (kNoIndex = none)
  bool mixed = false;  ///< distinct jobs computed in this cell
};

char glyph(const Cell& cell) {
  switch (cell.bits & 3U) {
    case 0U:
      return '.';
    case 1U:
      return '-';
    case 3U:
      return '=';
    default:
      break;
  }
  if (cell.mixed) return '*';
  if (cell.job == obs::kNoIndex) return '#';
  return static_cast<char>('A' + static_cast<char>(cell.job % 26));
}

/// Shared renderer: `labels` must hold one equal-length row label per
/// worker; the dispatch-marker header appears only when the stream holds
/// dispatch instants.
std::string render(const std::vector<obs::TraceEvent>& events,
                   std::size_t workers, std::size_t width,
                   const std::vector<std::string>& labels, double horizon) {
  NLDL_REQUIRE(width >= 8, "gantt width too small");
  NLDL_REQUIRE(workers >= 1 && labels.size() == workers,
               "gantt needs one label per worker");
  horizon = std::max(horizon, 1e-300);

  const auto column = [&](double t) {
    const auto cell = static_cast<std::size_t>(
        std::max(t, 0.0) / horizon * static_cast<double>(width));
    return std::min(cell, width - 1);
  };

  std::vector<std::vector<Cell>> cells(workers, std::vector<Cell>(width));
  const auto paint = [&](std::size_t worker, double t0, double t1,
                         unsigned bit, std::size_t job) {
    if (t1 <= t0 || worker >= workers) return;
    const std::size_t lo = column(t0);
    const std::size_t hi =
        std::min(std::max(column(t1), lo + 1), width);
    for (std::size_t c = lo; c < hi; ++c) {
      Cell& cell = cells[worker][c];
      if (bit == 2U) {
        if ((cell.bits & 2U) == 0U) {
          cell.job = job;
        } else if (cell.job != job) {
          cell.mixed = true;
        }
      }
      cell.bits |= bit;
    }
  };

  bool any_dispatch = false;
  std::vector<char> markers(width, ' ');
  for (const obs::TraceEvent& event : events) {
    switch (event.kind) {
      case obs::EventKind::kTransfer:
        paint(event.worker, event.start, event.end, 1U, event.job);
        break;
      case obs::EventKind::kCompute:
        paint(event.worker, event.start, event.end, 2U, event.job);
        break;
      case obs::EventKind::kDispatch:
        any_dispatch = true;
        markers[column(event.start)] = 'v';
        break;
      default:
        break;
    }
  }

  const std::size_t pad = labels.front().size();
  std::string out;
  if (any_dispatch) {
    std::string header(pad, ' ');
    NLDL_ASSERT(pad >= 9, "gantt labels too narrow for the release header");
    header.replace(0, 8, "releases");
    out += header;
    out.append(markers.begin(), markers.end());
    out += '\n';
  }
  for (std::size_t i = 0; i < workers; ++i) {
    NLDL_REQUIRE(labels[i].size() == pad, "gantt labels must align");
    out += labels[i];
    for (const Cell& cell : cells[i]) out += glyph(cell);
    out += "|\n";
  }
  char footer[64];
  std::snprintf(footer, sizeof(footer), "%*s t = [0, %.4g]\n",
                static_cast<int>(pad), "", horizon);
  out += footer;
  return out;
}

}  // namespace

std::string ascii_gantt(const std::vector<obs::TraceEvent>& events,
                        std::size_t workers, std::size_t width,
                        std::size_t max_cols) {
  if (max_cols != 0) width = std::min(width, std::max<std::size_t>(max_cols, 8));
  std::size_t n = workers;
  double horizon = 0.0;
  for (const obs::TraceEvent& event : events) {
    if (event.worker != obs::kNoIndex) n = std::max(n, event.worker + 1);
    horizon = std::max(horizon, event.end);
  }
  NLDL_REQUIRE(n >= 1, "gantt needs at least one worker");
  std::vector<std::string> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    char label[32];
    std::snprintf(label, sizeof(label), "w%-8zu |", i);
    labels[i] = label;
  }
  return render(events, n, width, labels, horizon);
}

std::string ascii_gantt(const platform::Platform& platform,
                        const SimResult& result, std::size_t width) {
  std::vector<obs::TraceEvent> events;
  events.reserve(result.spans.size() * 2);
  for (const ChunkSpan& span : result.spans) {
    obs::TraceEvent event;
    event.worker = span.worker;
    event.size = span.size;
    event.kind = obs::EventKind::kTransfer;
    event.start = span.comm_start;
    event.end = span.comm_end;
    events.push_back(event);
    event.kind = obs::EventKind::kCompute;
    event.start = span.compute_start;
    event.end = span.compute_end;
    events.push_back(event);
  }
  std::vector<std::string> labels(platform.size());
  for (std::size_t i = 0; i < platform.size(); ++i) {
    char label[48];
    std::snprintf(label, sizeof(label), "P%-3zu (s=%7.3f) |", i + 1,
                  platform.speed(i));
    labels[i] = label;
  }
  return render(events, platform.size(), width, labels, result.makespan);
}

}  // namespace nldl::sim
