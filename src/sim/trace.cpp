#include "sim/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "util/assert.hpp"

namespace nldl::sim {

std::string ascii_gantt(const platform::Platform& platform,
                        const SimResult& result, std::size_t width) {
  NLDL_REQUIRE(width >= 8, "gantt width too small");
  const std::size_t p = platform.size();
  const double horizon = std::max(result.makespan, 1e-300);

  // cell state bits: 1 = receiving, 2 = computing
  std::vector<std::vector<unsigned>> cells(p,
                                           std::vector<unsigned>(width, 0));
  auto paint = [&](std::size_t worker, double t0, double t1, unsigned bit) {
    if (t1 <= t0) return;
    auto lo = static_cast<std::size_t>(t0 / horizon * double(width));
    auto hi = static_cast<std::size_t>(t1 / horizon * double(width));
    lo = std::min(lo, width - 1);
    hi = std::min(std::max(hi, lo + 1), width);
    for (std::size_t cell = lo; cell < hi; ++cell) {
      cells[worker][cell] |= bit;
    }
  };
  for (const ChunkSpan& span : result.spans) {
    paint(span.worker, span.comm_start, span.comm_end, 1U);
    paint(span.worker, span.compute_start, span.compute_end, 2U);
  }

  static constexpr char kGlyph[4] = {'.', '-', '#', '='};
  std::string out;
  for (std::size_t i = 0; i < p; ++i) {
    char label[48];
    std::snprintf(label, sizeof(label), "P%-3zu (s=%7.3f) |", i + 1,
                  platform.speed(i));
    out += label;
    for (const unsigned cell : cells[i]) out += kGlyph[cell & 3U];
    out += "|\n";
  }
  char footer[64];
  std::snprintf(footer, sizeof(footer), "%*s t = [0, %.4g]\n",
                 18, "", result.makespan);
  out += footer;
  return out;
}

}  // namespace nldl::sim
