#include "qos/policy.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace nldl::qos {

namespace {

/// Index of the active candidate, or ready.size() when none is active.
std::size_t active_index(const std::vector<Candidate>& ready) {
  for (std::size_t k = 0; k < ready.size(); ++k) {
    if (ready[k].active) return k;
  }
  return ready.size();
}

/// Smallest candidate under `key` with (arrival, id) tie-breaking.
template <typename Key>
std::size_t argmin(const std::vector<Candidate>& ready, Key key) {
  NLDL_REQUIRE(!ready.empty(), "pick() on an empty ready set");
  std::size_t best = 0;
  for (std::size_t k = 1; k < ready.size(); ++k) {
    const double a = key(ready[k]);
    const double b = key(ready[best]);
    if (a < b ||
        (a == b && (ready[k].job->arrival < ready[best].job->arrival ||  // nldl-lint: allow(double-eq): deterministic tie-break on equal keys
                    (ready[k].job->arrival == ready[best].job->arrival &&
                     ready[k].job->id < ready[best].job->id)))) {
      best = k;
    }
  }
  return best;
}

}  // namespace

void Policy::reset(std::size_t) {}

void Policy::on_service(const Candidate&, double) {}

std::size_t FcfsPolicy::pick(const std::vector<Candidate>& ready, double) {
  const std::size_t active = active_index(ready);
  if (active < ready.size()) return active;  // non-preemptive: run on
  return argmin(ready, [](const Candidate& c) { return c.job->arrival; });
}

std::size_t SpmfPolicy::pick(const std::vector<Candidate>& ready, double) {
  const std::size_t active = active_index(ready);
  if (active < ready.size()) return active;
  return argmin(ready, [](const Candidate& c) { return c.total_duration; });
}

std::size_t SrptPolicy::pick(const std::vector<Candidate>& ready, double) {
  return argmin(ready,
                [](const Candidate& c) { return c.remaining_duration; });
}

std::size_t EdfPolicy::pick(const std::vector<Candidate>& ready, double) {
  return argmin(ready, [](const Candidate& c) { return c.job->deadline; });
}

WfqPolicy::WfqPolicy(std::vector<double> weights)
    : weights_(std::move(weights)) {
  for (const double w : weights_) {
    NLDL_REQUIRE(w > 0.0, "WFQ tenant weights must be positive");
  }
}

double WfqPolicy::weight(std::size_t tenant) const {
  return tenant < weights_.size() ? weights_[tenant] : 1.0;
}

double WfqPolicy::attained(std::size_t tenant) const {
  NLDL_REQUIRE(tenant < attained_.size(), "unknown tenant");
  return attained_[tenant];
}

void WfqPolicy::reset(std::size_t tenants) {
  attained_.assign(std::max(tenants, weights_.size()), 0.0);
}

std::size_t WfqPolicy::pick(const std::vector<Candidate>& ready, double) {
  NLDL_REQUIRE(!ready.empty(), "pick() on an empty ready set");
  // Serve the tenant with the least attained weighted service, FCFS
  // within the tenant. Normalized attained service is the WFQ virtual
  // time at chunk granularity.
  return argmin(ready, [&](const Candidate& c) {
    const std::size_t t = c.job->tenant;
    const double attained =
        t < attained_.size() ? attained_[t] : 0.0;
    return attained / weight(t);
  });
}

void WfqPolicy::on_service(const Candidate& served, double duration) {
  const std::size_t t = served.job->tenant;
  if (t >= attained_.size()) attained_.resize(t + 1, 0.0);
  attained_[t] += duration;
}

std::string to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kFcfs:
      return "fcfs";
    case PolicyKind::kSpmf:
      return "spmf";
    case PolicyKind::kSrpt:
      return "srpt";
    case PolicyKind::kEdf:
      return "edf";
    case PolicyKind::kWfq:
      return "wfq";
  }
  NLDL_ASSERT(false, "unknown policy kind");
}

std::unique_ptr<Policy> make_policy(PolicyKind kind,
                                    std::vector<double> tenant_weights) {
  switch (kind) {
    case PolicyKind::kFcfs:
      return std::make_unique<FcfsPolicy>();
    case PolicyKind::kSpmf:
      return std::make_unique<SpmfPolicy>();
    case PolicyKind::kSrpt:
      return std::make_unique<SrptPolicy>();
    case PolicyKind::kEdf:
      return std::make_unique<EdfPolicy>();
    case PolicyKind::kWfq:
      return std::make_unique<WfqPolicy>(std::move(tenant_weights));
  }
  NLDL_ASSERT(false, "unknown policy kind");
}

}  // namespace nldl::qos
