#include "qos/plan.hpp"

#include "dlt/nonlinear_dlt.hpp"
#include "sim/engine.hpp"
#include "util/assert.hpp"

namespace nldl::qos {

std::unique_ptr<sim::CommModel> make_model(const ServiceModel& service) {
  return sim::make_comm_model(service.comm, service.capacity,
                              service.max_concurrent);
}

InstallmentSolver::InstallmentSolver(const platform::Platform& platform,
                                     const sim::CommModel& model,
                                     ServiceModel service)
    : platform_(platform), model_(model), service_(service) {
  NLDL_REQUIRE(service.plan.rounds >= 1,
               "service plans require at least one round");
}

InstallmentSolver::Installment InstallmentSolver::solve(double load,
                                                        double alpha) {
  NLDL_REQUIRE(load > 0.0, "installments require a positive load");
  const auto key = std::make_pair(load, alpha);
  const auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;

  // Solve the matched optimal allocation and replay it under the actual
  // comm model (the replay reproduces the allocator's makespan under the
  // matched discrete models and corrects it under bounded multiport).
  const auto allocation =
      dlt::nonlinear_single_round_for(service_.comm, platform_, load, alpha);
  const sim::Engine engine(platform_, {alpha});
  const sim::SimResult result = engine.run(allocation.to_schedule(), model_);
  Installment installment;
  installment.duration = result.makespan;
  for (const double t : result.worker_compute_time) {
    installment.busy += t;
  }
  cache_[key] = installment;
  return installment;
}

double InstallmentSolver::predicted_service(double load, double alpha) {
  NLDL_REQUIRE(load > 0.0, "predicted_service requires a positive load");
  const double rounds = static_cast<double>(service_.plan.rounds);
  return rounds * solve(load / rounds, alpha).duration;
}

double predicted_service(const ServiceModel& service,
                         const platform::Platform& platform, double load,
                         double alpha) {
  const auto model = make_model(service);
  InstallmentSolver solver(platform, *model, service);
  return solver.predicted_service(load, alpha);
}

ServicePlan::ServicePlan(InstallmentSolver& solver, const online::Job& job,
                         double served_load)
    : solver_(solver),
      alpha_(job.alpha),
      served_load_(served_load),
      rounds_(solver.service().plan.rounds),
      restart_fraction_(solver.service().plan.restart_load_fraction) {
  NLDL_REQUIRE(served_load > 0.0 && served_load <= job.load,
               "served load must be in (0, job.load]");
  NLDL_REQUIRE(restart_fraction_ >= 0.0,
               "restart load fraction must be >= 0");
  const auto clean = solver_.solve(
      served_load_ / static_cast<double>(rounds_), alpha_);
  clean_ = clean.duration;
  clean_busy_ = clean.busy;
}

void ServicePlan::ensure_restart_solved() {
  if (restart_solved_) return;
  restart_solved_ = true;
  if (restart_fraction_ == 0.0) {
    // Free checkpoints: a resumed installment IS a clean installment, so
    // a paused-and-resumed plan reproduces the uninterrupted timeline
    // exactly (the pinned zero-restart-cost equivalence).
    restart_ = clean_;
    restart_busy_ = clean_busy_;
    return;
  }
  const auto restart = solver_.solve(
      (1.0 + restart_fraction_) * served_load_ /
          static_cast<double>(rounds_),
      alpha_);
  restart_ = restart.duration;
  restart_busy_ = restart.busy;
}

double ServicePlan::remaining_load() const noexcept {
  return served_load_ *
         static_cast<double>(rounds_ - completed_rounds_) /
         static_cast<double>(rounds_);
}

double ServicePlan::next_duration() {
  NLDL_REQUIRE(!done(), "next_duration() on a finished plan");
  if (!restart_pending_) return clean_;
  ensure_restart_solved();
  return restart_;
}

double ServicePlan::next_load() const {
  NLDL_REQUIRE(!done(), "next_load() on a finished plan");
  const double clean_load =
      served_load_ / static_cast<double>(rounds_);
  return restart_pending_ ? (1.0 + restart_fraction_) * clean_load
                          : clean_load;
}

double ServicePlan::remaining_duration() {
  if (done()) return 0.0;
  double total =
      static_cast<double>(rounds_ - completed_rounds_) * clean_;
  if (restart_pending_) {
    ensure_restart_solved();
    total += restart_ - clean_;
  }
  return total;
}

void ServicePlan::advance() {
  NLDL_REQUIRE(!done(), "advance() on a finished plan");
  if (restart_pending_) {
    ensure_restart_solved();
    restart_time_ += restart_ - clean_;
    compute_time_ += restart_busy_;
    restart_pending_ = false;
  } else {
    compute_time_ += clean_busy_;
  }
  ++completed_rounds_;
}

void ServicePlan::pause() {
  if (!started() || done() || restart_pending_) return;
  restart_pending_ = true;
  ++preemptions_;
}

}  // namespace nldl::qos
