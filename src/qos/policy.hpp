// Chunk-boundary scheduling policies for the preemptive qos server.
//
// At every chunk boundary (installment end — see qos/plan.hpp) the server
// asks the policy which ready job runs next. Picking a job other than the
// one that just ran preempts it: durable progress is kept, but the resume
// pays the plan's nonlinear restart surcharge. Five policies:
//
//   FcfsPolicy   non-preemptive first-come-first-served: the baseline.
//   SpmfPolicy   non-preemptive shortest-predicted-service first — the
//                qos counterpart of online::SpmfScheduler (priority =
//                predicted TOTAL service, ranked once at dispatch).
//   SrptPolicy   preemptive shortest-REMAINING-predicted-time first: the
//                classically latency-optimal rule — whose advantage the
//                restart surcharge erodes; bench_qos maps where.
//   EdfPolicy    preemptive earliest-deadline first (best-effort jobs
//                rank last); the deadline-driven counterpart.
//   WfqPolicy    weighted fair queueing across tenants: serve the tenant
//                with the least attained weighted service (Σ wall time
//                charged / weight), FCFS within the tenant — processor
//                sharing emulated at chunk granularity.
//
// Every tie breaks on (arrival, id), so runs are deterministic. Policies
// carry run-local state (WFQ's attained service); the server reset()s
// them at the start of every run, and one policy instance must not be
// shared across concurrent runs.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "online/job.hpp"

namespace nldl::qos {

/// The policy's view of one ready job at a chunk boundary.
struct Candidate {
  const online::Job* job = nullptr;
  /// Plan-predicted time to finish from here (includes the pending
  /// restart surcharge if the job was preempted) — the SRPT priority.
  double remaining_duration = 0.0;
  /// Plan-predicted uninterrupted total service — the SPMF priority.
  double total_duration = 0.0;
  /// The job has run at least one installment.
  bool started = false;
  /// The job ran the immediately preceding installment (picking anyone
  /// else preempts it).
  bool active = false;
};

class Policy {
 public:
  virtual ~Policy() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  /// Whether the policy ever switches away from a started, unfinished
  /// job (informational; the server imposes no restriction).
  [[nodiscard]] virtual bool preemptive() const = 0;

  /// Called by the server at the start of every run. `tenants` is the
  /// number of tenant ids in the job stream.
  virtual void reset(std::size_t tenants);

  /// Index into `ready` (non-empty, ascending job id) of the job that
  /// runs the next installment.
  [[nodiscard]] virtual std::size_t pick(
      const std::vector<Candidate>& ready, double now) = 0;

  /// Observe the installment just charged (WFQ accounting).
  virtual void on_service(const Candidate& served, double duration);
};

class FcfsPolicy final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "fcfs"; }
  [[nodiscard]] bool preemptive() const override { return false; }
  [[nodiscard]] std::size_t pick(const std::vector<Candidate>& ready,
                                 double now) override;
};

class SpmfPolicy final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "spmf"; }
  [[nodiscard]] bool preemptive() const override { return false; }
  [[nodiscard]] std::size_t pick(const std::vector<Candidate>& ready,
                                 double now) override;
};

class SrptPolicy final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "srpt"; }
  [[nodiscard]] bool preemptive() const override { return true; }
  [[nodiscard]] std::size_t pick(const std::vector<Candidate>& ready,
                                 double now) override;
};

class EdfPolicy final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "edf"; }
  [[nodiscard]] bool preemptive() const override { return true; }
  [[nodiscard]] std::size_t pick(const std::vector<Candidate>& ready,
                                 double now) override;
};

class WfqPolicy final : public Policy {
 public:
  /// `weights[t]` is tenant t's share; tenants beyond the vector get
  /// weight 1. Weights must be positive.
  explicit WfqPolicy(std::vector<double> weights = {});

  [[nodiscard]] std::string name() const override { return "wfq"; }
  [[nodiscard]] bool preemptive() const override { return true; }
  void reset(std::size_t tenants) override;
  [[nodiscard]] std::size_t pick(const std::vector<Candidate>& ready,
                                 double now) override;
  void on_service(const Candidate& served, double duration) override;

  [[nodiscard]] double attained(std::size_t tenant) const;

 private:
  [[nodiscard]] double weight(std::size_t tenant) const;

  std::vector<double> weights_;
  std::vector<double> attained_;  ///< wall time charged per tenant
};

/// Discriminator for the built-in policies (bench/example sweep axis).
enum class PolicyKind {
  kFcfs,
  kSpmf,
  kSrpt,
  kEdf,
  kWfq,
};

[[nodiscard]] std::string to_string(PolicyKind kind);

/// Factory; `tenant_weights` is only consulted for kWfq.
[[nodiscard]] std::unique_ptr<Policy> make_policy(
    PolicyKind kind, std::vector<double> tenant_weights = {});

}  // namespace nldl::qos
