// Multi-tenant traffic with SLO classes: who sends work, how much of the
// platform they are owed, and how tight their deadlines are.
//
// Each tenant is an independent Poisson stream with its own JobMix (size
// distribution — uniform or heavy-tailed Pareto — and alpha classes), a
// WFQ weight, and an SLO class expressed as a slack factor: a job's
// deadline is
//
//   arrival + slo_slack_factor × predicted_service(load, alpha)
//
// so "tight" means little more than the job's own uninterrupted service
// time and "loose" leaves room to queue. An infinite slack factor makes
// the tenant best-effort (no deadlines).
//
// Determinism contract: the merged stream is a pure function of the Rng
// handed in — each tenant's stream draws from its own rng.split()
// sub-stream in tenant order, streams are merged by (arrival, tenant) and
// re-numbered 0..n-1 — so a stream driven from a util::Sweep point's
// pre-split RNG is bit-identical for any thread count.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "online/arrivals.hpp"
#include "online/job.hpp"
#include "platform/platform.hpp"
#include "qos/plan.hpp"
#include "util/rng.hpp"

namespace nldl::qos {

struct TenantSpec {
  std::string name;
  /// WFQ share (> 0).
  double weight = 1.0;
  /// Poisson arrival rate (> 0).
  double rate = 1.0;
  /// Job size / alpha-class distribution.
  online::JobMix mix;
  /// Deadline slack as a multiple of the job's predicted service;
  /// +infinity = best-effort (no deadline).
  double slo_slack_factor = std::numeric_limits<double>::infinity();
};

/// The WFQ weight vector of a tenant list, in tenant order.
[[nodiscard]] std::vector<double> tenant_weights(
    const std::vector<TenantSpec>& tenants);

/// The canonical three-tenant demo/bench traffic (shared by bench_qos and
/// qos_demo so their stories stay in sync): a heavy-tailed Pareto batch
/// tenant with a loose SLO, a tight-SLO interactive tenant with 3x
/// fair-share weight and mixed linear/quadratic jobs, and a quadratic
/// analytics tenant. Rates carry the SHARE of the total arrival rate
/// (they sum to 1) — rescale them to a target load factor.
[[nodiscard]] std::vector<TenantSpec> reference_tenants();

/// Rate-weighted mean predicted service time of the tenant set's traffic:
/// each tenant contributes its mix's mean-load job per alpha class
/// (alpha-weight averaged), weighted by its share of the total arrival
/// rate. The capacity reference the drivers use to map a target load
/// factor to arrival rates (rate_total = load_factor / this).
[[nodiscard]] double mean_predicted_service(
    const std::vector<TenantSpec>& tenants,
    const platform::Platform& platform, const ServiceModel& service);

/// Generate the merged multi-tenant job stream over [0, horizon): jobs
/// carry tenant indices and SLO deadlines computed against `service` on
/// `platform` (predictions memoized per distinct (load, alpha) are not
/// needed — every job is predicted exactly once). See the file comment
/// for the determinism contract.
[[nodiscard]] std::vector<online::Job> generate_tenant_traffic(
    const std::vector<TenantSpec>& tenants,
    const platform::Platform& platform, const ServiceModel& service,
    double horizon, util::Rng& rng);

}  // namespace nldl::qos
