// Preemptable per-job service plans: how the qos server turns one
// divisible-load job into a sequence of chunk-boundary checkpoints.
//
// online::Server dispatches a job's whole load as ONE optimal single-round
// allocation — atomic service, nothing can yield until the round finishes.
// The qos server instead serves a job as `rounds` sequential installments:
// each installment is the optimal single-round nonlinear allocation of
// (load / rounds) on the platform (dlt::nonlinear_*_single_round matched
// to the communication model), replayed through sim::Engine under the
// server's CommModel. Installment ends are the chunk boundaries where a
// running job can be paused and another dispatched — the divisible-load
// version of a checkpoint, at which a pause loses no in-flight work.
// (sim::Engine::run_until is the related standalone primitive for pausing
// MID-schedule, where in-flight chunks ARE lost; this plan does not use
// it — wiring pipelined installments onto run_until is future work, see
// ROADMAP.)
//
// Preemption is NOT free, and the price is nonlinear — the paper's no-free-
// lunch effect applied to restarts: when a paused job resumes, its first
// installment must re-dispatch `restart_load_fraction` ρ of an installment's
// worth of state (re-sent over the links and re-processed from scratch), so
// the resumed installment is the allocation of (1 + ρ)·(load / rounds).
// With compute cost w_i·X^alpha the inflated chunks pay superlinearly:
// the SAME ρ costs a quadratic (alpha = 2) job far more than a linear one,
// which is exactly the regime where classical SRPT optimality breaks
// (bench/bench_qos.cpp sweeps it; tests/test_qos.cpp pins the flip).
// With ρ = 0 a resumed plan is bit-identical to an uninterrupted one —
// the zero-restart-cost equivalence tests/test_qos.cpp pins.
#pragma once

#include <cstddef>
#include <limits>
#include <map>
#include <memory>
#include <utility>

#include "online/job.hpp"
#include "platform/platform.hpp"
#include "sim/comm_model.hpp"

namespace nldl::qos {

/// Shape of preemptable service.
struct PlanOptions {
  /// Installments per job (chunk-boundary checkpoints). 1 = atomic
  /// service, exactly online::Server's shape.
  std::size_t rounds = 4;
  /// ρ: fraction of one installment's load re-dispatched (re-sent and
  /// re-processed) when a paused job resumes. 0 = free checkpoints.
  double restart_load_fraction = 0.0;
};

/// Everything that determines how the qos server serves work: the
/// communication model (with its bounded-multiport knobs) and the
/// installment plan. Shared by the server, the admission controller, and
/// the traffic generator so predictions and reality agree.
struct ServiceModel {
  sim::CommModelKind comm = sim::CommModelKind::kParallelLinks;
  double capacity = std::numeric_limits<double>::infinity();
  std::size_t max_concurrent = sim::BoundedMultiportModel::kUnlimited;
  PlanOptions plan;
};

/// Instantiate the comm model the ServiceModel describes.
[[nodiscard]] std::unique_ptr<sim::CommModel> make_model(
    const ServiceModel& service);

/// Memoized installment solver: ONE nonlinear solve + engine replay per
/// distinct (installment load, alpha) under a fixed (platform, model,
/// service). Deadline assignment, admission, and plan construction all
/// need the same installment — sharing one solver (the Server owns one)
/// collapses those three solver runs per job into one. Results are
/// bit-identical to unmemoized calls (the memo only deduplicates).
/// Holds references to the platform and model, which must outlive it;
/// not safe for concurrent use.
class InstallmentSolver {
 public:
  InstallmentSolver(const platform::Platform& platform,
                    const sim::CommModel& model, ServiceModel service);

  struct Installment {
    double duration = 0.0;  ///< simulated makespan of the installment
    double busy = 0.0;      ///< Σ compute busy time across workers
  };

  /// Solve + replay one installment of `load` units (memoized).
  [[nodiscard]] Installment solve(double load, double alpha);

  /// Predicted uninterrupted service of a whole job: rounds ×
  /// solve(load / rounds).duration — the admission controller's SLO
  /// yardstick and ServicePlan::total_duration(), equal by construction.
  [[nodiscard]] double predicted_service(double load, double alpha);

  [[nodiscard]] const platform::Platform& platform() const noexcept {
    return platform_;
  }
  [[nodiscard]] const ServiceModel& service() const noexcept {
    return service_;
  }

 private:
  const platform::Platform& platform_;
  const sim::CommModel& model_;
  ServiceModel service_;
  std::map<std::pair<double, double>, Installment> cache_;
};

/// Convenience: predicted service through a throwaway model + solver.
/// Prefer an InstallmentSolver when predicting more than once.
[[nodiscard]] double predicted_service(const ServiceModel& service,
                                       const platform::Platform& platform,
                                       double load, double alpha);

/// The per-job service state machine the qos server drives.
///
/// Construction solves ONE installment allocation through the shared
/// solver (a memo hit when admission already predicted this job; the
/// restart-inflated variant is solved lazily on first pause), so a job
/// costs O(1) nonlinear solver runs however many installments or
/// preemptions it sees. The solver must outlive the plan.
class ServicePlan {
 public:
  /// `served_load` is the post-admission load (<= job.load when degraded).
  ServicePlan(InstallmentSolver& solver, const online::Job& job,
              double served_load);

  [[nodiscard]] std::size_t rounds() const noexcept { return rounds_; }
  [[nodiscard]] std::size_t completed_rounds() const noexcept {
    return completed_rounds_;
  }
  [[nodiscard]] bool started() const noexcept {
    return completed_rounds_ > 0;
  }
  [[nodiscard]] bool done() const noexcept {
    return completed_rounds_ == rounds_;
  }
  [[nodiscard]] double served_load() const noexcept { return served_load_; }
  [[nodiscard]] double remaining_load() const noexcept;

  /// Duration of one uninterrupted installment (tests/diagnostics).
  [[nodiscard]] double clean_duration() const noexcept { return clean_; }
  /// Predicted uninterrupted total: rounds × clean_duration.
  [[nodiscard]] double total_duration() const noexcept {
    return static_cast<double>(rounds_) * clean_;
  }
  /// Wall time the next installment will take (restart-inflated when a
  /// pause is pending). Requires !done().
  [[nodiscard]] double next_duration();
  /// Load the next installment dispatches: served_load / rounds, inflated
  /// by (1 + restart_load_fraction) when a pause is pending. This is what
  /// the concurrent qos server allocates on a worker subset — the
  /// restart surcharge travels with the load, not just the duration
  /// estimate. Requires !done().
  [[nodiscard]] double next_load() const;
  /// A pause is pending: the next installment pays the restart surcharge.
  [[nodiscard]] bool restart_pending() const noexcept {
    return restart_pending_;
  }
  /// Predicted time to finish from here, including a pending restart —
  /// the SRPT priority.
  [[nodiscard]] double remaining_duration();

  /// Consume one installment (the server advances its clock by the
  /// next_duration() it just charged). Requires !done().
  void advance();

  /// The server switched to another job at a chunk boundary: flag the
  /// restart surcharge for the eventual resume. No-op before the first
  /// installment (nothing dispatched yet), after completion, or when a
  /// pause is already pending (waiting in the queue is not a second
  /// preemption).
  void pause();

  [[nodiscard]] std::size_t preemptions() const noexcept {
    return preemptions_;
  }
  /// Σ extra wall time charged by restart inflation so far.
  [[nodiscard]] double restart_time() const noexcept {
    return restart_time_;
  }
  /// Σ compute busy time across workers so far (utilization accounting;
  /// includes re-processed restart state).
  [[nodiscard]] double compute_time() const noexcept {
    return compute_time_;
  }

 private:
  void ensure_restart_solved();

  InstallmentSolver& solver_;
  double alpha_;
  double served_load_;
  std::size_t rounds_;
  double restart_fraction_;

  double clean_ = 0.0;          ///< uninterrupted installment duration
  double clean_busy_ = 0.0;     ///< its Σ compute busy time
  double restart_ = 0.0;        ///< inflated installment duration
  double restart_busy_ = 0.0;
  bool restart_solved_ = false;

  std::size_t completed_rounds_ = 0;
  bool restart_pending_ = false;
  std::size_t preemptions_ = 0;
  double restart_time_ = 0.0;
  double compute_time_ = 0.0;
};

}  // namespace nldl::qos
