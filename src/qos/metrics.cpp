#include "qos/metrics.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/stats.hpp"

namespace nldl::qos {

std::vector<double> QosMetrics::signature() const {
  std::vector<double> sig{static_cast<double>(offered),
                          static_cast<double>(admitted),
                          static_cast<double>(rejected),
                          static_cast<double>(degraded),
                          static_cast<double>(offered_with_deadline),
                          static_cast<double>(admitted_with_deadline),
                          static_cast<double>(deadline_misses),
                          miss_rate,
                          slo_violation_rate,
                          offered_load,
                          served_load,
                          on_time_load,
                          goodput,
                          static_cast<double>(preemptions),
                          preemptions_per_job,
                          restart_time,
                          restart_share,
                          horizon,
                          utilization,
                          jain_fairness};
  sig.insert(sig.end(), tenant_served_load.begin(),
             tenant_served_load.end());
  sig.insert(sig.end(), tenant_on_time_load.begin(),
             tenant_on_time_load.end());
  const auto base = service.signature();
  sig.insert(sig.end(), base.begin(), base.end());
  return sig;
}

QosMetrics summarize(const std::vector<JobRecord>& records,
                     std::size_t platform_size,
                     const std::vector<double>& weights) {
  NLDL_REQUIRE(platform_size >= 1, "metrics require at least one worker");
  QosMetrics metrics;
  online::MetricsAccumulator latency(platform_size);
  util::HitRate admitted_slo;  // hit = admitted deadline job met its SLO
  std::size_t tenants = weights.size();
  for (const JobRecord& record : records) {
    tenants = std::max(tenants, record.job.tenant + 1);
  }
  metrics.tenant_served_load.assign(std::max<std::size_t>(tenants, 1), 0.0);
  metrics.tenant_on_time_load.assign(metrics.tenant_served_load.size(),
                                     0.0);

  double service_time = 0.0;
  double compute_time = 0.0;
  for (const JobRecord& record : records) {
    ++metrics.offered;
    metrics.offered_load += record.job.load;
    if (record.job.has_deadline()) ++metrics.offered_with_deadline;
    if (!record.admitted) {
      ++metrics.rejected;
      continue;
    }
    ++metrics.admitted;
    if (record.degraded) ++metrics.degraded;
    metrics.served_load += record.served_load;
    metrics.tenant_served_load[record.job.tenant] += record.served_load;
    metrics.horizon = std::max(metrics.horizon, record.finish);
    metrics.preemptions += record.preemptions;
    metrics.restart_time += record.restart_time;
    service_time += record.service_time;
    compute_time += record.compute_time;
    if (record.job.has_deadline()) {
      ++metrics.admitted_with_deadline;
      admitted_slo.push(record.met_deadline());
    }
    if (record.met_deadline()) {
      metrics.on_time_load += record.served_load;
      metrics.tenant_on_time_load[record.job.tenant] += record.served_load;
    }

    online::JobStats stats;
    stats.job = record.job;
    stats.dispatch = record.dispatch;
    stats.finish = record.finish;
    stats.compute_time = record.compute_time;
    // Slowdown baseline: the job's own predicted uninterrupted service
    // (there is no isolated whole-platform replay in qos runs), so the
    // slowdown percentiles read as latency normalized by service time.
    stats.isolated_makespan = record.predicted_service;
    latency.push(stats);
  }

  metrics.deadline_misses = admitted_slo.misses();
  metrics.miss_rate = admitted_slo.miss_rate();
  const std::size_t rejected_with_deadline =
      metrics.offered_with_deadline - metrics.admitted_with_deadline;
  metrics.slo_violation_rate =
      metrics.offered_with_deadline == 0
          ? 0.0
          : static_cast<double>(metrics.deadline_misses +
                                rejected_with_deadline) /
                static_cast<double>(metrics.offered_with_deadline);
  metrics.goodput =
      metrics.horizon > 0.0 ? metrics.on_time_load / metrics.horizon : 0.0;
  metrics.preemptions_per_job =
      metrics.admitted == 0
          ? 0.0
          : static_cast<double>(metrics.preemptions) /
                static_cast<double>(metrics.admitted);
  metrics.restart_share =
      service_time > 0.0 ? metrics.restart_time / service_time : 0.0;
  metrics.utilization =
      metrics.horizon > 0.0
          ? compute_time /
                (static_cast<double>(platform_size) * metrics.horizon)
          : 0.0;

  // Fairness over per-tenant weighted goodput: tenant t's allocation is
  // on-time load / weight, so equal normalized shares (the WFQ ideal)
  // score 1 regardless of the weights. See the header comment for why
  // TOTAL served load would be the wrong basis.
  std::vector<double> normalized(metrics.tenant_on_time_load.size());
  for (std::size_t t = 0; t < normalized.size(); ++t) {
    const double weight = t < weights.size() ? weights[t] : 1.0;
    NLDL_REQUIRE(weight > 0.0, "tenant weights must be positive");
    normalized[t] = metrics.tenant_on_time_load[t] / weight;
  }
  metrics.jain_fairness = util::jain_index(normalized);

  metrics.service = latency.finish();
  return metrics;
}

}  // namespace nldl::qos
