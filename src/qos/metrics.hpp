// QoS metrics of a multi-tenant run: SLO outcomes (deadline misses,
// goodput), preemption/restart overhead, and Jain's fairness index — the
// deadline-and-fairness counterpart of online::ServiceMetrics, which it
// embeds for the latency/wait percentiles of the admitted jobs.
#pragma once

#include <cstddef>
#include <vector>

#include "online/metrics.hpp"
#include "qos/server.hpp"

namespace nldl::qos {

struct QosMetrics {
  // --- population ---
  std::size_t offered = 0;   ///< jobs in the stream
  std::size_t admitted = 0;  ///< passed admission (incl. degraded)
  std::size_t rejected = 0;
  std::size_t degraded = 0;
  // --- SLO outcomes ---
  std::size_t offered_with_deadline = 0;
  std::size_t admitted_with_deadline = 0;
  /// Admitted deadline-carrying jobs that finished past their deadline.
  std::size_t deadline_misses = 0;
  /// deadline_misses / admitted_with_deadline (0 over zero jobs).
  double miss_rate = 0.0;
  /// (misses + rejected deadline jobs) / offered_with_deadline: the SLO
  /// failure probability an arriving customer experiences.
  double slo_violation_rate = 0.0;
  // --- load accounting ---
  double offered_load = 0.0;
  double served_load = 0.0;   ///< dispatched load (degradation shrinks it)
  double on_time_load = 0.0;  ///< served load of jobs that met their SLO
  /// on_time_load / horizon: useful work per unit time — the headline
  /// "are we serving the SLOs" number.
  double goodput = 0.0;
  // --- preemption overhead ---
  std::size_t preemptions = 0;
  double preemptions_per_job = 0.0;  ///< over admitted jobs
  double restart_time = 0.0;         ///< Σ restart inflation wall time
  /// restart_time / Σ service time: the fraction of the server's busy
  /// time burned re-dispatching preempted state — the measurable price
  /// of preemption.
  double restart_share = 0.0;
  // --- platform ---
  double horizon = 0.0;      ///< last finish (0 when nothing served)
  double utilization = 0.0;  ///< Σ compute busy / (p · horizon)
  // --- fairness ---
  /// Jain index over per-tenant weighted GOODPUT (on-time load / weight).
  /// Total served load is policy-independent in a drain-to-completion
  /// run (every admitted job finishes eventually), so fairness is scored
  /// on what tenants actually care about: work delivered within its SLO.
  /// 1 = every tenant's weighted on-time share is equal.
  double jain_fairness = 1.0;
  std::vector<double> tenant_served_load;   ///< per tenant, in tenant order
  std::vector<double> tenant_on_time_load;  ///< per tenant, in tenant order
  // --- latency (admitted jobs only) ---
  /// Wait/latency percentiles over the admitted jobs; the slowdown
  /// fields are normalized by each job's PREDICTED uninterrupted
  /// service (qos runs record no isolated whole-platform baseline).
  online::ServiceMetrics service;

  /// Flat numeric signature (bench serial-vs-parallel bitwise
  /// self-check).
  [[nodiscard]] std::vector<double> signature() const;
};

/// Aggregate `records` (in id order, as Server::run returns them).
/// `platform_size` feeds the utilization denominator; `weights[t]` is
/// tenant t's fair share (tenants beyond the vector get weight 1).
[[nodiscard]] QosMetrics summarize(const std::vector<JobRecord>& records,
                                   std::size_t platform_size,
                                   const std::vector<double>& weights = {});

}  // namespace nldl::qos
