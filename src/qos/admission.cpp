#include "qos/admission.hpp"

#include "util/assert.hpp"

namespace nldl::qos {

namespace {

void validate_options(const AdmissionOptions& options) {
  NLDL_REQUIRE(options.min_load_fraction > 0.0 &&
                   options.min_load_fraction <= 1.0,
               "min_load_fraction must be in (0, 1]");
  NLDL_REQUIRE(options.bisection_iterations >= 1,
               "bisection_iterations must be >= 1");
}

}  // namespace

AdmissionController::AdmissionController(const platform::Platform& platform,
                                         ServiceModel service,
                                         AdmissionOptions options)
    : owned_model_(make_model(service)), options_(options) {
  validate_options(options);
  owned_solver_ =
      std::make_unique<InstallmentSolver>(platform, *owned_model_, service);
  solver_ = owned_solver_.get();
}

AdmissionController::AdmissionController(InstallmentSolver& solver,
                                         AdmissionOptions options)
    : solver_(&solver), options_(options) {
  validate_options(options);
}

AdmissionDecision AdmissionController::decide(const online::Job& job) const {
  NLDL_REQUIRE(job.load > 0.0, "admission requires a positive load");
  AdmissionDecision decision;
  const auto service_of = [&](double load) {
    return solver_->predicted_service(load, job.alpha);
  };

  const double full = service_of(job.load);
  if (!job.has_deadline() || options_.mode == AdmissionMode::kAdmitAll ||
      full <= job.slack()) {
    decision.served_load = job.load;
    decision.predicted_service = full;
    return decision;
  }

  if (options_.mode == AdmissionMode::kReject) {
    decision.admitted = false;
    return decision;
  }

  // kDegrade: the floor fraction must itself fit the slack, else reject.
  const double floor_load = options_.min_load_fraction * job.load;
  const double floor_service = service_of(floor_load);
  if (floor_service > job.slack()) {
    decision.admitted = false;
    return decision;
  }

  // Largest feasible fraction by bisection (service is strictly
  // increasing in load; the infeasible end is f = 1, checked above).
  double lo = options_.min_load_fraction;  // feasible
  double hi = 1.0;                         // infeasible
  for (int i = 0; i < options_.bisection_iterations; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (service_of(mid * job.load) <= job.slack()) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  decision.degraded = true;
  decision.served_load = lo * job.load;
  decision.predicted_service = service_of(decision.served_load);
  return decision;
}

}  // namespace nldl::qos
