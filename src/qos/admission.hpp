// SLO-aware admission control: reject (or degrade) work that provably
// cannot meet its deadline.
//
// The controller compares a job's slack (deadline − arrival) against the
// predicted uninterrupted service time of its load under the server's own
// ServiceModel — the same dlt::nonlinear_*_single_round predictions the
// SPMF scheduler ranks by, evaluated per installment. The check is
// optimistic: queueing delay is not modeled, so an admitted job may still
// miss its deadline under load, but a REJECTED job provably could not make
// it even on an idle platform. (Under qos::ServerOptions::concurrency > 1
// the prediction stays whole-platform while service happens on a 1/k
// subset with contention, widening the optimism: rejections remain sound
// — subset service is never faster than whole-platform service — but
// admit/degrade decisions are looser than in serial mode; see
// qos/server.hpp.) Three modes:
//
//   kAdmitAll   SLO bookkeeping only (the baseline).
//   kReject     infeasible jobs are turned away whole.
//   kDegrade    infeasible jobs are shrunk to the largest load fraction
//               whose predicted service fits the slack (serving a smaller
//               partition of the work — a degraded but on-time answer,
//               e.g. a coarser approximation of the full result), down to
//               `min_load_fraction`; below the floor they are rejected.
//
// Degradation searches the fraction by bisection; predicted service is
// strictly increasing in load, so the result is deterministic to solver
// tolerance. Best-effort jobs (no deadline) are always admitted whole.
#pragma once

#include <cstddef>
#include <memory>

#include "online/job.hpp"
#include "platform/platform.hpp"
#include "qos/plan.hpp"

namespace nldl::qos {

enum class AdmissionMode {
  kAdmitAll,
  kReject,
  kDegrade,
};

struct AdmissionOptions {
  AdmissionMode mode = AdmissionMode::kReject;
  /// Smallest admissible fraction of a degraded job's load.
  double min_load_fraction = 0.25;
  /// Bisection steps for the degrade search (2^-32 load resolution).
  int bisection_iterations = 32;
};

struct AdmissionDecision {
  bool admitted = true;
  bool degraded = false;
  /// Load the server will actually dispatch (0 when rejected).
  double served_load = 0.0;
  /// Predicted uninterrupted service time of served_load (0 when
  /// rejected).
  double predicted_service = 0.0;
};

class AdmissionController {
 public:
  /// Standalone controller: owns its comm model and installment solver.
  AdmissionController(const platform::Platform& platform,
                      ServiceModel service, AdmissionOptions options = {});

  /// Controller sharing an existing solver (the qos::Server wires its
  /// own through, so admission predictions are memo hits when the
  /// ServicePlan later solves the same installment). The solver must
  /// outlive the controller.
  explicit AdmissionController(InstallmentSolver& solver,
                               AdmissionOptions options = {});

  [[nodiscard]] const AdmissionOptions& options() const noexcept {
    return options_;
  }

  [[nodiscard]] AdmissionDecision decide(const online::Job& job) const;

 private:
  std::unique_ptr<sim::CommModel> owned_model_;
  std::unique_ptr<InstallmentSolver> owned_solver_;
  InstallmentSolver* solver_;  ///< owned_solver_ or the shared one
  AdmissionOptions options_;
};

}  // namespace nldl::qos
