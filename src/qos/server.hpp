// The QoS server: SLO-aware admission + chunk-boundary preemption on one
// star platform.
//
// Where online::Server serves whole jobs atomically, the qos server
// drives every admitted job through a preemptable ServicePlan
// (qos/plan.hpp) and re-decides at every chunk boundary which ready job
// runs next (qos/policy.hpp):
//
//   - arrivals pass through the AdmissionController: a job whose deadline
//     provably cannot be met is rejected or degraded BEFORE it can clog
//     the queue;
//   - with ServerOptions::concurrency == 1 (default) the platform serves
//     one installment at a time (whole-platform service — the exclusive
//     shape where SRPT/EDF theory applies); arrivals during an
//     installment are only seen at its end: chunk boundaries are the only
//     decision points, a running chunk is never abandoned;
//   - with concurrency k > 1 the platform is carved into k disjoint
//     interleaved worker subsets, and up to k installments of DIFFERENT
//     jobs run concurrently — one per subset — as time-released chunks
//     multiplexed through ONE sim::Engine run per busy period under the
//     single configured CommModel. A bounded-multiport capacity is then
//     genuinely shared: concurrent installments contend for the master's
//     bandwidth instead of each enjoying a private port (honest
//     contention, ROADMAP's dynamic-repartitioning step (b)). Policy
//     priorities and WFQ's attained-service accounting still use the
//     solver's contention-free whole-platform duration estimates (a
//     consistent yardstick); actual timing comes from the shared replay.
//     In this mode a started job that does not resume seamlessly at the
//     boundary where its previous installment ended pays the restart
//     surcharge (its state went cold while others used the platform) —
//     the gap rule replacing the serial mode's switched-away rule.
//     NOTE: admission keeps predicting against uninterrupted
//     WHOLE-PLATFORM service — on a 1/k subset under contention real
//     service is strictly longer (superlinearly so for alpha > 1), so
//     concurrency makes the admission check MORE optimistic: rejections
//     stay provably correct (whole-platform service is a lower bound on
//     any subset's), but admitted/degraded jobs can miss deadlines the
//     serial server would have met. Subset-aware admission is future
//     work (ROADMAP, dynamic repartitioning (d));
//   - switching away from a started job pauses its plan; the eventual
//     resume pays the plan's nonlinear restart surcharge, so preemption
//     is observable in both the latency metrics and the per-job restart
//     accounting;
//   - the whole run consumes no RNG and breaks every tie
//     deterministically, so a run is a pure function of the job stream —
//     bit-identical wherever it executes (the property bench_qos's
//     serial-vs-parallel self-check rides on).
#pragma once

#include <cstddef>
#include <vector>

#include "obs/trace.hpp"
#include "online/job.hpp"
#include "platform/platform.hpp"
#include "qos/admission.hpp"
#include "qos/plan.hpp"
#include "qos/policy.hpp"
#include "sim/multiplex.hpp"

namespace nldl::obs {
class MetricsRegistry;
}  // namespace nldl::obs

namespace nldl::qos {

struct ServerOptions {
  ServiceModel service;
  AdmissionOptions admission;
  /// Disjoint worker subsets serving installments of different jobs
  /// concurrently (clamped to the worker count). 1 = the serial
  /// whole-platform event loop, bit-identical to the pre-concurrency
  /// server.
  std::size_t concurrency = 1;
  /// Shared-master busy periods (concurrency > 1) resume each replay
  /// from a checkpoint of the settled prefix
  /// (sim::SharedMasterOptions::incremental) instead of re-simulating
  /// the whole period. Bit-identical results; off only buys the
  /// O(period²) reference behavior.
  bool incremental_replay = true;
  /// Optional trace sink (obs/trace.hpp, non-owning, must outlive the
  /// server's run). When set, the served timeline is emitted as typed
  /// events on the simulated clock: admission verdicts at every arrival,
  /// preemptions with their restart surcharge, restart re-work spans,
  /// per-installment spans, whole-job spans, deadline misses, and (under
  /// concurrency > 1) the shared replay's chunk spans and bookkeeping.
  /// Tracing never changes results: JobRecords are bit-identical with or
  /// without a sink.
  obs::TraceSink* trace = nullptr;
};

/// Outcome of one offered job.
struct JobRecord {
  online::Job job;  ///< as offered (original load and deadline)
  bool admitted = false;
  bool degraded = false;
  /// Load actually dispatched (< job.load when degraded, 0 when
  /// rejected).
  double served_load = 0.0;
  /// Admission's predicted uninterrupted service of served_load.
  double predicted_service = 0.0;
  double dispatch = 0.0;  ///< first installment start (admitted jobs)
  double finish = 0.0;    ///< last installment end; = arrival if rejected
  /// Σ wall time of the job's installments (incl. restart inflation).
  /// Under concurrency > 1 this is measured from the shared engine
  /// replay, so cross-subset contention shows up here.
  double service_time = 0.0;
  /// Σ compute busy time across workers (utilization accounting).
  double compute_time = 0.0;
  std::size_t preemptions = 0;
  /// Extra wall time charged by restart inflation. Under concurrency > 1
  /// this stays the solver's contention-free estimate (the re-dispatched
  /// load itself is replayed honestly; only this attribution metric uses
  /// the estimate).
  double restart_time = 0.0;

  [[nodiscard]] double wait() const noexcept {
    return dispatch - job.arrival;
  }
  [[nodiscard]] double latency() const noexcept {
    return finish - job.arrival;
  }
  /// Admitted, completed, and on time (best-effort jobs are always on
  /// time). False for rejected jobs.
  [[nodiscard]] bool met_deadline() const noexcept {
    return admitted && finish <= job.deadline;
  }
};

class Server {
 public:
  explicit Server(const platform::Platform& platform,
                  ServerOptions options = {});

  [[nodiscard]] const platform::Platform& platform() const noexcept {
    return platform_;
  }
  [[nodiscard]] const ServerOptions& options() const noexcept {
    return options_;
  }

  /// Simulate the stream to completion. `jobs` must be in non-decreasing
  /// arrival order with ids 0..n-1 (the shape generate_tenant_traffic and
  /// every ArrivalProcess produce). `policy` is reset() and then owned
  /// for the duration of the run (it accumulates run-local state).
  /// Returns one JobRecord per offered job, in id order. `metrics`, when
  /// non-null, accumulates qos.* outcome counters (admitted / degraded /
  /// rejected / deadline_misses / preemptions, plus the qos.restart_time_s
  /// gauge) and — under concurrency > 1 — shared-master replay cost as
  /// replay.engine_events / replay.replays / replay.busy_periods.
  [[nodiscard]] std::vector<JobRecord> run(
      const std::vector<online::Job>& jobs, Policy& policy,
      obs::MetricsRegistry* metrics = nullptr) const;

 private:
  /// The serial (concurrency == 1) and concurrent (k subsets, shared
  /// master) event loops behind run(); both fill `records` in place.
  void run_serial(const std::vector<online::Job>& jobs, Policy& policy,
                  std::vector<JobRecord>& records) const;
  void run_concurrent(const std::vector<online::Job>& jobs, Policy& policy,
                      std::vector<JobRecord>& records,
                      std::size_t concurrency,
                      obs::MetricsRegistry* metrics) const;

  const platform::Platform& platform_;
  ServerOptions options_;
  std::unique_ptr<sim::CommModel> model_;
  /// Shared by admission and every ServicePlan: one nonlinear solve per
  /// distinct installment per server lifetime. mutable because run() is
  /// const but the memo grows.
  mutable InstallmentSolver solver_;
  AdmissionController admission_;
};

}  // namespace nldl::qos
