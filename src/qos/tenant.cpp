#include "qos/tenant.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace nldl::qos {

std::vector<double> tenant_weights(const std::vector<TenantSpec>& tenants) {
  std::vector<double> weights;
  weights.reserve(tenants.size());
  for (const TenantSpec& tenant : tenants) weights.push_back(tenant.weight);
  return weights;
}

std::vector<TenantSpec> reference_tenants() {
  std::vector<TenantSpec> tenants(3);
  tenants[0].name = "batch";
  tenants[0].weight = 1.0;
  tenants[0].rate = 0.5;
  tenants[0].mix.load_lo = 30.0;
  tenants[0].mix.load_hi = 300.0;
  tenants[0].mix.load_dist = online::LoadDistribution::kPareto;
  tenants[0].mix.pareto_shape = 1.3;
  tenants[0].slo_slack_factor = 8.0;  // loose SLO

  tenants[1].name = "interactive";
  tenants[1].weight = 3.0;
  tenants[1].rate = 0.3;
  tenants[1].mix.load_lo = 20.0;
  tenants[1].mix.load_hi = 60.0;
  tenants[1].mix.alphas = {1.0, 2.0};
  tenants[1].mix.alpha_weights = {0.5, 0.5};
  tenants[1].slo_slack_factor = 2.5;  // tight SLO

  tenants[2].name = "analytics";
  tenants[2].weight = 1.0;
  tenants[2].rate = 0.2;
  tenants[2].mix.load_lo = 50.0;
  tenants[2].mix.load_hi = 150.0;
  tenants[2].mix.alphas = {2.0};
  tenants[2].mix.alpha_weights = {1.0};
  tenants[2].slo_slack_factor = 5.0;
  return tenants;
}

double mean_predicted_service(const std::vector<TenantSpec>& tenants,
                              const platform::Platform& platform,
                              const ServiceModel& service) {
  NLDL_REQUIRE(!tenants.empty(), "capacity requires at least one tenant");
  const auto model = make_model(service);
  InstallmentSolver solver(platform, *model, service);
  double weighted = 0.0;
  double total_rate = 0.0;
  for (const TenantSpec& tenant : tenants) {
    NLDL_REQUIRE(tenant.rate > 0.0, "tenant rates must be positive");
    tenant.mix.validate();
    double mix_service = 0.0;
    double mix_weight = 0.0;
    for (std::size_t k = 0; k < tenant.mix.alphas.size(); ++k) {
      mix_service += tenant.mix.alpha_weights[k] *
                     solver.predicted_service(tenant.mix.mean_load(),
                                              tenant.mix.alphas[k]);
      mix_weight += tenant.mix.alpha_weights[k];
    }
    weighted += tenant.rate * mix_service / mix_weight;
    total_rate += tenant.rate;
  }
  return weighted / total_rate;
}

std::vector<online::Job> generate_tenant_traffic(
    const std::vector<TenantSpec>& tenants,
    const platform::Platform& platform, const ServiceModel& service,
    double horizon, util::Rng& rng) {
  NLDL_REQUIRE(!tenants.empty(), "traffic requires at least one tenant");
  NLDL_REQUIRE(horizon > 0.0, "traffic horizon must be positive");
  for (const TenantSpec& tenant : tenants) {
    NLDL_REQUIRE(tenant.weight > 0.0, "tenant weights must be positive");
    NLDL_REQUIRE(tenant.slo_slack_factor > 0.0,
                 "SLO slack factors must be positive");
  }

  // One sub-stream per tenant, split in tenant order (the determinism
  // contract): tenant t's jobs do not depend on how many jobs earlier
  // tenants drew. One solver serves every deadline prediction.
  const auto model = make_model(service);
  InstallmentSolver solver(platform, *model, service);
  std::vector<online::Job> merged;
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    const TenantSpec& tenant = tenants[t];
    util::Rng tenant_rng = rng.split();
    const online::PoissonArrivals arrivals(tenant.rate, tenant.mix);
    std::vector<online::Job> jobs = arrivals.generate(horizon, tenant_rng);
    for (online::Job& job : jobs) {
      job.tenant = t;
      if (tenant.slo_slack_factor <
          std::numeric_limits<double>::infinity()) {
        job.deadline =
            job.arrival + tenant.slo_slack_factor *
                              solver.predicted_service(job.load, job.alpha);
      }
      merged.push_back(job);
    }
  }

  // Merge by (arrival, tenant) — stable and total because every job of
  // one tenant has a distinct arrival almost surely, and ties across
  // tenants break on the tenant index.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const online::Job& a, const online::Job& b) {
                     if (a.arrival != b.arrival) {
                       return a.arrival < b.arrival;
                     }
                     return a.tenant < b.tenant;
                   });
  for (std::size_t i = 0; i < merged.size(); ++i) merged[i].id = i;
  return merged;
}

}  // namespace nldl::qos
