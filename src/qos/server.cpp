#include "qos/server.hpp"

#include <algorithm>
#include <memory>

#include "util/assert.hpp"

namespace nldl::qos {

Server::Server(const platform::Platform& platform, ServerOptions options)
    : platform_(platform),
      options_(options),
      model_(make_model(options.service)),
      solver_(platform, *model_, options.service),
      admission_(solver_, options.admission) {}

std::vector<JobRecord> Server::run(const std::vector<online::Job>& jobs,
                                   Policy& policy) const {
  std::size_t tenants = 1;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    NLDL_REQUIRE(jobs[i].id == i, "job ids must be 0..n-1 in order");
    NLDL_REQUIRE(jobs[i].arrival >= 0.0, "job arrivals must be >= 0");
    NLDL_REQUIRE(i == 0 || jobs[i].arrival >= jobs[i - 1].arrival,
                 "jobs must be sorted by arrival time");
    NLDL_REQUIRE(jobs[i].load > 0.0, "job loads must be positive");
    NLDL_REQUIRE(jobs[i].alpha >= 1.0, "job alphas must be >= 1");
    NLDL_REQUIRE(jobs[i].deadline > jobs[i].arrival,
                 "deadlines must lie strictly after the arrival");
    tenants = std::max(tenants, jobs[i].tenant + 1);
  }
  policy.reset(tenants);

  std::vector<JobRecord> records(jobs.size());
  std::vector<std::unique_ptr<ServicePlan>> plans(jobs.size());
  std::vector<std::size_t> ready;  // admitted unfinished job ids, ascending
  std::size_t next_arrival = 0;
  double now = 0.0;
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::size_t last = kNone;  // job that ran the preceding installment

  const auto admit_until = [&](double t) {
    while (next_arrival < jobs.size() &&
           jobs[next_arrival].arrival <= t) {
      const online::Job& job = jobs[next_arrival];
      JobRecord& record = records[job.id];
      record.job = job;
      const AdmissionDecision decision = admission_.decide(job);
      record.admitted = decision.admitted;
      record.degraded = decision.degraded;
      record.served_load = decision.served_load;
      record.predicted_service = decision.predicted_service;
      if (decision.admitted) {
        plans[job.id] = std::make_unique<ServicePlan>(
            solver_, job, decision.served_load);
        ready.push_back(job.id);
      } else {
        record.finish = job.arrival;  // turned away on the spot
      }
      ++next_arrival;
    }
  };

  std::vector<Candidate> candidates;
  while (true) {
    admit_until(now);
    if (ready.empty()) {
      if (next_arrival >= jobs.size()) break;  // drained
      now = std::max(now, jobs[next_arrival].arrival);
      continue;
    }

    // One candidate per ready job, in ascending id (arrival) order.
    candidates.clear();
    for (const std::size_t id : ready) {
      Candidate candidate;
      candidate.job = &records[id].job;
      candidate.remaining_duration = plans[id]->remaining_duration();
      candidate.total_duration = plans[id]->total_duration();
      candidate.started = plans[id]->started();
      candidate.active = id == last;
      candidates.push_back(candidate);
    }
    const std::size_t k = policy.pick(candidates, now);
    NLDL_ASSERT(k < ready.size(), "policy picked outside the ready set");
    const std::size_t id = ready[k];

    // Switching away from a started, unfinished job preempts it: its
    // plan flags the restart surcharge for the eventual resume.
    if (last != kNone && last != id && plans[last] != nullptr &&
        !plans[last]->done()) {
      plans[last]->pause();
    }

    JobRecord& record = records[id];
    if (!plans[id]->started()) record.dispatch = now;
    const double duration = plans[id]->next_duration();
    plans[id]->advance();
    policy.on_service(candidates[k], duration);
    now += duration;
    record.service_time += duration;
    last = id;

    if (plans[id]->done()) {
      record.finish = now;
      record.preemptions = plans[id]->preemptions();
      record.restart_time = plans[id]->restart_time();
      record.compute_time = plans[id]->compute_time();
      ready.erase(ready.begin() +
                  static_cast<std::ptrdiff_t>(k));
      plans[id].reset();
    }
    // Arrivals during the installment become visible at this boundary.
    admit_until(now);
  }

  NLDL_ASSERT(ready.empty() && next_arrival == jobs.size(),
              "qos server stopped with unserved jobs");
  return records;
}

}  // namespace nldl::qos
