#include "qos/server.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <utility>

#include "dlt/nonlinear_dlt.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "sim/multiplex.hpp"
#include "util/assert.hpp"

namespace nldl::qos {

namespace {
constexpr std::size_t kNone = static_cast<std::size_t>(-1);
constexpr double kNever = std::numeric_limits<double>::infinity();

/// Record one event attributed to `job` (instant when start == end).
void emit(obs::TraceSink* sink, obs::EventKind kind, double start, double end,
          const online::Job& job, double size, double value) {
  obs::TraceEvent event;
  event.kind = kind;
  event.start = start;
  event.end = end;
  event.job = job.id;
  event.tenant = job.tenant;
  event.alpha = job.alpha;
  event.size = size;
  event.value = value;
  sink->record(event);
}

/// The admission verdict at an arrival, as a trace instant. `value` is
/// the predicted service, `size` the load actually accepted.
void emit_verdict(obs::TraceSink* sink, const online::Job& job,
                  const AdmissionDecision& decision) {
  const obs::EventKind verdict = !decision.admitted
                                     ? obs::EventKind::kReject
                                 : decision.degraded
                                     ? obs::EventKind::kDegrade
                                     : obs::EventKind::kAdmit;
  emit(sink, verdict, job.arrival, job.arrival, job, decision.served_load,
       decision.predicted_service);
}
}  // namespace

Server::Server(const platform::Platform& platform, ServerOptions options)
    : platform_(platform),
      options_(options),
      model_(make_model(options.service)),
      solver_(platform, *model_, options.service),
      admission_(solver_, options.admission) {
  NLDL_REQUIRE(options.concurrency >= 1,
               "qos server concurrency must be >= 1");
}

std::vector<JobRecord> Server::run(const std::vector<online::Job>& jobs,
                                   Policy& policy,
                                   obs::MetricsRegistry* metrics) const {
  std::size_t tenants = 1;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    NLDL_REQUIRE(jobs[i].id == i, "job ids must be 0..n-1 in order");
    NLDL_REQUIRE(jobs[i].arrival >= 0.0, "job arrivals must be >= 0");
    NLDL_REQUIRE(i == 0 || jobs[i].arrival >= jobs[i - 1].arrival,
                 "jobs must be sorted by arrival time");
    NLDL_REQUIRE(jobs[i].load > 0.0, "job loads must be positive");
    NLDL_REQUIRE(jobs[i].alpha >= 1.0, "job alphas must be >= 1");
    NLDL_REQUIRE(jobs[i].deadline > jobs[i].arrival,
                 "deadlines must lie strictly after the arrival");
    tenants = std::max(tenants, jobs[i].tenant + 1);
  }
  policy.reset(tenants);

  std::vector<JobRecord> records(jobs.size());
  const std::size_t concurrency =
      std::clamp<std::size_t>(options_.concurrency, 1, platform_.size());
  if (metrics != nullptr) {
    // First-touch order fixes the registry (and its JSON) layout up
    // front, independent of which outcome happens first in the stream.
    (void)metrics->counter("qos.admitted");
    (void)metrics->counter("qos.degraded");
    (void)metrics->counter("qos.rejected");
    (void)metrics->counter("qos.deadline_misses");
    (void)metrics->counter("qos.preemptions");
    (void)metrics->gauge("qos.restart_time_s");
    if (concurrency > 1) {
      (void)metrics->counter("replay.engine_events");
      (void)metrics->counter("replay.replays");
      (void)metrics->counter("replay.busy_periods");
    }
  }
  if (concurrency > 1) {
    run_concurrent(jobs, policy, records, concurrency, metrics);
  } else {
    run_serial(jobs, policy, records);
  }

  // Whole-job spans, deadline misses, and outcome metrics — mode
  // independent, so both event loops stay span-for-span comparable.
  for (const JobRecord& record : records) {
    const bool miss = record.admitted && record.finish > record.job.deadline;
    if (options_.trace != nullptr && record.admitted) {
      emit(options_.trace, obs::EventKind::kJob, record.dispatch,
           record.finish, record.job, record.served_load,
           record.compute_time);
      if (miss) {
        emit(options_.trace, obs::EventKind::kDeadlineMiss, record.finish,
             record.finish, record.job, 0.0,
             record.finish - record.job.deadline);
      }
    }
    if (metrics != nullptr) {
      if (record.admitted) {
        ++metrics->counter("qos.admitted");
        if (record.degraded) ++metrics->counter("qos.degraded");
      } else {
        ++metrics->counter("qos.rejected");
      }
      if (miss) ++metrics->counter("qos.deadline_misses");
      metrics->counter("qos.preemptions") += record.preemptions;
      metrics->gauge("qos.restart_time_s") += record.restart_time;
    }
  }
  return records;
}

void Server::run_serial(const std::vector<online::Job>& jobs, Policy& policy,
                        std::vector<JobRecord>& records) const {
  obs::TraceSink* const trace = options_.trace;
  std::vector<std::unique_ptr<ServicePlan>> plans(jobs.size());
  std::vector<std::size_t> ready;  // admitted unfinished job ids, ascending
  std::size_t next_arrival = 0;
  double now = 0.0;
  std::size_t last = kNone;  // job that ran the preceding installment

  const auto admit_until = [&](double t) {
    while (next_arrival < jobs.size() &&
           jobs[next_arrival].arrival <= t) {
      const online::Job& job = jobs[next_arrival];
      JobRecord& record = records[job.id];
      record.job = job;
      if (trace != nullptr) {
        // Queue-position cause of the admission wait: jobs already ready.
        emit(trace, obs::EventKind::kArrival, job.arrival, job.arrival, job,
             job.load, static_cast<double>(ready.size()));
      }
      const AdmissionDecision decision = admission_.decide(job);
      record.admitted = decision.admitted;
      record.degraded = decision.degraded;
      record.served_load = decision.served_load;
      record.predicted_service = decision.predicted_service;
      if (trace != nullptr) emit_verdict(trace, job, decision);
      if (decision.admitted) {
        plans[job.id] = std::make_unique<ServicePlan>(
            solver_, job, decision.served_load);
        ready.push_back(job.id);
      } else {
        record.finish = job.arrival;  // turned away on the spot
      }
      ++next_arrival;
    }
  };

  std::vector<Candidate> candidates;
  while (true) {
    admit_until(now);
    if (ready.empty()) {
      if (next_arrival >= jobs.size()) break;  // drained
      now = std::max(now, jobs[next_arrival].arrival);
      continue;
    }

    // One candidate per ready job, in ascending id (arrival) order.
    candidates.clear();
    for (const std::size_t id : ready) {
      Candidate candidate;
      candidate.job = &records[id].job;
      candidate.remaining_duration = plans[id]->remaining_duration();
      candidate.total_duration = plans[id]->total_duration();
      candidate.started = plans[id]->started();
      candidate.active = id == last;
      candidates.push_back(candidate);
    }
    const std::size_t k = policy.pick(candidates, now);
    NLDL_ASSERT(k < ready.size(), "policy picked outside the ready set");
    const std::size_t id = ready[k];

    // Switching away from a started, unfinished job preempts it: its
    // plan flags the restart surcharge for the eventual resume.
    if (last != kNone && last != id && plans[last] != nullptr &&
        !plans[last]->done()) {
      const bool flags =
          plans[last]->started() && !plans[last]->restart_pending();
      plans[last]->pause();
      if (trace != nullptr && flags) {
        // next_duration() forces the (memoized) restart solve the resume
        // would trigger anyway — deterministic and result-neutral.
        emit(trace, obs::EventKind::kPreempt, now, now, records[last].job,
             0.0,
             plans[last]->next_duration() - plans[last]->clean_duration());
      }
    }

    JobRecord& record = records[id];
    if (!plans[id]->started()) record.dispatch = now;
    const double duration = plans[id]->next_duration();
    if (trace != nullptr) {
      if (plans[id]->restart_pending()) {
        emit(trace, obs::EventKind::kRestart, now,
             now + duration - plans[id]->clean_duration(), record.job, 0.0,
             0.0);
      }
      emit(trace, obs::EventKind::kInstallment, now, now + duration,
           record.job, plans[id]->next_load(), 0.0);
    }
    plans[id]->advance();
    policy.on_service(candidates[k], duration);
    now += duration;
    record.service_time += duration;
    last = id;

    if (plans[id]->done()) {
      record.finish = now;
      record.preemptions = plans[id]->preemptions();
      record.restart_time = plans[id]->restart_time();
      record.compute_time = plans[id]->compute_time();
      ready.erase(ready.begin() +
                  static_cast<std::ptrdiff_t>(k));
      plans[id].reset();
    }
    // Arrivals during the installment become visible at this boundary.
    admit_until(now);
  }

  NLDL_ASSERT(ready.empty() && next_arrival == jobs.size(),
              "qos server stopped with unserved jobs");
}

void Server::run_concurrent(const std::vector<online::Job>& jobs,
                            Policy& policy, std::vector<JobRecord>& records,
                            std::size_t concurrency,
                            obs::MetricsRegistry* metrics) const {
  obs::TraceSink* const trace = options_.trace;
  // Carve the platform into `concurrency` disjoint interleaved subsets
  // (worker i serves subset i mod k, like the online server's slots).
  const platform::Platform::Partition carve =
      platform_.interleaved_partition(concurrency);
  const std::vector<platform::Platform>& subsets = carve.subsets;
  const std::vector<std::vector<std::size_t>>& subset_workers =
      carve.workers;

  // Subset installment allocations, memoized per (subset, load, alpha):
  // a job's clean installment repeats every round, so each distinct
  // inflated/clean load solves once per subset it lands on.
  std::map<std::tuple<std::size_t, double, double>,
           std::vector<sim::ChunkAssignment>>
      allocation_cache;
  const auto subset_schedule = [&](std::size_t s, double load,
                                   double alpha)
      -> const std::vector<sim::ChunkAssignment>& {
    const auto key = std::make_tuple(s, load, alpha);
    const auto it = allocation_cache.find(key);
    if (it != allocation_cache.end()) return it->second;
    const auto allocation = dlt::nonlinear_single_round_for(
        options_.service.comm, subsets[s], load, alpha);
    return allocation_cache.emplace(key, allocation.to_schedule())
        .first->second;
  };

  std::vector<std::unique_ptr<ServicePlan>> plans(jobs.size());
  std::vector<std::size_t> ready;  // admitted, not done, not running
  std::vector<std::size_t> running(concurrency, kNone);
  std::vector<double> busy_until(concurrency, -kNever);
  std::vector<double> last_end(jobs.size(), -kNever);
  std::size_t next_arrival = 0;
  double now = 0.0;

  // One sim::SharedMasterPeriod per busy period multiplexes every
  // subset's installments through a single engine run under the one
  // configured model (see sim/multiplex.hpp). Each INSTALLMENT is one
  // period owner; installment timelines settle once `now` passes them.
  const sim::Engine engine(platform_, {});
  sim::SharedMasterPeriod period(engine, *model_,
                                 {options_.incremental_replay});
  if (trace != nullptr) period.set_trace(trace);
  struct Installment {
    std::size_t job = 0;
    double start = 0.0;  ///< dispatch instant (absolute)
    double load = 0.0;   ///< dispatched load (restart-inflated on resume)
  };
  std::vector<Installment> installments;  ///< per period owner
  std::vector<std::size_t> subset_owner(concurrency, kNone);

  // Fold the drained period into the job records and drop its schedule.
  const auto flush_period = [&]() {
    for (std::size_t owner = 0; owner < installments.size(); ++owner) {
      JobRecord& record = records[installments[owner].job];
      record.service_time +=
          period.finish(owner) - installments[owner].start;
      record.compute_time += period.busy(owner);
      record.finish = std::max(record.finish, period.finish(owner));
      if (trace != nullptr) {
        emit(trace, obs::EventKind::kInstallment, installments[owner].start,
             period.finish(owner), record.job, installments[owner].load,
             0.0);
      }
    }
    if (metrics != nullptr && !installments.empty()) {
      ++metrics->counter("replay.busy_periods");
    }
    period.clear();
    installments.clear();
    std::fill(subset_owner.begin(), subset_owner.end(), kNone);
  };

  const auto admit_until = [&](double t) {
    while (next_arrival < jobs.size() &&
           jobs[next_arrival].arrival <= t) {
      const online::Job& job = jobs[next_arrival];
      JobRecord& record = records[job.id];
      record.job = job;
      if (trace != nullptr) {
        // Queue-position cause of the admission wait: jobs already ready.
        emit(trace, obs::EventKind::kArrival, job.arrival, job.arrival, job,
             job.load, static_cast<double>(ready.size()));
      }
      const AdmissionDecision decision = admission_.decide(job);
      record.admitted = decision.admitted;
      record.degraded = decision.degraded;
      record.served_load = decision.served_load;
      record.predicted_service = decision.predicted_service;
      if (trace != nullptr) emit_verdict(trace, job, decision);
      if (decision.admitted) {
        plans[job.id] = std::make_unique<ServicePlan>(
            solver_, job, decision.served_load);
        ready.push_back(job.id);
      } else {
        record.finish = job.arrival;
      }
      ++next_arrival;
    }
  };

  std::vector<Candidate> candidates;
  while (true) {
    admit_until(now);

    // Free subsets whose installment has completed; unfinished jobs
    // return to the ready set (ascending id keeps picks deterministic).
    for (std::size_t s = 0; s < concurrency; ++s) {
      if (running[s] == kNone || busy_until[s] > now) continue;
      const std::size_t id = running[s];
      last_end[id] = busy_until[s];
      running[s] = kNone;
      if (!plans[id]->done()) {
        ready.insert(
            std::lower_bound(ready.begin(), ready.end(), id), id);
      }
    }

    // The gap rule, applied the moment a job goes cold (not lazily at
    // dispatch): a started ready job whose previous installment did not
    // end at this very instant pays the restart surcharge on resume, and
    // flagging it NOW makes the policies price the surcharge into
    // remaining_duration() before ranking — exactly like the serial
    // server, which pauses at switch-away. pause() is idempotent, so
    // re-flagging on later boundaries charges nothing twice.
    for (const std::size_t id : ready) {
      if (plans[id]->started() && last_end[id] < now) {
        const bool flags = !plans[id]->restart_pending();
        plans[id]->pause();
        if (trace != nullptr && flags) {
          emit(trace, obs::EventKind::kPreempt, now, now, records[id].job,
               0.0,
               plans[id]->next_duration() - plans[id]->clean_duration());
        }
      }
    }

    // Platform drained: every installment of the period has settled.
    bool any_running = false;
    for (const std::size_t id : running) {
      if (id != kNone) any_running = true;
    }
    if (!any_running && !period.empty()) flush_period();

    // Fill idle subsets in ascending subset order. One replay after the
    // fill pass refreshes every estimate: the pass itself only reads the
    // plans and running[], never the replay output.
    bool dispatched = false;
    for (std::size_t s = 0; s < concurrency && !ready.empty(); ++s) {
      if (running[s] != kNone) continue;
      candidates.clear();
      for (const std::size_t id : ready) {
        Candidate candidate;
        candidate.job = &records[id].job;
        candidate.remaining_duration = plans[id]->remaining_duration();
        candidate.total_duration = plans[id]->total_duration();
        candidate.started = plans[id]->started();
        // A job that can resume seamlessly at this very boundary is the
        // "active" one for non-preemptive policies.
        candidate.active = plans[id]->started() && last_end[id] == now;  // nldl-lint: allow(double-eq): exact event-boundary time copied verbatim
        candidates.push_back(candidate);
      }
      const std::size_t k = policy.pick(candidates, now);
      NLDL_ASSERT(k < ready.size(), "policy picked outside the ready set");
      const std::size_t id = ready[k];
      ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(k));

      JobRecord& record = records[id];
      if (!plans[id]->started()) record.dispatch = now;
      // Any pending restart surcharge was flagged by the gap-rule pass
      // above; next_load()/next_duration() include it.
      const double load = plans[id]->next_load();
      const double predicted = plans[id]->next_duration();
      if (trace != nullptr && plans[id]->restart_pending()) {
        emit(trace, obs::EventKind::kRestart, now,
             now + predicted - plans[id]->clean_duration(), record.job, 0.0,
             0.0);
      }
      plans[id]->advance();
      policy.on_service(candidates[k], predicted);

      subset_owner[s] = period.dispatch(
          now, records[id].job.alpha,
          subset_schedule(s, load, records[id].job.alpha),
          subset_workers[s], records[id].job.id, records[id].job.tenant);
      installments.push_back({id, now, load});
      NLDL_ASSERT(subset_owner[s] + 1 == installments.size(),
                  "period owners and installments fell out of step");
      running[s] = id;
      dispatched = true;
    }
    if (dispatched) {
      period.replay();
      for (std::size_t s = 0; s < concurrency; ++s) {
        if (running[s] != kNone) {
          busy_until[s] = period.finish(subset_owner[s]);
        }
      }
    }

    double next_event = kNever;
    for (std::size_t s = 0; s < concurrency; ++s) {
      if (running[s] != kNone && busy_until[s] > now) {
        next_event = std::min(next_event, busy_until[s]);
      }
    }
    if (next_arrival < jobs.size()) {
      next_event = std::min(next_event, jobs[next_arrival].arrival);
    }
    if (next_event == kNever) break;  // nldl-lint: allow(double-eq): kNever sentinel compare
    now = next_event;
  }

  if (metrics != nullptr) {
    metrics->counter("replay.engine_events") += period.events();
    metrics->counter("replay.replays") += period.replays();
  }
  flush_period();
  NLDL_ASSERT(ready.empty() && next_arrival == jobs.size(),
              "qos server stopped with unserved jobs");

  // Plan-side accounting (preemptions, solver-estimated restart time).
  for (std::size_t id = 0; id < jobs.size(); ++id) {
    if (plans[id] == nullptr) continue;
    NLDL_ASSERT(plans[id]->done(),
                "qos server finished with an unfinished plan");
    records[id].preemptions = plans[id]->preemptions();
    records[id].restart_time = plans[id]->restart_time();
  }
}

}  // namespace nldl::qos
