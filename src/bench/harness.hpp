// Benchmark harness: the shared protocol of every bench/ driver.
//
// A driver describes its experiment as "run the whole sweep at a given
// thread count and return the results"; the harness then
//
//   1. runs optional untimed warmup passes,
//   2. times `repetitions` serial passes (threads = 1) and keeps the best
//      wall time and the first pass's results as the reference,
//   3. times `repetitions` parallel passes (the configured width) and
//      checks every one bit-identical to the serial reference — the
//      runtime proof that the util::Sweep contract (pre-split RNG
//      sub-streams + ordered reduction) held,
//   4. streams a machine-readable BENCH_<name>.json via util::JsonWriter,
//      split into two top-level objects:
//
//        "deterministic": a pure function of the experiment — config
//            metadata, the item count, the self-check verdict, the
//            driver's obs::MetricsRegistry snapshot, and the per-point
//            "points" array. Running the same bench twice must reproduce
//            this subtree BITWISE (tools/trace_check --bench-diff checks
//            exactly it, and CI runs that comparison);
//        "measured": the wall-clock sidecar — thread count, serial /
//            parallel wall times, speedup, items/sec, peak RSS, and the
//            driver's WallProfiler breakdown. Expected to differ between
//            runs; never compared.
//
// and turns the self-check into the process exit code, so CI fails loudly
// on any determinism regression. All wall-clock reads go through
// bench::WallClock (bench/profile.hpp) — the sim domain never touches a
// real clock.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "bench/profile.hpp"
#include "obs/metrics.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"

namespace nldl::bench {

struct HarnessOptions {
  /// Parallel width for the checked pass: 0 = one per hardware thread.
  std::size_t threads = 0;
  /// Timed repetitions of each variant (best wall time is reported).
  std::size_t repetitions = 1;
  /// Untimed warmup passes before the serial timing.
  std::size_t warmup = 0;
  /// Output path; empty = BENCH_<name>.json in the working directory.
  std::string json_path;
};

/// Read the shared harness flags: --threads=T (0 = hardware, default),
/// --reps=R, --warmup=W, --json=path.
[[nodiscard]] HarnessOptions harness_options_from_args(
    const util::Args& args);

/// Bitwise equality for result vectors built of doubles — the default
/// self-check comparator. (Exact comparison is the point: the parallel
/// sweep must reproduce the serial one to the last bit.)
[[nodiscard]] bool identical_doubles(const std::vector<double>& a,
                                     const std::vector<double>& b);

class Harness {
 public:
  Harness(std::string name, HarnessOptions options);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// Resolved parallel width (never 0).
  [[nodiscard]] std::size_t threads() const noexcept { return threads_; }
  [[nodiscard]] std::size_t repetitions() const noexcept {
    return options_.repetitions;
  }

  /// Declare how many work items one full pass processes (jobs, cells,
  /// trials — the driver's unit of throughput). When set, finish()
  /// reports items/sec for the serial and parallel passes. Call any time
  /// before finish().
  void items(std::size_t count) noexcept { items_ = count; }
  [[nodiscard]] std::size_t items() const noexcept { return items_; }
  /// Items per second of the best serial / parallel pass (0 until run()
  /// with a non-zero item count).
  [[nodiscard]] double items_per_sec_serial() const noexcept;
  [[nodiscard]] double items_per_sec_parallel() const noexcept;

  /// Peak resident set size of this process in bytes (getrusage), 0 where
  /// unsupported. A process-wide high-water mark — sampled by finish()
  /// after all passes, so it bounds the benches' working set.
  [[nodiscard]] static std::size_t peak_rss_bytes() noexcept;

  /// Normalize a raw getrusage ru_maxrss reading to bytes. POSIX leaves
  /// the unit unspecified and the two platforms we run on disagree:
  /// Linux reports KiB, macOS reports bytes — a silent 1024x discrepancy
  /// in BENCH_*.json artifacts if ever read unconverted. Pulled out of
  /// peak_rss_bytes() so the conversion itself is unit-testable on any
  /// host (tests/test_harness.cpp covers both conventions); negative or
  /// overflowing readings clamp to 0 rather than wrapping.
  enum class RssUnit { kKibibytes /* Linux */, kBytes /* macOS */ };
  [[nodiscard]] static std::size_t ru_maxrss_to_bytes(long ru_maxrss,
                                                      RssUnit unit) noexcept;

  /// Record a config key/value, emitted (in insertion order) into the
  /// JSON "config" object. Call before finish().
  void config(const std::string& key, const std::string& value);
  void config(const std::string& key, const char* value);
  void config(const std::string& key, double value);
  void config(const std::string& key, std::int64_t value);
  void config(const std::string& key, std::size_t value);
  void config(const std::string& key, bool value);
  void config(const std::string& key, int value) {
    config(key, static_cast<std::int64_t>(value));
  }

  /// Run the protocol: warmup, timed serial passes, timed parallel passes,
  /// self-check. `run_sweep(threads)` must evaluate the full experiment at
  /// the given thread count; `identical` decides bit-identity. Returns the
  /// serial reference result (the one every table/JSON point should be
  /// derived from).
  template <typename Result>
  Result run(const std::function<Result(std::size_t)>& run_sweep,
             const std::function<bool(const Result&, const Result&)>&
                 identical) {
    for (std::size_t i = 0; i < options_.warmup; ++i) {
      (void)run_sweep(1);
    }

    Result reference{};
    serial_seconds_ = -1.0;
    for (std::size_t rep = 0; rep < options_.repetitions; ++rep) {
      const double start = WallClock::now();
      Result result = run_sweep(1);
      const double elapsed = WallClock::now() - start;
      if (rep == 0) {
        reference = std::move(result);
      } else if (!identical(reference, result)) {
        bit_identical_ = false;  // serial runs disagree: not deterministic
      }
      if (serial_seconds_ < 0.0 || elapsed < serial_seconds_) {
        serial_seconds_ = elapsed;
      }
    }

    parallel_seconds_ = -1.0;
    for (std::size_t rep = 0; rep < options_.repetitions; ++rep) {
      const double start = WallClock::now();
      const Result result = run_sweep(threads_);
      const double elapsed = WallClock::now() - start;
      if (!identical(reference, result)) bit_identical_ = false;
      if (parallel_seconds_ < 0.0 || elapsed < parallel_seconds_) {
        parallel_seconds_ = elapsed;
      }
    }
    ran_ = true;
    return reference;
  }

  /// run() with the default comparator (Result = std::vector<double> or
  /// anything with operator==).
  template <typename Result>
  Result run(const std::function<Result(std::size_t)>& run_sweep) {
    return run<Result>(run_sweep,
                       [](const Result& a, const Result& b) { return a == b; });
  }

  [[nodiscard]] bool bit_identical() const noexcept { return bit_identical_; }
  [[nodiscard]] double serial_seconds() const noexcept {
    return serial_seconds_;
  }
  [[nodiscard]] double parallel_seconds() const noexcept {
    return parallel_seconds_;
  }
  [[nodiscard]] double speedup() const noexcept;

  /// Deterministic run metrics (obs/metrics.hpp): the driver folds its
  /// reference pass's counters/gauges/quantiles in here and finish()
  /// snapshots them into the deterministic payload's "metrics" object
  /// (omitted while empty).
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const noexcept {
    return metrics_;
  }

  /// Wall-clock attribution (bench/profile.hpp): finish() snapshots it
  /// into the measured sidecar's "profile" object (omitted while empty).
  [[nodiscard]] WallProfiler& profiler() noexcept { return profiler_; }
  [[nodiscard]] const WallProfiler& profiler() const noexcept {
    return profiler_;
  }

  /// Print the runner summary line, write BENCH_<name>.json (the
  /// deterministic payload + measured sidecar described in the file
  /// comment), and return the process exit code: 0 iff the self-check
  /// passed and the JSON landed on disk. `emit_points` fills the
  /// deterministic "points" array; `emit_measured`, when given, appends
  /// extra keys to the measured sidecar (wall times the driver gathered
  /// itself — it must not emit deterministic data there).
  int finish(const std::function<void(util::JsonWriter&)>& emit_points,
             const std::function<void(util::JsonWriter&)>& emit_measured =
                 {});

 private:
  struct ConfigEntry {
    std::string key;
    std::function<void(util::JsonWriter&)> emit;  ///< writes the typed value
  };

  std::string name_;
  HarnessOptions options_;
  std::size_t threads_ = 1;
  std::size_t items_ = 0;
  std::vector<ConfigEntry> config_;
  obs::MetricsRegistry metrics_;
  WallProfiler profiler_;
  bool ran_ = false;
  bool bit_identical_ = true;
  double serial_seconds_ = 0.0;
  double parallel_seconds_ = 0.0;
};

}  // namespace nldl::bench
