#include "bench/profile.hpp"

#include <chrono>

namespace nldl::bench {

double WallClock::now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now()  // nldl-lint: allow(nondet-source): the harness wall clock — measured sidecar only, never feeds results
                 .time_since_epoch())
      .count();
}

void WallProfiler::add(std::string_view name, double seconds) {
  for (Entry& entry : entries_) {
    if (entry.name == name) {
      entry.seconds += seconds;
      ++entry.count;
      return;
    }
  }
  entries_.push_back({std::string(name), seconds, 1});
}

double WallProfiler::seconds(std::string_view name) const noexcept {
  for (const Entry& entry : entries_) {
    if (entry.name == name) return entry.seconds;
  }
  return 0.0;
}

std::uint64_t WallProfiler::count(std::string_view name) const noexcept {
  for (const Entry& entry : entries_) {
    if (entry.name == name) return entry.count;
  }
  return 0;
}

void WallProfiler::write_json(util::JsonWriter& json) const {
  json.begin_object();
  for (const Entry& entry : entries_) {
    json.key(entry.name).begin_object();
    json.key("seconds").value(entry.seconds);
    json.key("count").value(static_cast<std::size_t>(entry.count));
    json.end_object();
  }
  json.end_object();
}

ProfileScope::~ProfileScope() {
  const double elapsed = WallClock::now() - start_;
  if (sink_ != nullptr) *sink_ += elapsed;
  if (profiler_ != nullptr) profiler_->add(name_, elapsed);
}

}  // namespace nldl::bench
