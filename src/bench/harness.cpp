#include "bench/harness.hpp"

#include <cstdio>
#include <fstream>
#include <limits>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "util/sweep.hpp"

namespace nldl::bench {

HarnessOptions harness_options_from_args(const util::Args& args) {
  HarnessOptions options;
  options.threads = static_cast<std::size_t>(args.get_int("threads", 0));
  options.repetitions =
      static_cast<std::size_t>(args.get_int("reps", 1));
  options.warmup = static_cast<std::size_t>(args.get_int("warmup", 0));
  options.json_path = args.get_string("json", "");
  return options;
}

bool identical_doubles(const std::vector<double>& a,
                       const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

Harness::Harness(std::string name, HarnessOptions options)
    : name_(std::move(name)), options_(std::move(options)) {
  NLDL_REQUIRE(!name_.empty(), "bench name must not be empty");
  NLDL_REQUIRE(options_.repetitions >= 1,
               "at least one timed repetition required");
  threads_ = util::resolve_threads(options_.threads);
}

void Harness::config(const std::string& key, const std::string& value) {
  config_.push_back(
      {key, [value](util::JsonWriter& json) { json.value(value); }});
}
void Harness::config(const std::string& key, const char* value) {
  config(key, std::string(value));
}
void Harness::config(const std::string& key, double value) {
  config_.push_back(
      {key, [value](util::JsonWriter& json) { json.value(value); }});
}
void Harness::config(const std::string& key, std::int64_t value) {
  config_.push_back(
      {key, [value](util::JsonWriter& json) { json.value(value); }});
}
void Harness::config(const std::string& key, std::size_t value) {
  config_.push_back(
      {key, [value](util::JsonWriter& json) { json.value(value); }});
}
void Harness::config(const std::string& key, bool value) {
  config_.push_back(
      {key, [value](util::JsonWriter& json) { json.value(value); }});
}

double Harness::speedup() const noexcept {
  return parallel_seconds_ > 0.0 ? serial_seconds_ / parallel_seconds_ : 0.0;
}

double Harness::items_per_sec_serial() const noexcept {
  return serial_seconds_ > 0.0
             ? static_cast<double>(items_) / serial_seconds_
             : 0.0;
}

double Harness::items_per_sec_parallel() const noexcept {
  return parallel_seconds_ > 0.0
             ? static_cast<double>(items_) / parallel_seconds_
             : 0.0;
}

std::size_t Harness::ru_maxrss_to_bytes(long ru_maxrss,
                                        RssUnit unit) noexcept {
  if (ru_maxrss <= 0) return 0;  // failed/absurd reading, not a real RSS
  const auto raw = static_cast<std::size_t>(ru_maxrss);
  if (unit == RssUnit::kBytes) return raw;
  // KiB -> bytes; clamp instead of wrapping on a (pathological) overflow.
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  if (raw > kMax / 1024U) return 0;
  return raw * 1024U;
}

std::size_t Harness::peak_rss_bytes() noexcept {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return ru_maxrss_to_bytes(usage.ru_maxrss, RssUnit::kBytes);
#else
  return ru_maxrss_to_bytes(usage.ru_maxrss, RssUnit::kKibibytes);
#endif
#else
  return 0;
#endif
}

int Harness::finish(
    const std::function<void(util::JsonWriter&)>& emit_points,
    const std::function<void(util::JsonWriter&)>& emit_measured) {
  NLDL_REQUIRE(ran_, "Harness::finish() before run()");

  const std::size_t peak_rss = peak_rss_bytes();
  std::printf("\nrunner[%s]: serial %.3fs | %zu threads %.3fs | speedup "
              "%.2fx | bit-identical: %s\n",
              name_.c_str(), serial_seconds_, threads_, parallel_seconds_,
              speedup(), bit_identical_ ? "yes" : "NO (runner bug!)");
  if (items_ > 0) {
    std::printf("runner[%s]: %zu items | %.0f items/s serial | %.0f "
                "items/s parallel\n",
                name_.c_str(), items_, items_per_sec_serial(),
                items_per_sec_parallel());
  }
  if (peak_rss > 0) {
    std::printf("runner[%s]: peak RSS %.1f MiB\n", name_.c_str(),
                static_cast<double>(peak_rss) / (1024.0 * 1024.0));
  }

  const std::string path =
      options_.json_path.empty() ? "BENCH_" + name_ + ".json"
                                 : options_.json_path;
  bool written = false;
  {
    std::ofstream out(path);
    util::JsonWriter json(out);
    json.begin_object();
    json.key("bench").value(name_);

    // The deterministic payload: a pure function of the experiment.
    // Reproduction checks (tools/trace_check --bench-diff, CI) compare
    // exactly this subtree between runs.
    json.key("deterministic").begin_object();
    json.key("config").begin_object();
    for (const ConfigEntry& entry : config_) {
      json.key(entry.key);
      entry.emit(json);
    }
    json.end_object();
    if (items_ > 0) json.key("items").value(items_);
    json.key("parallel_bit_identical").value(bit_identical_);
    if (!metrics_.empty()) {
      json.key("metrics");
      metrics_.write_json(json);
    }
    json.key("points").begin_array();
    emit_points(json);
    json.end_array();
    json.end_object();

    // The measured sidecar: wall clock and memory — differs run to run.
    json.key("measured").begin_object();
    json.key("threads").value(threads_);
    json.key("repetitions").value(options_.repetitions);
    json.key("wall_time_serial_s").value(serial_seconds_);
    json.key("wall_time_parallel_s").value(parallel_seconds_);
    json.key("speedup").value(speedup());
    if (items_ > 0) {
      json.key("items_per_sec_serial").value(items_per_sec_serial());
      json.key("items_per_sec_parallel").value(items_per_sec_parallel());
    }
    json.key("peak_rss_bytes").value(peak_rss);
    if (!profiler_.empty()) {
      json.key("profile");
      profiler_.write_json(json);
    }
    if (emit_measured) emit_measured(json);
    json.end_object();

    json.end_object();
    NLDL_ASSERT(json.complete(), "bench JSON left scopes open");
    out.flush();
    written = static_cast<bool>(out);
  }
  if (written) {
    std::printf("JSON written to %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
  }
  return bit_identical_ && written ? 0 : 1;
}

}  // namespace nldl::bench
