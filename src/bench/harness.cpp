#include "bench/harness.hpp"

#include <cstdio>
#include <fstream>

#include "util/sweep.hpp"

namespace nldl::bench {

HarnessOptions harness_options_from_args(const util::Args& args) {
  HarnessOptions options;
  options.threads = static_cast<std::size_t>(args.get_int("threads", 0));
  options.repetitions =
      static_cast<std::size_t>(args.get_int("reps", 1));
  options.warmup = static_cast<std::size_t>(args.get_int("warmup", 0));
  options.json_path = args.get_string("json", "");
  return options;
}

bool identical_doubles(const std::vector<double>& a,
                       const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

Harness::Harness(std::string name, HarnessOptions options)
    : name_(std::move(name)), options_(std::move(options)) {
  NLDL_REQUIRE(!name_.empty(), "bench name must not be empty");
  NLDL_REQUIRE(options_.repetitions >= 1,
               "at least one timed repetition required");
  threads_ = util::resolve_threads(options_.threads);
}

void Harness::config(const std::string& key, const std::string& value) {
  config_.push_back(
      {key, [value](util::JsonWriter& json) { json.value(value); }});
}
void Harness::config(const std::string& key, const char* value) {
  config(key, std::string(value));
}
void Harness::config(const std::string& key, double value) {
  config_.push_back(
      {key, [value](util::JsonWriter& json) { json.value(value); }});
}
void Harness::config(const std::string& key, std::int64_t value) {
  config_.push_back(
      {key, [value](util::JsonWriter& json) { json.value(value); }});
}
void Harness::config(const std::string& key, std::size_t value) {
  config_.push_back(
      {key, [value](util::JsonWriter& json) { json.value(value); }});
}
void Harness::config(const std::string& key, bool value) {
  config_.push_back(
      {key, [value](util::JsonWriter& json) { json.value(value); }});
}

double Harness::speedup() const noexcept {
  return parallel_seconds_ > 0.0 ? serial_seconds_ / parallel_seconds_ : 0.0;
}

int Harness::finish(
    const std::function<void(util::JsonWriter&)>& emit_points) {
  NLDL_REQUIRE(ran_, "Harness::finish() before run()");

  std::printf("\nrunner[%s]: serial %.3fs | %zu threads %.3fs | speedup "
              "%.2fx | bit-identical: %s\n",
              name_.c_str(), serial_seconds_, threads_, parallel_seconds_,
              speedup(), bit_identical_ ? "yes" : "NO (runner bug!)");

  const std::string path =
      options_.json_path.empty() ? "BENCH_" + name_ + ".json"
                                 : options_.json_path;
  bool written = false;
  {
    std::ofstream out(path);
    util::JsonWriter json(out);
    json.begin_object();
    json.key("bench").value(name_);
    json.key("config").begin_object();
    for (const ConfigEntry& entry : config_) {
      json.key(entry.key);
      entry.emit(json);
    }
    json.end_object();
    json.key("threads").value(threads_);
    json.key("repetitions").value(options_.repetitions);
    json.key("wall_time_serial_s").value(serial_seconds_);
    json.key("wall_time_parallel_s").value(parallel_seconds_);
    json.key("speedup").value(speedup());
    json.key("parallel_bit_identical").value(bit_identical_);
    json.key("points").begin_array();
    emit_points(json);
    json.end_array();
    json.end_object();
    NLDL_ASSERT(json.complete(), "bench JSON left scopes open");
    out.flush();
    written = static_cast<bool>(out);
  }
  if (written) {
    std::printf("JSON written to %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
  }
  return bit_identical_ && written ? 0 : 1;
}

}  // namespace nldl::bench
