// Wall-clock profiling for the harness layer — the one sanctioned home
// of real-time reads in the codebase.
//
// The simulation domain (sim/, online/, qos/, dlt/) is a pure function
// of its inputs and runs entirely on the simulated clock; nldl-lint's
// nondet-source rule keeps real clocks out of it. The benches still need
// wall time — that is what they measure — so every reading funnels
// through WallClock::now() here, and the drivers attribute it to named
// WallProfiler accumulators that land in the bench JSON's MEASURED
// sidecar (never in the deterministic payload, see bench/harness.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"

namespace nldl::bench {

/// The single sanctioned monotonic wall-clock read: seconds from an
/// arbitrary steady epoch. Differences are meaningful, absolutes are not.
struct WallClock {
  [[nodiscard]] static double now();
};

/// Insertion-ordered named wall-time accumulators. Deterministic layout
/// (first-touch order, no hashing), nondeterministic values — which is
/// why it serializes into the measured sidecar only.
class WallProfiler {
 public:
  /// Add `seconds` to the named accumulator (created on first touch) and
  /// bump its sample count.
  void add(std::string_view name, double seconds);

  /// Accumulated seconds / samples of a named scope (0 when absent).
  [[nodiscard]] double seconds(std::string_view name) const noexcept;
  [[nodiscard]] std::uint64_t count(std::string_view name) const noexcept;

  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Emit {"<name>": {"seconds": s, "count": n}, ...} in first-touch
  /// order. The writer must be positioned for an object value.
  void write_json(util::JsonWriter& json) const;

 private:
  struct Entry {
    std::string name;
    double seconds = 0.0;
    std::uint64_t count = 0;
  };
  std::vector<Entry> entries_;
};

/// RAII wall-clock scope: on destruction adds the elapsed seconds to a
/// WallProfiler entry, or to a plain accumulator.
class ProfileScope {
 public:
  explicit ProfileScope(double& sink)
      : start_(WallClock::now()), sink_(&sink) {}
  ProfileScope(WallProfiler& profiler, std::string name)
      : start_(WallClock::now()),
        profiler_(&profiler),
        name_(std::move(name)) {}
  ~ProfileScope();

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

  /// Seconds elapsed since construction (the scope keeps running).
  [[nodiscard]] double elapsed() const { return WallClock::now() - start_; }

 private:
  double start_;
  double* sink_ = nullptr;
  WallProfiler* profiler_ = nullptr;
  std::string name_;
};

}  // namespace nldl::bench
