#include "obs/timeseries.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/json.hpp"

namespace nldl::obs {

TimeSeries::TimeSeries(double window, double horizon) : window_(window) {
  NLDL_REQUIRE(std::isfinite(window) && window > 0.0,
               "time-series window width must be finite and > 0");
  NLDL_REQUIRE(std::isfinite(horizon) && horizon >= 0.0,
               "time-series horizon must be finite and >= 0");
  windows_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(horizon / window)));
}

TimeSeries::Channel& TimeSeries::slot(std::string_view name) {
  const auto it = index_.find(name);
  if (it != index_.end()) return channels_[it->second];
  Channel channel;
  channel.name = std::string(name);
  channel.stats.resize(windows_);
  channels_.push_back(std::move(channel));
  index_.emplace(channels_.back().name, channels_.size() - 1);
  return channels_.back();
}

std::size_t TimeSeries::index_of(double t) const noexcept {
  if (!(t > 0.0)) return 0;
  const double raw = std::floor(t / window_);
  if (raw >= static_cast<double>(windows_)) return windows_ - 1;
  return static_cast<std::size_t>(raw);
}

void TimeSeries::observe(std::string_view name, double t, double value) {
  NLDL_REQUIRE(std::isfinite(t) && t >= 0.0,
               "time-series observation time must be finite and >= 0");
  WindowStats& stats = slot(name).stats[index_of(t)];
  if (stats.count == 0) {
    stats.min = value;
    stats.max = value;
  } else {
    stats.min = std::min(stats.min, value);
    stats.max = std::max(stats.max, value);
  }
  ++stats.count;
  stats.sum += value;
  stats.last = value;
}

std::vector<std::string> TimeSeries::channels() const {
  std::vector<std::string> out;
  out.reserve(channels_.size());
  for (const Channel& channel : channels_) out.push_back(channel.name);
  return out;
}

const std::vector<TimeSeries::WindowStats>& TimeSeries::at(
    std::string_view name) const {
  const auto it = index_.find(name);
  NLDL_REQUIRE(it != index_.end(),
               "no time-series channel named '" + std::string(name) + "'");
  return channels_[it->second].stats;
}

void TimeSeries::fold(const MetricsRegistry& registry, double t,
                      std::string_view prefix) {
  for (const MetricsRegistry::Sample& sample : registry.samples()) {
    observe(std::string(prefix) + sample.name, t, sample.value);
  }
}

void TimeSeries::write_json(util::JsonWriter& json) const {
  json.begin_object();
  json.key("window").value(window_);
  json.key("windows").value(windows_);
  json.key("channels");
  json.begin_object();
  for (const Channel& channel : channels_) {
    json.key(channel.name);
    json.begin_array();
    for (std::size_t i = 0; i < channel.stats.size(); ++i) {
      const WindowStats& stats = channel.stats[i];
      if (stats.count == 0) continue;
      json.begin_array();
      json.value(i);
      json.value(stats.count);
      json.value(stats.sum);
      json.value(stats.min);
      json.value(stats.max);
      json.value(stats.last);
      json.end_array();
    }
    json.end_array();
  }
  json.end_object();
  json.end_object();
}

}  // namespace nldl::obs
