#include "obs/slo.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/assert.hpp"

namespace nldl::obs {

namespace {

/// Windows must cover a whole number of base windows; returns the count.
std::size_t window_multiple(double window, double base) {
  NLDL_REQUIRE(window > 0.0, "burn window must be > 0");
  const double ratio = window / base;
  const double rounded = std::round(ratio);
  NLDL_REQUIRE(rounded >= 1.0 && std::fabs(ratio - rounded) < 1e-9,
               "burn windows must be integer multiples of the base window");
  return static_cast<std::size_t>(rounded);
}

}  // namespace

SloPolicy SloPolicy::paging(double objective, double base) {
  SloPolicy policy;
  policy.objective = objective;
  policy.window = base;
  policy.rules = {{base, 12.0 * base, 14.4}, {6.0 * base, 72.0 * base, 6.0}};
  return policy;
}

BurnRateMonitor::BurnRateMonitor(SloPolicy policy, double horizon)
    : policy_(std::move(policy)), series_(policy_.window, horizon) {
  NLDL_REQUIRE(policy_.objective > 0.0 && policy_.objective < 1.0,
               "SLO objective must lie in (0, 1)");
  for (const BurnWindow& rule : policy_.rules) {
    const std::size_t fast = window_multiple(rule.fast, policy_.window);
    const std::size_t slow = window_multiple(rule.slow, policy_.window);
    NLDL_REQUIRE(fast <= slow,
                 "a rule's fast window cannot exceed its slow window");
    NLDL_REQUIRE(rule.threshold > 0.0, "burn threshold must be > 0");
  }
}

void BurnRateMonitor::observe(double t, bool missed) {
  NLDL_REQUIRE(!finalized_, "BurnRateMonitor::observe after finalize");
  series_.observe("total", t, 1.0);
  if (missed) series_.observe("miss", t, 1.0);
  ++total_;
  if (missed) ++missed_;
}

void BurnRateMonitor::finalize(TraceSink* sink, MetricsRegistry* registry) {
  if (!finalized_) {
    finalized_ = true;
    // Empty channels would throw in at(); materialize both.
    const std::size_t windows = series_.windows();
    std::vector<std::uint64_t> totals(windows, 0);
    std::vector<std::uint64_t> misses(windows, 0);
    if (total_ > 0) {
      const std::vector<TimeSeries::WindowStats>& row = series_.at("total");
      for (std::size_t i = 0; i < windows; ++i) totals[i] = row[i].count;
    }
    if (missed_ > 0) {
      const std::vector<TimeSeries::WindowStats>& row = series_.at("miss");
      for (std::size_t i = 0; i < windows; ++i) misses[i] = row[i].count;
    }
    const double budget = 1.0 - policy_.objective;

    // Trailing-window miss rate ending at base window `i`, spanning the
    // last `span` base windows (clamped at the run start).
    const auto burn_at = [&](std::size_t i, std::size_t span) {
      const std::size_t first = i + 1 >= span ? i + 1 - span : 0;
      std::uint64_t jobs = 0;
      std::uint64_t bad = 0;
      for (std::size_t w = first; w <= i; ++w) {
        jobs += totals[w];
        bad += misses[w];
      }
      if (jobs == 0) return 0.0;
      return (static_cast<double>(bad) / static_cast<double>(jobs)) / budget;
    };

    for (std::size_t r = 0; r < policy_.rules.size(); ++r) {
      const BurnWindow& rule = policy_.rules[r];
      const std::size_t fast = window_multiple(rule.fast, policy_.window);
      const std::size_t slow = window_multiple(rule.slow, policy_.window);
      bool firing = false;
      for (std::size_t i = 0; i < windows; ++i) {
        const double fast_burn = burn_at(i, fast);
        const double slow_burn = burn_at(i, slow);
        peak_burn_ = std::max(peak_burn_, fast_burn);
        const bool breach =
            fast_burn >= rule.threshold && slow_burn >= rule.threshold;
        if (breach && !firing) {
          Alert alert;
          alert.rule = r;
          alert.time = static_cast<double>(i + 1) * policy_.window;
          alert.fast_burn = fast_burn;
          alert.slow_burn = slow_burn;
          alerts_.push_back(alert);
        }
        firing = breach;
      }
    }
    std::sort(alerts_.begin(), alerts_.end(),
              [](const Alert& a, const Alert& b) {
                if (a.time != b.time) return a.time < b.time;
                return a.rule < b.rule;
              });
  }
  if (sink != nullptr) {
    for (const Alert& alert : alerts_) {
      TraceEvent event;
      event.kind = EventKind::kAlert;
      event.start = alert.time;
      event.end = alert.time;
      event.size = alert.slow_burn;
      event.value = alert.fast_burn;
      sink->record(event);
    }
  }
  if (registry != nullptr) {
    registry->counter("slo.observations") += total_;
    registry->counter("slo.misses") += missed_;
    registry->counter("slo.alerts") += alerts_.size();
    registry->gauge("slo.peak_burn") = peak_burn_;
  }
}

std::string BurnRateMonitor::render() const {
  char line[160];
  std::string out;
  const double miss_rate =
      total_ > 0 ? static_cast<double>(missed_) / static_cast<double>(total_)
                 : 0.0;
  std::snprintf(line, sizeof(line),
                "slo burn-rate: objective %.4g, %zu jobs, %zu misses "
                "(rate %.4g), peak burn %.3g\n",
                policy_.objective, total_, missed_, miss_rate, peak_burn_);
  out += line;
  for (std::size_t r = 0; r < policy_.rules.size(); ++r) {
    const BurnWindow& rule = policy_.rules[r];
    std::size_t fired = 0;
    for (const Alert& alert : alerts_) {
      if (alert.rule == r) ++fired;
    }
    std::snprintf(line, sizeof(line),
                  "  rule %zu: fast %.4gs / slow %.4gs @ burn >= %.3g -> "
                  "%zu alert%s\n",
                  r, rule.fast, rule.slow, rule.threshold, fired,
                  fired == 1 ? "" : "s");
    out += line;
  }
  return out;
}

}  // namespace nldl::obs
