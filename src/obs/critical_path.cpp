#include "obs/critical_path.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <utility>

#include "util/assert.hpp"

namespace nldl::obs {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// One worker-attributed chunk span, in per-worker emission order. Per
/// worker both the transfer and the compute list are time-ordered (FIFO
/// link queues and cpu serialization both finalize in order), so gating
/// edges are found by binary search on the end time.
struct ChunkEvt {
  double start = 0.0;
  double end = 0.0;
  std::size_t job = kNoIndex;
};

struct WorkerLists {
  std::vector<ChunkEvt> transfers;
  std::vector<ChunkEvt> computes;
};

/// A node of the backward causal walk.
struct Node {
  bool is_transfer = false;
  std::size_t worker = 0;
  std::size_t index = 0;
};

/// Last index in `list` whose end matches `t` within `tol`, with a start
/// strictly before `t` (zero-length nodes cannot gate anything and would
/// let the walk cycle); kNoIndex when none. `limit` bounds the searched
/// prefix (exclusive); pass list.size() for "anywhere".
std::size_t last_ending_at(const std::vector<ChunkEvt>& list,
                           std::size_t limit, double t, double tol) {
  const double lo = t - tol;
  const double hi = t + tol;
  const auto begin = list.begin();
  const auto end = begin + static_cast<std::ptrdiff_t>(limit);
  auto it = std::upper_bound(begin, end, hi,
                             [](double value, const ChunkEvt& evt) {
                               return value < evt.end;
                             });
  while (it != begin) {
    --it;
    if (it->end < lo) break;
    if (it->start < t) {
      return static_cast<std::size_t>(it - begin);
    }
  }
  return kNoIndex;
}

/// Merge (possibly overlapping) intervals in place, ascending.
void merge_intervals(std::vector<std::pair<double, double>>& intervals) {
  if (intervals.empty()) return;
  std::sort(intervals.begin(), intervals.end());
  std::size_t out = 0;
  for (std::size_t i = 1; i < intervals.size(); ++i) {
    if (intervals[i].first <= intervals[out].second) {
      intervals[out].second =
          std::max(intervals[out].second, intervals[i].second);
    } else {
      intervals[++out] = intervals[i];
    }
  }
  intervals.resize(out + 1);
}

}  // namespace

const char* to_string(BlameKind kind) {
  switch (kind) {
    case BlameKind::kWait:
      return "wait";
    case BlameKind::kComm:
      return "comm";
    case BlameKind::kCompute:
      return "compute";
    case BlameKind::kRestart:
      return "restart";
    case BlameKind::kStall:
      return "stall";
  }
  return "unknown";
}

BlameKind JobBlame::dominant() const noexcept {
  BlameKind best = BlameKind::kWait;
  double best_value = wait;
  const auto consider = [&](BlameKind kind, double value) {
    if (value > best_value) {
      best = kind;
      best_value = value;
    }
  };
  consider(BlameKind::kComm, comm);
  consider(BlameKind::kCompute, compute);
  consider(BlameKind::kRestart, restart);
  consider(BlameKind::kStall, stall);
  return best;
}

CriticalPath::CriticalPath(const std::vector<TraceEvent>& events,
                           double match_tolerance) {
  NLDL_REQUIRE(match_tolerance >= 0.0 && std::isfinite(match_tolerance),
               "match tolerance must be finite and >= 0");

  // ---- index the stream -------------------------------------------------
  // Jobs (kJob spans), arrivals, restart and installment spans per job,
  // and per-worker chunk lists. std::map keeps every pass ordered.
  std::map<std::size_t, JobBlame> jobs;
  std::map<std::size_t, double> arrivals;        // kArrival (preferred)
  std::map<std::size_t, double> verdict_times;   // admit/degrade fallback
  std::map<std::size_t, std::vector<std::pair<double, double>>> restarts;
  std::map<std::size_t, std::vector<ChunkEvt>> installments;
  std::size_t workers = 0;
  for (const TraceEvent& event : events) {
    if (event.worker != kNoIndex) workers = std::max(workers, event.worker + 1);
  }
  std::vector<WorkerLists> lists(workers);

  for (const TraceEvent& event : events) {
    switch (event.kind) {
      case EventKind::kJob: {
        JobBlame& blame = jobs[event.job];
        blame.job = event.job;
        blame.tenant = event.tenant;
        blame.dispatch = event.start;
        blame.finish = event.end;
        break;
      }
      case EventKind::kArrival: {
        arrivals[event.job] = event.start;
        jobs[event.job].queue_depth = event.value;
        jobs[event.job].job = event.job;
        break;
      }
      case EventKind::kAdmit:
      case EventKind::kDegrade:
        verdict_times.emplace(event.job, event.start);
        break;
      case EventKind::kRestart:
        restarts[event.job].emplace_back(event.start, event.end);
        break;
      case EventKind::kInstallment:
        installments[event.job].push_back(
            {event.start, event.end, event.job});
        break;
      case EventKind::kTransfer:
        if (event.worker != kNoIndex) {
          lists[event.worker].transfers.push_back(
              {event.start, event.end, event.job});
        }
        break;
      case EventKind::kCompute:
        if (event.worker != kNoIndex) {
          lists[event.worker].computes.push_back(
              {event.start, event.end, event.job});
        }
        break;
      default:
        break;
    }
  }
  for (auto& [job, spans] : restarts) merge_intervals(spans);
  for (auto& [job, spans] : installments) {
    std::sort(spans.begin(), spans.end(),
              [](const ChunkEvt& a, const ChunkEvt& b) {
                return a.start < b.start;
              });
  }
  // Per-job compute refs (worker, index), for gating-span selection.
  std::map<std::size_t, std::vector<Node>> job_computes;
  for (std::size_t w = 0; w < workers; ++w) {
    for (std::size_t i = 0; i < lists[w].computes.size(); ++i) {
      job_computes[lists[w].computes[i].job].push_back({false, w, i});
    }
  }

  const auto tol_at = [match_tolerance](double t) {
    return match_tolerance * std::max(1.0, std::fabs(t));
  };

  // ---- walk every served job's causal chain backwards --------------------
  for (auto& [id, blame] : jobs) {
    if (blame.finish < blame.dispatch) continue;  // no kJob span recorded
    const auto arrival_it = arrivals.find(id);
    if (arrival_it != arrivals.end()) {
      blame.arrival = arrival_it->second;
    } else {
      const auto verdict_it = verdict_times.find(id);
      blame.arrival = verdict_it != verdict_times.end() ? verdict_it->second
                                                        : blame.dispatch;
    }

    const double dispatch = blame.dispatch;
    const double finish = blame.finish;
    std::vector<PathSegment> reversed;  // collected finish -> dispatch

    const auto push_segment = [&](BlameKind kind, double start, double end,
                                  std::size_t worker, std::size_t via) {
      start = std::max(start, dispatch);
      if (end <= start) return;
      reversed.push_back({kind, start, end, worker, via});
    };

    // Gating span: the job's own compute span ending at its finish (any
    // comm model, both servers); serial qos has no worker spans, so fall
    // back to the job's installment timeline; a stream with neither gets
    // one honest stall segment.
    Node node;
    bool have_node = false;
    {
      const auto refs_it = job_computes.find(id);
      double best_start = -kInf;
      if (refs_it != job_computes.end()) {
        for (const Node& ref : refs_it->second) {
          const ChunkEvt& evt = lists[ref.worker].computes[ref.index];
          if (std::fabs(evt.end - finish) <= tol_at(finish) &&
              evt.start > best_start) {
            best_start = evt.start;
            node = ref;
            have_node = true;
          }
        }
      }
    }

    double t = finish;
    if (have_node) {
      // Worker-span walk. Termination: every edge requires the
      // predecessor to START strictly before `t`, so `t` strictly
      // decreases each iteration; the step cap is defensive only.
      std::size_t steps = 0;
      std::size_t max_steps = 64;
      for (std::size_t w = 0; w < workers; ++w) {
        max_steps += 2 * (lists[w].transfers.size() + lists[w].computes.size());
      }
      while (t > dispatch && steps++ < max_steps) {
        const std::vector<ChunkEvt>& own = node.is_transfer
                                               ? lists[node.worker].transfers
                                               : lists[node.worker].computes;
        const ChunkEvt& evt = own[node.index];
        const BlameKind kind =
            evt.job == id
                ? (node.is_transfer ? BlameKind::kComm : BlameKind::kCompute)
                : BlameKind::kStall;
        push_segment(kind, evt.start, t, node.worker, evt.job);
        t = std::max(evt.start, dispatch);
        if (evt.start <= dispatch) break;

        const double tol = tol_at(t);
        if (!node.is_transfer) {
          // compute_start = max(comm_end, cpu_free): gated by this
          // chunk's own transfer, else by the worker's previous compute.
          const std::vector<ChunkEvt>& transfers =
              lists[node.worker].transfers;
          if (node.index < transfers.size() &&
              std::fabs(transfers[node.index].end - t) <= tol &&
              transfers[node.index].start < t) {
            node.is_transfer = true;
            continue;
          }
          const std::size_t prev = last_ending_at(
              lists[node.worker].computes, node.index, t, tol);
          if (prev != kNoIndex) {
            node.index = prev;
            continue;
          }
        } else {
          // A transfer starts at max(release, FIFO predecessor's end) —
          // or, under one-port / a bounded-multiport concurrency cap,
          // when another worker's transfer frees the master port/slot.
          const std::size_t prev = last_ending_at(
              lists[node.worker].transfers, node.index, t, tol);
          if (prev != kNoIndex) {
            node.index = prev;
            continue;
          }
          bool found = false;
          for (std::size_t w = 0; w < workers && !found; ++w) {
            if (w == node.worker) continue;
            const std::size_t other = last_ending_at(
                lists[w].transfers, lists[w].transfers.size(), t, tol);
            if (other != kNoIndex) {
              node.worker = w;
              node.index = other;
              found = true;
            }
          }
          if (found) continue;
        }
        // No gating event: the span started at its release barrier
        // (dispatch, modulo the period clock's shift noise).
        break;
      }
      push_segment(BlameKind::kStall, dispatch, t, kNoIndex, kNoIndex);
    } else if (const auto inst_it = installments.find(id);
               inst_it != installments.end() && !inst_it->second.empty()) {
      // Serial-qos granularity: the path is the job's own installment
      // spans; the gaps between them are time the processor served other
      // jobs. comm is folded into the solver-timed installments, so the
      // comm bucket is honestly zero here.
      const std::vector<ChunkEvt>& spans = inst_it->second;
      for (std::size_t i = spans.size(); i-- > 0;) {
        if (spans[i].start >= t) continue;
        push_segment(BlameKind::kCompute, spans[i].start, std::min(t, spans[i].end),
                     kNoIndex, id);
        push_segment(BlameKind::kStall,
                     i > 0 ? spans[i - 1].end : dispatch, spans[i].start,
                     kNoIndex, kNoIndex);
        t = i > 0 ? spans[i - 1].end : dispatch;
      }
      push_segment(BlameKind::kStall, dispatch, t, kNoIndex, kNoIndex);
    } else {
      push_segment(BlameKind::kStall, dispatch, finish, kNoIndex, kNoIndex);
    }

    std::reverse(reversed.begin(), reversed.end());
    blame.path = std::move(reversed);

    // Re-bill the job's own compute path time that overlaps its restart
    // spans: split the segments at the restart boundaries (exact interval
    // arithmetic — no subtraction), so re-work is a bucket of its own.
    const auto restart_it = restarts.find(id);
    if (restart_it != restarts.end()) {
      const std::vector<std::pair<double, double>>& rework =
          restart_it->second;
      std::vector<PathSegment> split;
      split.reserve(blame.path.size());
      for (const PathSegment& segment : blame.path) {
        if (segment.kind != BlameKind::kCompute || segment.via_job != id) {
          split.push_back(segment);
          continue;
        }
        double cursor = segment.start;
        for (const auto& [lo, hi] : rework) {
          if (hi <= segment.start) continue;
          if (lo >= segment.end) break;
          const double a = std::max(lo, cursor);
          const double b = std::min(hi, segment.end);
          if (b <= a) continue;
          if (a > cursor) {
            split.push_back({BlameKind::kCompute, cursor, a, segment.worker,
                             segment.via_job});
          }
          split.push_back(
              {BlameKind::kRestart, a, b, segment.worker, segment.via_job});
          cursor = b;
        }
        if (cursor < segment.end) {
          split.push_back({BlameKind::kCompute, cursor, segment.end,
                           segment.worker, segment.via_job});
        }
      }
      blame.path = std::move(split);
    }

    // ---- close the decomposition bit-exactly ----------------------------
    // Sum the own-span buckets along the path (time order, fixed fl
    // order), then construct stall as the remainder of the canonical sum
    // and nudge it by ulps until total() reproduces the observed latency
    // EXACTLY. fl(base + stall) is monotone in stall and stall's ulp at
    // the solution is no larger than latency's, so the loop converges in
    // a handful of steps for any input.
    blame.wait = blame.dispatch - blame.arrival;
    blame.comm = 0.0;
    blame.compute = 0.0;
    blame.restart = 0.0;
    for (const PathSegment& segment : blame.path) {
      const double length = segment.end - segment.start;
      switch (segment.kind) {
        case BlameKind::kComm:
          blame.comm += length;
          break;
        case BlameKind::kCompute:
          blame.compute += length;
          break;
        case BlameKind::kRestart:
          blame.restart += length;
          break;
        default:
          break;
      }
    }
    blame.latency = blame.finish - blame.arrival;
    const double base =
        ((blame.wait + blame.comm) + blame.compute) + blame.restart;
    blame.stall = blame.latency - base;
    for (int step = 0; step < 128 && blame.total() != blame.latency; ++step) {
      blame.stall = std::nextafter(
          blame.stall, blame.total() < blame.latency ? kInf : -kInf);
    }
    NLDL_ASSERT(blame.total() == blame.latency,
                "blame components failed to close on the observed latency");
  }

  jobs_.reserve(jobs.size());
  for (auto& [id, blame] : jobs) {
    if (blame.finish < blame.dispatch) continue;
    jobs_.push_back(std::move(blame));
  }
}

const JobBlame* CriticalPath::find(std::size_t job) const {
  const auto it = std::lower_bound(
      jobs_.begin(), jobs_.end(), job,
      [](const JobBlame& blame, std::size_t id) { return blame.job < id; });
  if (it == jobs_.end() || it->job != job) return nullptr;
  return &*it;
}

CriticalPath::Totals CriticalPath::totals() const {
  Totals totals;
  totals.jobs = jobs_.size();
  for (const JobBlame& blame : jobs_) {
    totals.wait += blame.wait;
    totals.comm += blame.comm;
    totals.compute += blame.compute;
    totals.restart += blame.restart;
    totals.stall += blame.stall;
    totals.latency += blame.latency;
  }
  return totals;
}

std::string render_blame(const CriticalPath& analysis, std::size_t top_k,
                         const std::string& label) {
  const std::vector<JobBlame>& jobs = analysis.jobs();
  char line[200];
  std::string out;
  std::snprintf(line, sizeof(line),
                "critical-path blame%s%s: %zu jobs analyzed\n",
                label.empty() ? "" : " — ", label.c_str(), jobs.size());
  out += line;
  if (jobs.empty()) return out;

  std::vector<std::size_t> order(jobs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&jobs](std::size_t a, std::size_t b) {
    if (jobs[a].latency != jobs[b].latency) {
      return jobs[a].latency > jobs[b].latency;
    }
    return jobs[a].job < jobs[b].job;
  });
  if (order.size() > top_k) order.resize(top_k);

  std::snprintf(line, sizeof(line),
                "  %6s %6s %5s %10s %10s %10s %10s %10s %10s  %s\n", "job",
                "tenant", "queue", "latency", "wait", "comm", "compute",
                "restart", "stall", "cause");
  out += line;
  for (const std::size_t i : order) {
    const JobBlame& blame = jobs[i];
    char tenant[24];
    if (blame.tenant == kNoIndex) {
      std::snprintf(tenant, sizeof(tenant), "-");
    } else {
      std::snprintf(tenant, sizeof(tenant), "%zu", blame.tenant);
    }
    std::snprintf(line, sizeof(line),
                  "  %6zu %6s %5.0f %10.3f %10.3f %10.3f %10.3f %10.3f "
                  "%10.3f  %s\n",
                  blame.job, tenant, blame.queue_depth, blame.latency,
                  blame.wait, blame.comm, blame.compute, blame.restart,
                  blame.stall, to_string(blame.dominant()));
    out += line;
  }

  const CriticalPath::Totals totals = analysis.totals();
  const double pct =
      totals.latency > 0.0 ? 100.0 / totals.latency : 0.0;
  std::snprintf(line, sizeof(line),
                "  aggregate: wait %.1f%% | comm %.1f%% | compute %.1f%% | "
                "restart %.1f%% | stall %.1f%% of %.4g job-seconds\n",
                totals.wait * pct, totals.comm * pct, totals.compute * pct,
                totals.restart * pct, totals.stall * pct, totals.latency);
  out += line;
  return out;
}

}  // namespace nldl::obs
