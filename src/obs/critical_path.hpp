// Per-job critical-path reconstruction and exact blame decomposition —
// the causal side of observability.
//
// obs::attribute_time answers "where did the worker-seconds go" in
// aggregate; CriticalPath answers the per-job question: WHY was this job
// slow? It rebuilds, from the trace stream alone, the causal chain of
// transfer/compute/restart spans and scheduler instants that gated each
// job's completion — through shared-master FIFO link queues, master
// port/slot contention, per-worker cpu serialization, and dispatch
// barriers — and folds the chain into a five-way blame decomposition:
//
//   latency = wait + comm + compute + restart + stall
//
// where wait is the admission/queue delay [arrival, dispatch], comm and
// compute are the path time inside the job's OWN transfer/compute spans
// (compute split against the job's restart spans, so re-work is billed
// separately), and stall is the path time spent inside OTHER jobs' spans
// plus any residue the stream cannot attribute (serial qos installment
// gaps, dispatch-barrier shift noise). The five components sum
// BIT-EXACTLY to the observed latency (finish − arrival, evaluated in
// the canonical left-to-right order of total()) — the per-job causal
// analogue of attribute_time's 100%-coverage invariant, pinned across
// all comm models, both servers, and both master modes by
// tests/test_critical_path.cpp.
//
// The reconstruction leans on event-loop exactness, not tolerances:
// sim::EngineRun computes compute_start = max(comm_end, cpu_free) and
// starts a FIFO successor transfer exactly at its predecessor's comm_end,
// so gating edges are found by BITWISE time equality between events.
// Per worker, the i-th transfer and i-th compute event (emission order)
// describe the same chunk — emission order is settle order is FIFO order
// for every producer (sim::SharedMasterPeriod and the online server's
// private-port hook both emit transfer+compute adjacently, per worker in
// schedule order).
//
// The analysis is read-only over the event stream: attaching it cannot
// change results (the serving benches fold that bit-identity into their
// exit codes).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace nldl::obs {

/// Blame bucket of one critical-path segment.
enum class BlameKind : std::uint8_t {
  kWait,     ///< [arrival, dispatch]: admission / queue delay
  kComm,     ///< inside the job's own transfer spans
  kCompute,  ///< inside the job's own compute/installment spans (net)
  kRestart,  ///< inside the job's restart-surcharge spans
  kStall,    ///< inside other jobs' spans, or unattributable residue
};

[[nodiscard]] const char* to_string(BlameKind kind);

/// One contiguous piece of a job's critical path. Segments tile
/// [dispatch, finish] exactly: each segment's end equals the next one's
/// start bitwise (the wait segment [arrival, dispatch] is kept separate
/// in JobBlame, not in `path`).
struct PathSegment {
  BlameKind kind = BlameKind::kStall;
  double start = 0.0;
  double end = 0.0;
  /// Worker whose span the path runs through (kNoIndex for job-level
  /// segments: serial-qos installments, unattributed residue).
  std::size_t worker = kNoIndex;
  /// Job owning the span the path runs through — the culprit for kStall
  /// segments, the job itself for own-span segments, kNoIndex for gaps.
  std::size_t via_job = kNoIndex;
};

/// The blame decomposition of one job.
struct JobBlame {
  std::size_t job = kNoIndex;
  std::size_t tenant = kNoIndex;
  double arrival = 0.0;
  double dispatch = 0.0;
  double finish = 0.0;
  /// Jobs ahead in the wait queue at arrival (kArrival's value; 0 when
  /// the stream carries no arrival instant for this job).
  double queue_depth = 0.0;

  double wait = 0.0;
  double comm = 0.0;
  double compute = 0.0;
  double restart = 0.0;
  double stall = 0.0;

  /// Observed latency (finish − arrival) — total() equals this bitwise.
  double latency = 0.0;

  /// Critical-path segments over [dispatch, finish], in time order.
  std::vector<PathSegment> path;

  /// The components in canonical order; equals `latency` bit-exactly.
  [[nodiscard]] double total() const noexcept {
    return (((wait + comm) + compute) + restart) + stall;
  }
  /// The largest of the five components (ties break toward the earlier
  /// bucket in enum order) — the one-word answer to "why slow?".
  [[nodiscard]] BlameKind dominant() const noexcept;
};

/// Reconstruct every traced job's critical path and blame decomposition.
/// Jobs are taken from kJob spans (one per served job); rejected jobs
/// (no kJob span) are skipped. The input stream may be in any order.
class CriticalPath {
 public:
  /// `match_tolerance` relaxes the bitwise gating-edge matching to a
  /// relative tolerance — 0 (the default) for in-memory streams, where
  /// event times are exact; a small value (~1e-9) for streams
  /// reconstructed from exported Chrome traces, whose microsecond
  /// encoding perturbs span ends by an ulp. The decomposition's
  /// sum-to-latency and path-tiling invariants hold for ANY tolerance;
  /// the tolerance only affects how much lands in kStall.
  explicit CriticalPath(const std::vector<TraceEvent>& events,
                        double match_tolerance = 0.0);

  /// Per-job blame, in ascending job id.
  [[nodiscard]] const std::vector<JobBlame>& jobs() const noexcept {
    return jobs_;
  }
  [[nodiscard]] const JobBlame* find(std::size_t job) const;

  /// Aggregate blame across all analyzed jobs (plain sums per bucket).
  struct Totals {
    std::size_t jobs = 0;
    double wait = 0.0;
    double comm = 0.0;
    double compute = 0.0;
    double restart = 0.0;
    double stall = 0.0;
    double latency = 0.0;
  };
  [[nodiscard]] Totals totals() const;

 private:
  std::vector<JobBlame> jobs_;
};

/// Render the top-k jobs by latency as an ASCII blame table (plus the
/// aggregate share of each bucket); `label` names the scenario.
[[nodiscard]] std::string render_blame(const CriticalPath& analysis,
                                       std::size_t top_k = 10,
                                       const std::string& label = "");

}  // namespace nldl::obs
