// Ordered named metrics registry — the aggregate side of observability.
//
// Where obs/trace.hpp records *when* things happened, the registry
// accumulates *how much*: named counters (monotone integer tallies),
// gauges (last-write doubles), and util::P2Quantile streaming quantile
// estimators. It supersedes the ad-hoc `sim::ReplayTelemetry` struct and
// the per-server tallies: the servers take an optional registry and
// account their replay machinery (replay.engine_events, replay.replays,
// replay.busy_periods) and qos outcomes (qos.admitted, qos.preemptions,
// qos.restart_time_s, ...) into it.
//
// Determinism rules of the house apply: entries live in a vector in
// first-touch order with a std::map index (no unordered containers), and
// write_json emits them in that stable order so registry snapshots
// embedded in bench JSON reproduce bitwise.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/stats.hpp"

namespace nldl::util {
class JsonWriter;
}  // namespace nldl::util

namespace nldl::obs {

/// Insertion-ordered registry of counters, gauges, and quantiles.
/// Accessors create the entry on first use; repeated lookups return the
/// same slot. Names are free-form; the convention is dotted lowercase
/// ("replay.engine_events"). Not thread-safe — one registry per
/// server/bench run, merged explicitly if needed.
class MetricsRegistry {
 public:
  /// Monotone integer tally (callers may also add deltas directly).
  [[nodiscard]] std::uint64_t& counter(std::string_view name);

  /// Last-write-wins double (also usable as a += accumulator).
  [[nodiscard]] double& gauge(std::string_view name);

  /// Streaming quantile estimator at probability q; the probability is
  /// fixed on first use (a second call with a different q throws).
  [[nodiscard]] util::P2Quantile& quantile(std::string_view name, double q);

  /// Read-only lookups; throw util::PreconditionError when the entry is
  /// missing or has a different type.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;
  [[nodiscard]] double gauge_value(std::string_view name) const;

  [[nodiscard]] bool contains(std::string_view name) const;
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Add every entry of `other` into this registry (counters and gauges
  /// sum; quantiles require the slot to be absent here — streaming
  /// estimators do not merge).
  void merge(const MetricsRegistry& other);

  /// Emit one JSON object, entries in first-touch order. Counters emit
  /// as integers, gauges as numbers, quantiles as
  /// {"q":, "count":, "value":} (value omitted while empty).
  void write_json(util::JsonWriter& json) const;

  /// Entry names in first-touch order (tests / table rendering).
  [[nodiscard]] std::vector<std::string> names() const;

  /// One type-erased snapshot of an entry (obs::TimeSeries::fold and
  /// table rendering). `value` is the counter tally, the gauge, or the
  /// quantile estimate (0 while the estimator is empty); `count` is the
  /// quantile's sample count, the counter tally again, or 1 for gauges.
  enum class SampleKind : std::uint8_t { kCounter, kGauge, kQuantile };
  struct Sample {
    std::string name;
    SampleKind kind = SampleKind::kCounter;
    double value = 0.0;
    std::uint64_t count = 0;
  };

  /// Snapshot every entry, in first-touch order.
  [[nodiscard]] std::vector<Sample> samples() const;

 private:
  enum class Type : std::uint8_t { kCounter, kGauge, kQuantile };

  struct Entry {
    std::string name;
    Type type = Type::kCounter;
    std::uint64_t count = 0;
    double gauge = 0.0;
    util::P2Quantile quantile{0.5};
  };

  Entry& slot(std::string_view name, Type type);
  [[nodiscard]] const Entry* find(std::string_view name) const;

  std::vector<Entry> entries_;
  std::map<std::string, std::size_t, std::less<>> index_;
};

}  // namespace nldl::obs
