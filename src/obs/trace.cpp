#include "obs/trace.hpp"

namespace nldl::obs {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kTransfer:
      return "transfer";
    case EventKind::kCompute:
      return "compute";
    case EventKind::kJob:
      return "job";
    case EventKind::kInstallment:
      return "installment";
    case EventKind::kRestart:
      return "restart";
    case EventKind::kRerate:
      return "rerate";
    case EventKind::kDispatch:
      return "dispatch";
    case EventKind::kArrival:
      return "arrival";
    case EventKind::kAdmit:
      return "admit";
    case EventKind::kDegrade:
      return "degrade";
    case EventKind::kReject:
      return "reject";
    case EventKind::kPreempt:
      return "preempt";
    case EventKind::kDeadlineMiss:
      return "deadline_miss";
    case EventKind::kCheckpoint:
      return "checkpoint";
    case EventKind::kCompact:
      return "compact";
    case EventKind::kReplay:
      return "replay";
    case EventKind::kAlert:
      return "alert";
  }
  return "unknown";
}

bool event_kind_from_string(const std::string& name, EventKind& kind) {
  static constexpr EventKind kAll[] = {
      EventKind::kTransfer,   EventKind::kCompute,  EventKind::kJob,
      EventKind::kInstallment, EventKind::kRestart, EventKind::kRerate,
      EventKind::kDispatch,   EventKind::kArrival,  EventKind::kAdmit,
      EventKind::kDegrade,    EventKind::kReject,   EventKind::kPreempt,
      EventKind::kDeadlineMiss, EventKind::kCheckpoint, EventKind::kCompact,
      EventKind::kReplay,     EventKind::kAlert,
  };
  for (const EventKind candidate : kAll) {
    if (name == to_string(candidate)) {
      kind = candidate;
      return true;
    }
  }
  return false;
}

bool is_span(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kTransfer:
    case EventKind::kCompute:
    case EventKind::kJob:
    case EventKind::kInstallment:
    case EventKind::kRestart:
      return true;
    default:
      return false;
  }
}

std::vector<TraceEvent> TraceRecorder::of_kind(EventKind kind) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& event : events_) {
    if (event.kind == kind) out.push_back(event);
  }
  return out;
}

}  // namespace nldl::obs
