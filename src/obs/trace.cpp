#include "obs/trace.hpp"

namespace nldl::obs {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kTransfer:
      return "transfer";
    case EventKind::kCompute:
      return "compute";
    case EventKind::kJob:
      return "job";
    case EventKind::kInstallment:
      return "installment";
    case EventKind::kRestart:
      return "restart";
    case EventKind::kRerate:
      return "rerate";
    case EventKind::kDispatch:
      return "dispatch";
    case EventKind::kAdmit:
      return "admit";
    case EventKind::kDegrade:
      return "degrade";
    case EventKind::kReject:
      return "reject";
    case EventKind::kPreempt:
      return "preempt";
    case EventKind::kDeadlineMiss:
      return "deadline_miss";
    case EventKind::kCheckpoint:
      return "checkpoint";
    case EventKind::kCompact:
      return "compact";
    case EventKind::kReplay:
      return "replay";
  }
  return "unknown";
}

bool is_span(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kTransfer:
    case EventKind::kCompute:
    case EventKind::kJob:
    case EventKind::kInstallment:
    case EventKind::kRestart:
      return true;
    default:
      return false;
  }
}

std::vector<TraceEvent> TraceRecorder::of_kind(EventKind kind) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& event : events_) {
    if (event.kind == kind) out.push_back(event);
  }
  return out;
}

}  // namespace nldl::obs
