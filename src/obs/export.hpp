// Trace exporters: Perfetto-loadable Chrome trace-event JSON and an
// ASCII time-attribution summary.
//
// The Chrome export follows the trace-event format's JSON Object Format
// ({"traceEvents": [...]}): complete spans are "X" events with ts/dur in
// microseconds (simulated seconds × 1e6), job lifetimes are balanced
// "B"/"E" pairs, scheduler moments are "i" instants, and "M" metadata
// events name the tracks. Track layout: pid 1 "workers" with two lanes
// per worker (link + cpu), pid 2 "jobs" with one lane per job (named
// with its tenant), pid 3 "scheduler" for re-rates, dispatch barriers,
// and the replay machinery. Load the file in https://ui.perfetto.dev or
// chrome://tracing.
//
// The attribution summary answers the paper's accounting question in a
// terminal: over the traced horizon, how many worker-seconds went to
// communication, (net) compute, restart re-work, and idling. The four
// buckets form an exact partition of workers × horizon, so the total
// always accounts for 100% of worker-seconds (the acceptance bar is
// ≥99%; see tests/test_obs.cpp).
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace nldl::obs {

class CriticalPath;

struct ChromeTraceOptions {
  /// Worker-track count; 0 infers max worker index + 1 from the events.
  std::size_t workers = 0;
  /// Process-name prefix shown in the Perfetto track list.
  std::string label = "nldl";
  /// When set, each analyzed job's critical path is exported as a
  /// highlighted pid-4 track: one X slice per path segment (named by its
  /// blame bucket) stitched together with s/t/f flow arrows (id = job),
  /// so Perfetto draws the causal chain. Borrowed pointer; must outlive
  /// the call.
  const CriticalPath* critical_path = nullptr;
};

/// Write the events as Chrome trace-event JSON. Events are stably sorted
/// by start time (emission order breaks ties), so the output is
/// deterministic for a deterministic recording.
void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceEvent>& events,
                        const ChromeTraceOptions& options = {});

/// Time-attribution accounting over a recorded trace.
struct Attribution {
  std::size_t workers = 0;   ///< attributed worker tracks
  double horizon = 0.0;      ///< [0, horizon] simulated seconds
  double comm = 0.0;         ///< worker-s receiving with no compute overlap
  double compute = 0.0;      ///< worker-s computing, net of restart re-work
  double restart = 0.0;      ///< worker-s of restart surcharge (estimate)
  double idle = 0.0;         ///< worker-s neither receiving nor computing
  std::size_t span_events = 0;

  [[nodiscard]] double total() const noexcept {
    return static_cast<double>(workers) * horizon;
  }
  /// Fraction of total worker-seconds the four buckets account for
  /// (exactly 1 by construction, modulo rounding).
  [[nodiscard]] double coverage() const noexcept {
    const double t = total();
    return t > 0.0 ? (comm + compute + restart + idle) / t : 1.0;
  }
};

/// Partition workers × [0, horizon] into comm / compute / restart / idle.
/// Per worker: compute = union length of its compute spans, comm = union
/// length of its transfer spans minus the part overlapped by compute
/// (overlap is charged to compute — that lane is doing useful work),
/// idle = the remainder. The global restart estimate (sum of kRestart
/// span durations, capped by total compute) is then carved out of the
/// compute bucket, keeping the partition exact. horizon 0 means "max
/// event end time".
[[nodiscard]] Attribution attribute_time(const std::vector<TraceEvent>& events,
                                         std::size_t workers = 0,
                                         double horizon = 0.0);

/// Render the attribution as a small ASCII table; `label` names the
/// policy/scenario in the header line.
[[nodiscard]] std::string render_attribution(const Attribution& attribution,
                                             const std::string& label = "");

}  // namespace nldl::obs
