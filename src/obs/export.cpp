#include "obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "obs/critical_path.hpp"
#include "util/assert.hpp"
#include "util/json.hpp"

namespace nldl::obs {

namespace {

constexpr double kMicrosPerSecond = 1e6;
constexpr std::int64_t kWorkersPid = 1;
constexpr std::int64_t kJobsPid = 2;
constexpr std::int64_t kSchedulerPid = 3;
constexpr std::int64_t kPathPid = 4;

// One line of the traceEvents array, pre-routed to its track. `event`
// is null for synthesized critical-path slices and flow arrows, which
// carry their own name/args fields instead.
struct Emit {
  double ts = 0.0;  // microseconds
  char phase = 'X';
  double dur = 0.0;  // X only
  std::int64_t pid = kSchedulerPid;
  std::int64_t tid = 0;
  const TraceEvent* event = nullptr;
  const char* name = nullptr;         // overrides to_string(event->kind)
  std::int64_t flow_id = -1;          // s/t/f flow binding id (the job)
  std::size_t arg_worker = kNoIndex;  // synthesized-slice args
  std::size_t arg_via = kNoIndex;
};

std::size_t infer_workers(const std::vector<TraceEvent>& events) {
  std::size_t workers = 0;
  for (const TraceEvent& event : events) {
    if (event.worker != kNoIndex) workers = std::max(workers, event.worker + 1);
  }
  return workers;
}

void write_metadata(util::JsonWriter& json, std::int64_t pid, std::int64_t tid,
                    const char* meta, const std::string& name) {
  json.begin_object();
  json.key("name").value(meta);
  json.key("ph").value("M");
  json.key("pid").value(pid);
  json.key("tid").value(tid);
  json.key("args").begin_object();
  json.key("name").value(name);
  json.end_object();
  json.end_object();
}

void write_args(util::JsonWriter& json, const TraceEvent& event) {
  json.key("args").begin_object();
  if (event.job != kNoIndex) json.key("job").value(event.job);
  if (event.tenant != kNoIndex) json.key("tenant").value(event.tenant);
  if (event.worker != kNoIndex) json.key("worker").value(event.worker);
  if (event.size != 0.0) json.key("size").value(event.size);
  if (event.alpha != 0.0) json.key("alpha").value(event.alpha);
  if (event.value != 0.0) json.key("value").value(event.value);
  json.end_object();
}

// Merge intervals in place; returns total union length.
double union_length(std::vector<std::pair<double, double>>& intervals) {
  if (intervals.empty()) return 0.0;
  std::sort(intervals.begin(), intervals.end());
  double total = 0.0;
  std::size_t out = 0;
  for (std::size_t i = 1; i < intervals.size(); ++i) {
    if (intervals[i].first <= intervals[out].second) {
      intervals[out].second =
          std::max(intervals[out].second, intervals[i].second);
    } else {
      ++out;
      intervals[out] = intervals[i];
    }
  }
  intervals.resize(out + 1);
  for (const auto& [lo, hi] : intervals) total += hi - lo;
  return total;
}

// Intersection length of two merged (sorted, disjoint) interval lists.
double intersection_length(const std::vector<std::pair<double, double>>& a,
                           const std::vector<std::pair<double, double>>& b) {
  double total = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const double lo = std::max(a[i].first, b[j].first);
    const double hi = std::min(a[i].second, b[j].second);
    if (hi > lo) total += hi - lo;
    if (a[i].second < b[j].second) {
      ++i;
    } else {
      ++j;
    }
  }
  return total;
}

}  // namespace

void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceEvent>& events,
                        const ChromeTraceOptions& options) {
  const std::size_t workers =
      options.workers != 0 ? options.workers : infer_workers(events);

  // Stable sort by start time so the timeline is monotone; emission
  // order breaks ties, keeping the output deterministic.
  std::vector<const TraceEvent*> ordered;
  ordered.reserve(events.size());
  for (const TraceEvent& event : events) ordered.push_back(&event);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     return a->start < b->start;
                   });

  // Route every event to its track; kJob spans become balanced B/E pairs.
  std::vector<Emit> emits;
  emits.reserve(ordered.size() + ordered.size() / 4);
  // Jobs seen, in first-appearance order, with a tenant when known.
  std::vector<std::pair<std::size_t, std::size_t>> jobs;
  const auto note_job = [&jobs](const TraceEvent& event) {
    if (event.job == kNoIndex) return;
    for (auto& [id, tenant] : jobs) {
      if (id == event.job) {
        if (tenant == kNoIndex) tenant = event.tenant;
        return;
      }
    }
    jobs.emplace_back(event.job, event.tenant);
  };

  for (const TraceEvent* event : ordered) {
    note_job(*event);
    Emit emit;
    emit.event = event;
    emit.ts = event->start * kMicrosPerSecond;
    switch (event->kind) {
      case EventKind::kTransfer:
      case EventKind::kCompute: {
        NLDL_REQUIRE(event->worker != kNoIndex,
                     "transfer/compute span without a worker");
        emit.phase = 'X';
        emit.dur = std::max(0.0, event->end - event->start) * kMicrosPerSecond;
        emit.pid = kWorkersPid;
        emit.tid = static_cast<std::int64_t>(2 * event->worker) +
                   (event->kind == EventKind::kCompute ? 1 : 0);
        emits.push_back(emit);
        break;
      }
      case EventKind::kJob: {
        emit.phase = 'B';
        emit.pid = kJobsPid;
        emit.tid = static_cast<std::int64_t>(event->job);
        emits.push_back(emit);
        Emit end = emit;
        end.phase = 'E';
        end.ts = event->end * kMicrosPerSecond;
        emits.push_back(end);
        break;
      }
      case EventKind::kInstallment:
      case EventKind::kRestart: {
        emit.phase = 'X';
        emit.dur = std::max(0.0, event->end - event->start) * kMicrosPerSecond;
        emit.pid = kJobsPid;
        emit.tid = static_cast<std::int64_t>(event->job);
        emits.push_back(emit);
        break;
      }
      case EventKind::kArrival:
      case EventKind::kAdmit:
      case EventKind::kDegrade:
      case EventKind::kReject:
      case EventKind::kPreempt:
      case EventKind::kDeadlineMiss: {
        emit.phase = 'i';
        emit.pid = kJobsPid;
        emit.tid = static_cast<std::int64_t>(event->job);
        emits.push_back(emit);
        break;
      }
      case EventKind::kRerate:
      case EventKind::kDispatch:
      case EventKind::kCheckpoint:
      case EventKind::kCompact:
      case EventKind::kReplay:
      case EventKind::kAlert: {
        emit.phase = 'i';
        emit.pid = kSchedulerPid;
        emit.tid = 0;
        emits.push_back(emit);
        break;
      }
    }
  }
  // Critical-path overlay: one pid-4 thread per analyzed job, X slices
  // per path segment named by blame bucket, stitched by s/t/f flow
  // arrows so Perfetto highlights the causal chain. Merged into `emits`
  // BEFORE the global sort, keeping the timestamp-monotonicity the
  // validator checks.
  if (options.critical_path != nullptr) {
    for (const JobBlame& blame : options.critical_path->jobs()) {
      const std::vector<PathSegment>& path = blame.path;
      for (std::size_t i = 0; i < path.size(); ++i) {
        const PathSegment& segment = path[i];
        Emit slice;
        slice.ts = segment.start * kMicrosPerSecond;
        slice.phase = 'X';
        slice.dur =
            std::max(0.0, segment.end - segment.start) * kMicrosPerSecond;
        slice.pid = kPathPid;
        slice.tid = static_cast<std::int64_t>(blame.job);
        slice.name = to_string(segment.kind);
        slice.arg_worker = segment.worker;
        slice.arg_via = segment.via_job;
        emits.push_back(slice);
        if (path.size() < 2) continue;
        Emit flow = slice;
        flow.phase = i == 0 ? 's' : (i + 1 == path.size() ? 'f' : 't');
        flow.dur = 0.0;
        flow.name = "critical path";
        flow.flow_id = static_cast<std::int64_t>(blame.job);
        emits.push_back(flow);
      }
    }
  }

  // The B/E expansion can put an E after a later-starting event's record;
  // restore global timestamp order (stable: emission order breaks ties).
  std::stable_sort(emits.begin(), emits.end(),
                   [](const Emit& a, const Emit& b) { return a.ts < b.ts; });

  util::JsonWriter json(out);
  json.begin_object();
  json.key("displayTimeUnit").value("ms");
  json.key("traceEvents").begin_array();

  // Track metadata first: process and thread names.
  write_metadata(json, kWorkersPid, 0, "process_name",
                 options.label + " workers");
  write_metadata(json, kJobsPid, 0, "process_name", options.label + " jobs");
  write_metadata(json, kSchedulerPid, 0, "process_name",
                 options.label + " scheduler");
  for (std::size_t w = 0; w < workers; ++w) {
    std::string worker_name = "w";
    worker_name += std::to_string(w);
    write_metadata(json, kWorkersPid, static_cast<std::int64_t>(2 * w),
                   "thread_name", worker_name + " link");
    write_metadata(json, kWorkersPid, static_cast<std::int64_t>(2 * w + 1),
                   "thread_name", worker_name + " cpu");
  }
  for (const auto& [job, tenant] : jobs) {
    std::string name = "job " + std::to_string(job);
    if (tenant != kNoIndex) name += " (tenant " + std::to_string(tenant) + ")";
    write_metadata(json, kJobsPid, static_cast<std::int64_t>(job),
                   "thread_name", name);
  }
  write_metadata(json, kSchedulerPid, 0, "thread_name", "master");
  if (options.critical_path != nullptr) {
    write_metadata(json, kPathPid, 0, "process_name",
                   options.label + " critical path");
    for (const JobBlame& blame : options.critical_path->jobs()) {
      write_metadata(json, kPathPid, static_cast<std::int64_t>(blame.job),
                     "thread_name",
                     "job " + std::to_string(blame.job) + " path");
    }
  }

  for (const Emit& emit : emits) {
    json.begin_object();
    json.key("name").value(emit.name != nullptr
                               ? emit.name
                               : to_string(emit.event->kind));
    json.key("cat").value("nldl");
    json.key("ph").value(std::string(1, emit.phase));
    json.key("ts").value(emit.ts);
    if (emit.phase == 'X') json.key("dur").value(emit.dur);
    if (emit.phase == 'i') json.key("s").value("t");
    if (emit.flow_id >= 0) {
      json.key("id").value(emit.flow_id);
      if (emit.phase == 'f') json.key("bp").value("e");
    }
    json.key("pid").value(emit.pid);
    json.key("tid").value(emit.tid);
    if (emit.event != nullptr) {
      write_args(json, *emit.event);
    } else {
      json.key("args").begin_object();
      if (emit.arg_worker != kNoIndex) {
        json.key("worker").value(emit.arg_worker);
      }
      if (emit.arg_via != kNoIndex) json.key("via_job").value(emit.arg_via);
      json.end_object();
    }
    json.end_object();
  }

  json.end_array();
  json.end_object();
  out << '\n';
}

Attribution attribute_time(const std::vector<TraceEvent>& events,
                           std::size_t workers, double horizon) {
  Attribution result;
  result.workers = workers != 0 ? workers : infer_workers(events);
  if (horizon <= 0.0) {
    for (const TraceEvent& event : events) {
      horizon = std::max(horizon, event.end);
    }
  }
  result.horizon = horizon;
  if (result.workers == 0 || horizon <= 0.0) return result;

  std::vector<std::vector<std::pair<double, double>>> comm(result.workers);
  std::vector<std::vector<std::pair<double, double>>> compute(result.workers);
  double restart_estimate = 0.0;
  for (const TraceEvent& event : events) {
    if (event.kind == EventKind::kRestart) {
      restart_estimate += std::max(0.0, event.end - event.start);
      continue;
    }
    if (event.worker == kNoIndex || event.worker >= result.workers) continue;
    if (event.kind == EventKind::kTransfer) {
      comm[event.worker].emplace_back(event.start, event.end);
      ++result.span_events;
    } else if (event.kind == EventKind::kCompute) {
      compute[event.worker].emplace_back(event.start, event.end);
      ++result.span_events;
    }
  }

  double comm_total = 0.0;
  double compute_total = 0.0;
  for (std::size_t w = 0; w < result.workers; ++w) {
    const double comm_len = union_length(comm[w]);
    const double compute_len = union_length(compute[w]);
    // Receive time overlapped by compute is charged to compute: the
    // worker is doing useful work while its link drains.
    comm_total += comm_len - intersection_length(comm[w], compute[w]);
    compute_total += compute_len;
  }
  result.comm = comm_total;
  result.restart = std::min(restart_estimate, compute_total);
  result.compute = compute_total - result.restart;
  result.idle = std::max(0.0, result.total() - comm_total - compute_total);
  return result;
}

std::string render_attribution(const Attribution& attribution,
                               const std::string& label) {
  const double total = attribution.total();
  const double pct = total > 0.0 ? 100.0 / total : 0.0;
  char line[160];
  std::string out;
  std::snprintf(line, sizeof(line),
                "time attribution%s%s: %zu workers, horizon %.4g s "
                "(%.4g worker-s, %zu spans)\n",
                label.empty() ? "" : " — ", label.c_str(), attribution.workers,
                attribution.horizon, total, attribution.span_events);
  out += line;
  const auto row = [&](const char* name, double seconds) {
    std::snprintf(line, sizeof(line), "  %-18s %12.4f s  %6.2f%%\n", name,
                  seconds, seconds * pct);
    out += line;
  };
  row("comm (exclusive)", attribution.comm);
  row("compute (net)", attribution.compute);
  row("restart re-work", attribution.restart);
  row("idle", attribution.idle);
  std::snprintf(line, sizeof(line), "  %-18s %12.4f s  %6.2f%%\n", "accounted",
                attribution.comm + attribution.compute + attribution.restart +
                    attribution.idle,
                attribution.coverage() * 100.0);
  out += line;
  return out;
}

}  // namespace nldl::obs
