#include "obs/validate.hpp"

#include <utility>
#include <vector>

#include "util/assert.hpp"
#include "util/json.hpp"

namespace nldl::obs {

namespace {

ValidationResult fail(std::size_t index, const std::string& what) {
  ValidationResult result;
  result.ok = false;
  result.error = "traceEvents[" + std::to_string(index) + "]: " + what;
  return result;
}

}  // namespace

ValidationResult validate_chrome_trace(const util::JsonValue& document) {
  ValidationResult result;
  if (!document.is_object()) {
    result.ok = false;
    result.error = "document root is not an object";
    return result;
  }
  const util::JsonValue* events = document.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    result.ok = false;
    result.error = "missing \"traceEvents\" array";
    return result;
  }

  // Open B/E nesting depth per (pid, tid) track, insertion-ordered.
  std::vector<std::pair<std::pair<double, double>, std::size_t>> depth;
  const auto track_depth = [&depth](double pid,
                                    double tid) -> std::size_t& {
    for (auto& [key, open] : depth) {
      if (key.first == pid && key.second == tid) return open;  // nldl-lint: allow(double-eq): pid/tid are integral JSON ids parsed as double
    }
    depth.push_back({{pid, tid}, 0});
    return depth.back().second;
  };

  double last_ts = 0.0;
  bool saw_timed = false;
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const util::JsonValue& event = events->array[i];
    if (!event.is_object()) return fail(i, "not an object");

    const util::JsonValue* name = event.find("name");
    if (name == nullptr || !name->is_string()) {
      return fail(i, "missing string \"name\"");
    }
    const util::JsonValue* ph = event.find("ph");
    if (ph == nullptr || !ph->is_string() || ph->string.size() != 1) {
      return fail(i, "missing one-character \"ph\"");
    }
    const char phase = ph->string[0];
    if (phase != 'M' && phase != 'X' && phase != 'B' && phase != 'E' &&
        phase != 'i' && phase != 'C' && phase != 's' && phase != 't' &&
        phase != 'f') {
      return fail(i, std::string("unsupported phase '") + phase + "'");
    }
    const util::JsonValue* pid = event.find("pid");
    const util::JsonValue* tid = event.find("tid");
    if (pid == nullptr || !pid->is_number()) {
      return fail(i, "missing numeric \"pid\"");
    }
    if (tid == nullptr || !tid->is_number()) {
      return fail(i, "missing numeric \"tid\"");
    }
    ++result.events;
    if (phase == 'M') continue;  // metadata carries no timeline position

    const util::JsonValue* ts = event.find("ts");
    if (ts == nullptr || !ts->is_number()) {
      return fail(i, "missing numeric \"ts\"");
    }
    if (saw_timed && ts->number < last_ts) {
      return fail(i, "timestamp " + util::json_number(ts->number) +
                         " decreases below " + util::json_number(last_ts));
    }
    last_ts = ts->number;
    saw_timed = true;

    if (phase == 'X') {
      const util::JsonValue* dur = event.find("dur");
      if (dur == nullptr || !dur->is_number() || dur->number < 0.0) {
        return fail(i, "\"X\" event without non-negative \"dur\"");
      }
    } else if (phase == 'B') {
      ++track_depth(pid->number, tid->number);
    } else if (phase == 'E') {
      std::size_t& open = track_depth(pid->number, tid->number);
      if (open == 0) return fail(i, "\"E\" without matching \"B\" on track");
      --open;
    }
  }
  for (const auto& [key, open] : depth) {
    if (open != 0) {
      result.ok = false;
      result.error = "track pid=" + util::json_number(key.first) +
                     " tid=" + util::json_number(key.second) + " has " +
                     std::to_string(open) + " unclosed \"B\" event(s)";
      return result;
    }
  }
  return result;
}

ValidationResult validate_chrome_trace_text(std::string_view text) {
  try {
    return validate_chrome_trace(util::parse_json(text));
  } catch (const util::PreconditionError& error) {
    ValidationResult result;
    result.ok = false;
    result.error = error.what();
    return result;
  }
}

std::vector<TraceEvent> events_from_chrome_trace(
    const util::JsonValue& document) {
  NLDL_REQUIRE(document.is_object(), "trace document root is not an object");
  const util::JsonValue* entries = document.find("traceEvents");
  NLDL_REQUIRE(entries != nullptr && entries->is_array(),
               "trace document has no \"traceEvents\" array");

  constexpr double kSecondsPerMicro = 1e-6;
  constexpr double kPathPid = 4.0;
  const auto number_or = [](const util::JsonValue* node, double fallback) {
    return node != nullptr && node->is_number() ? node->number : fallback;
  };
  const auto index_arg = [&](const util::JsonValue& args, const char* key) {
    const util::JsonValue* node = args.find(key);
    if (node == nullptr || !node->is_number()) return kNoIndex;
    return static_cast<std::size_t>(node->number);
  };

  std::vector<TraceEvent> out;
  // Open kJob B events per jobs-track tid, in first-open order.
  std::vector<std::pair<double, TraceEvent>> open_jobs;
  for (const util::JsonValue& entry : entries->array) {
    NLDL_REQUIRE(entry.is_object(), "trace event is not an object");
    const util::JsonValue* ph = entry.find("ph");
    NLDL_REQUIRE(ph != nullptr && ph->is_string() && ph->string.size() == 1,
                 "trace event without a one-character \"ph\"");
    const char phase = ph->string[0];
    if (phase == 'M' || phase == 's' || phase == 't' || phase == 'f') {
      continue;
    }
    if (number_or(entry.find("pid"), 0.0) == kPathPid) continue;  // nldl-lint: allow(double-eq): pid is an integral JSON id parsed as double

    const util::JsonValue* name = entry.find("name");
    NLDL_REQUIRE(name != nullptr && name->is_string(),
                 "trace event without a string \"name\"");
    EventKind kind = EventKind::kTransfer;
    NLDL_REQUIRE(event_kind_from_string(name->string, kind),
                 "trace event with unknown name '" + name->string + "'");

    TraceEvent event;
    event.kind = kind;
    event.start = number_or(entry.find("ts"), 0.0) * kSecondsPerMicro;
    event.end = event.start;
    if (phase == 'X') {
      event.end =
          event.start + number_or(entry.find("dur"), 0.0) * kSecondsPerMicro;
    }
    const util::JsonValue* args = entry.find("args");
    if (args != nullptr && args->is_object()) {
      event.worker = index_arg(*args, "worker");
      event.job = index_arg(*args, "job");
      event.tenant = index_arg(*args, "tenant");
      event.size = number_or(args->find("size"), 0.0);
      event.alpha = number_or(args->find("alpha"), 0.0);
      event.value = number_or(args->find("value"), 0.0);
    }

    if (phase == 'B') {
      NLDL_REQUIRE(kind == EventKind::kJob, "non-job \"B\" event");
      open_jobs.emplace_back(number_or(entry.find("tid"), 0.0), event);
    } else if (phase == 'E') {
      const double tid = number_or(entry.find("tid"), 0.0);
      bool matched = false;
      for (std::size_t i = open_jobs.size(); i-- > 0;) {
        if (open_jobs[i].first == tid) {  // nldl-lint: allow(double-eq): tid is an integral JSON id parsed as double
          TraceEvent job = open_jobs[i].second;
          job.end = event.start;
          out.push_back(job);
          open_jobs.erase(open_jobs.begin() +
                          static_cast<std::ptrdiff_t>(i));
          matched = true;
          break;
        }
      }
      NLDL_REQUIRE(matched, "\"E\" event without a matching \"B\"");
    } else {
      out.push_back(event);
    }
  }
  NLDL_REQUIRE(open_jobs.empty(), "unclosed \"B\" event in trace");
  return out;
}

ValidationResult validate_metrics_json(const util::JsonValue& document) {
  ValidationResult result;
  if (!document.is_object()) {
    result.ok = false;
    result.error = "metrics document root is not an object";
    return result;
  }
  for (const auto& [key, value] : document.object) {
    const auto bad = [&result, &key](const std::string& what) {
      result.ok = false;
      result.error = "metric '" + key + "': " + what;
      return result;
    };
    if (value.is_number()) {
      ++result.events;
      continue;
    }
    if (!value.is_object()) return bad("neither a number nor a quantile");
    const util::JsonValue* q = value.find("q");
    if (q == nullptr || !q->is_number() || !(q->number > 0.0) ||
        !(q->number < 1.0)) {
      return bad("quantile without a \"q\" in (0, 1)");
    }
    const util::JsonValue* count = value.find("count");
    if (count == nullptr || !count->is_number() || count->number < 0.0) {
      return bad("quantile without a non-negative \"count\"");
    }
    const util::JsonValue* estimate = value.find("value");
    if (count->number > 0.0) {
      if (estimate == nullptr || !estimate->is_number()) {
        return bad("non-empty quantile without a numeric \"value\"");
      }
    } else if (estimate != nullptr) {
      return bad("empty quantile carries a \"value\"");
    }
    ++result.events;
  }
  return result;
}

ValidationResult compare_deterministic_payload(const util::JsonValue& a,
                                               const util::JsonValue& b) {
  ValidationResult result;
  const util::JsonValue* payload_a = a.find("deterministic");
  const util::JsonValue* payload_b = b.find("deterministic");
  if (payload_a == nullptr || payload_b == nullptr) {
    result.ok = false;
    result.error = "document without a \"deterministic\" payload";
    return result;
  }
  if (!(*payload_a == *payload_b)) {
    result.ok = false;
    result.error = "deterministic payloads differ";
    return result;
  }
  result.events = 1;
  return result;
}

}  // namespace nldl::obs
