#include "obs/validate.hpp"

#include <utility>
#include <vector>

#include "util/assert.hpp"
#include "util/json.hpp"

namespace nldl::obs {

namespace {

ValidationResult fail(std::size_t index, const std::string& what) {
  ValidationResult result;
  result.ok = false;
  result.error = "traceEvents[" + std::to_string(index) + "]: " + what;
  return result;
}

}  // namespace

ValidationResult validate_chrome_trace(const util::JsonValue& document) {
  ValidationResult result;
  if (!document.is_object()) {
    result.ok = false;
    result.error = "document root is not an object";
    return result;
  }
  const util::JsonValue* events = document.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    result.ok = false;
    result.error = "missing \"traceEvents\" array";
    return result;
  }

  // Open B/E nesting depth per (pid, tid) track, insertion-ordered.
  std::vector<std::pair<std::pair<double, double>, std::size_t>> depth;
  const auto track_depth = [&depth](double pid,
                                    double tid) -> std::size_t& {
    for (auto& [key, open] : depth) {
      if (key.first == pid && key.second == tid) return open;
    }
    depth.push_back({{pid, tid}, 0});
    return depth.back().second;
  };

  double last_ts = 0.0;
  bool saw_timed = false;
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const util::JsonValue& event = events->array[i];
    if (!event.is_object()) return fail(i, "not an object");

    const util::JsonValue* name = event.find("name");
    if (name == nullptr || !name->is_string()) {
      return fail(i, "missing string \"name\"");
    }
    const util::JsonValue* ph = event.find("ph");
    if (ph == nullptr || !ph->is_string() || ph->string.size() != 1) {
      return fail(i, "missing one-character \"ph\"");
    }
    const char phase = ph->string[0];
    if (phase != 'M' && phase != 'X' && phase != 'B' && phase != 'E' &&
        phase != 'i' && phase != 'C') {
      return fail(i, std::string("unsupported phase '") + phase + "'");
    }
    const util::JsonValue* pid = event.find("pid");
    const util::JsonValue* tid = event.find("tid");
    if (pid == nullptr || !pid->is_number()) {
      return fail(i, "missing numeric \"pid\"");
    }
    if (tid == nullptr || !tid->is_number()) {
      return fail(i, "missing numeric \"tid\"");
    }
    ++result.events;
    if (phase == 'M') continue;  // metadata carries no timeline position

    const util::JsonValue* ts = event.find("ts");
    if (ts == nullptr || !ts->is_number()) {
      return fail(i, "missing numeric \"ts\"");
    }
    if (saw_timed && ts->number < last_ts) {
      return fail(i, "timestamp " + util::json_number(ts->number) +
                         " decreases below " + util::json_number(last_ts));
    }
    last_ts = ts->number;
    saw_timed = true;

    if (phase == 'X') {
      const util::JsonValue* dur = event.find("dur");
      if (dur == nullptr || !dur->is_number() || dur->number < 0.0) {
        return fail(i, "\"X\" event without non-negative \"dur\"");
      }
    } else if (phase == 'B') {
      ++track_depth(pid->number, tid->number);
    } else if (phase == 'E') {
      std::size_t& open = track_depth(pid->number, tid->number);
      if (open == 0) return fail(i, "\"E\" without matching \"B\" on track");
      --open;
    }
  }
  for (const auto& [key, open] : depth) {
    if (open != 0) {
      result.ok = false;
      result.error = "track pid=" + util::json_number(key.first) +
                     " tid=" + util::json_number(key.second) + " has " +
                     std::to_string(open) + " unclosed \"B\" event(s)";
      return result;
    }
  }
  return result;
}

ValidationResult validate_chrome_trace_text(std::string_view text) {
  try {
    return validate_chrome_trace(util::parse_json(text));
  } catch (const util::PreconditionError& error) {
    ValidationResult result;
    result.ok = false;
    result.error = error.what();
    return result;
  }
}

ValidationResult compare_deterministic_payload(const util::JsonValue& a,
                                               const util::JsonValue& b) {
  ValidationResult result;
  const util::JsonValue* payload_a = a.find("deterministic");
  const util::JsonValue* payload_b = b.find("deterministic");
  if (payload_a == nullptr || payload_b == nullptr) {
    result.ok = false;
    result.error = "document without a \"deterministic\" payload";
    return result;
  }
  if (!(*payload_a == *payload_b)) {
    result.ok = false;
    result.error = "deterministic payloads differ";
    return result;
  }
  result.events = 1;
  return result;
}

}  // namespace nldl::obs
