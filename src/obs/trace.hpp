// Deterministic event tracing on the SIMULATED clock — the observability
// substrate of the serving stack.
//
// Every interesting scheduling moment (a chunk transferring or computing,
// a water-fill re-rate, a dispatch barrier, an admission verdict, a
// preemption with its restart surcharge, a deadline miss, the replay
// machinery's checkpoints/compactions) is a typed obs::TraceEvent stamped
// in simulated seconds and attributed to a worker / job / tenant. The sim
// domain never reads a real clock (nldl-lint's nondet-source rule); wall
// time lives exclusively in the bench/profiling layer (bench/profile.hpp).
//
// Emission contract: every hook site is guarded by a raw TraceSink
// pointer that defaults to null — the null-sink fast path is a single
// predictable branch per site, and results are bit-identical with or
// without a sink attached (tests/test_obs.cpp pins both properties;
// bench_micro's trace_emission kernel prices the recording path).
// Recording is deterministic: the same run produces the same event
// sequence, bit for bit, because events carry only simulated quantities.
//
// Consumers: obs::TraceRecorder collects events in memory;
// obs/export.hpp turns a recording into a Perfetto-loadable Chrome
// trace-event JSON file or an ASCII time-attribution summary, and
// sim::ascii_gantt renders per-worker timelines from the same stream.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace nldl::obs {

/// "No worker/job/tenant" attribution marker.
inline constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);

/// The event taxonomy. Span kinds occupy [start, end]; instant kinds
/// carry start == end.
enum class EventKind : std::uint8_t {
  // -- spans ---------------------------------------------------------------
  kTransfer,     ///< chunk receive on a worker's link [comm_start, comm_end]
  kCompute,      ///< chunk compute on a worker [compute_start, compute_end]
  kJob,          ///< whole job service [dispatch, finish]
  kInstallment,  ///< solver-timed qos installment (serial mode has no
                 ///< per-chunk replay; this is the honest granularity)
  kRestart,      ///< restart-surcharge re-work, solver-estimated duration
  // -- instants ------------------------------------------------------------
  kRerate,       ///< comm model re-rated the eligible transfer set
                 ///< (water-filling under bounded multiport)
  kDispatch,     ///< an owner's chunks released into a shared period / slot
  kArrival,      ///< a job joined the wait queue; value = jobs ahead of it
                 ///< (the queue-position cause of its admission wait)
  kAdmit,        ///< admission verdicts at arrival
  kDegrade,
  kReject,
  kPreempt,       ///< a started job went cold; value = surcharge estimate
  kDeadlineMiss,  ///< admitted job finished past its deadline
  kCheckpoint,    ///< incremental replay checkpointed the settled prefix
  kCompact,       ///< settled run dropped finalized chunks
  kReplay,        ///< a speculative replay refreshed finish estimates
  kAlert,         ///< SLO burn-rate alert fired; value = fast-window burn
};

/// Stable lower-case name of the kind (trace-event "name" field).
[[nodiscard]] const char* to_string(EventKind kind);

/// Inverse of to_string; returns false when `name` is not a kind.
[[nodiscard]] bool event_kind_from_string(const std::string& name,
                                          EventKind& kind);

/// True for the span kinds (end > start is meaningful).
[[nodiscard]] bool is_span(EventKind kind) noexcept;

/// One trace event on the simulated clock. Unattributed dimensions hold
/// kNoIndex; `value` is kind-specific (eligible transfers for kRerate,
/// chunk count for kDispatch, surcharge seconds for kPreempt/kRestart,
/// dropped chunks for kCompact, events simulated for kReplay, ...).
struct TraceEvent {
  EventKind kind = EventKind::kTransfer;
  double start = 0.0;  ///< simulated seconds, absolute
  double end = 0.0;    ///< == start for instants
  std::size_t worker = kNoIndex;
  std::size_t job = kNoIndex;
  std::size_t tenant = kNoIndex;
  double size = 0.0;   ///< load units carried (transfer/compute spans)
  double alpha = 0.0;  ///< compute exponent attribution, 0 = n/a
  double value = 0.0;  ///< kind-specific scalar

  bool operator==(const TraceEvent&) const = default;
};

/// Abstract event consumer. Hook sites hold a raw `TraceSink*` that
/// defaults to nullptr (the near-zero-cost fast path); implementations
/// must not observe anything nondeterministic in record() if the trace
/// is meant to be reproducible.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(const TraceEvent& event) = 0;
};

/// The standard sink: collect events in memory, in emission order.
/// Emission order is deterministic but NOT time-sorted (spans are
/// reported as they finalize); exporters sort by start time.
class TraceRecorder final : public TraceSink {
 public:
  void record(const TraceEvent& event) override { events_.push_back(event); }

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  void clear() noexcept { events_.clear(); }

  /// Events of one kind, in emission order (test/analysis convenience).
  [[nodiscard]] std::vector<TraceEvent> of_kind(EventKind kind) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace nldl::obs
