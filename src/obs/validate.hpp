// Validation for exported observability artifacts.
//
// Two checkers, shared by tests/test_obs.cpp, the tools/trace_check CLI,
// and CI: a Chrome trace-event schema validator (every event well-formed,
// timestamps monotone across the stream, begin/end balanced per track)
// and a deterministic-payload comparison for the split bench JSON
// (bench::Harness writes {"deterministic": ..., "measured": ...}; only
// the former must reproduce bitwise across machines and runs).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.hpp"
#include "util/json_parse.hpp"

namespace nldl::obs {

struct ValidationResult {
  bool ok = true;
  std::string error;     ///< first failure, empty when ok
  std::size_t events = 0;  ///< trace events checked (metadata included)

  explicit operator bool() const noexcept { return ok; }
};

/// Validate a parsed Chrome trace-event document (JSON Object Format):
/// a "traceEvents" array whose entries carry name/ph/pid/tid, a numeric
/// ts (metadata "M" events excepted), ph one of M/X/B/E/i/C/s/t/f, a
/// non-negative dur on "X" events, non-decreasing ts over non-metadata
/// events, and balanced B/E nesting per (pid, tid) track.
[[nodiscard]] ValidationResult validate_chrome_trace(
    const util::JsonValue& document);

/// Convenience: parse `text` then validate. Parse errors come back as a
/// failed result rather than an exception.
[[nodiscard]] ValidationResult validate_chrome_trace_text(
    std::string_view text);

/// Compare the deterministic payloads of two bench JSON documents: the
/// value under "deterministic" must be structurally identical (doubles
/// bitwise-equal as printed). Documents missing the key fail.
[[nodiscard]] ValidationResult compare_deterministic_payload(
    const util::JsonValue& a, const util::JsonValue& b);

/// Reconstruct the TraceEvent stream from an exported Chrome trace
/// (`write_chrome_trace`'s inverse, up to the lossy microsecond
/// encoding: times come back as ts/1e6, so span ends may differ from
/// the original by an ulp — CriticalPath takes a match tolerance for
/// exactly this). Metadata, flow arrows, and the pid-4 critical-path
/// overlay are skipped; kJob events are rebuilt from their B/E pairs.
/// Throws util::PreconditionError on events the exporter cannot have
/// written (unknown name, unbalanced B/E).
[[nodiscard]] std::vector<TraceEvent> events_from_chrome_trace(
    const util::JsonValue& document);

/// Validate a `MetricsRegistry::write_json` dump: one flat object whose
/// members are numbers (counters/gauges) or quantile objects with a
/// numeric "q" in (0,1), a non-negative "count", and — iff count > 0 —
/// a numeric "value". `events` reports the entry count.
[[nodiscard]] ValidationResult validate_metrics_json(
    const util::JsonValue& document);

}  // namespace nldl::obs
