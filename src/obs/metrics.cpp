#include "obs/metrics.hpp"

#include "util/assert.hpp"
#include "util/json.hpp"

namespace nldl::obs {

MetricsRegistry::Entry& MetricsRegistry::slot(std::string_view name,
                                              Type type) {
  const auto it = index_.find(name);
  if (it != index_.end()) {
    Entry& entry = entries_[it->second];
    NLDL_REQUIRE(entry.type == type,
                 "metric '" + std::string(name) +
                     "' already registered with a different type");
    return entry;
  }
  Entry entry;
  entry.name = std::string(name);
  entry.type = type;
  entries_.push_back(std::move(entry));
  index_.emplace(entries_.back().name, entries_.size() - 1);
  return entries_.back();
}

const MetricsRegistry::Entry* MetricsRegistry::find(
    std::string_view name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) return nullptr;
  return &entries_[it->second];
}

std::uint64_t& MetricsRegistry::counter(std::string_view name) {
  return slot(name, Type::kCounter).count;
}

double& MetricsRegistry::gauge(std::string_view name) {
  return slot(name, Type::kGauge).gauge;
}

util::P2Quantile& MetricsRegistry::quantile(std::string_view name, double q) {
  const bool existed = contains(name);
  Entry& entry = slot(name, Type::kQuantile);
  if (!existed) {
    entry.quantile = util::P2Quantile(q);
  } else {
    NLDL_REQUIRE(entry.quantile.probability() == q,
                 "metric '" + std::string(name) +
                     "' already registered at a different probability");
  }
  return entry.quantile;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  const Entry* entry = find(name);
  NLDL_REQUIRE(entry != nullptr && entry->type == Type::kCounter,
               "no counter named '" + std::string(name) + "'");
  return entry->count;
}

double MetricsRegistry::gauge_value(std::string_view name) const {
  const Entry* entry = find(name);
  NLDL_REQUIRE(entry != nullptr && entry->type == Type::kGauge,
               "no gauge named '" + std::string(name) + "'");
  return entry->gauge;
}

bool MetricsRegistry::contains(std::string_view name) const {
  return find(name) != nullptr;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const Entry& entry : other.entries_) {
    switch (entry.type) {
      case Type::kCounter:
        counter(entry.name) += entry.count;
        break;
      case Type::kGauge:
        gauge(entry.name) += entry.gauge;
        break;
      case Type::kQuantile:
        NLDL_REQUIRE(!contains(entry.name),
                     "cannot merge streaming quantile '" + entry.name + "'");
        slot(entry.name, Type::kQuantile).quantile = entry.quantile;
        break;
    }
  }
}

void MetricsRegistry::write_json(util::JsonWriter& json) const {
  json.begin_object();
  for (const Entry& entry : entries_) {
    json.key(entry.name);
    switch (entry.type) {
      case Type::kCounter:
        json.value(entry.count);
        break;
      case Type::kGauge:
        json.value(entry.gauge);
        break;
      case Type::kQuantile:
        json.begin_object();
        json.key("q").value(entry.quantile.probability());
        json.key("count").value(entry.quantile.count());
        if (!entry.quantile.empty()) {
          json.key("value").value(entry.quantile.value());
        }
        json.end_object();
        break;
    }
  }
  json.end_object();
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::samples() const {
  std::vector<Sample> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    Sample sample;
    sample.name = entry.name;
    switch (entry.type) {
      case Type::kCounter:
        sample.kind = SampleKind::kCounter;
        sample.value = static_cast<double>(entry.count);
        sample.count = entry.count;
        break;
      case Type::kGauge:
        sample.kind = SampleKind::kGauge;
        sample.value = entry.gauge;
        sample.count = 1;
        break;
      case Type::kQuantile:
        sample.kind = SampleKind::kQuantile;
        sample.value = entry.quantile.empty() ? 0.0 : entry.quantile.value();
        sample.count = static_cast<std::uint64_t>(entry.quantile.count());
        break;
    }
    out.push_back(std::move(sample));
  }
  return out;
}

std::vector<std::string> MetricsRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) out.push_back(entry.name);
  return out;
}

}  // namespace nldl::obs
