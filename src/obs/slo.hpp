// Multi-window SLO burn-rate alerting over the deadline-miss budget —
// the forward-looking side of observability.
//
// The qos server's SLO is "at most (1 − objective) of admitted jobs miss
// their deadline". The classic burn-rate construction (SRE workbook
// ch. 5) watches how fast the error budget is being consumed:
//
//   burn(window) = miss_rate(window) / (1 − objective)
//
// burn == 1 spends exactly the budget over the SLO period; burn == 14.4
// exhausts a 30-day budget in 2 days. One window is a compromise between
// detection speed and flap resistance, so each alerting rule pairs a
// FAST window (quick detection, noisy) with a SLOW window (confirmation)
// and fires only when BOTH burn above the threshold — short blips die in
// the slow window, long regressions trip it within the fast one.
//
// Everything here runs on the simulated clock over the windows of an
// obs::TimeSeries, so alerting is deterministic: the same trace yields
// the same alerts, bit for bit. observe() accepts finish events in any
// order (the servers finalize jobs out of time order under concurrency);
// finalize() then evaluates window-by-window, emits each alert's rising
// edge as a kAlert trace instant, and accounts fired alerts and peak
// burn into the MetricsRegistry.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace nldl::obs {

/// One fast/slow alerting rule. Windows are expressed in seconds of
/// simulated time and must be integer multiples of the monitor's base
/// window so window sums align exactly.
struct BurnWindow {
  double fast = 0.0;       ///< detection window (seconds)
  double slow = 0.0;       ///< confirmation window (seconds, >= fast)
  double threshold = 1.0;  ///< fire when both windows burn >= this
};

/// The SLO plus its alerting rules.
struct SloPolicy {
  /// Target success fraction in (0, 1); the error budget is 1 − objective.
  double objective = 0.99;
  /// Base aggregation window (seconds); all rule windows are multiples.
  double window = 10.0;
  std::vector<BurnWindow> rules;

  /// The standard paging pair scaled to simulated time: with base window
  /// b, {b, 12b} at burn 14.4 and {6b, 72b} at burn 6 — the SRE
  /// workbook's 5m/1h and 30m/6h pages with b = 5 minutes.
  [[nodiscard]] static SloPolicy paging(double objective, double base);
};

/// Deterministic multi-window burn-rate evaluation over one run.
class BurnRateMonitor {
 public:
  /// `horizon` is the simulated span covered (observations past it fold
  /// into the last base window).
  BurnRateMonitor(SloPolicy policy, double horizon);

  /// Record one job outcome at simulated time `t` (its finish):
  /// `missed` is true when the job finished past its deadline. Any
  /// time order.
  void observe(double t, bool missed);

  /// One fired alert (the rising edge of a rule's both-windows breach).
  struct Alert {
    std::size_t rule = 0;   ///< index into policy().rules
    double time = 0.0;      ///< end of the base window that tripped it
    double fast_burn = 0.0;
    double slow_burn = 0.0;
  };

  /// Evaluate every rule window-by-window. Idempotent; call after the
  /// run. When `sink` is non-null each alert is also emitted as a
  /// kAlert instant (value = fast-window burn); when `registry` is
  /// non-null, slo.alerts / slo.observations / slo.misses counters and
  /// the slo.peak_burn gauge are accounted.
  void finalize(TraceSink* sink = nullptr, MetricsRegistry* registry = nullptr);

  [[nodiscard]] const SloPolicy& policy() const noexcept { return policy_; }
  [[nodiscard]] const std::vector<Alert>& alerts() const noexcept {
    return alerts_;
  }
  /// Highest fast-window burn seen across all rules (0 before finalize
  /// or when nothing was observed).
  [[nodiscard]] double peak_burn() const noexcept { return peak_burn_; }
  [[nodiscard]] std::size_t observations() const noexcept { return total_; }
  [[nodiscard]] std::size_t misses() const noexcept { return missed_; }

  /// One line per rule: windows, threshold, alert count, peak burn.
  [[nodiscard]] std::string render() const;

 private:
  SloPolicy policy_;
  TimeSeries series_;
  std::vector<Alert> alerts_;
  double peak_burn_ = 0.0;
  std::size_t total_ = 0;
  std::size_t missed_ = 0;
  bool finalized_ = false;
};

}  // namespace nldl::obs
