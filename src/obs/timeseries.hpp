// Fixed-width windowed aggregation on the simulated clock — the temporal
// side of observability.
//
// MetricsRegistry answers "how much, over the whole run"; TimeSeries
// answers "how much, WHEN": named channels of (t, value) observations
// folded into fixed-width windows of the simulated timeline, each window
// keeping count/sum/min/max/last. Observations may arrive in any time
// order (span finalize order is not time order) — windows are addressed
// by index, not by a cursor — and the fold is deterministic: the same
// observations in the same order produce the same windows, bit for bit.
//
// obs::BurnRateMonitor (obs/slo.hpp) builds its fast/slow burn windows
// on top of this, and the serving benches dump per-window occupancy next
// to their registry snapshots. `fold` imports a MetricsRegistry snapshot
// as point observations at a given time, so end-of-run registries can be
// placed on the shared timeline.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace nldl::util {
class JsonWriter;
}  // namespace nldl::util

namespace nldl::obs {

/// Insertion-ordered set of windowed channels over [0, horizon). All
/// channels share the window width; observations past the horizon are
/// clamped into the last window (a soak's final events land at the
/// horizon itself), observations before 0 are rejected.
class TimeSeries {
 public:
  /// `window` is the width in simulated seconds; `horizon` the total
  /// span covered (rounded up to a whole number of windows, at least 1).
  TimeSeries(double window, double horizon);

  /// Per-window aggregate of one channel.
  struct WindowStats {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double last = 0.0;  ///< last-observed value, in observation order
  };

  /// Record `value` at simulated time `t` into channel `name` (created
  /// on first use, first-touch order).
  void observe(std::string_view name, double t, double value);

  [[nodiscard]] double window() const noexcept { return window_; }
  [[nodiscard]] std::size_t windows() const noexcept { return windows_; }

  /// Channel names in first-touch order.
  [[nodiscard]] std::vector<std::string> channels() const;

  /// The window row of one channel (throws when the channel is missing).
  [[nodiscard]] const std::vector<WindowStats>& at(
      std::string_view name) const;

  /// Window index covering simulated time `t` (clamped into range).
  [[nodiscard]] std::size_t index_of(double t) const noexcept;

  /// Import a registry snapshot taken at simulated time `t`: every entry
  /// becomes one observation on channel "<prefix><name>".
  void fold(const MetricsRegistry& registry, double t,
            std::string_view prefix = "");

  /// Emit {"window":, "windows":, "channels": {name: [[count,sum,min,
  /// max,last], ...]}} — channels in first-touch order, only non-empty
  /// windows' indices listed per channel as [index, count, sum, min,
  /// max, last] rows.
  void write_json(util::JsonWriter& json) const;

 private:
  struct Channel {
    std::string name;
    std::vector<WindowStats> stats;
  };

  Channel& slot(std::string_view name);

  double window_ = 1.0;
  std::size_t windows_ = 1;
  std::vector<Channel> channels_;
  std::map<std::string, std::size_t, std::less<>> index_;
};

}  // namespace nldl::obs
