#include "linalg/matrix.hpp"

#include <cmath>

namespace nldl::linalg {

Matrix Matrix::random(std::size_t rows, std::size_t cols, util::Rng& rng,
                      double lo, double hi) {
  Matrix m(rows, cols);
  for (double& value : m.data_) value = rng.uniform(lo, hi);
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double Matrix::max_abs_diff(const Matrix& other) const {
  NLDL_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
               "max_abs_diff requires equal shapes");
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    worst = std::max(worst, std::abs(data_[i] - other.data_[i]));
  }
  return worst;
}

double Matrix::frobenius_norm() const {
  double sum = 0.0;
  for (const double value : data_) sum += value * value;
  return std::sqrt(sum);
}

Matrix multiply_naive(const Matrix& a, const Matrix& b) {
  NLDL_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c(i, j) += aik * b(k, j);
      }
    }
  }
  return c;
}

}  // namespace nldl::linalg
