#include "linalg/matmul.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"
#include "util/stats.hpp"

namespace nldl::linalg {

Matrix multiply_blocked(const Matrix& a, const Matrix& b, std::size_t block) {
  NLDL_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  NLDL_REQUIRE(block >= 1, "block size must be >= 1");
  Matrix c(a.rows(), b.cols());
  for (std::size_t ii = 0; ii < a.rows(); ii += block) {
    const std::size_t i_end = std::min(ii + block, a.rows());
    for (std::size_t kk = 0; kk < a.cols(); kk += block) {
      const std::size_t k_end = std::min(kk + block, a.cols());
      for (std::size_t jj = 0; jj < b.cols(); jj += block) {
        const std::size_t j_end = std::min(jj + block, b.cols());
        for (std::size_t i = ii; i < i_end; ++i) {
          for (std::size_t k = kk; k < k_end; ++k) {
            const double aik = a(i, k);
            for (std::size_t j = jj; j < j_end; ++j) {
              c(i, j) += aik * b(k, j);
            }
          }
        }
      }
    }
  }
  return c;
}

DistributedMatmul matmul_outer_product(const Matrix& a, const Matrix& b,
                                       const partition::GridLayout& layout,
                                       const std::vector<double>& speeds,
                                       std::size_t panel,
                                       util::ThreadPool* pool) {
  const std::size_t n = a.rows();
  NLDL_REQUIRE(a.cols() == n && b.rows() == n && b.cols() == n,
               "matmul_outer_product requires square N×N inputs");
  NLDL_REQUIRE(static_cast<long long>(n) == layout.n,
               "layout grid must match the matrix dimension");
  NLDL_REQUIRE(speeds.size() == layout.rects.size(),
               "one speed per layout rectangle required");
  NLDL_REQUIRE(panel >= 1, "panel width must be >= 1");

  DistributedMatmul out;
  out.result = Matrix(n, n);
  const std::size_t p = layout.rects.size();
  out.elements_per_worker.assign(p, 0);
  out.compute_time.assign(p, 0.0);
  out.steps = (n + panel - 1) / panel;

  // Worker task: accumulate its C rectangle over all k panels. The panel
  // loop is inside the worker to mirror the broadcast structure; since
  // each worker touches a disjoint C rectangle, workers run in parallel.
  auto compute_rect = [&](std::size_t worker) {
    const partition::IRect& rect = layout.rects[worker];
    for (std::size_t k0 = 0; k0 < n; k0 += panel) {
      const std::size_t k1 = std::min(k0 + panel, n);
      for (long long i = rect.y; i < rect.y + rect.height; ++i) {
        for (std::size_t k = k0; k < k1; ++k) {
          const double aik = a(static_cast<std::size_t>(i), k);
          for (long long j = rect.x; j < rect.x + rect.width; ++j) {
            out.result(static_cast<std::size_t>(i),
                       static_cast<std::size_t>(j)) +=
                aik * b(k, static_cast<std::size_t>(j));
          }
        }
      }
    }
  };

  if (pool != nullptr) {
    std::vector<std::future<void>> futures;
    futures.reserve(p);
    for (std::size_t worker = 0; worker < p; ++worker) {
      if (layout.rects[worker].area() == 0) continue;
      futures.push_back(pool->submit([&, worker] { compute_rect(worker); }));
    }
    for (auto& future : futures) future.get();
  } else {
    for (std::size_t worker = 0; worker < p; ++worker) {
      if (layout.rects[worker].area() == 0) continue;
      compute_rect(worker);
    }
  }

  for (std::size_t worker = 0; worker < p; ++worker) {
    const partition::IRect& rect = layout.rects[worker];
    if (rect.area() > 0) {
      // Per step k: height elements of A's column + width of B's row.
      out.elements_per_worker[worker] =
          static_cast<long long>(n) * rect.half_perimeter();
    }
    out.total_elements += out.elements_per_worker[worker];
    NLDL_REQUIRE(speeds[worker] > 0.0, "speeds must be positive");
    out.compute_time[worker] = 2.0 * static_cast<double>(rect.area()) *
                               static_cast<double>(n) / speeds[worker];
  }

  // Shared definition: e over the workers with a non-empty rectangle.
  out.imbalance = util::imbalance_over_busy(out.compute_time);
  return out;
}

long long matmul_comm_volume(const partition::GridLayout& layout) {
  long long total = 0;
  for (const partition::IRect& rect : layout.rects) {
    if (rect.area() > 0) {
      total += layout.n * rect.half_perimeter();
    }
  }
  return total;
}

}  // namespace nldl::linalg
