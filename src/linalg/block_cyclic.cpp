#include "linalg/block_cyclic.hpp"

#include "util/assert.hpp"

namespace nldl::linalg {

std::pair<std::size_t, std::size_t> BlockCyclicLayout::owner(
    std::size_t i, std::size_t j) const {
  NLDL_REQUIRE(i < n && j < n, "element index out of range");
  return {(i / block) % grid_rows, (j / block) % grid_cols};
}

std::size_t BlockCyclicLayout::rows_of(std::size_t grid_row) const {
  NLDL_REQUIRE(grid_row < grid_rows, "grid row out of range");
  // Count matrix rows whose block-row index ≡ grid_row (mod grid_rows).
  std::size_t count = 0;
  const std::size_t num_block_rows = (n + block - 1) / block;
  for (std::size_t br = grid_row; br < num_block_rows; br += grid_rows) {
    const std::size_t begin = br * block;
    const std::size_t end = std::min(begin + block, n);
    count += end - begin;
  }
  return count;
}

std::size_t BlockCyclicLayout::cols_of(std::size_t grid_col) const {
  NLDL_REQUIRE(grid_col < grid_cols, "grid column out of range");
  std::size_t count = 0;
  const std::size_t num_block_cols = (n + block - 1) / block;
  for (std::size_t bc = grid_col; bc < num_block_cols; bc += grid_cols) {
    const std::size_t begin = bc * block;
    const std::size_t end = std::min(begin + block, n);
    count += end - begin;
  }
  return count;
}

BlockCyclicLayout make_block_cyclic(std::size_t n, std::size_t block,
                                    std::size_t grid_rows,
                                    std::size_t grid_cols) {
  NLDL_REQUIRE(n >= 1, "matrix dimension must be >= 1");
  NLDL_REQUIRE(block >= 1, "block size must be >= 1");
  NLDL_REQUIRE(grid_rows >= 1 && grid_cols >= 1,
               "grid dimensions must be >= 1");
  return BlockCyclicLayout{n, block, grid_rows, grid_cols};
}

long long block_cyclic_matmul_comm(const BlockCyclicLayout& layout) {
  long long per_step = 0;
  for (std::size_t r = 0; r < layout.grid_rows; ++r) {
    for (std::size_t c = 0; c < layout.grid_cols; ++c) {
      per_step += static_cast<long long>(layout.rows_of(r)) +
                  static_cast<long long>(layout.cols_of(c));
    }
  }
  return static_cast<long long>(layout.n) * per_step;
}

long long block_cyclic_matmul_comm_closed_form(
    const BlockCyclicLayout& layout) {
  // Σ_{r,c} rows_of(r) = pc·n and Σ_{r,c} cols_of(c) = pr·n.
  const auto n = static_cast<long long>(layout.n);
  return n * n *
         (static_cast<long long>(layout.grid_rows) +
          static_cast<long long>(layout.grid_cols));
}

}  // namespace nldl::linalg
