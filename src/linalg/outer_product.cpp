#include "linalg/outer_product.hpp"

#include <algorithm>
#include <limits>

#include "partition/block_homogeneous.hpp"
#include "util/assert.hpp"
#include "util/stats.hpp"

namespace nldl::linalg {

namespace {

// Shared definition (util::imbalance_over_busy): e over the workers that
// got work; idle workers don't drive e to +infinity.
double imbalance_of(const std::vector<double>& times) {
  return util::imbalance_over_busy(times);
}

}  // namespace

Matrix outer_product_serial(const std::vector<double>& a,
                            const std::vector<double>& b) {
  Matrix c(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double ai = a[i];
    for (std::size_t j = 0; j < b.size(); ++j) {
      c(i, j) = ai * b[j];
    }
  }
  return c;
}

DistributedOuterProduct outer_product_partitioned(
    const std::vector<double>& a, const std::vector<double>& b,
    const partition::GridLayout& layout, const std::vector<double>& speeds,
    util::ThreadPool* pool) {
  NLDL_REQUIRE(a.size() == b.size(), "outer product inputs must match");
  NLDL_REQUIRE(static_cast<long long>(a.size()) == layout.n,
               "layout grid must match the vector length");
  NLDL_REQUIRE(speeds.size() == layout.rects.size(),
               "one speed per layout rectangle required");

  DistributedOuterProduct out;
  out.result = Matrix(a.size(), b.size());
  const std::size_t p = layout.rects.size();
  out.elements_per_worker.assign(p, 0);
  out.compute_time.assign(p, 0.0);

  auto compute_rect = [&](std::size_t worker) {
    const partition::IRect& rect = layout.rects[worker];
    for (long long i = rect.y; i < rect.y + rect.height; ++i) {
      const double ai = a[static_cast<std::size_t>(i)];
      for (long long j = rect.x; j < rect.x + rect.width; ++j) {
        out.result(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) =
            ai * b[static_cast<std::size_t>(j)];
      }
    }
  };

  if (pool != nullptr) {
    std::vector<std::future<void>> futures;
    futures.reserve(p);
    for (std::size_t worker = 0; worker < p; ++worker) {
      futures.push_back(pool->submit([&, worker] { compute_rect(worker); }));
    }
    for (auto& future : futures) future.get();
  } else {
    for (std::size_t worker = 0; worker < p; ++worker) compute_rect(worker);
  }

  for (std::size_t worker = 0; worker < p; ++worker) {
    const partition::IRect& rect = layout.rects[worker];
    const long long elements = rect.area() > 0 ? rect.half_perimeter() : 0;
    out.elements_per_worker[worker] = elements;
    out.total_elements += elements;
    NLDL_REQUIRE(speeds[worker] > 0.0, "speeds must be positive");
    out.compute_time[worker] =
        static_cast<double>(rect.area()) / speeds[worker];
  }
  out.imbalance = imbalance_of(out.compute_time);
  return out;
}

DistributedOuterProduct outer_product_blocked(const std::vector<double>& a,
                                              const std::vector<double>& b,
                                              long long block_dim,
                                              const std::vector<double>& speeds,
                                              util::ThreadPool* pool) {
  NLDL_REQUIRE(a.size() == b.size(), "outer product inputs must match");
  NLDL_REQUIRE(block_dim >= 1, "block dimension must be >= 1");
  const auto n = static_cast<long long>(a.size());
  NLDL_REQUIRE(n % block_dim == 0,
               "vector length must be divisible by the block dimension");
  NLDL_REQUIRE(!speeds.empty(), "at least one worker required");

  const long long blocks_per_side = n / block_dim;
  const long long num_blocks = blocks_per_side * blocks_per_side;
  const std::size_t p = speeds.size();

  // Demand-driven assignment: identical blocks, per-block time ∝ 1/speed.
  std::vector<double> tau(p);
  const double block_area =
      static_cast<double>(block_dim) * static_cast<double>(block_dim);
  for (std::size_t i = 0; i < p; ++i) {
    NLDL_REQUIRE(speeds[i] > 0.0, "speeds must be positive");
    tau[i] = block_area / speeds[i];
  }
  const std::vector<long long> counts =
      partition::demand_driven_counts(tau, num_blocks);

  // Map block index ranges to workers: worker w takes the next counts[w]
  // blocks in row-major block order (the specific mapping does not affect
  // volume accounting — every block ships its own inputs).
  std::vector<std::size_t> owner(static_cast<std::size_t>(num_blocks));
  {
    std::size_t cursor = 0;
    for (std::size_t w = 0; w < p; ++w) {
      for (long long c = 0; c < counts[w]; ++c) {
        owner[cursor++] = w;
      }
    }
    NLDL_ASSERT(cursor == owner.size(), "block ownership mismatch");
  }

  DistributedOuterProduct out;
  out.result = Matrix(a.size(), b.size());
  out.elements_per_worker.assign(p, 0);
  out.compute_time.assign(p, 0.0);

  auto compute_block = [&](std::size_t block) {
    const long long bi = static_cast<long long>(block) / blocks_per_side;
    const long long bj = static_cast<long long>(block) % blocks_per_side;
    for (long long i = bi * block_dim; i < (bi + 1) * block_dim; ++i) {
      const double ai = a[static_cast<std::size_t>(i)];
      for (long long j = bj * block_dim; j < (bj + 1) * block_dim; ++j) {
        out.result(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) =
            ai * b[static_cast<std::size_t>(j)];
      }
    }
  };

  if (pool != nullptr) {
    // Parallelize over contiguous ranges of blocks.
    const std::size_t grain = std::max<std::size_t>(owner.size() / (4 * pool->size()), 1);
    util::parallel_for(*pool, 0, owner.size(), grain, compute_block);
  } else {
    for (std::size_t block = 0; block < owner.size(); ++block) {
      compute_block(block);
    }
  }

  for (std::size_t block = 0; block < owner.size(); ++block) {
    out.elements_per_worker[owner[block]] += 2 * block_dim;
  }
  for (std::size_t w = 0; w < p; ++w) {
    out.total_elements += out.elements_per_worker[w];
    out.compute_time[w] = static_cast<double>(counts[w]) * tau[w];
  }
  out.imbalance = imbalance_of(out.compute_time);
  return out;
}

}  // namespace nldl::linalg
