// Extension: 2.5D matrix-multiplication communication model.
//
// The paper's Section 4.2 notes that all practical MM implementations are
// outer-product (2-D) based "at the notable exception of recently
// introduced 2.5D schemes [42]" (Solomonik & Demmel, Euro-Par 2011). This
// module supplies the 2.5D *communication-volume* model so the paper's 2-D
// numbers can be put in context: with c replicas of the input on a
// √(p/c) × √(p/c) × c grid, per-processor bandwidth cost drops from
// Θ(N²/√p) to Θ(N²/√(c·p)) at the price of c× the memory.
//
// These are analytic accounting functions (the 2.5D algorithm needs a
// torus, not a star platform, so it is out of the paper's execution
// model); they are exercised by bench_sec42_matmul and unit tests.
#pragma once

#include <cstddef>

namespace nldl::linalg {

struct Matmul25DParams {
  std::size_t p = 1;  ///< total processors; must satisfy the grid shape
  std::size_t c = 1;  ///< replication factor (c = 1 gives the 2-D SUMMA)
};

/// True if (p, c) forms a valid 2.5D grid: c divides p, p/c is a perfect
/// square, and c <= (p/c)^(1/2)·... (classical requirement c <= p^(1/3)
/// is advisory; we only enforce the grid shape).
[[nodiscard]] bool valid_25d_grid(std::size_t p, std::size_t c);

/// Words moved per processor for C = A·B with N×N matrices:
///   2·N² / √(c·p)  +  lower-order reduction terms (N²·c/p for the final
/// reduction over the c layers when c > 1).
[[nodiscard]] double matmul_25d_words_per_proc(double n,
                                               const Matmul25DParams& params);

/// Total words moved across all processors.
[[nodiscard]] double matmul_25d_total_words(double n,
                                            const Matmul25DParams& params);

/// Memory words needed per processor: c replicas of the N²/p shares of A
/// and B plus the C share.
[[nodiscard]] double matmul_25d_memory_per_proc(double n,
                                                const Matmul25DParams& params);

/// The classical bandwidth lower bound per processor (Irony–Toledo–
/// Tiskin): Ω(N³ / (p·√M)) with M = memory per processor. Exposed so the
/// bench can show 2.5D tracking it.
[[nodiscard]] double matmul_bandwidth_lower_bound(double n, std::size_t p,
                                                  double memory_per_proc);

}  // namespace nldl::linalg
