// Dense row-major matrix — the minimal substrate the paper's Section 4
// workloads (outer product, matrix multiplication) compute on.
#pragma once

#include <cstddef>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace nldl::linalg {

class Matrix {
 public:
  Matrix() = default;

  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Matrix with i.i.d. uniform entries in [lo, hi).
  static Matrix random(std::size_t rows, std::size_t cols, util::Rng& rng,
                       double lo = -1.0, double hi = 1.0);

  /// Identity (square).
  static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    NLDL_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    NLDL_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }

  [[nodiscard]] const std::vector<double>& data() const noexcept {
    return data_;
  }
  [[nodiscard]] std::vector<double>& data() noexcept { return data_; }

  /// Largest absolute elementwise difference. Shapes must match.
  [[nodiscard]] double max_abs_diff(const Matrix& other) const;

  /// True if every element differs by at most `tol`.
  [[nodiscard]] bool approx_equal(const Matrix& other, double tol) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           max_abs_diff(other) <= tol;
  }

  [[nodiscard]] double frobenius_norm() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Reference O(n³) product (i-k-j loop order for row-major locality).
[[nodiscard]] Matrix multiply_naive(const Matrix& a, const Matrix& b);

}  // namespace nldl::linalg
