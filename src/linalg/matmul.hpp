// Outer-product-based parallel matrix multiplication (paper Section 4.2,
// Figure 3) — the ScaLAPACK/SUMMA building block.
//
// The N×N×N computation cube is owned in 2-D: each worker owns a rectangle
// of C and, at each step k, receives the fragment of A's column k matching
// its rows and the fragment of B's row k matching its columns. Total
// communication volume is therefore N · Σ (height_i + width_i) — exactly N
// times the outer-product half-perimeter sum, which is why the Section 4.1
// ratio between Homogeneous and Heterogeneous Blocks carries over verbatim.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "partition/layout.hpp"
#include "util/threadpool.hpp"

namespace nldl::linalg {

/// Cache-blocked serial product (reference for larger sizes).
[[nodiscard]] Matrix multiply_blocked(const Matrix& a, const Matrix& b,
                                      std::size_t block = 64);

struct DistributedMatmul {
  Matrix result;
  /// Elements of A and B shipped to each worker over all steps.
  std::vector<long long> elements_per_worker;
  long long total_elements = 0;
  /// Model compute time per worker: flops (2·area·N) / speed.
  std::vector<double> compute_time;
  double imbalance = 0.0;
  std::size_t steps = 0;  ///< number of outer-product panels executed
};

/// Execute C = A·B with the given 2-D ownership layout of C. `panel` is the
/// outer-product panel width (communication volume is panel-invariant; the
/// panel only trades latency for bandwidth). Layout must tile N×N where
/// N = A.rows() = A.cols() = B.rows() = B.cols().
[[nodiscard]] DistributedMatmul matmul_outer_product(
    const Matrix& a, const Matrix& b, const partition::GridLayout& layout,
    const std::vector<double>& speeds, std::size_t panel = 1,
    util::ThreadPool* pool = nullptr);

/// Communication volume (elements of A+B shipped) of the outer-product
/// algorithm for a layout, *without* executing it: N · Σ half-perimeters of
/// non-empty rectangles. Useful for large-N accounting.
[[nodiscard]] long long matmul_comm_volume(const partition::GridLayout& layout);

}  // namespace nldl::linalg
