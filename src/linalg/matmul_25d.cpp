#include "linalg/matmul_25d.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace nldl::linalg {

namespace {

bool is_perfect_square(std::size_t v) {
  const auto root = static_cast<std::size_t>(std::llround(std::sqrt(
      static_cast<double>(v))));
  return root * root == v;
}

}  // namespace

bool valid_25d_grid(std::size_t p, std::size_t c) {
  if (p == 0 || c == 0) return false;
  if (p % c != 0) return false;
  return is_perfect_square(p / c);
}

double matmul_25d_words_per_proc(double n, const Matmul25DParams& params) {
  NLDL_REQUIRE(n >= 1.0, "n must be >= 1");
  NLDL_REQUIRE(valid_25d_grid(params.p, params.c),
               "p/c must be a perfect square (2.5D grid shape)");
  const double p = static_cast<double>(params.p);
  const double c = static_cast<double>(params.c);
  // Broadcast volume of the shifted A and B panels across the layer:
  // 2N²/√(cp); plus the inter-layer reduction of C when c > 1.
  double words = 2.0 * n * n / std::sqrt(c * p);
  if (params.c > 1) {
    words += n * n * c / p;  // allreduce of the c partial C layers
  }
  return words;
}

double matmul_25d_total_words(double n, const Matmul25DParams& params) {
  return matmul_25d_words_per_proc(n, params) *
         static_cast<double>(params.p);
}

double matmul_25d_memory_per_proc(double n, const Matmul25DParams& params) {
  NLDL_REQUIRE(valid_25d_grid(params.p, params.c),
               "p/c must be a perfect square (2.5D grid shape)");
  const double p = static_cast<double>(params.p);
  const double c = static_cast<double>(params.c);
  // c replicated shares of A and B plus the owned share of C.
  return (2.0 * c + 1.0) * n * n / p;
}

double matmul_bandwidth_lower_bound(double n, std::size_t p,
                                    double memory_per_proc) {
  NLDL_REQUIRE(n >= 1.0 && p >= 1, "n and p must be >= 1");
  NLDL_REQUIRE(memory_per_proc > 0.0, "memory must be positive");
  return n * n * n /
         (static_cast<double>(p) * std::sqrt(memory_per_proc));
}

}  // namespace nldl::linalg
