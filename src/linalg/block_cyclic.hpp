// Block-cyclic 2-D layouts — the "level of virtualization" of the paper's
// Section 4.2: ScaLAPACK scatters b×b blocks cyclically over a pr×pc
// processor grid, so each processor updates many scattered blocks per
// outer-product step, yet the total communication volume stays exactly
// proportional to the sum of the (half-)perimeters of each processor's
// *aggregate* footprint.
#pragma once

#include <cstddef>
#include <vector>

namespace nldl::linalg {

struct BlockCyclicLayout {
  std::size_t n = 0;        ///< matrix dimension
  std::size_t block = 1;    ///< distribution block size b
  std::size_t grid_rows = 1;  ///< pr
  std::size_t grid_cols = 1;  ///< pc

  /// Owner (grid row, grid col) of matrix element (i, j).
  [[nodiscard]] std::pair<std::size_t, std::size_t> owner(
      std::size_t i, std::size_t j) const;

  /// Number of matrix rows mapped to grid row r (sum over its cyclic
  /// block-rows).
  [[nodiscard]] std::size_t rows_of(std::size_t grid_row) const;
  /// Number of matrix columns mapped to grid column c.
  [[nodiscard]] std::size_t cols_of(std::size_t grid_col) const;
};

/// Build a layout; requires pr·pc processors and b >= 1.
[[nodiscard]] BlockCyclicLayout make_block_cyclic(std::size_t n,
                                                  std::size_t block,
                                                  std::size_t grid_rows,
                                                  std::size_t grid_cols);

/// Communication volume (elements of A+B shipped) of the outer-product MM
/// algorithm under this layout: at each of the n steps, the processor at
/// (r, c) receives rows_of(r) elements of A's column and cols_of(c) of
/// B's row, i.e. total = n · Σ_{r,c} (rows_of(r) + cols_of(c)).
[[nodiscard]] long long block_cyclic_matmul_comm(
    const BlockCyclicLayout& layout);

/// Same volume computed from the closed form n·(pc·n + pr·n) = n²(pr+pc):
/// the cyclic scattering does not change the aggregate volume — the claim
/// the paper makes when transferring the Section 4.1 ratio to matmul.
[[nodiscard]] long long block_cyclic_matmul_comm_closed_form(
    const BlockCyclicLayout& layout);

}  // namespace nldl::linalg
