// The outer product a·bᵀ (paper Section 4.1): N² computation over N-sized
// inputs — the canonical non-linear (α = 2) workload.
//
// Two executable distributions mirror the paper's two strategies:
//   - outer_product_partitioned: one rectangle per worker (Heterogeneous
//     Blocks / PERI-SUM layout); worker data = its half-perimeter.
//   - outer_product_blocked: square blocks pulled demand-driven
//     (Homogeneous Blocks / MapReduce); every block ships its own 2D
//     inputs, with no reuse across blocks of the same worker.
// Both actually compute the product (verifiable against the serial
// reference) and account the exact number of elements shipped.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "partition/layout.hpp"
#include "util/threadpool.hpp"

namespace nldl::linalg {

/// Serial reference: C(i,j) = a[i]·b[j].
[[nodiscard]] Matrix outer_product_serial(const std::vector<double>& a,
                                          const std::vector<double>& b);

struct DistributedOuterProduct {
  Matrix result;
  /// Elements of a/b shipped to each worker.
  std::vector<long long> elements_per_worker;
  long long total_elements = 0;
  /// Model compute time per worker: area / speed.
  std::vector<double> compute_time;
  /// e = (t_max − t_min)/t_min over busy workers; +inf if a worker is idle.
  double imbalance = 0.0;
};

/// Execute under a rectangle-per-worker layout. Rectangle i covers rows
/// [y, y+height) of `a` and columns [x, x+width) of `b`; the worker
/// receives height + width elements. Layout must tile a.size()×b.size();
/// speeds must match the layout's processor count.
[[nodiscard]] DistributedOuterProduct outer_product_partitioned(
    const std::vector<double>& a, const std::vector<double>& b,
    const partition::GridLayout& layout, const std::vector<double>& speeds,
    util::ThreadPool* pool = nullptr);

/// Execute under square blocks of dimension `block_dim` handed out
/// demand-driven to workers with the given speeds. Each block ships its
/// own 2·block_dim inputs (MapReduce accounting, no reuse). a and b must
/// have equal sizes divisible by block_dim.
[[nodiscard]] DistributedOuterProduct outer_product_blocked(
    const std::vector<double>& a, const std::vector<double>& b,
    long long block_dim, const std::vector<double>& speeds,
    util::ThreadPool* pool = nullptr);

}  // namespace nldl::linalg
