// Umbrella header: the complete public API of the nldl library.
//
// nldl reproduces "Non-Linear Divisible Loads: There is No Free Lunch"
// (Beaumont, Larchevêque, Marchal — IPDPS 2013 / INRIA RR-8170):
//   - core/       the paper's strategies, experiments, and analyses
//   - dlt/        linear + nonlinear divisible-load allocators
//   - partition/  PERI-SUM / PERI-MAX square partitioning, block strategies
//   - sort/       parallel sample sort (the "almost linear" workload)
//   - linalg/     executable outer product and matmul with comm accounting
//   - mapreduce/  mini MapReduce engine + heterogeneous cluster simulator
//   - online/     open-system multi-job scheduling: arrivals, queueing,
//                 pluggable multi-load schedulers, service metrics
//   - platform/   heterogeneous star platforms and speed distributions
//   - sim/        event-driven schedule engine + pluggable comm models
//   - util/       RNG, statistics, root-finding, tables, thread pool
#pragma once

#include "core/experiments.hpp"    // IWYU pragma: export
#include "core/no_free_lunch.hpp"  // IWYU pragma: export
#include "core/strategies.hpp"     // IWYU pragma: export
#include "dlt/analysis.hpp"        // IWYU pragma: export
#include "dlt/linear_dlt.hpp"      // IWYU pragma: export
#include "dlt/nonlinear_dlt.hpp"   // IWYU pragma: export
#include "dlt/multi_round.hpp"     // IWYU pragma: export
#include "dlt/return_messages.hpp"  // IWYU pragma: export
#include "linalg/block_cyclic.hpp"  // IWYU pragma: export
#include "linalg/matmul.hpp"       // IWYU pragma: export
#include "linalg/matmul_25d.hpp"   // IWYU pragma: export
#include "linalg/matrix.hpp"       // IWYU pragma: export
#include "linalg/outer_product.hpp"  // IWYU pragma: export
#include "mapreduce/cluster_sim.hpp"  // IWYU pragma: export
#include "mapreduce/engine.hpp"    // IWYU pragma: export
#include "mapreduce/matmul_job.hpp"  // IWYU pragma: export
#include "mapreduce/outer_product_job.hpp"  // IWYU pragma: export
#include "mapreduce/speculation.hpp"  // IWYU pragma: export
#include "online/arrivals.hpp"     // IWYU pragma: export
#include "online/job.hpp"          // IWYU pragma: export
#include "online/metrics.hpp"      // IWYU pragma: export
#include "online/scheduler.hpp"    // IWYU pragma: export
#include "online/server.hpp"       // IWYU pragma: export
#include "partition/block_homogeneous.hpp"  // IWYU pragma: export
#include "partition/layout.hpp"    // IWYU pragma: export
#include "partition/lower_bound.hpp"  // IWYU pragma: export
#include "partition/peri_max.hpp"  // IWYU pragma: export
#include "partition/peri_sum.hpp"  // IWYU pragma: export
#include "partition/recursive_bisection.hpp"  // IWYU pragma: export
#include "platform/platform.hpp"   // IWYU pragma: export
#include "platform/speed_distributions.hpp"  // IWYU pragma: export
#include "sim/bounded_multiport.hpp"  // IWYU pragma: export
#include "sim/comm_model.hpp"      // IWYU pragma: export
#include "sim/engine.hpp"          // IWYU pragma: export
#include "sim/simulator.hpp"       // IWYU pragma: export
#include "sim/trace.hpp"           // IWYU pragma: export
#include "sort/distributed.hpp"    // IWYU pragma: export
#include "sort/merge_sort.hpp"     // IWYU pragma: export
#include "sort/sample_sort.hpp"    // IWYU pragma: export
#include "sort/theory.hpp"         // IWYU pragma: export
