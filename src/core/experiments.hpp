// The Section 4.3 simulation study (Figures 4a, 4b, 4c): sweep the number
// of processors, draw random platforms, evaluate all three strategies, and
// report mean ± stddev of each strategy's communication ratio to the lower
// bound.
#pragma once

#include <cstdint>
#include <vector>

#include "core/strategies.hpp"
#include "platform/speed_distributions.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace nldl::core {

struct Fig4Config {
  platform::SpeedModel model = platform::SpeedModel::kHomogeneous;
  /// The paper sweeps p = 10, 20, 40, 60, 80, 100.
  std::vector<std::size_t> processor_counts = {10, 20, 40, 60, 80, 100};
  /// The paper averages 100 random trials per point.
  std::size_t trials = 100;
  std::uint64_t seed = util::Rng::kDefaultSeed;
  /// Ratios are N-invariant; N only matters for absolute volumes.
  double domain_n = 1.0;
  StrategyOptions strategy_options{};
  platform::SpeedModelParams model_params{};
};

struct Fig4Row {
  std::size_t p = 0;
  util::RunningStats het;    ///< Comm_het / LB
  util::RunningStats hom;    ///< Comm_hom / LB
  util::RunningStats hom_k;  ///< Comm_hom/k / LB
  util::RunningStats k_used; ///< refinement k chosen by Comm_hom/k
  util::RunningStats hom_imbalance;  ///< e of plain Comm_hom (can be +inf-free: finite trials only)
};

/// Run the sweep. Deterministic given the seed (each trial draws its own
/// sub-stream, so rows are independent of sweep order).
[[nodiscard]] std::vector<Fig4Row> run_fig4(const Fig4Config& config);

/// Paper-style table: one row per p, mean and stddev per strategy.
[[nodiscard]] util::Table fig4_table(const std::vector<Fig4Row>& rows);

}  // namespace nldl::core
