// The Section 4.3 simulation study (Figures 4a, 4b, 4c): sweep the number
// of processors, draw random platforms, evaluate all three strategies, and
// report mean ± stddev of each strategy's communication ratio to the lower
// bound. The trial grid runs through util::Sweep: every trial consumes its
// own pre-split RNG sub-stream and results are reduced in trial order, so
// the output is bit-identical for any thread count.
//
// Also hosts the Section 2 "model independence" sweep: the makespan of the
// equal-split DLT round under a bounded-multiport master of varying
// capacity (simulated with sim::Engine), showing that the communication
// model moves the round's makespan but not the vanishing share of work it
// covers.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "core/strategies.hpp"
#include "platform/speed_distributions.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace nldl::core {

struct Fig4Config {
  platform::SpeedModel model = platform::SpeedModel::kHomogeneous;
  /// The paper sweeps p = 10, 20, 40, 60, 80, 100.
  std::vector<std::size_t> processor_counts = {10, 20, 40, 60, 80, 100};
  /// The paper averages 100 random trials per point.
  std::size_t trials = 100;
  std::uint64_t seed = util::Rng::kDefaultSeed;
  /// Ratios are N-invariant; N only matters for absolute volumes.
  double domain_n = 1.0;
  /// Worker threads for the trial sweep: 1 = run serially on the calling
  /// thread, 0 = one per hardware thread. The result is the same bit for
  /// bit whatever the value.
  std::size_t threads = 1;
  StrategyOptions strategy_options{};
  platform::SpeedModelParams model_params{};
};

struct Fig4Row {
  std::size_t p = 0;
  util::RunningStats het;    ///< Comm_het / LB
  util::RunningStats hom;    ///< Comm_hom / LB
  util::RunningStats hom_k;  ///< Comm_hom/k / LB
  util::RunningStats k_used; ///< refinement k chosen by Comm_hom/k
  /// e of plain Comm_hom over the workers it kept busy (always finite).
  util::RunningStats hom_imbalance;
  /// Trials whose imbalance sample was non-finite and therefore excluded
  /// from hom_imbalance — reported, never silently dropped. 0 by
  /// construction since imbalance is defined over busy workers.
  std::size_t hom_imbalance_dropped = 0;
  /// Trials where plain Comm_hom left at least one worker without a block
  /// (the granularity failure the old +inf imbalance conflated with e).
  std::size_t hom_idle_trials = 0;
};

/// Run the sweep. Deterministic given the seed (each trial draws its own
/// sub-stream, so rows are independent of sweep order and thread count).
[[nodiscard]] std::vector<Fig4Row> run_fig4(const Fig4Config& config);

/// Paper-style table: one row per p, mean and stddev per strategy.
[[nodiscard]] util::Table fig4_table(const std::vector<Fig4Row>& rows);

/// Section 2 model-independence sweep: one optimal equal-split DLT round
/// of a nonlinear workload on a homogeneous platform, replayed under
/// bounded-multiport masters of growing capacity (+inf = parallel links).
struct CapacitySweepConfig {
  std::size_t p = 64;
  double alpha = 2.0;
  double total_load = 10000.0;
  double c = 1.0;  ///< uniform communication cost
  double w = 1.0;  ///< uniform computation cost
  std::vector<double> capacities = {1.0, 4.0, 16.0, 64.0,
                                    std::numeric_limits<double>::infinity()};
  /// Worker threads for the capacity sweep (1 = serial, 0 = hardware);
  /// results are bit-identical whatever the value.
  std::size_t threads = 1;
};

struct CapacitySweepRow {
  double capacity = 0.0;        ///< master aggregate bandwidth
  double comm_phase_end = 0.0;  ///< last transfer completion
  double makespan = 0.0;        ///< round makespan under this master
  /// Share of the total work the round covers, 1/p^(alpha-1) — a property
  /// of the division, identical for every capacity.
  double covered_fraction = 0.0;
};

[[nodiscard]] std::vector<CapacitySweepRow> capacity_sweep(
    const CapacitySweepConfig& config);

[[nodiscard]] util::Table capacity_sweep_table(
    const std::vector<CapacitySweepRow>& rows);

}  // namespace nldl::core
