// The paper's three data-distribution strategies, under one interface
// (Section 4.1 / 4.3).
//
//   kHomogeneousBlocks         Comm_hom   — MapReduce-style square blocks
//                                           sized for the slowest worker,
//                                           demand driven (k = 1).
//   kHomogeneousBlocksRefined  Comm_hom/k — same, shrinking blocks until
//                                           load imbalance e <= 1 %.
//   kHeterogeneousBlocks       Comm_het   — one rectangle per worker via
//                                           the PERI-SUM partitioner.
//
// All evaluations report the communication volume, its ratio to the lower
// bound LB = 2N·Σ√x_i, and the achieved load imbalance.
#pragma once

#include <string>
#include <vector>

#include "partition/block_homogeneous.hpp"

namespace nldl::core {

enum class Strategy {
  kHomogeneousBlocks,
  kHomogeneousBlocksRefined,
  kHeterogeneousBlocks,
};

[[nodiscard]] std::string to_string(Strategy strategy);

struct StrategyOptions {
  /// Target for Comm_hom/k refinement (the paper stops at e <= 1 %).
  double imbalance_target = 0.01;
  /// Refinement safety limit.
  int max_k = 512;
};

struct StrategyEvaluation {
  Strategy strategy{};
  double comm_volume = 0.0;
  double lower_bound = 0.0;
  double ratio_to_lower_bound = 0.0;
  /// e = (t_max − t_min)/t_min over the workers that received work; 0 for
  /// Comm_het (areas exactly proportional).
  double load_imbalance = 0.0;
  /// Workers the block hand-out starved (0 for Comm_het).
  std::size_t idle_workers = 0;
  int refinement_k = 1;       ///< k used (1 unless refined)
  long long num_chunks = 0;   ///< blocks handed out, or p rectangles
};

/// Evaluate one strategy on a platform given by worker speeds, for an N×N
/// computational domain (the outer product of two N-vectors). All volume
/// ratios are invariant in N; N only scales absolute volumes.
[[nodiscard]] StrategyEvaluation evaluate_strategy(
    Strategy strategy, const std::vector<double>& speeds, double n,
    const StrategyOptions& options = {});

/// Evaluate all three strategies.
[[nodiscard]] std::vector<StrategyEvaluation> evaluate_all_strategies(
    const std::vector<double>& speeds, double n,
    const StrategyOptions& options = {});

/// The paper's Section 4.1.3 lower bound on the ratio
/// ρ = Comm_hom / Comm_het >= (4/7)·Σs_i / (√s_1·Σ√s_i).
[[nodiscard]] double rho_lower_bound(const std::vector<double>& speeds);

/// Closed form for the two-class platform of Section 4.1.3:
/// ρ >= (1+k)/(1+√k) >= √k − 1.
[[nodiscard]] double rho_two_class_bound(double k);

}  // namespace nldl::core
