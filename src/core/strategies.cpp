#include "core/strategies.hpp"

#include <cmath>

#include "partition/lower_bound.hpp"
#include "partition/peri_sum.hpp"
#include "util/assert.hpp"

namespace nldl::core {

std::string to_string(Strategy strategy) {
  switch (strategy) {
    case Strategy::kHomogeneousBlocks:
      return "Comm_hom";
    case Strategy::kHomogeneousBlocksRefined:
      return "Comm_hom/k";
    case Strategy::kHeterogeneousBlocks:
      return "Comm_het";
  }
  NLDL_ASSERT(false, "unknown Strategy");
}

StrategyEvaluation evaluate_strategy(Strategy strategy,
                                     const std::vector<double>& speeds,
                                     double n,
                                     const StrategyOptions& options) {
  NLDL_REQUIRE(!speeds.empty(), "at least one worker required");
  NLDL_REQUIRE(n > 0.0, "domain size must be positive");

  StrategyEvaluation eval;
  eval.strategy = strategy;
  eval.lower_bound = partition::comm_lower_bound(speeds, n);

  switch (strategy) {
    case Strategy::kHomogeneousBlocks: {
      const auto blocks =
          partition::homogeneous_blocks_demand_driven(speeds, n, 1);
      eval.comm_volume = blocks.comm_volume;
      eval.load_imbalance = blocks.imbalance;
      eval.idle_workers = blocks.idle_workers;
      eval.refinement_k = 1;
      eval.num_chunks = blocks.num_blocks;
      break;
    }
    case Strategy::kHomogeneousBlocksRefined: {
      const auto blocks = partition::refine_until_balanced(
          speeds, n, options.imbalance_target, options.max_k);
      eval.comm_volume = blocks.comm_volume;
      eval.load_imbalance = blocks.imbalance;
      eval.idle_workers = blocks.idle_workers;
      eval.refinement_k = blocks.k;
      eval.num_chunks = blocks.num_blocks;
      break;
    }
    case Strategy::kHeterogeneousBlocks: {
      const auto part = partition::peri_sum_partition(speeds);
      eval.comm_volume = n * part.total_half_perimeter;
      eval.load_imbalance = 0.0;  // areas exactly proportional to speeds
      eval.refinement_k = 1;
      eval.num_chunks = static_cast<long long>(speeds.size());
      break;
    }
  }
  eval.ratio_to_lower_bound = eval.comm_volume / eval.lower_bound;
  return eval;
}

std::vector<StrategyEvaluation> evaluate_all_strategies(
    const std::vector<double>& speeds, double n,
    const StrategyOptions& options) {
  return {
      evaluate_strategy(Strategy::kHomogeneousBlocks, speeds, n, options),
      evaluate_strategy(Strategy::kHomogeneousBlocksRefined, speeds, n,
                        options),
      evaluate_strategy(Strategy::kHeterogeneousBlocks, speeds, n, options),
  };
}

double rho_lower_bound(const std::vector<double>& speeds) {
  NLDL_REQUIRE(!speeds.empty(), "at least one worker required");
  double total = 0.0;
  double sqrt_sum = 0.0;
  double slowest = speeds.front();
  for (const double s : speeds) {
    NLDL_REQUIRE(s > 0.0, "speeds must be positive");
    total += s;
    sqrt_sum += std::sqrt(s);
    slowest = std::min(slowest, s);
  }
  return 4.0 / 7.0 * total / (std::sqrt(slowest) * sqrt_sum);
}

double rho_two_class_bound(double k) {
  NLDL_REQUIRE(k >= 1.0, "speed ratio k must be >= 1");
  return (1.0 + k) / (1.0 + std::sqrt(k));
}

}  // namespace nldl::core
