#include "core/no_free_lunch.hpp"

#include "dlt/analysis.hpp"
#include "dlt/nonlinear_dlt.hpp"
#include "util/assert.hpp"

namespace nldl::core {

NflPoint remaining_fraction_on(const platform::Platform& platform,
                               double alpha, double total_load) {
  NflPoint point;
  point.p = platform.size();
  point.alpha = alpha;
  point.closed_form = dlt::remaining_fraction_homogeneous(platform.size(),
                                                          alpha);
  point.simulated_parallel =
      dlt::nonlinear_parallel_single_round(platform, total_load, alpha)
          .remaining_fraction;
  point.simulated_one_port =
      dlt::nonlinear_one_port_single_round(platform, total_load, alpha)
          .remaining_fraction;
  return point;
}

std::vector<NflPoint> remaining_fraction_sweep(
    const std::vector<std::size_t>& processor_counts, double alpha,
    double total_load) {
  NLDL_REQUIRE(!processor_counts.empty(), "need at least one p value");
  std::vector<NflPoint> points;
  points.reserve(processor_counts.size());
  for (const std::size_t p : processor_counts) {
    points.push_back(remaining_fraction_on(
        platform::Platform::homogeneous(p), alpha, total_load));
  }
  return points;
}

std::vector<SortingPoint> sorting_fraction_sweep(
    const std::vector<double>& ns, const std::vector<std::size_t>& ps) {
  NLDL_REQUIRE(!ns.empty() && !ps.empty(), "need at least one sweep point");
  std::vector<SortingPoint> points;
  points.reserve(ns.size() * ps.size());
  for (const double n : ns) {
    for (const std::size_t p : ps) {
      SortingPoint point;
      point.n = n;
      point.p = p;
      point.fraction = dlt::sorting_remaining_fraction(n, p);
      point.step1 = dlt::sample_sort_step1_cost(n, p);
      point.step2 = dlt::sample_sort_step2_cost(n, p);
      point.step3 = dlt::sample_sort_step3_cost(n, p);
      point.preprocessing_ratio =
          (point.step1 + point.step2) /
          (static_cast<double>(p) * point.step3);
      points.push_back(point);
    }
  }
  return points;
}

util::Table nfl_table(const std::vector<NflPoint>& points) {
  util::Table table({"p", "alpha", "1-1/p^(a-1)", "parallel-links",
                     "one-port"});
  for (const NflPoint& point : points) {
    table.row()
        .cell(point.p)
        .cell(point.alpha, 2)
        .cell(point.closed_form, 6)
        .cell(point.simulated_parallel, 6)
        .cell(point.simulated_one_port, 6)
        .done();
  }
  return table;
}

util::Table sorting_table(const std::vector<SortingPoint>& points) {
  util::Table table({"N", "p", "log p/log N", "step1", "step2", "step3",
                     "preproc/parallel"});
  for (const SortingPoint& point : points) {
    table.row()
        .cell(point.n, 0)
        .cell(point.p)
        .cell(point.fraction, 5)
        .cell(point.step1, 0)
        .cell(point.step2, 0)
        .cell(point.step3, 0)
        .cell(point.preprocessing_ratio, 5)
        .done();
  }
  return table;
}

}  // namespace nldl::core
