#include "core/experiments.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace nldl::core {

std::vector<Fig4Row> run_fig4(const Fig4Config& config) {
  NLDL_REQUIRE(config.trials >= 1, "at least one trial required");
  NLDL_REQUIRE(!config.processor_counts.empty(),
               "at least one processor count required");

  std::vector<Fig4Row> rows;
  rows.reserve(config.processor_counts.size());
  util::Rng master(config.seed);

  for (const std::size_t p : config.processor_counts) {
    Fig4Row row;
    row.p = p;
    for (std::size_t trial = 0; trial < config.trials; ++trial) {
      util::Rng rng = master.split();
      const platform::Platform plat = platform::make_platform(
          config.model, p, rng, config.model_params);
      const std::vector<double> speeds = plat.speeds();

      const auto het = evaluate_strategy(Strategy::kHeterogeneousBlocks,
                                         speeds, config.domain_n,
                                         config.strategy_options);
      const auto hom = evaluate_strategy(Strategy::kHomogeneousBlocks,
                                         speeds, config.domain_n,
                                         config.strategy_options);
      const auto hom_k = evaluate_strategy(
          Strategy::kHomogeneousBlocksRefined, speeds, config.domain_n,
          config.strategy_options);

      row.het.push(het.ratio_to_lower_bound);
      row.hom.push(hom.ratio_to_lower_bound);
      row.hom_k.push(hom_k.ratio_to_lower_bound);
      row.k_used.push(static_cast<double>(hom_k.refinement_k));
      if (std::isfinite(hom.load_imbalance)) {
        row.hom_imbalance.push(hom.load_imbalance);
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

util::Table fig4_table(const std::vector<Fig4Row>& rows) {
  util::Table table({"p", "Comm_het/LB (mean)", "Comm_het/LB (sd)",
                     "Comm_hom/LB (mean)", "Comm_hom/LB (sd)",
                     "Comm_hom/k/LB (mean)", "Comm_hom/k/LB (sd)",
                     "k (mean)"});
  for (const Fig4Row& row : rows) {
    table.row()
        .cell(row.p)
        .cell(row.het.mean(), 4)
        .cell(row.het.stddev(), 4)
        .cell(row.hom.mean(), 3)
        .cell(row.hom.stddev(), 3)
        .cell(row.hom_k.mean(), 3)
        .cell(row.hom_k.stddev(), 3)
        .cell(row.k_used.mean(), 2)
        .done();
  }
  return table;
}

}  // namespace nldl::core
