#include "core/experiments.hpp"

#include <cmath>

#include "dlt/analysis.hpp"
#include "sim/engine.hpp"
#include "util/assert.hpp"
#include "util/sweep.hpp"

namespace nldl::core {

namespace {

/// Everything one trial contributes to its Fig4Row. Trials are evaluated
/// in any order (possibly concurrently) but reduced strictly in trial
/// order, which keeps the Welford accumulators bit-identical to a serial
/// sweep.
struct TrialOutcome {
  double het = 0.0;
  double hom = 0.0;
  double hom_k = 0.0;
  double k_used = 0.0;
  double hom_imbalance = 0.0;
  bool hom_idle = false;  ///< Comm_hom starved at least one worker
};

TrialOutcome evaluate_trial(const Fig4Config& config, std::size_t p,
                            util::Rng rng) {
  const platform::Platform plat =
      platform::make_platform(config.model, p, rng, config.model_params);
  const std::vector<double> speeds = plat.speeds();

  const auto het = evaluate_strategy(Strategy::kHeterogeneousBlocks, speeds,
                                     config.domain_n,
                                     config.strategy_options);
  const auto hom = evaluate_strategy(Strategy::kHomogeneousBlocks, speeds,
                                     config.domain_n,
                                     config.strategy_options);
  const auto hom_k = evaluate_strategy(Strategy::kHomogeneousBlocksRefined,
                                       speeds, config.domain_n,
                                       config.strategy_options);

  TrialOutcome outcome;
  outcome.het = het.ratio_to_lower_bound;
  outcome.hom = hom.ratio_to_lower_bound;
  outcome.hom_k = hom_k.ratio_to_lower_bound;
  outcome.k_used = static_cast<double>(hom_k.refinement_k);
  outcome.hom_imbalance = hom.load_imbalance;
  outcome.hom_idle = hom.idle_workers > 0;
  return outcome;
}

}  // namespace

std::vector<Fig4Row> run_fig4(const Fig4Config& config) {
  NLDL_REQUIRE(config.trials >= 1, "at least one trial required");
  NLDL_REQUIRE(!config.processor_counts.empty(),
               "at least one processor count required");

  // The sweep grid: p (outer) × trial (inner), the exact flat order the
  // original serial loop used. util::Sweep pre-splits one RNG sub-stream
  // per point in that order and dispatches onto a thread pool, so the
  // sampled platforms are independent of the thread count.
  std::vector<double> ps;
  ps.reserve(config.processor_counts.size());
  for (const std::size_t p : config.processor_counts) {
    ps.push_back(static_cast<double>(p));
  }
  util::Grid grid;
  grid.axis("p", std::move(ps)).axis("trial", config.trials);

  util::SweepOptions options;
  options.threads = config.threads;
  options.seed = config.seed;
  const util::Sweep sweep(std::move(grid), options);

  const std::vector<TrialOutcome> outcomes = sweep.map<TrialOutcome>(
      [&config](const util::SweepPoint& point, util::Rng& rng) {
        const auto p = static_cast<std::size_t>(point.value("p"));
        return evaluate_trial(config, p, rng);
      });

  // Deterministic reduction: push every trial in flat (p-major) order.
  std::vector<Fig4Row> rows;
  rows.reserve(config.processor_counts.size());
  for (std::size_t pi = 0; pi < config.processor_counts.size(); ++pi) {
    Fig4Row row;
    row.p = config.processor_counts[pi];
    for (std::size_t trial = 0; trial < config.trials; ++trial) {
      const TrialOutcome& outcome = outcomes[pi * config.trials + trial];
      row.het.push(outcome.het);
      row.hom.push(outcome.hom);
      row.hom_k.push(outcome.hom_k);
      row.k_used.push(outcome.k_used);
      // The imbalance is finite by construction now; if it ever stops
      // being finite the trial is *counted* as dropped, never silently
      // hidden from the statistic.
      if (std::isfinite(outcome.hom_imbalance)) {
        row.hom_imbalance.push(outcome.hom_imbalance);
      } else {
        ++row.hom_imbalance_dropped;
      }
      if (outcome.hom_idle) ++row.hom_idle_trials;
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

util::Table fig4_table(const std::vector<Fig4Row>& rows) {
  util::Table table({"p", "Comm_het/LB (mean)", "Comm_het/LB (sd)",
                     "Comm_hom/LB (mean)", "Comm_hom/LB (sd)",
                     "Comm_hom/k/LB (mean)", "Comm_hom/k/LB (sd)",
                     "k (mean)"});
  for (const Fig4Row& row : rows) {
    table.row()
        .cell(row.p)
        .cell(row.het.mean(), 4)
        .cell(row.het.stddev(), 4)
        .cell(row.hom.mean(), 3)
        .cell(row.hom.stddev(), 3)
        .cell(row.hom_k.mean(), 3)
        .cell(row.hom_k.stddev(), 3)
        .cell(row.k_used.mean(), 2)
        .done();
  }
  return table;
}

std::vector<CapacitySweepRow> capacity_sweep(
    const CapacitySweepConfig& config) {
  NLDL_REQUIRE(config.p >= 1, "at least one worker required");
  NLDL_REQUIRE(config.alpha >= 1.0, "alpha must be >= 1");
  NLDL_REQUIRE(config.total_load >= 0.0, "total_load must be >= 0");
  NLDL_REQUIRE(!config.capacities.empty(),
               "at least one capacity required");

  const platform::Platform plat =
      platform::Platform::homogeneous(config.p, config.c, config.w);
  const sim::Engine engine(plat, sim::EngineOptions{config.alpha});
  const std::vector<double> amounts(
      config.p, config.total_load / static_cast<double>(config.p));
  const double covered =
      1.0 - dlt::remaining_fraction_homogeneous(config.p, config.alpha);

  // One grid point per master capacity; the engine replay is pure, so the
  // points can run on any number of threads (bit-identical results).
  util::Grid grid;
  grid.axis("capacity", config.capacities);
  util::SweepOptions options;
  options.threads = config.threads;
  const util::Sweep sweep(std::move(grid), options);
  return sweep.map<CapacitySweepRow>(
      [&](const util::SweepPoint& point, util::Rng&) {
        const double capacity = point.value("capacity");
        const sim::BoundedMultiportModel model(capacity);
        const sim::SimResult result = engine.run_single_round(amounts, model);
        CapacitySweepRow row;
        row.capacity = capacity;
        for (const sim::ChunkSpan& span : result.spans) {
          row.comm_phase_end = std::max(row.comm_phase_end, span.comm_end);
        }
        row.makespan = result.makespan;
        row.covered_fraction = covered;
        return row;
      });
}

util::Table capacity_sweep_table(const std::vector<CapacitySweepRow>& rows) {
  util::Table table({"master capacity", "comm phase ends", "round makespan",
                     "work covered"});
  for (const CapacitySweepRow& row : rows) {
    table.row()
        .cell(std::isfinite(row.capacity)
                  ? util::format_double(row.capacity, 0)
                  : std::string("inf (parallel links)"))
        .cell(row.comm_phase_end, 1)
        .cell(row.makespan, 1)
        .cell(row.covered_fraction, 6)
        .done();
  }
  return table;
}

}  // namespace nldl::core
