#include "core/experiments.hpp"

#include <cmath>
#include <thread>

#include "dlt/analysis.hpp"
#include "sim/engine.hpp"
#include "util/assert.hpp"
#include "util/threadpool.hpp"

namespace nldl::core {

namespace {

/// Everything one trial contributes to its Fig4Row. Trials are evaluated
/// in any order (possibly concurrently) but reduced strictly in trial
/// order, which keeps the Welford accumulators bit-identical to a serial
/// sweep.
struct TrialOutcome {
  double het = 0.0;
  double hom = 0.0;
  double hom_k = 0.0;
  double k_used = 0.0;
  double hom_imbalance = 0.0;
};

TrialOutcome evaluate_trial(const Fig4Config& config, std::size_t p,
                            util::Rng rng) {
  const platform::Platform plat =
      platform::make_platform(config.model, p, rng, config.model_params);
  const std::vector<double> speeds = plat.speeds();

  const auto het = evaluate_strategy(Strategy::kHeterogeneousBlocks, speeds,
                                     config.domain_n,
                                     config.strategy_options);
  const auto hom = evaluate_strategy(Strategy::kHomogeneousBlocks, speeds,
                                     config.domain_n,
                                     config.strategy_options);
  const auto hom_k = evaluate_strategy(Strategy::kHomogeneousBlocksRefined,
                                       speeds, config.domain_n,
                                       config.strategy_options);

  TrialOutcome outcome;
  outcome.het = het.ratio_to_lower_bound;
  outcome.hom = hom.ratio_to_lower_bound;
  outcome.hom_k = hom_k.ratio_to_lower_bound;
  outcome.k_used = static_cast<double>(hom_k.refinement_k);
  outcome.hom_imbalance = hom.load_imbalance;
  return outcome;
}

}  // namespace

std::vector<Fig4Row> run_fig4(const Fig4Config& config) {
  NLDL_REQUIRE(config.trials >= 1, "at least one trial required");
  NLDL_REQUIRE(!config.processor_counts.empty(),
               "at least one processor count required");

  // Pre-split one RNG sub-stream per (p, trial) pair, in the exact order a
  // serial sweep consumes them. Splitting is cheap (a jump-ahead), and it
  // decouples every trial from the others: the sweep can then run on any
  // number of threads without touching the sampled platforms.
  const std::size_t total = config.processor_counts.size() * config.trials;
  util::Rng master(config.seed);
  std::vector<util::Rng> streams;
  streams.reserve(total);
  for (std::size_t i = 0; i < total; ++i) streams.push_back(master.split());

  std::vector<TrialOutcome> outcomes(total);
  auto run_one = [&](std::size_t index) {
    const std::size_t p = config.processor_counts[index / config.trials];
    outcomes[index] = evaluate_trial(config, p, streams[index]);
  };

  std::size_t threads = config.threads;
  if (threads == 0) {
    threads = std::max(1U, std::thread::hardware_concurrency());
  }
  if (threads == 1 || total == 1) {
    for (std::size_t i = 0; i < total; ++i) run_one(i);
  } else {
    util::ThreadPool pool(std::min(threads, total));
    util::parallel_for(pool, 0, total, 1, run_one);
  }

  // Deterministic reduction: push every trial in trial order.
  std::vector<Fig4Row> rows;
  rows.reserve(config.processor_counts.size());
  for (std::size_t pi = 0; pi < config.processor_counts.size(); ++pi) {
    Fig4Row row;
    row.p = config.processor_counts[pi];
    for (std::size_t trial = 0; trial < config.trials; ++trial) {
      const TrialOutcome& outcome = outcomes[pi * config.trials + trial];
      row.het.push(outcome.het);
      row.hom.push(outcome.hom);
      row.hom_k.push(outcome.hom_k);
      row.k_used.push(outcome.k_used);
      if (std::isfinite(outcome.hom_imbalance)) {
        row.hom_imbalance.push(outcome.hom_imbalance);
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

util::Table fig4_table(const std::vector<Fig4Row>& rows) {
  util::Table table({"p", "Comm_het/LB (mean)", "Comm_het/LB (sd)",
                     "Comm_hom/LB (mean)", "Comm_hom/LB (sd)",
                     "Comm_hom/k/LB (mean)", "Comm_hom/k/LB (sd)",
                     "k (mean)"});
  for (const Fig4Row& row : rows) {
    table.row()
        .cell(row.p)
        .cell(row.het.mean(), 4)
        .cell(row.het.stddev(), 4)
        .cell(row.hom.mean(), 3)
        .cell(row.hom.stddev(), 3)
        .cell(row.hom_k.mean(), 3)
        .cell(row.hom_k.stddev(), 3)
        .cell(row.k_used.mean(), 2)
        .done();
  }
  return table;
}

std::vector<CapacitySweepRow> capacity_sweep(
    const CapacitySweepConfig& config) {
  NLDL_REQUIRE(config.p >= 1, "at least one worker required");
  NLDL_REQUIRE(config.alpha >= 1.0, "alpha must be >= 1");
  NLDL_REQUIRE(config.total_load >= 0.0, "total_load must be >= 0");
  NLDL_REQUIRE(!config.capacities.empty(),
               "at least one capacity required");

  const platform::Platform plat =
      platform::Platform::homogeneous(config.p, config.c, config.w);
  const sim::Engine engine(plat, sim::EngineOptions{config.alpha});
  const std::vector<double> amounts(
      config.p, config.total_load / static_cast<double>(config.p));
  const double covered =
      1.0 - dlt::remaining_fraction_homogeneous(config.p, config.alpha);

  std::vector<CapacitySweepRow> rows;
  rows.reserve(config.capacities.size());
  for (const double capacity : config.capacities) {
    const sim::BoundedMultiportModel model(capacity);
    const sim::SimResult result = engine.run_single_round(amounts, model);
    CapacitySweepRow row;
    row.capacity = capacity;
    for (const sim::ChunkSpan& span : result.spans) {
      row.comm_phase_end = std::max(row.comm_phase_end, span.comm_end);
    }
    row.makespan = result.makespan;
    row.covered_fraction = covered;
    rows.push_back(row);
  }
  return rows;
}

util::Table capacity_sweep_table(const std::vector<CapacitySweepRow>& rows) {
  util::Table table({"master capacity", "comm phase ends", "round makespan",
                     "work covered"});
  for (const CapacitySweepRow& row : rows) {
    table.row()
        .cell(std::isfinite(row.capacity)
                  ? util::format_double(row.capacity, 0)
                  : std::string("inf (parallel links)"))
        .cell(row.comm_phase_end, 1)
        .cell(row.makespan, 1)
        .cell(row.covered_fraction, 6)
        .done();
  }
  return table;
}

}  // namespace nldl::core
