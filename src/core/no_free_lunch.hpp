// The paper's Section 2/3 quantitative claims as runnable sweeps:
//   - nonlinear loads: the fraction of work a DLT round leaves undone
//     (closed form 1 − 1/p^(α−1) vs the solved allocations);
//   - sorting: the almost-linear fraction log p / log N and the
//     sample-sort phase costs.
#pragma once

#include <cstddef>
#include <vector>

#include "platform/platform.hpp"
#include "util/table.hpp"

namespace nldl::core {

struct NflPoint {
  std::size_t p = 0;
  double alpha = 1.0;
  double closed_form = 0.0;          ///< 1 − 1/p^(α−1)
  double simulated_parallel = 0.0;   ///< solved allocation, parallel links
  double simulated_one_port = 0.0;   ///< solved allocation, one-port
};

/// Remaining-work fraction on homogeneous platforms (c = w = 1) for each
/// processor count, comparing the closed form with both solved models.
[[nodiscard]] std::vector<NflPoint> remaining_fraction_sweep(
    const std::vector<std::size_t>& processor_counts, double alpha,
    double total_load);

/// Same on an arbitrary (possibly heterogeneous) platform; closed_form is
/// filled with the homogeneous formula for reference.
[[nodiscard]] NflPoint remaining_fraction_on(
    const platform::Platform& platform, double alpha, double total_load);

struct SortingPoint {
  double n = 0.0;
  std::size_t p = 0;
  double fraction = 0.0;  ///< log p / log N
  double step1 = 0.0;     ///< s·p·log(s·p)
  double step2 = 0.0;     ///< N·log p
  double step3 = 0.0;     ///< (N/p)·log N
  /// (step1 + step2) / (p·step3): preprocessing vs the parallel phase's
  /// total work — tends to 0, showing sorting is almost divisible.
  double preprocessing_ratio = 0.0;
};

[[nodiscard]] std::vector<SortingPoint> sorting_fraction_sweep(
    const std::vector<double>& ns, const std::vector<std::size_t>& ps);

[[nodiscard]] util::Table nfl_table(const std::vector<NflPoint>& points);
[[nodiscard]] util::Table sorting_table(const std::vector<SortingPoint>& points);

}  // namespace nldl::core
