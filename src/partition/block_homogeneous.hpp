// The Homogeneous Blocks strategy (paper Section 4.1.1) and its realistic
// refinement Comm_hom/k (Section 4.3).
//
// The N×N computational domain is split into square blocks of dimension
// D = √x₁·N (x₁ = normalized speed of the *slowest* worker), so the slowest
// worker handles exactly one block. Blocks are handed out demand-driven:
// each worker grabs a new block as soon as it finishes one — exactly the
// MapReduce task-pull model. Every block ships its own 2D inputs, with no
// reuse across blocks, so
//   Comm_hom = (#blocks) · 2D = 2N·√(Σ s_i / s₁).
//
// With integer block counts the demand-driven assignment can leave a large
// load imbalance e = (t_max − t_min)/t_min. The Comm_hom/k strategy divides
// the block *size* (its area, i.e. the amount of computation per block) by
// k = 1, 2, 3, … until e ≤ 1 %: block dimension D/√k, k/x₁ blocks, √k× the
// communication volume, much better balance. (Dividing the *dimension* by
// k instead would cost k× the volume — well above the 15–30× ratios the
// paper reports, which is how we disambiguated the paper's wording.)
#pragma once

#include <cstdint>
#include <vector>

namespace nldl::partition {

/// Continuous-model quantities (the paper's closed formulas).
struct HomogeneousBlocksFormula {
  double block_dim = 0.0;    ///< D = √x₁·N
  double num_blocks = 0.0;   ///< 1/x₁ (not necessarily integer)
  double comm_volume = 0.0;  ///< 2N/√x₁ = 2N·√(Σ s_i / s₁)
};

[[nodiscard]] HomogeneousBlocksFormula homogeneous_blocks_formula(
    const std::vector<double>& speeds, double n);

/// Discrete demand-driven evaluation for refinement divisor k.
struct DemandDrivenBlocks {
  int k = 1;                    ///< block *area* divisor
  long long num_blocks = 0;     ///< total blocks handed out
  double block_dim = 0.0;       ///< D/√k
  std::vector<long long> blocks_per_worker;
  double comm_volume = 0.0;     ///< num_blocks · 2·block_dim
  double makespan = 0.0;        ///< max_i blocks_i · w_i · block_dim²
  /// e = (t_max − t_min)/t_min over the workers that received at least one
  /// block. Always finite: workers left without a block are a granularity
  /// failure reported via idle_workers, not an infinite imbalance.
  double imbalance = 0.0;
  /// Workers that received no block at all (too few blocks for p).
  std::size_t idle_workers = 0;
};

/// Evaluate Comm_hom/k for a fixed k (k = 1 is plain Comm_hom). Block
/// counts follow the demand-driven pull: worker i finishes blocks at
/// multiples of w_i·(D/k)², and blocks are claimed in global finish-time
/// order. Computed in O(p·log) via an order-statistic argument (see
/// demand_driven_counts); an O(B·log p) event simulation is available for
/// cross-checking.
[[nodiscard]] DemandDrivenBlocks homogeneous_blocks_demand_driven(
    const std::vector<double>& speeds, double n, int k);

/// The paper's refinement loop: smallest k with every worker busy and
/// imbalance <= target_e (default 1 %). Gives up (returning the last k
/// tried) after max_k.
[[nodiscard]] DemandDrivenBlocks refine_until_balanced(
    const std::vector<double>& speeds, double n, double target_e = 0.01,
    int max_k = 512);

/// Closed-form demand-driven block counts: hand out `num_blocks` identical
/// blocks where worker i takes time tau_i per block; returns how many each
/// worker completes under the "grab when free" policy (ties broken by
/// lower worker index).
[[nodiscard]] std::vector<long long> demand_driven_counts(
    const std::vector<double>& tau, long long num_blocks);

/// Reference event-driven simulation of the same policy (for tests; O(B·log p)).
[[nodiscard]] std::vector<long long> demand_driven_counts_simulated(
    const std::vector<double>& tau, long long num_blocks);

}  // namespace nldl::partition
