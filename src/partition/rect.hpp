// Rectangle geometry for the square-partitioning algorithms (Section 4).
#pragma once

#include <cstddef>

namespace nldl::partition {

/// Axis-aligned rectangle in the continuous unit square (or any scaled
/// domain). `x`/`y` is the lower-left corner.
struct Rect {
  double x = 0.0;
  double y = 0.0;
  double width = 0.0;
  double height = 0.0;

  [[nodiscard]] double area() const noexcept { return width * height; }

  /// The paper's communication cost for a processor owning this rectangle
  /// of the computational domain: it needs `width` elements of one input
  /// vector and `height` of the other, i.e. the half-perimeter.
  [[nodiscard]] double half_perimeter() const noexcept {
    return width + height;
  }

  [[nodiscard]] bool contains(double px, double py) const noexcept {
    return px >= x && px < x + width && py >= y && py < y + height;
  }

  /// True if the interiors of the two rectangles intersect. Zero-area
  /// rectangles have empty interiors and never overlap anything.
  [[nodiscard]] bool overlaps(const Rect& other) const noexcept {
    if (area() <= 0.0 || other.area() <= 0.0) return false;
    return x < other.x + other.width && other.x < x + width &&
           y < other.y + other.height && other.y < y + height;
  }
};

/// Integer rectangle on an N×N element grid (discretized layouts).
struct IRect {
  long long x = 0;
  long long y = 0;
  long long width = 0;
  long long height = 0;

  [[nodiscard]] long long area() const noexcept { return width * height; }
  [[nodiscard]] long long half_perimeter() const noexcept {
    return width + height;
  }
};

}  // namespace nldl::partition
