#include "partition/peri_sum.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/assert.hpp"

namespace nldl::partition {

namespace {

void validate_and_normalize(std::vector<double>& areas) {
  NLDL_REQUIRE(!areas.empty(), "partition requires at least one area");
  double total = 0.0;
  for (const double a : areas) {
    NLDL_REQUIRE(a > 0.0, "areas must be positive");
    total += a;
  }
  for (double& a : areas) a /= total;
}

/// Sorted order of indices by non-decreasing area.
std::vector<std::size_t> sorted_order(const std::vector<double>& areas) {
  std::vector<std::size_t> order(areas.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return areas[a] < areas[b];
  });
  return order;
}

/// Lay out columns (given as contiguous groups of the sorted order) in the
/// unit square and build the result structure.
ColumnPartition realize(const std::vector<double>& areas,
                        const std::vector<std::size_t>& order,
                        const std::vector<std::size_t>& column_sizes) {
  ColumnPartition out;
  out.rects.assign(areas.size(), Rect{});
  double x = 0.0;
  std::size_t cursor = 0;
  for (const std::size_t count : column_sizes) {
    NLDL_ASSERT(count >= 1, "empty column in realize()");
    double width = 0.0;
    for (std::size_t j = 0; j < count; ++j) {
      width += areas[order[cursor + j]];
    }
    std::vector<std::size_t> members;
    members.reserve(count);
    double y = 0.0;
    for (std::size_t j = 0; j < count; ++j) {
      const std::size_t index = order[cursor + j];
      const double height = areas[index] / width;
      out.rects[index] = Rect{x, y, width, height};
      members.push_back(index);
      y += height;
    }
    // Snap the top of the column to exactly 1 (fold rounding residue into
    // the last rectangle).
    if (!members.empty()) {
      Rect& top = out.rects[members.back()];
      top.height += 1.0 - y;
    }
    out.columns.push_back(std::move(members));
    out.column_widths.push_back(width);
    cursor += count;
    x += width;
  }
  // Snap the right edge of the last column to exactly 1, keeping its left
  // edge fixed (so the snap can never overlap the previous column).
  if (!out.columns.empty()) {
    const double left = x - out.column_widths.back();
    for (const std::size_t index : out.columns.back()) {
      out.rects[index].width = 1.0 - left;
    }
    out.column_widths.back() = 1.0 - left;
  }
  out.total_half_perimeter = 0.0;
  out.max_half_perimeter = 0.0;
  for (const Rect& rect : out.rects) {
    out.total_half_perimeter += rect.half_perimeter();
    out.max_half_perimeter =
        std::max(out.max_half_perimeter, rect.half_perimeter());
  }
  return out;
}

}  // namespace

double peri_sum_lower_bound(const std::vector<double>& areas) {
  NLDL_REQUIRE(!areas.empty(), "lower bound requires at least one area");
  double bound = 0.0;
  for (const double a : areas) {
    NLDL_REQUIRE(a > 0.0, "areas must be positive");
    bound += std::sqrt(a);
  }
  return 2.0 * bound;
}

ColumnPartition peri_sum_partition(std::vector<double> areas) {
  validate_and_normalize(areas);
  const std::size_t p = areas.size();
  const std::vector<std::size_t> order = sorted_order(areas);

  // Prefix sums of the sorted areas.
  std::vector<double> prefix(p + 1, 0.0);
  for (std::size_t i = 0; i < p; ++i) {
    prefix[i + 1] = prefix[i] + areas[order[i]];
  }

  // DP over contiguous groups of the sorted areas:
  //   best[i] = min cost of packing the first i sorted areas into columns,
  //   cost of a column holding sorted areas (j..i-1] = 1 + (i-j)·(width),
  //   width = prefix[i] - prefix[j].
  // (Column cost = k·c + 1; see the header comment.)
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> best(p + 1, kInf);
  std::vector<std::size_t> split(p + 1, 0);
  best[0] = 0.0;
  for (std::size_t i = 1; i <= p; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      const double width = prefix[i] - prefix[j];
      const double cost =
          best[j] + 1.0 + static_cast<double>(i - j) * width;
      if (cost < best[i]) {
        best[i] = cost;
        split[i] = j;
      }
    }
  }

  // Recover column sizes (from the last column backwards).
  std::vector<std::size_t> column_sizes;
  for (std::size_t i = p; i > 0; i = split[i]) {
    column_sizes.push_back(i - split[i]);
  }
  std::reverse(column_sizes.begin(), column_sizes.end());

  ColumnPartition result = realize(areas, order, column_sizes);
  // Cross-check the DP objective against the realized geometry.
  NLDL_ASSERT(std::abs(result.total_half_perimeter - best[p]) <=
                  1e-9 * std::max(1.0, best[p]),
              "PERI-SUM DP cost disagrees with realized geometry");
  return result;
}

ColumnPartition column_partition_with_sizes(
    std::vector<double> areas, const std::vector<std::size_t>& column_sizes) {
  validate_and_normalize(areas);
  std::size_t total = 0;
  for (const std::size_t count : column_sizes) {
    NLDL_REQUIRE(count >= 1, "column sizes must be >= 1");
    total += count;
  }
  NLDL_REQUIRE(total == areas.size(),
               "column sizes must cover every area exactly once");
  return realize(areas, sorted_order(areas), column_sizes);
}

}  // namespace nldl::partition
