#include "partition/layout.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/assert.hpp"

namespace nldl::partition {

std::vector<long long> apportion(const std::vector<double>& weights,
                                 long long total) {
  NLDL_REQUIRE(!weights.empty(), "apportion requires at least one weight");
  NLDL_REQUIRE(total >= 0, "apportion requires total >= 0");
  double weight_sum = 0.0;
  for (const double w : weights) {
    NLDL_REQUIRE(w >= 0.0, "weights must be >= 0");
    weight_sum += w;
  }
  NLDL_REQUIRE(weight_sum > 0.0, "weights must not all be zero");

  const std::size_t count = weights.size();
  std::vector<long long> out(count, 0);
  std::vector<double> remainders(count, 0.0);
  long long assigned = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const double exact =
        static_cast<double>(total) * weights[i] / weight_sum;
    out[i] = static_cast<long long>(std::floor(exact));
    remainders[i] = exact - static_cast<double>(out[i]);
    assigned += out[i];
  }
  // Distribute the residue to the largest remainders (ties: lower index).
  std::vector<std::size_t> order(count);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (remainders[a] != remainders[b]) return remainders[a] > remainders[b];
    return a < b;
  });
  long long residue = total - assigned;
  NLDL_ASSERT(residue >= 0 && residue <= static_cast<long long>(count),
              "apportion residue out of range");
  for (long long r = 0; r < residue; ++r) {
    ++out[order[static_cast<std::size_t>(r)]];
  }
  return out;
}

GridLayout discretize(const ColumnPartition& partition, long long n) {
  NLDL_REQUIRE(n >= 1, "grid dimension must be >= 1");
  GridLayout layout;
  layout.n = n;
  layout.rects.assign(partition.rects.size(), IRect{});

  // Integer column widths proportional to the continuous widths.
  const std::vector<long long> widths = apportion(partition.column_widths, n);

  long long x = 0;
  for (std::size_t col = 0; col < partition.columns.size(); ++col) {
    const auto& members = partition.columns[col];
    const long long width = widths[col];
    // Integer heights proportional to member areas within the column.
    std::vector<double> member_areas;
    member_areas.reserve(members.size());
    for (const std::size_t index : members) {
      member_areas.push_back(partition.rects[index].area());
    }
    const std::vector<long long> heights = apportion(member_areas, n);
    long long y = 0;
    for (std::size_t j = 0; j < members.size(); ++j) {
      layout.rects[members[j]] = IRect{x, y, width, heights[j]};
      y += heights[j];
    }
    NLDL_ASSERT(y == n, "column heights must sum to n");
    x += width;
  }
  NLDL_ASSERT(x == n, "column widths must sum to n");

  layout.total_half_perimeter = 0;
  layout.max_share_error = 0.0;
  const double n_sq = static_cast<double>(n) * static_cast<double>(n);
  for (std::size_t i = 0; i < layout.rects.size(); ++i) {
    const IRect& rect = layout.rects[i];
    if (rect.area() > 0) {
      layout.total_half_perimeter += rect.half_perimeter();
    }
    const double share = static_cast<double>(rect.area()) / n_sq;
    layout.max_share_error = std::max(
        layout.max_share_error, std::abs(share - partition.rects[i].area()));
  }
  return layout;
}

bool verify_exact_cover(const GridLayout& layout) {
  const long long n = layout.n;
  long long area = 0;
  for (const IRect& rect : layout.rects) {
    if (rect.width < 0 || rect.height < 0) return false;
    if (rect.area() == 0) continue;
    if (rect.x < 0 || rect.y < 0 || rect.x + rect.width > n ||
        rect.y + rect.height > n) {
      return false;
    }
    area += rect.area();
  }
  if (area != n * n) return false;
  // Pairwise disjointness of non-empty rectangles.
  for (std::size_t i = 0; i < layout.rects.size(); ++i) {
    const IRect& a = layout.rects[i];
    if (a.area() == 0) continue;
    for (std::size_t j = i + 1; j < layout.rects.size(); ++j) {
      const IRect& b = layout.rects[j];
      if (b.area() == 0) continue;
      const bool overlap = a.x < b.x + b.width && b.x < a.x + a.width &&
                           a.y < b.y + b.height && b.y < a.y + a.height;
      if (overlap) return false;
    }
  }
  return true;
}

}  // namespace nldl::partition
