// The communication lower bound of Section 4.3.
//
// Give every processor a square of area equal to its prescribed share x_i:
// the data it needs is then 2·√x_i (per unit), which no partition can beat.
// Scaled to the N×N computational domain:
//   LB_comm = 2·N·Σ √x_i = 2·N·Σ √s_i / √(Σ s_i).
#pragma once

#include <vector>

namespace nldl::partition {

/// Lower bound in the unit square for prescribed (positive) shares; the
/// shares are normalized internally: 2·Σ √(a_i / Σ a_k).
[[nodiscard]] double comm_lower_bound_unit(const std::vector<double>& shares);

/// Lower bound on the total communication volume for an N×N domain split
/// proportionally to the given speeds: 2·N·Σ √x_i.
[[nodiscard]] double comm_lower_bound(const std::vector<double>& speeds,
                                      double n);

}  // namespace nldl::partition
