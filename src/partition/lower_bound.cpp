#include "partition/lower_bound.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace nldl::partition {

double comm_lower_bound_unit(const std::vector<double>& shares) {
  NLDL_REQUIRE(!shares.empty(), "lower bound requires at least one share");
  double total = 0.0;
  for (const double share : shares) {
    NLDL_REQUIRE(share > 0.0, "shares must be positive");
    total += share;
  }
  double bound = 0.0;
  for (const double share : shares) bound += std::sqrt(share / total);
  return 2.0 * bound;
}

double comm_lower_bound(const std::vector<double>& speeds, double n) {
  NLDL_REQUIRE(n > 0.0, "domain size must be positive");
  return n * comm_lower_bound_unit(speeds);
}

}  // namespace nldl::partition
