// PERI-MAX: partition the unit square into p rectangles of prescribed areas
// minimizing the *maximum* half-perimeter.
//
// This is the second objective considered by reference [41] (Beaumont,
// Boudet, Rastello, Robert, Algorithmica 2002). The paper's experiments use
// PERI-SUM (total communication volume); PERI-MAX is provided for
// completeness — it models the per-processor communication bottleneck
// instead of the total volume. nldl implements the same column-based
// approach with a min-max dynamic program over sorted contiguous groups.
#pragma once

#include <vector>

#include "partition/peri_sum.hpp"

namespace nldl::partition {

/// Lower bound on the *maximum* half-perimeter: every rectangle is at best
/// a square, so max_i 2·√a_i; furthermore some rectangle must span the
/// square's full width or more generally ... we use the simple bound
/// max(2·√a_max, 2·√(1/p) scaled) = 2·√(max a_i) after normalization.
[[nodiscard]] double peri_max_lower_bound(const std::vector<double>& areas);

/// Column-based PERI-MAX heuristic: minimize over column structures (DP on
/// sorted contiguous groups) the maximum rectangle half-perimeter.
[[nodiscard]] ColumnPartition peri_max_partition(std::vector<double> areas);

}  // namespace nldl::partition
