#include "partition/block_homogeneous.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <tuple>

#include "util/assert.hpp"
#include "util/stats.hpp"

namespace nldl::partition {

namespace {

double min_normalized_speed(const std::vector<double>& speeds, double* total_out) {
  NLDL_REQUIRE(!speeds.empty(), "at least one worker required");
  double total = 0.0;
  double slowest = std::numeric_limits<double>::infinity();
  for (const double s : speeds) {
    NLDL_REQUIRE(s > 0.0, "speeds must be positive");
    total += s;
    slowest = std::min(slowest, s);
  }
  if (total_out != nullptr) *total_out = total;
  return slowest / total;
}

}  // namespace

HomogeneousBlocksFormula homogeneous_blocks_formula(
    const std::vector<double>& speeds, double n) {
  NLDL_REQUIRE(n > 0.0, "domain size must be positive");
  const double x1 = min_normalized_speed(speeds, nullptr);
  HomogeneousBlocksFormula out;
  out.block_dim = std::sqrt(x1) * n;
  out.num_blocks = 1.0 / x1;
  out.comm_volume = 2.0 * n / std::sqrt(x1);
  return out;
}

std::vector<long long> demand_driven_counts(const std::vector<double>& tau,
                                            long long num_blocks) {
  NLDL_REQUIRE(!tau.empty(), "at least one worker required");
  NLDL_REQUIRE(num_blocks >= 0, "block count must be >= 0");
  for (const double t : tau) NLDL_REQUIRE(t > 0.0, "tau must be positive");
  const std::size_t p = tau.size();
  std::vector<long long> counts(p, 0);
  if (num_blocks == 0) return counts;

  // Worker i completes its b-th block at time b·tau_i. The demand-driven
  // pull hands the B blocks to the B earliest completion slots in the
  // multiset {b·tau_i : b >= 1}. Find the time T of the B-th smallest slot
  // by bisection on Σ floor(T/tau_i), then distribute the residue among
  // workers whose next slot is exactly at the boundary.
  auto slots_within = [&](double T) {
    long long total = 0;
    for (const double t : tau) {
      total += static_cast<long long>(std::floor(T / t));
    }
    return total;
  };

  double lo = 0.0;
  double hi = static_cast<double>(num_blocks) *
              *std::min_element(tau.begin(), tau.end());
  // hi bounds the B-th smallest slot: the fastest worker alone provides B
  // slots by then.
  for (int iter = 0; iter < 200 && slots_within(hi) < num_blocks; ++iter) {
    hi *= 2.0;  // numerical safety; mathematically unreachable
  }
  for (int iter = 0; iter < 100; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (slots_within(mid) >= num_blocks) {
      hi = mid;
    } else {
      lo = mid;
    }
  }

  long long assigned = 0;
  for (std::size_t i = 0; i < p; ++i) {
    counts[i] = static_cast<long long>(std::floor(lo / tau[i]));
    assigned += counts[i];
  }
  NLDL_ASSERT(assigned <= num_blocks,
              "bisection overshoot in demand_driven_counts");
  // Hand out the remaining blocks in next-slot order (tie: lower index).
  using Slot = std::pair<double, std::size_t>;  // (next completion, worker)
  std::priority_queue<Slot, std::vector<Slot>, std::greater<>> heap;
  for (std::size_t i = 0; i < p; ++i) {
    heap.push({static_cast<double>(counts[i] + 1) * tau[i], i});
  }
  while (assigned < num_blocks) {
    const auto [time, worker] = heap.top();
    heap.pop();
    ++counts[worker];
    ++assigned;
    heap.push({static_cast<double>(counts[worker] + 1) * tau[worker], worker});
  }
  return counts;
}

std::vector<long long> demand_driven_counts_simulated(
    const std::vector<double>& tau, long long num_blocks) {
  NLDL_REQUIRE(!tau.empty(), "at least one worker required");
  NLDL_REQUIRE(num_blocks >= 0, "block count must be >= 0");
  for (const double t : tau) NLDL_REQUIRE(t > 0.0, "tau must be positive");
  const std::size_t p = tau.size();
  std::vector<long long> counts(p, 0);
  using Slot = std::pair<double, std::size_t>;  // (becomes free at, worker)
  std::priority_queue<Slot, std::vector<Slot>, std::greater<>> heap;
  for (std::size_t i = 0; i < p; ++i) heap.push({tau[i], i});
  for (long long b = 0; b < num_blocks; ++b) {
    const auto [time, worker] = heap.top();
    heap.pop();
    ++counts[worker];
    heap.push({time + tau[worker], worker});
  }
  return counts;
}

DemandDrivenBlocks homogeneous_blocks_demand_driven(
    const std::vector<double>& speeds, double n, int k) {
  NLDL_REQUIRE(n > 0.0, "domain size must be positive");
  NLDL_REQUIRE(k >= 1, "refinement divisor must be >= 1");
  double total_speed = 0.0;
  const double x1 = min_normalized_speed(speeds, &total_speed);
  const std::size_t p = speeds.size();

  DemandDrivenBlocks out;
  out.k = k;
  // Block area D²/k, i.e. dimension D/√k; the domain has k/x₁ blocks.
  out.block_dim = std::sqrt(x1 / static_cast<double>(k)) * n;
  const double continuous_blocks = static_cast<double>(k) / x1;
  out.num_blocks = std::max<long long>(
      static_cast<long long>(std::llround(continuous_blocks)), 1);

  // Per-block compute time on worker i: w_i · D_k². The common D_k² factor
  // does not change the assignment, but keep it for reporting makespan.
  const double block_area = out.block_dim * out.block_dim;
  std::vector<double> tau(p);
  for (std::size_t i = 0; i < p; ++i) tau[i] = block_area / speeds[i];

  out.blocks_per_worker = demand_driven_counts(tau, out.num_blocks);
  out.comm_volume = static_cast<double>(out.num_blocks) * 2.0 * out.block_dim;

  // Imbalance over the workers that got at least one block (the shared
  // util::imbalance_over_busy definition); a worker left idle is counted
  // separately rather than driving e to +infinity.
  std::vector<double> times(p);
  for (std::size_t i = 0; i < p; ++i) {
    times[i] = static_cast<double>(out.blocks_per_worker[i]) * tau[i];
  }
  out.makespan = *std::max_element(times.begin(), times.end());
  out.imbalance = util::imbalance_over_busy(times);
  out.idle_workers = util::count_idle(times);
  return out;
}

DemandDrivenBlocks refine_until_balanced(const std::vector<double>& speeds,
                                         double n, double target_e,
                                         int max_k) {
  NLDL_REQUIRE(target_e > 0.0, "imbalance target must be positive");
  NLDL_REQUIRE(max_k >= 1, "max_k must be >= 1");
  DemandDrivenBlocks last;
  for (int k = 1; k <= max_k; ++k) {
    last = homogeneous_blocks_demand_driven(speeds, n, k);
    // A partition that starves a worker is never "balanced", however small
    // e over the busy workers is — keep refining, as the old +inf
    // imbalance used to force implicitly.
    if (last.idle_workers == 0 && last.imbalance <= target_e) return last;
  }
  return last;  // best effort: the paper's criterion was not reached
}

}  // namespace nldl::partition
