// Recursive bisection: a second heterogeneity-aware partitioner, used as a
// baseline against PERI-SUM in the ablation benches.
//
// The classical alternative to column-based partitioning (e.g. Berger &
// Bokhari's recursive coordinate bisection, and the rectangle partitions
// surveyed alongside ref [41]): split the processor set into two groups of
// roughly equal total share, cut the rectangle along its longer side
// proportionally to the group shares, and recurse. Produces one rectangle
// per processor with exactly proportional areas, like PERI-SUM, but with a
// different (generally slightly worse in sum, often better in max) shape
// profile.
#pragma once

#include <vector>

#include "partition/rect.hpp"

namespace nldl::partition {

struct BisectionPartition {
  std::vector<Rect> rects;  ///< one per input area, input order
  double total_half_perimeter = 0.0;
  double max_half_perimeter = 0.0;
};

/// Partition the unit square into rectangles of areas proportional to
/// `areas` (positive; normalized internally) by recursive bisection.
/// Split heuristic: sort areas descending; greedily pack into two groups
/// balancing the sums; cut perpendicular to the longer side.
[[nodiscard]] BisectionPartition recursive_bisection_partition(
    std::vector<double> areas);

}  // namespace nldl::partition
