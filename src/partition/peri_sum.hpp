// PERI-SUM: partition the unit square into p rectangles of prescribed areas
// minimizing the total half-perimeter (total communication volume).
//
// This is the column-based approximation algorithm of Beaumont, Boudet,
// Rastello, Robert — "Partitioning a square into rectangles:
// NP-completeness and approximation algorithms", Algorithmica 34(3), 2002 —
// reference [41] of the paper, used by the Heterogeneous Blocks strategy
// (Comm_het).
//
// Shape of a column-based partition: the square is cut into C vertical
// columns of widths c_1..c_C; column j is cut into k_j full-width
// rectangles. A rectangle of area a in column j has dimensions c_j × a/c_j,
// so its half-perimeter is c_j + a/c_j and the column contributes
// k_j·c_j + 1 (heights in a column sum to 1). The total is
//   Ĉ = C + Σ_j k_j · c_j .
// With areas sorted in non-decreasing order, an O(p²) dynamic program over
// contiguous groups finds the optimal column-based partition. The guarantee
// proved in [41] (as cited by the paper):
//   Ĉ ≤ 1 + (5/4)·LB ≤ (7/4)·LB,   LB = 2·Σ √a_i .
#pragma once

#include <cstddef>
#include <vector>

#include "partition/rect.hpp"

namespace nldl::partition {

struct ColumnPartition {
  /// One rectangle per input area, in the *input* order.
  std::vector<Rect> rects;
  /// For each column, the input indices of its rectangles (bottom to top).
  std::vector<std::vector<std::size_t>> columns;
  /// Widths of the columns (sum to 1).
  std::vector<double> column_widths;
  /// Σ (width_i + height_i) over all rectangles.
  double total_half_perimeter = 0.0;
  /// max (width_i + height_i) over all rectangles.
  double max_half_perimeter = 0.0;
};

/// Lower bound on the total half-perimeter for prescribed areas:
/// LB = 2·Σ √a_i (each rectangle is at best a square). Requires the areas
/// to be positive; they need not be normalized (the bound scales).
[[nodiscard]] double peri_sum_lower_bound(const std::vector<double>& areas);

/// Run the PERI-SUM column-based algorithm. `areas` must be positive; they
/// are normalized to sum to 1 internally (the returned geometry lives in
/// the unit square). The i-th returned rectangle has area proportional to
/// areas[i].
[[nodiscard]] ColumnPartition peri_sum_partition(std::vector<double> areas);

/// Evaluate a fixed column structure: partition the *sorted* areas into
/// contiguous groups of the given sizes and lay the columns out. Exposed
/// for the ablation benchmark (fixed √p columns vs DP-optimal).
[[nodiscard]] ColumnPartition column_partition_with_sizes(
    std::vector<double> areas, const std::vector<std::size_t>& column_sizes);

}  // namespace nldl::partition
