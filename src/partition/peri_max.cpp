#include "partition/peri_max.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/assert.hpp"

namespace nldl::partition {

double peri_max_lower_bound(const std::vector<double>& areas) {
  NLDL_REQUIRE(!areas.empty(), "lower bound requires at least one area");
  double total = 0.0;
  double largest = 0.0;
  for (const double a : areas) {
    NLDL_REQUIRE(a > 0.0, "areas must be positive");
    total += a;
    largest = std::max(largest, a);
  }
  return 2.0 * std::sqrt(largest / total);
}

ColumnPartition peri_max_partition(std::vector<double> areas) {
  NLDL_REQUIRE(!areas.empty(), "partition requires at least one area");
  double total = 0.0;
  for (const double a : areas) {
    NLDL_REQUIRE(a > 0.0, "areas must be positive");
    total += a;
  }
  std::vector<double> normalized = areas;
  for (double& a : normalized) a /= total;

  const std::size_t p = normalized.size();
  std::vector<std::size_t> order(p);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return normalized[a] < normalized[b];
  });

  std::vector<double> prefix(p + 1, 0.0);
  for (std::size_t i = 0; i < p; ++i) {
    prefix[i + 1] = prefix[i] + normalized[order[i]];
  }

  // DP: best[i] = minimal achievable max half-perimeter packing the first i
  // sorted areas into columns. A column over sorted (j..i-1] has width
  // c = prefix[i]-prefix[j]; its worst rectangle is the largest one (the
  // last, since sorted): half-perimeter c + a_max/c.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> best(p + 1, kInf);
  std::vector<std::size_t> split(p + 1, 0);
  best[0] = 0.0;
  for (std::size_t i = 1; i <= p; ++i) {
    const double a_max = normalized[order[i - 1]];
    for (std::size_t j = 0; j < i; ++j) {
      const double width = prefix[i] - prefix[j];
      const double column_worst = width + a_max / width;
      const double cost = std::max(best[j], column_worst);
      if (cost < best[i]) {
        best[i] = cost;
        split[i] = j;
      }
    }
  }

  std::vector<std::size_t> column_sizes;
  for (std::size_t i = p; i > 0; i = split[i]) {
    column_sizes.push_back(i - split[i]);
  }
  std::reverse(column_sizes.begin(), column_sizes.end());

  ColumnPartition result = column_partition_with_sizes(areas, column_sizes);
  NLDL_ASSERT(result.max_half_perimeter <=
                  best[p] + 1e-9 * std::max(1.0, best[p]),
              "PERI-MAX DP cost disagrees with realized geometry");
  return result;
}

}  // namespace nldl::partition
