// Discretization of continuous partitions onto an integer N×N element grid.
//
// The continuous PERI-SUM geometry is exact for communication-volume
// accounting, but the example applications compute *real* outer products
// and matrix products, which need integer index ranges. This module rounds
// a ColumnPartition to integer rectangles that exactly tile {0..N-1}², via
// largest-remainder apportionment per column and per rectangle.
#pragma once

#include <vector>

#include "partition/peri_sum.hpp"
#include "partition/rect.hpp"

namespace nldl::partition {

struct GridLayout {
  long long n = 0;           ///< grid dimension (N)
  std::vector<IRect> rects;  ///< one per input area, input order
  long long total_half_perimeter = 0;  ///< Σ (w+h) over non-empty rects
  /// Largest |area_i/N² − x_i| over processors (apportionment error).
  double max_share_error = 0.0;
};

/// Round the continuous partition to the N×N grid. Requires n >= 1.
/// Rectangles may come out empty (width or height 0) when n is tiny
/// relative to p; callers that need every worker busy should use n >> p.
[[nodiscard]] GridLayout discretize(const ColumnPartition& partition,
                                    long long n);

/// Exhaustively verify that the non-empty rectangles tile the N×N grid
/// exactly: pairwise disjoint, in bounds, areas summing to N². O(p²).
/// Returns true on success; false (never throws) otherwise.
[[nodiscard]] bool verify_exact_cover(const GridLayout& layout);

/// Apportion `total` integer units to parts proportional to `weights`
/// (largest remainder / Hamilton method). Exposed for reuse and testing.
[[nodiscard]] std::vector<long long> apportion(
    const std::vector<double>& weights, long long total);

}  // namespace nldl::partition
