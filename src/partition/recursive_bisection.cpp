#include "partition/recursive_bisection.hpp"

#include <algorithm>
#include <numeric>

#include "util/assert.hpp"

namespace nldl::partition {

namespace {

/// Axis-aligned frame kept as *edges* so siblings share cut coordinates
/// exactly (widths derived only at the leaves — avoids ulp-level overlap
/// between cousins after deep recursion).
struct Frame {
  double x0 = 0.0;
  double y0 = 0.0;
  double x1 = 1.0;
  double y1 = 1.0;
  [[nodiscard]] double width() const noexcept { return x1 - x0; }
  [[nodiscard]] double height() const noexcept { return y1 - y0; }
};

/// Recursively assign `indices` (into areas) to `frame`.
void bisect(const std::vector<double>& areas,
            std::vector<std::size_t> indices, const Frame& frame,
            std::vector<Rect>& out) {
  if (indices.size() == 1) {
    out[indices[0]] =
        Rect{frame.x0, frame.y0, frame.width(), frame.height()};
    return;
  }
  // Greedy two-way balance of the shares (largest-first).
  std::sort(indices.begin(), indices.end(),
            [&](std::size_t a, std::size_t b) {
              return areas[a] > areas[b];
            });
  std::vector<std::size_t> left;
  std::vector<std::size_t> right;
  double left_sum = 0.0;
  double right_sum = 0.0;
  for (const std::size_t index : indices) {
    if (left_sum <= right_sum) {
      left.push_back(index);
      left_sum += areas[index];
    } else {
      right.push_back(index);
      right_sum += areas[index];
    }
  }
  NLDL_ASSERT(!left.empty() && !right.empty(),
              "bisection produced an empty side");
  const double fraction = left_sum / (left_sum + right_sum);
  // Cut perpendicular to the longer side to keep pieces square-ish.
  Frame first = frame;
  Frame second = frame;
  if (frame.width() >= frame.height()) {
    const double cut = frame.x0 + frame.width() * fraction;
    first.x1 = cut;
    second.x0 = cut;
  } else {
    const double cut = frame.y0 + frame.height() * fraction;
    first.y1 = cut;
    second.y0 = cut;
  }
  bisect(areas, std::move(left), first, out);
  bisect(areas, std::move(right), second, out);
}

}  // namespace

BisectionPartition recursive_bisection_partition(std::vector<double> areas) {
  NLDL_REQUIRE(!areas.empty(), "partition requires at least one area");
  double total = 0.0;
  for (const double a : areas) {
    NLDL_REQUIRE(a > 0.0, "areas must be positive");
    total += a;
  }
  for (double& a : areas) a /= total;

  BisectionPartition result;
  result.rects.assign(areas.size(), Rect{});
  std::vector<std::size_t> indices(areas.size());
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  bisect(areas, std::move(indices), Frame{}, result.rects);

  for (const Rect& rect : result.rects) {
    result.total_half_perimeter += rect.half_perimeter();
    result.max_half_perimeter =
        std::max(result.max_half_perimeter, rect.half_perimeter());
  }
  return result;
}

}  // namespace nldl::partition
