// Heterogeneous master/worker star platform (paper Section 1.2).
//
// The master P0 holds all data and feeds p workers over independent links
// (parallel-communication model) or a shared one-port link, depending on the
// simulator configuration. The Platform itself is a passive description:
// processors, speeds, and the normalized relative speeds x_i = s_i / Σ s_k
// that drive every partitioning strategy in the paper.
#pragma once

#include <cstddef>
#include <vector>

#include "platform/processor.hpp"

namespace nldl::platform {

class Platform {
 public:
  /// Builds a platform from explicit workers. Requires at least one worker;
  /// every processor is validated.
  explicit Platform(std::vector<Processor> workers);

  /// Convenience: homogeneous platform of `p` identical workers.
  static Platform homogeneous(std::size_t p, double c = 1.0, double w = 1.0);

  /// Convenience: platform from explicit speeds s_i (w_i = 1/s_i), uniform
  /// communication cost c.
  static Platform from_speeds(const std::vector<double>& speeds,
                              double c = 1.0);

  /// The paper's Section 4.1.3 example: p/2 workers of speed `slow` and
  /// p/2 workers of speed `k * slow`. Requires even p.
  static Platform two_class(std::size_t p, double slow, double k,
                            double c = 1.0);

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }
  [[nodiscard]] const Processor& worker(std::size_t i) const;
  [[nodiscard]] const std::vector<Processor>& workers() const noexcept {
    return workers_;
  }

  [[nodiscard]] double c(std::size_t i) const { return worker(i).c; }
  [[nodiscard]] double w(std::size_t i) const { return worker(i).w; }
  [[nodiscard]] double speed(std::size_t i) const { return worker(i).speed(); }

  /// Σ s_i over all workers.
  [[nodiscard]] double total_speed() const noexcept;

  /// s_i for every worker.
  [[nodiscard]] std::vector<double> speeds() const;

  /// Normalized speeds x_i = s_i / Σ s_k (they sum to 1).
  [[nodiscard]] std::vector<double> normalized_speeds() const;

  /// True if workers are ordered by non-decreasing speed — the convention
  /// the paper assumes (s_1 <= s_2 <= ... <= s_p).
  [[nodiscard]] bool is_sorted_by_speed() const noexcept;

  /// A copy with workers sorted by non-decreasing speed.
  [[nodiscard]] Platform sorted_by_speed() const;

  /// Ratio of fastest to slowest speed (heterogeneity measure, >= 1).
  [[nodiscard]] double heterogeneity() const noexcept;

  /// A carve of the platform into disjoint subsets (see
  /// interleaved_partition). `workers[s][j]` is the index, on the parent
  /// platform, of subsets[s]'s j-th worker.
  struct Partition {
    std::vector<Platform> subsets;
    std::vector<std::vector<std::size_t>> workers;
  };

  /// Carve the platform into k disjoint subsets interleaved by worker
  /// index (worker i goes to subset i mod k), so a sorted or two-class
  /// platform splits evenly. k is clamped to [1, size()]. This is the
  /// carve behind the online server's fair-share slots and the qos
  /// server's concurrent installment subsets.
  [[nodiscard]] Partition interleaved_partition(std::size_t k) const;

 private:
  std::vector<Processor> workers_;
};

}  // namespace nldl::platform
