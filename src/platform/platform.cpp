#include "platform/platform.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace nldl::platform {

Platform::Platform(std::vector<Processor> workers)
    : workers_(std::move(workers)) {
  NLDL_REQUIRE(!workers_.empty(), "platform requires at least one worker");
  for (const auto& worker : workers_) worker.validate();
}

Platform Platform::homogeneous(std::size_t p, double c, double w) {
  NLDL_REQUIRE(p >= 1, "platform requires at least one worker");
  return Platform(std::vector<Processor>(p, Processor{c, w}));
}

Platform Platform::from_speeds(const std::vector<double>& speeds, double c) {
  std::vector<Processor> workers;
  workers.reserve(speeds.size());
  for (const double s : speeds) {
    NLDL_REQUIRE(s > 0.0, "speeds must be positive");
    workers.push_back(Processor{c, 1.0 / s});
  }
  return Platform(std::move(workers));
}

Platform Platform::two_class(std::size_t p, double slow, double k, double c) {
  NLDL_REQUIRE(p >= 2 && p % 2 == 0, "two_class requires even p >= 2");
  NLDL_REQUIRE(slow > 0.0 && k >= 1.0, "two_class requires slow > 0, k >= 1");
  std::vector<double> speeds(p, slow);
  for (std::size_t i = p / 2; i < p; ++i) speeds[i] = slow * k;
  return from_speeds(speeds, c);
}

const Processor& Platform::worker(std::size_t i) const {
  NLDL_REQUIRE(i < workers_.size(), "worker index out of range");
  return workers_[i];
}

double Platform::total_speed() const noexcept {
  double total = 0.0;
  for (const auto& worker : workers_) total += worker.speed();
  return total;
}

std::vector<double> Platform::speeds() const {
  std::vector<double> out;
  out.reserve(workers_.size());
  for (const auto& worker : workers_) out.push_back(worker.speed());
  return out;
}

std::vector<double> Platform::normalized_speeds() const {
  std::vector<double> out = speeds();
  const double total = total_speed();
  for (double& x : out) x /= total;
  return out;
}

bool Platform::is_sorted_by_speed() const noexcept {
  return std::is_sorted(
      workers_.begin(), workers_.end(),
      [](const Processor& a, const Processor& b) { return a.speed() < b.speed(); });
}

Platform Platform::sorted_by_speed() const {
  std::vector<Processor> sorted = workers_;
  std::sort(sorted.begin(), sorted.end(),
            [](const Processor& a, const Processor& b) {
              return a.speed() < b.speed();
            });
  return Platform(std::move(sorted));
}

Platform::Partition Platform::interleaved_partition(std::size_t k) const {
  const std::size_t subsets = std::clamp<std::size_t>(k, 1, size());
  Partition partition;
  partition.subsets.reserve(subsets);
  partition.workers.resize(subsets);
  for (std::size_t s = 0; s < subsets; ++s) {
    std::vector<Processor> workers;
    for (std::size_t i = s; i < size(); i += subsets) {
      workers.push_back(workers_[i]);
      partition.workers[s].push_back(i);
    }
    partition.subsets.emplace_back(std::move(workers));
  }
  return partition;
}

double Platform::heterogeneity() const noexcept {
  double lo = workers_.front().speed();
  double hi = lo;
  for (const auto& worker : workers_) {
    lo = std::min(lo, worker.speed());
    hi = std::max(hi, worker.speed());
  }
  return hi / lo;
}

}  // namespace nldl::platform
