// The paper's processor model (Section 1.2).
//
// Each worker P_i has an incoming bandwidth 1/c_i (c_i = time to receive one
// unit of data) and a processing speed s_i = 1/w_i (w_i = time to process
// one unit of load).
#pragma once

#include "util/assert.hpp"

namespace nldl::platform {

struct Processor {
  /// Time to receive one unit of data (inverse incoming bandwidth).
  double c = 1.0;
  /// Time to process one unit of load (inverse speed).
  double w = 1.0;

  [[nodiscard]] double bandwidth() const noexcept { return 1.0 / c; }
  [[nodiscard]] double speed() const noexcept { return 1.0 / w; }

  /// Validates the physical constraints (strictly positive rates).
  void validate() const {
    NLDL_REQUIRE(c > 0.0, "processor communication cost must be positive");
    NLDL_REQUIRE(w > 0.0, "processor computation cost must be positive");
  }
};

}  // namespace nldl::platform
