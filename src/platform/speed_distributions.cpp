#include "platform/speed_distributions.hpp"

#include "util/assert.hpp"

namespace nldl::platform {

std::string to_string(SpeedModel model) {
  switch (model) {
    case SpeedModel::kHomogeneous:
      return "homogeneous";
    case SpeedModel::kUniform:
      return "uniform[1,100]";
    case SpeedModel::kLogNormal:
      return "lognormal(0,1)";
    case SpeedModel::kTwoClass:
      return "two-class(1,k)";
  }
  NLDL_ASSERT(false, "unknown SpeedModel");
}

Platform make_platform(SpeedModel model, std::size_t p, util::Rng& rng,
                       const SpeedModelParams& params) {
  NLDL_REQUIRE(p >= 1, "platform requires at least one worker");
  std::vector<double> speeds;
  speeds.reserve(p);
  switch (model) {
    case SpeedModel::kHomogeneous:
      speeds.assign(p, params.homogeneous_speed);
      break;
    case SpeedModel::kUniform:
      for (std::size_t i = 0; i < p; ++i) {
        speeds.push_back(rng.uniform(params.uniform_lo, params.uniform_hi));
      }
      break;
    case SpeedModel::kLogNormal:
      for (std::size_t i = 0; i < p; ++i) {
        speeds.push_back(
            rng.lognormal(params.lognormal_mu, params.lognormal_sigma));
      }
      break;
    case SpeedModel::kTwoClass:
      return Platform::two_class(p, 1.0, params.two_class_k,
                                 params.comm_cost);
  }
  return Platform::from_speeds(speeds, params.comm_cost);
}

}  // namespace nldl::platform
