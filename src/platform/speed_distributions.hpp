// The three platform generators of the paper's Section 4.3 experiments:
//   (i)   homogeneous speeds,
//   (ii)  speeds uniform on [1, 100],
//   (iii) speeds log-normal with mu = 0, sigma = 1,
// plus the two-class (1, k) platform of Section 4.1.3.
#pragma once

#include <cstdint>
#include <string>

#include "platform/platform.hpp"
#include "util/rng.hpp"

namespace nldl::platform {

enum class SpeedModel {
  kHomogeneous,  ///< all speeds equal (Figure 4a)
  kUniform,      ///< U[1, 100] (Figure 4b)
  kLogNormal,    ///< exp(N(0,1)) (Figure 4c)
  kTwoClass,     ///< p/2 at speed 1, p/2 at speed k (Section 4.1.3)
};

/// Human-readable name, matching the paper's captions.
[[nodiscard]] std::string to_string(SpeedModel model);

struct SpeedModelParams {
  double homogeneous_speed = 1.0;
  double uniform_lo = 1.0;   ///< paper: U[1, 100]
  double uniform_hi = 100.0;
  double lognormal_mu = 0.0;   ///< paper: mu = 0
  double lognormal_sigma = 1.0;  ///< paper: sigma = 1
  double two_class_k = 10.0;
  double comm_cost = 1.0;  ///< uniform c_i for generated platforms
};

/// Draw a platform of p workers under the given speed model.
[[nodiscard]] Platform make_platform(SpeedModel model, std::size_t p,
                                     util::Rng& rng,
                                     const SpeedModelParams& params = {});

}  // namespace nldl::platform
