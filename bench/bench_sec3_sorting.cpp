// Section 3 — "DLT for almost linear workloads": sorting via sample sort.
//
// Regenerates:
//   (1) the log p / log N remaining-work fraction and the per-phase costs
//       of the sample-sort preprocessing (Section 3.1 analysis);
//   (2) a Monte-Carlo check of the Theorem B.4 bucket-size bound with the
//       paper's oversampling s = log²N (homogeneous and heterogeneous);
//   (3) the whole pipeline scheduled on star platforms: makespan vs the
//       ideal divisible time;
//   (4) actual parallel sample sort / merge sort executions with phase
//       wall-clock timings.
//
// Families (1)–(3) are deterministic util::Sweep grids driven by
// bench::Harness (serial vs parallel bit-identity self-checked at
// runtime); family (4) measures real wall-clock, so it runs once and its
// timings are reported in the JSON without entering the identity check.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench/harness.hpp"
#include "core/no_free_lunch.hpp"
#include "platform/speed_distributions.hpp"
#include "sort/distributed.hpp"
#include "sort/merge_sort.hpp"
#include "sort/sample_sort.hpp"
#include "sort/theory.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/sweep.hpp"
#include "util/table.hpp"
#include "util/threadpool.hpp"

using namespace nldl;

namespace {

const std::vector<double> kFractionNs{1 << 16, 1 << 20, 1 << 24, 1e9, 1e12};
const std::vector<double> kFractionPs{2, 8, 32, 128};
const std::vector<double> kBoundNs{100000, 1000000, 10000000};
const std::vector<double> kBoundPs{8, 32};
const std::vector<double> kHetBoundNs{1000000, 10000000};
const std::vector<double> kPipelineNs{1e6, 1e8, 1e10};

struct PipelineRow {
  std::size_t platform = 0;  ///< index into the platform list
  double n = 0.0;
  bool heterogeneous = false;
  double makespan = 0.0;
  double ideal = 0.0;
  double overhead = 0.0;
};

struct Sec3Results {
  std::vector<core::SortingPoint> fractions;      ///< n-major, p fastest
  std::vector<sort::BucketBoundCheck> bound_hom;  ///< n-major, p fastest
  std::vector<sort::BucketBoundCheck> bound_het;
  std::vector<PipelineRow> pipeline;

  [[nodiscard]] std::vector<double> signature() const {
    std::vector<double> sig;
    for (const auto& point : fractions) {
      sig.insert(sig.end(),
                 {point.n, static_cast<double>(point.p), point.fraction,
                  point.step1, point.step2, point.step3,
                  point.preprocessing_ratio});
    }
    const auto bound = [&sig](const sort::BucketBoundCheck& check) {
      sig.insert(sig.end(),
                 {static_cast<double>(check.n),
                  static_cast<double>(check.p),
                  static_cast<double>(check.oversampling), check.threshold,
                  check.probability_bound,
                  static_cast<double>(check.violations),
                  check.violation_rate, check.mean_max_over_expected});
    };
    for (const auto& check : bound_hom) bound(check);
    for (const auto& check : bound_het) bound(check);
    for (const auto& row : pipeline) {
      sig.insert(sig.end(),
                 {static_cast<double>(row.platform), row.n,
                  row.heterogeneous ? 1.0 : 0.0, row.makespan, row.ideal,
                  row.overhead});
    }
    return sig;
  }
};

/// The star platforms of the scheduled-pipeline family. The heterogeneous
/// one is drawn once, before any sweep, so every (n, buckets) row sees the
/// same machine — the sweeps themselves stay pure.
std::vector<std::pair<std::string, platform::Platform>> pipeline_platforms(
    std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::pair<std::string, platform::Platform>> platforms;
  platforms.emplace_back("16 equal",
                         platform::Platform::homogeneous(16, 0.01, 1.0));
  platforms.emplace_back(
      "uniform p=16",
      platform::make_platform(platform::SpeedModel::kUniform, 16, rng));
  return platforms;
}

Sec3Results compute_all(
    std::size_t threads, std::uint64_t seed,
    const std::vector<std::pair<std::string, platform::Platform>>&
        platforms,
    const std::vector<double>& het_speeds) {
  Sec3Results results;
  util::SweepOptions options;
  options.threads = threads;
  options.seed = seed;

  {
    util::Grid grid;
    grid.axis("n", kFractionNs).axis("p", kFractionPs);
    results.fractions =
        util::Sweep(std::move(grid), options).map<core::SortingPoint>(
            [](const util::SweepPoint& point, util::Rng&) {
              const auto p = static_cast<std::size_t>(point.value("p"));
              return core::sorting_fraction_sweep({point.value("n")},
                                                  {p})[0];
            });
  }
  {
    util::Grid grid;
    grid.axis("n", kBoundNs).axis("p", kBoundPs);
    results.bound_hom =
        util::Sweep(std::move(grid), options)
            .map<sort::BucketBoundCheck>(
                [seed](const util::SweepPoint& point, util::Rng&) {
                  return sort::validate_max_bucket_bound(
                      static_cast<std::size_t>(point.value("n")),
                      static_cast<std::size_t>(point.value("p")), 300,
                      seed);
                });
  }
  {
    util::Grid grid;
    grid.axis("n", kHetBoundNs);
    results.bound_het =
        util::Sweep(std::move(grid), options)
            .map<sort::BucketBoundCheck>(
                [seed, &het_speeds](const util::SweepPoint& point,
                                    util::Rng&) {
                  return sort::validate_max_bucket_bound_heterogeneous(
                      static_cast<std::size_t>(point.value("n")),
                      het_speeds, 300, seed + 1);
                });
  }
  {
    util::Grid grid;
    grid.axis("platform", platforms.size())
        .axis("n", kPipelineNs)
        .axis("het", std::size_t{2});
    results.pipeline =
        util::Sweep(std::move(grid), options).map<PipelineRow>(
            [&platforms](const util::SweepPoint& point, util::Rng&) {
              const std::size_t pi = point.index_of("platform");
              const platform::Platform& plat = platforms[pi].second;
              PipelineRow row;
              row.platform = pi;
              row.n = point.value("n");
              row.heterogeneous = point.index_of("het") == 1;
              sort::DistributedSortConfig config;
              config.heterogeneous_buckets = row.heterogeneous;
              // The master is an average machine of the platform.
              config.master_w =
                  static_cast<double>(plat.size()) / plat.total_speed();
              const auto plan =
                  sort::plan_distributed_sort(plat, row.n, config);
              row.makespan = plan.makespan;
              row.ideal = plan.ideal_time;
              row.overhead = plan.overhead_ratio;
              return row;
            });
  }
  return results;
}

struct ExecutedSortRow {
  std::size_t n = 0;
  std::size_t p = 0;
  sort::SampleSortStats stats;
};

/// Family (4a): real sample-sort executions — wall-clock, not self-checked.
std::vector<ExecutedSortRow> executed_sort(std::uint64_t seed) {
  std::printf("\n=== Executed parallel sample sort: phase wall-clock "
              "breakdown ===\n");
  std::printf("paper: Steps 1+2 (preprocessing) are dominated by Step 3 "
              "(the divisible phase)\n\n");
  util::ThreadPool pool(2);
  util::Table table({"N", "p", "step1 (s)", "step2 (s)", "step3 (s)",
                     "preproc share", "Max/(N/p)"});
  util::Rng rng(seed);
  std::vector<ExecutedSortRow> rows;
  for (const std::size_t n : {1UL << 18, 1UL << 20, 1UL << 22}) {
    std::vector<double> data(n);
    for (double& v : data) v = rng.uniform();
    for (const std::size_t p : {4UL, 16UL}) {
      sort::SampleSortConfig config;
      config.num_buckets = p;
      config.pool = &pool;
      config.seed = seed;
      sort::SampleSortStats stats;
      auto sorted = sort::sample_sort(data, config, &stats);
      const double pre = stats.step1_seconds + stats.step2_seconds;
      const double share = pre / (pre + stats.step3_seconds + 1e-12);
      table.row()
          .cell(n)
          .cell(p)
          .cell(stats.step1_seconds, 4)
          .cell(stats.step2_seconds, 4)
          .cell(stats.step3_seconds, 4)
          .cell(share, 3)
          .cell(stats.max_over_expected, 3)
          .done();
      rows.push_back(ExecutedSortRow{n, p, stats});
    }
  }
  table.print(std::cout);
  std::printf("\n(step2 is the N*log p bucketing on the master; step3 the "
              "parallel local sorts)\n");
  return rows;
}

struct SortRaceRow {
  std::size_t n = 0;
  double std_sort_seconds = 0.0;
  double merge_sort_seconds = 0.0;
  double sample_sort_seconds = 0.0;
};

/// Family (4b): sample sort vs parallel merge sort vs std::sort.
std::vector<SortRaceRow> sample_vs_merge(std::uint64_t seed) {
  // Baseline contrast: parallel merge sort's final k-way merge is residual
  // *non-divisible* work; sample sort's buckets are independent. Both are
  // executed here (2 threads) for wall-clock comparison.
  std::printf("\n=== Sample sort vs parallel merge sort (executed, 2 "
              "threads) ===\n\n");
  util::ThreadPool pool(2);
  util::Rng rng(seed);
  util::Table table({"N", "std::sort (s)", "merge sort (s)",
                     "sample sort (s)"});
  std::vector<SortRaceRow> rows;
  for (const std::size_t n : {1UL << 20, 1UL << 22}) {
    std::vector<double> data(n);
    for (double& v : data) v = rng.uniform();
    using Clock = std::chrono::steady_clock;

    auto copy = data;
    const auto t0 = Clock::now();  // nldl-lint: allow(nondet-source): sort wall timer — reported only
    std::sort(copy.begin(), copy.end());
    const auto t1 = Clock::now();  // nldl-lint: allow(nondet-source): sort wall timer — reported only

    auto merge_in = data;
    const auto t2 = Clock::now();  // nldl-lint: allow(nondet-source): sort wall timer — reported only
    const auto merged =
        sort::parallel_merge_sort(std::move(merge_in), 4, &pool);
    const auto t3 = Clock::now();  // nldl-lint: allow(nondet-source): sort wall timer — reported only

    sort::SampleSortConfig config;
    config.num_buckets = 4;
    config.pool = &pool;
    auto sample_in = data;
    const auto t4 = Clock::now();  // nldl-lint: allow(nondet-source): sort wall timer — reported only
    const auto sampled = sort::sample_sort(std::move(sample_in), config);
    const auto t5 = Clock::now();  // nldl-lint: allow(nondet-source): sort wall timer — reported only

    NLDL_ASSERT(merged == copy && sampled == copy,
                "parallel sorts disagree with std::sort");
    auto seconds = [](Clock::time_point a, Clock::time_point b) {
      return std::chrono::duration<double>(b - a).count();
    };
    SortRaceRow row;
    row.n = n;
    row.std_sort_seconds = seconds(t0, t1);
    row.merge_sort_seconds = seconds(t2, t3);
    row.sample_sort_seconds = seconds(t4, t5);
    table.row()
        .cell(n)
        .cell(row.std_sort_seconds, 3)
        .cell(row.merge_sort_seconds, 3)
        .cell(row.sample_sort_seconds, 3)
        .done();
    rows.push_back(row);
  }
  table.print(std::cout);
  return rows;
}

void print_tables(
    const Sec3Results& results,
    const std::vector<std::pair<std::string, platform::Platform>>&
        platforms) {
  std::printf("=== Sorting: remaining fraction log p / log N and phase "
              "costs (Section 3.1) ===\n");
  std::printf("paper: fraction -> 0 for large N, so sorting is 'almost "
              "divisible'\n\n");
  core::sorting_table(results.fractions).print(std::cout);

  std::printf("\n=== Theorem B.4 bucket bound, Monte-Carlo with "
              "s = log^2 N (Section 3.1) ===\n");
  std::printf("paper: Pr[MaxSize >= (N/p)(1+(1/ln N)^(1/3))] <= N^(-1/3)\n\n");
  util::Table table({"N", "p", "s", "threshold/(N/p)", "violation rate",
                     "bound N^(-1/3)", "mean Max/(N/p)"});
  for (const auto& check : results.bound_hom) {
    table.row()
        .cell(check.n)
        .cell(check.p)
        .cell(check.oversampling)
        .cell(check.threshold /
                  (double(check.n) / double(check.p)), 4)
        .cell(check.violation_rate, 4)
        .cell(check.probability_bound, 4)
        .cell(check.mean_max_over_expected, 4)
        .done();
  }
  table.print(std::cout);

  std::printf("\nheterogeneous splitters (Section 3.2): worst bucket "
              "relative to its own share x_i*N\n\n");
  util::Table het({"N", "speeds", "violation rate", "bound",
                   "mean worst rel. size"});
  for (const auto& check : results.bound_het) {
    het.row()
        .cell(check.n)
        .cell(std::string("uniform[1,100], p=16"))
        .cell(check.violation_rate, 4)
        .cell(check.probability_bound, 4)
        .cell(check.mean_max_over_expected, 4)
        .done();
  }
  het.print(std::cout);

  std::printf("\n=== The whole pipeline on the star platform (model "
              "schedule): makespan vs the ideal divisible time ===\n");
  std::printf("overhead ratio -> 1 as N grows: sorting becomes a true "
              "divisible load\n\n");
  util::Table pipeline({"platform", "N", "buckets", "makespan", "ideal",
                        "overhead ratio"});
  for (const PipelineRow& row : results.pipeline) {
    pipeline.row()
        .cell(platforms[row.platform].first)
        .cell(row.n, 0)
        .cell(std::string(row.heterogeneous ? "speed-prop." : "equal"))
        .cell(row.makespan, 0)
        .cell(row.ideal, 0)
        .cell(row.overhead, 4)
        .done();
  }
  pipeline.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<long long>(util::Rng::kDefaultSeed)));

  bench::Harness harness("sec3_sorting",
                         bench::harness_options_from_args(args));
  harness.config("seed", static_cast<std::int64_t>(seed));

  const auto platforms = pipeline_platforms(seed);
  util::Rng het_rng(seed);
  const auto het_speeds =
      platform::make_platform(platform::SpeedModel::kUniform, 16, het_rng)
          .speeds();

  const Sec3Results results = harness.run<Sec3Results>(
      [&](std::size_t threads) {
        return compute_all(threads, seed, platforms, het_speeds);
      },
      [](const Sec3Results& a, const Sec3Results& b) {
        return bench::identical_doubles(a.signature(), b.signature());
      });

  print_tables(results, platforms);

  const auto executed = executed_sort(seed);
  const auto race = sample_vs_merge(seed);

  return harness.finish([&](util::JsonWriter& json) {
    for (const auto& point : results.fractions) {
      json.begin_object();
      json.key("family").value("fraction");
      json.key("n").value(point.n);
      json.key("p").value(point.p);
      json.key("log_p_over_log_n").value(point.fraction);
      json.key("preprocessing_ratio").value(point.preprocessing_ratio);
      json.end_object();
    }
    const auto emit_bound = [&json](const sort::BucketBoundCheck& check,
                                    const char* family) {
      json.begin_object();
      json.key("family").value(family);
      json.key("n").value(check.n);
      json.key("p").value(check.p);
      json.key("oversampling").value(check.oversampling);
      json.key("violation_rate").value(check.violation_rate);
      json.key("probability_bound").value(check.probability_bound);
      json.key("mean_max_over_expected")
          .value(check.mean_max_over_expected);
      json.end_object();
    };
    for (const auto& check : results.bound_hom) {
      emit_bound(check, "bucket_bound");
    }
    for (const auto& check : results.bound_het) {
      emit_bound(check, "bucket_bound_heterogeneous");
    }
    for (const auto& row : results.pipeline) {
      json.begin_object();
      json.key("family").value("scheduled_pipeline");
      json.key("platform").value(row.platform);
      json.key("n").value(row.n);
      json.key("heterogeneous_buckets").value(row.heterogeneous);
      json.key("makespan").value(row.makespan);
      json.key("ideal").value(row.ideal);
      json.key("overhead_ratio").value(row.overhead);
      json.end_object();
    }
    // The executed families' bucket-size ratios are a pure function of
    // the seed and stay here; their wall-clock timings go to "measured".
    for (const auto& row : executed) {
      json.begin_object();
      json.key("family").value("executed_sample_sort");
      json.key("n").value(row.n);
      json.key("p").value(row.p);
      json.key("max_over_expected").value(row.stats.max_over_expected);
      json.end_object();
    }
  },
  [&](util::JsonWriter& json) {
    json.key("executed_sample_sort").begin_array();
    for (const auto& row : executed) {
      json.begin_object();
      json.key("n").value(row.n);
      json.key("p").value(row.p);
      json.key("step1_seconds").value(row.stats.step1_seconds);
      json.key("step2_seconds").value(row.stats.step2_seconds);
      json.key("step3_seconds").value(row.stats.step3_seconds);
      json.end_object();
    }
    json.end_array();
    json.key("executed_sort_race").begin_array();
    for (const auto& row : race) {
      json.begin_object();
      json.key("n").value(row.n);
      json.key("std_sort_seconds").value(row.std_sort_seconds);
      json.key("merge_sort_seconds").value(row.merge_sort_seconds);
      json.key("sample_sort_seconds").value(row.sample_sort_seconds);
      json.end_object();
    }
    json.end_array();
  });
}
