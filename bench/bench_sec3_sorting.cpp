// Section 3 — "DLT for almost linear workloads": sorting via sample sort.
//
// Regenerates:
//   (1) the log p / log N remaining-work fraction and the per-phase costs
//       of the sample-sort preprocessing (Section 3.1 analysis);
//   (2) a Monte-Carlo check of the Theorem B.4 bucket-size bound with the
//       paper's oversampling s = log²N (homogeneous and heterogeneous);
//   (3) an actual parallel sample sort execution with phase timings,
//       showing the preprocessing share of wall-clock shrink with N.
#include <cstdio>
#include <iostream>

#include <chrono>

#include "core/no_free_lunch.hpp"
#include "platform/speed_distributions.hpp"
#include "sort/distributed.hpp"
#include "sort/merge_sort.hpp"
#include "sort/sample_sort.hpp"
#include "sort/theory.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/threadpool.hpp"

using namespace nldl;

namespace {

void fraction_tables() {
  std::printf("=== Sorting: remaining fraction log p / log N and phase "
              "costs (Section 3.1) ===\n");
  std::printf("paper: fraction -> 0 for large N, so sorting is 'almost "
              "divisible'\n\n");
  const auto points = core::sorting_fraction_sweep(
      {1 << 16, 1 << 20, 1 << 24, 1e9, 1e12}, {2, 8, 32, 128});
  core::sorting_table(points).print(std::cout);
}

void bound_check(std::uint64_t seed) {
  std::printf("\n=== Theorem B.4 bucket bound, Monte-Carlo with "
              "s = log^2 N (Section 3.1) ===\n");
  std::printf("paper: Pr[MaxSize >= (N/p)(1+(1/ln N)^(1/3))] <= N^(-1/3)\n\n");
  util::Table table({"N", "p", "s", "threshold/(N/p)", "violation rate",
                     "bound N^(-1/3)", "mean Max/(N/p)"});
  for (const std::size_t n : {100000UL, 1000000UL, 10000000UL}) {
    for (const std::size_t p : {8UL, 32UL}) {
      const auto check = sort::validate_max_bucket_bound(n, p, 300, seed);
      table.row()
          .cell(n)
          .cell(p)
          .cell(check.oversampling)
          .cell(check.threshold / (double(n) / double(p)), 4)
          .cell(check.violation_rate, 4)
          .cell(check.probability_bound, 4)
          .cell(check.mean_max_over_expected, 4)
          .done();
    }
  }
  table.print(std::cout);

  std::printf("\nheterogeneous splitters (Section 3.2): worst bucket "
              "relative to its own share x_i*N\n\n");
  util::Table het({"N", "speeds", "violation rate", "bound",
                   "mean worst rel. size"});
  util::Rng rng(seed);
  const auto plat =
      platform::make_platform(platform::SpeedModel::kUniform, 16, rng);
  for (const std::size_t n : {1000000UL, 10000000UL}) {
    const auto check = sort::validate_max_bucket_bound_heterogeneous(
        n, plat.speeds(), 300, seed + 1);
    het.row()
        .cell(n)
        .cell(std::string("uniform[1,100], p=16"))
        .cell(check.violation_rate, 4)
        .cell(check.probability_bound, 4)
        .cell(check.mean_max_over_expected, 4)
        .done();
  }
  het.print(std::cout);
}

void executed_sort(std::uint64_t seed) {
  std::printf("\n=== Executed parallel sample sort: phase wall-clock "
              "breakdown ===\n");
  std::printf("paper: Steps 1+2 (preprocessing) are dominated by Step 3 "
              "(the divisible phase)\n\n");
  util::ThreadPool pool(2);
  util::Table table({"N", "p", "step1 (s)", "step2 (s)", "step3 (s)",
                     "preproc share", "Max/(N/p)"});
  util::Rng rng(seed);
  for (const std::size_t n : {1UL << 18, 1UL << 20, 1UL << 22}) {
    std::vector<double> data(n);
    for (double& v : data) v = rng.uniform();
    for (const std::size_t p : {4UL, 16UL}) {
      sort::SampleSortConfig config;
      config.num_buckets = p;
      config.pool = &pool;
      config.seed = seed;
      sort::SampleSortStats stats;
      auto sorted = sort::sample_sort(data, config, &stats);
      const double pre = stats.step1_seconds + stats.step2_seconds;
      const double share =
          pre / (pre + stats.step3_seconds + 1e-12);
      table.row()
          .cell(n)
          .cell(p)
          .cell(stats.step1_seconds, 4)
          .cell(stats.step2_seconds, 4)
          .cell(stats.step3_seconds, 4)
          .cell(share, 3)
          .cell(stats.max_over_expected, 3)
          .done();
    }
  }
  table.print(std::cout);
  std::printf("\n(step2 is the N*log p bucketing on the master; step3 the "
              "parallel local sorts)\n");
}

void sample_vs_merge(std::uint64_t seed) {
  // Baseline contrast: parallel merge sort's final k-way merge is residual
  // *non-divisible* work; sample sort's buckets are independent. Both are
  // executed here (2 threads) for wall-clock comparison.
  std::printf("\n=== Sample sort vs parallel merge sort (executed, 2 "
              "threads) ===\n\n");
  util::ThreadPool pool(2);
  util::Rng rng(seed);
  util::Table table({"N", "std::sort (s)", "merge sort (s)",
                     "sample sort (s)"});
  for (const std::size_t n : {1UL << 20, 1UL << 22}) {
    std::vector<double> data(n);
    for (double& v : data) v = rng.uniform();
    using Clock = std::chrono::steady_clock;

    auto copy = data;
    const auto t0 = Clock::now();
    std::sort(copy.begin(), copy.end());
    const auto t1 = Clock::now();

    auto merge_in = data;
    const auto t2 = Clock::now();
    const auto merged =
        sort::parallel_merge_sort(std::move(merge_in), 4, &pool);
    const auto t3 = Clock::now();

    sort::SampleSortConfig config;
    config.num_buckets = 4;
    config.pool = &pool;
    auto sample_in = data;
    const auto t4 = Clock::now();
    const auto sampled = sort::sample_sort(std::move(sample_in), config);
    const auto t5 = Clock::now();

    NLDL_ASSERT(merged == copy && sampled == copy,
                "parallel sorts disagree with std::sort");
    auto seconds = [](Clock::time_point a, Clock::time_point b) {
      return std::chrono::duration<double>(b - a).count();
    };
    table.row()
        .cell(n)
        .cell(seconds(t0, t1), 3)
        .cell(seconds(t2, t3), 3)
        .cell(seconds(t4, t5), 3)
        .done();
  }
  table.print(std::cout);
}

void scheduled_pipeline(std::uint64_t seed) {
  std::printf("\n=== The whole pipeline on the star platform (model "
              "schedule): makespan vs the ideal divisible time ===\n");
  std::printf("overhead ratio -> 1 as N grows: sorting becomes a true "
              "divisible load\n\n");
  util::Table table({"platform", "N", "buckets", "makespan", "ideal",
                     "overhead ratio"});
  util::Rng rng(seed);
  const std::vector<std::pair<std::string, platform::Platform>> platforms{
      {"16 equal", platform::Platform::homogeneous(16, 0.01, 1.0)},
      {"uniform p=16",
       platform::make_platform(platform::SpeedModel::kUniform, 16, rng)},
  };
  for (const auto& [name, plat] : platforms) {
    for (const double n : {1e6, 1e8, 1e10}) {
      for (const bool het : {false, true}) {
        sort::DistributedSortConfig config;
        config.heterogeneous_buckets = het;
        // The master is an average machine of the platform.
        config.master_w =
            double(plat.size()) / plat.total_speed();
        const auto plan = sort::plan_distributed_sort(plat, n, config);
        table.row()
            .cell(name)
            .cell(n, 0)
            .cell(std::string(het ? "speed-prop." : "equal"))
            .cell(plan.makespan, 0)
            .cell(plan.ideal_time, 0)
            .cell(plan.overhead_ratio, 4)
            .done();
      }
    }
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<long long>(util::Rng::kDefaultSeed)));
  fraction_tables();
  bound_check(seed);
  executed_sort(seed);
  sample_vs_merge(seed);
  scheduled_pipeline(seed);
  return 0;
}
