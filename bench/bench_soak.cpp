// Sustained-load soak: a million Poisson jobs through the shared-master
// event loops, proving the incremental-replay engine at scale.
//
// Six cells, each an independent open-system run:
//
//   online/incremental   --jobs (default 10^6) jobs, fair-share slots on
//                        a shared bounded-multiport master — the
//                        headline: jobs/sec, engine events/sec, peak RSS.
//   online/full          --compare-jobs jobs with full O(period²) replay,
//   online/incremental2  the same stream incrementally — the two must
//                        produce bitwise-identical per-job digests (part
//                        of the exit code) and their wall times give the
//                        replay speedup at this load.
//   qos/incremental      --qos-jobs jobs through qos::Server at
//                        concurrency 2 (installment-level shared master),
//   qos/full             plus the same full-vs-incremental comparison
//   qos/incremental2     pair as above.
//
// Every cell derives its job stream from a fixed seed (comparison pairs
// share one), so the whole bench is a util::Sweep under bench::Harness:
// parallel and serial passes must agree bit for bit. Per-cell wall times
// are measured inside the pass but excluded from the bitwise signature
// (they land in the measured sidecar, not the deterministic payload).
//
// --trace=FILE additionally re-runs the qos/incremental2 cell with an
// obs::TraceRecorder attached, proves the traced digest bit-identical to
// the untraced cell (part of the exit code), exports the timeline as
// Chrome trace-event JSON to FILE, and prints the ASCII time-attribution
// summary.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <utility>
#include <vector>

#include "bench/harness.hpp"
#include "obs/critical_path.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "sim/trace.hpp"
#include "online/arrivals.hpp"
#include "online/scheduler.hpp"
#include "online/server.hpp"
#include "platform/platform.hpp"
#include "qos/policy.hpp"
#include "qos/server.hpp"
#include "sim/multiplex.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/sweep.hpp"
#include "util/table.hpp"

using namespace nldl;

namespace {

constexpr std::size_t kFairShareSlots = 4;
constexpr double kBoundedCapacity = 2.0;

online::JobMix job_mix() {
  online::JobMix mix;
  mix.load_lo = 40.0;
  mix.load_hi = 120.0;
  mix.alphas = {1.0, 2.0};
  mix.alpha_weights = {0.5, 0.5};
  return mix;
}

/// FNV-1a over the bytes of per-job (dispatch, finish) pairs, exposed as
/// an exactly-representable double (53 bits) so it can ride the
/// harness's identical_doubles signature check.
class JobDigest {
 public:
  void add(double dispatch, double finish) noexcept {
    mix_bytes(dispatch);
    mix_bytes(finish);
  }
  [[nodiscard]] double value() const noexcept {
    return static_cast<double>(hash_ >> 11);
  }

 private:
  void mix_bytes(double value) noexcept {
    unsigned char bytes[sizeof(double)];
    std::memcpy(bytes, &value, sizeof(double));
    for (unsigned char byte : bytes) {
      hash_ ^= byte;
      hash_ *= 0x100000001b3ULL;
    }
  }
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

struct CellSpec {
  const char* name;
  bool qos = false;
  bool incremental = true;
  std::size_t jobs_target = 0;
  std::uint64_t stream_seed = 0;
};

struct CellResult {
  std::size_t jobs = 0;
  double digest = 0.0;
  std::uint64_t engine_events = 0;
  std::uint64_t replays = 0;
  std::uint64_t busy_periods = 0;
  /// Wall seconds of this cell in the pass it was computed in — timing,
  /// not simulation output, so it is NOT part of the bitwise signature.
  double wall_seconds = 0.0;
};

struct SoakResults {
  std::vector<CellResult> cells;

  [[nodiscard]] std::vector<double> signature() const {
    std::vector<double> sig;
    for (const CellResult& cell : cells) {
      sig.push_back(static_cast<double>(cell.jobs));
      sig.push_back(cell.digest);
      sig.push_back(static_cast<double>(cell.engine_events));
      sig.push_back(static_cast<double>(cell.replays));
      sig.push_back(static_cast<double>(cell.busy_periods));
    }
    return sig;
  }
};

/// Horizon for ~`target` Poisson arrivals, padded 2% so the realized
/// count lands at or above the target (a 10^6-job soak should actually
/// complete 10^6 jobs, not 10^6 minus the realization shortfall).
double arrival_horizon(std::size_t target, double rate) {
  return 1.02 * static_cast<double>(target) / rate;
}

CellResult run_online_cell(const platform::Platform& plat,
                           const CellSpec& spec, double rate,
                           obs::TraceSink* trace = nullptr) {
  util::Rng rng(spec.stream_seed);
  const auto jobs = online::PoissonArrivals(rate, job_mix())
                        .generate(arrival_horizon(spec.jobs_target, rate), rng);

  online::ServerOptions options;
  options.comm = sim::CommModelKind::kBoundedMultiport;
  options.capacity = kBoundedCapacity;
  options.master = online::MasterMode::kSharedMaster;
  options.record_isolated = false;
  options.incremental_replay = spec.incremental;
  options.trace = trace;
  const online::FairShareScheduler fair(kFairShareSlots);

  obs::MetricsRegistry metrics;
  const auto stats =
      online::Server(plat, options).run(jobs, fair, &metrics);

  CellResult result;
  result.jobs = stats.size();
  JobDigest digest;
  for (const online::JobStats& job : stats) {
    digest.add(job.dispatch, job.finish);
  }
  result.digest = digest.value();
  result.engine_events = metrics.counter_value("replay.engine_events");
  result.replays = metrics.counter_value("replay.replays");
  result.busy_periods = metrics.counter_value("replay.busy_periods");
  return result;
}

CellResult run_qos_cell(const platform::Platform& plat,
                        const CellSpec& spec, double rate,
                        obs::TraceSink* trace = nullptr,
                        obs::MetricsRegistry* registry_out = nullptr,
                        std::vector<qos::JobRecord>* records_out = nullptr) {
  util::Rng rng(spec.stream_seed);
  const auto jobs = online::PoissonArrivals(rate, job_mix())
                        .generate(arrival_horizon(spec.jobs_target, rate), rng);

  qos::ServerOptions options;
  options.service.comm = sim::CommModelKind::kBoundedMultiport;
  options.service.capacity = kBoundedCapacity;
  options.service.plan.rounds = 3;
  options.service.plan.restart_load_fraction = 0.3;
  options.admission.mode = qos::AdmissionMode::kAdmitAll;
  options.concurrency = 2;
  options.incremental_replay = spec.incremental;
  options.trace = trace;
  qos::SrptPolicy policy;

  obs::MetricsRegistry local;
  obs::MetricsRegistry& metrics =
      registry_out != nullptr ? *registry_out : local;
  auto records = qos::Server(plat, options).run(jobs, policy, &metrics);

  CellResult result;
  result.jobs = records.size();
  JobDigest digest;
  for (const qos::JobRecord& record : records) {
    digest.add(record.dispatch, record.finish);
  }
  result.digest = digest.value();
  result.engine_events = metrics.counter_value("replay.engine_events");
  result.replays = metrics.counter_value("replay.replays");
  result.busy_periods = metrics.counter_value("replay.busy_periods");
  if (records_out != nullptr) *records_out = std::move(records);
  return result;
}

SoakResults compute_all(std::size_t threads,
                        const platform::Platform& plat,
                        const std::vector<CellSpec>& specs,
                        double online_rate, double qos_rate) {
  util::Grid grid;
  grid.axis("cell", specs.size());
  util::SweepOptions options;
  options.threads = threads;

  SoakResults results;
  results.cells =
      util::Sweep(std::move(grid), options)
          .map<CellResult>([&](const util::SweepPoint& point, util::Rng&) {
            const CellSpec& spec = specs[point.index_of("cell")];
            CellResult cell;
            {
              const bench::ProfileScope timer(cell.wall_seconds);
              cell = spec.qos ? run_qos_cell(plat, spec, qos_rate)
                              : run_online_cell(plat, spec, online_rate);
            }
            return cell;
          });
  return results;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto jobs =
      static_cast<std::size_t>(args.get_int("jobs", 1000000));
  const auto qos_jobs =
      static_cast<std::size_t>(args.get_int("qos-jobs", 100000));
  const auto compare_jobs =
      static_cast<std::size_t>(args.get_int("compare-jobs", 10000));
  const double load = args.get_double("load", 0.9);
  const auto p = static_cast<std::size_t>(args.get_int("p", 8));

  const platform::Platform plat =
      platform::Platform::two_class(p, 1.0, 4.0);
  // Calibrate the offered load against the capacity of the fair-share
  // system as configured: each slot serves one job at a time on its
  // 1/k slice of the platform (where nonlinear jobs are much slower
  // than on the whole machine), so the service capacity is the sum of
  // the slices' job rates — NOT 1 / whole-platform makespan. Getting
  // this wrong turns "sustained load" into an overloaded system whose
  // wait queue (and wall time) grows without bound.
  const platform::Platform::Partition carve =
      plat.interleaved_partition(kFairShareSlots);
  double capacity = 0.0;
  for (const platform::Platform& slot : carve.subsets) {
    capacity += 1.0 / online::mean_predicted_makespan(
                          job_mix(), slot,
                          sim::CommModelKind::kBoundedMultiport);
  }
  const double online_rate = load * capacity;
  // The qos server amplifies each job into `rounds` installments plus
  // restart inflation, on concurrency-2 subsets; offer a
  // proportionally thinner stream so that open system stays stable too.
  const double qos_rate = online_rate / 4.0;

  const std::vector<CellSpec> specs{
      {"online/incremental", false, true, jobs, 0x50AC01},
      {"online/full", false, false, compare_jobs, 0x50AC02},
      {"online/incremental2", false, true, compare_jobs, 0x50AC02},
      {"qos/incremental", true, true, qos_jobs, 0x51AC01},
      {"qos/full", true, false, compare_jobs, 0x51AC02},
      {"qos/incremental2", true, true, compare_jobs, 0x51AC02},
  };

  bench::Harness harness("soak", bench::harness_options_from_args(args));
  harness.config("jobs", jobs);
  harness.config("qos_jobs", qos_jobs);
  harness.config("compare_jobs", compare_jobs);
  harness.config("load", load);
  harness.config("p", p);
  harness.config("platform", "two_class(slow=1, k=4)");
  harness.config("fair_share_slots", kFairShareSlots);
  harness.config("bounded_capacity", kBoundedCapacity);

  const SoakResults results = harness.run<SoakResults>(
      [&](std::size_t threads) {
        return compute_all(threads, plat, specs, online_rate, qos_rate);
      },
      [](const SoakResults& a, const SoakResults& b) {
        return bench::identical_doubles(a.signature(), b.signature());
      });

  std::size_t total_jobs = 0;
  for (const CellResult& cell : results.cells) total_jobs += cell.jobs;
  harness.items(total_jobs);

  std::printf("=== Shared-master soak: %zu-cell sustained load %.2f ===\n\n",
              results.cells.size(), load);
  util::Table table({"cell", "jobs", "busy periods", "replays",
                     "engine events", "wall s", "jobs/s", "events/s"});
  for (std::size_t i = 0; i < results.cells.size(); ++i) {
    const CellResult& cell = results.cells[i];
    const double wall = cell.wall_seconds > 0.0 ? cell.wall_seconds : 1e-9;
    table.row()
        .cell(specs[i].name)
        .cell(cell.jobs)
        .cell(static_cast<std::size_t>(cell.busy_periods))
        .cell(static_cast<std::size_t>(cell.replays))
        .cell(static_cast<std::size_t>(cell.engine_events))
        .cell(cell.wall_seconds, 3)
        .cell(static_cast<double>(cell.jobs) / wall, 0)
        .cell(static_cast<double>(cell.engine_events) / wall, 0)
        .done();
  }
  table.print(std::cout);

  // Incremental must reproduce full replay bit for bit — this is part of
  // the exit code, exactly like the harness's serial/parallel check.
  bool replay_identical = true;
  for (std::size_t full = 1; full + 1 < results.cells.size(); full += 3) {
    const CellResult& reference = results.cells[full];
    const CellResult& incremental = results.cells[full + 1];
    const bool match = reference.jobs == incremental.jobs &&
                       reference.digest == incremental.digest;  // nldl-lint: allow(double-eq): bitwise replay digest compare
    if (!match) replay_identical = false;
    const double speedup =
        incremental.wall_seconds > 0.0
            ? reference.wall_seconds / incremental.wall_seconds
            : 0.0;
    std::printf("\n%s vs %s: digests %s | replay speedup %.1fx "
                "(%.0f -> %.0f events)\n",
                specs[full].name, specs[full + 1].name,
                match ? "identical" : "DIFFER (replay bug!)", speedup,
                static_cast<double>(reference.engine_events),
                static_cast<double>(incremental.engine_events));
  }

  // --trace=FILE: re-run the small traced qos cell, prove traced ==
  // untraced bit for bit, export the Perfetto-loadable timeline, and
  // print where the worker-seconds went.
  bool trace_identical = true;
  const std::string trace_path = args.get_string("trace", "");
  const std::string metrics_path = args.get_string("metrics", "");
  const bool blame = args.get_bool("blame", false);
  if (!trace_path.empty() || !metrics_path.empty() || blame) {
    const std::size_t traced_cell = specs.size() - 1;  // qos/incremental2
    obs::TraceRecorder recorder;
    obs::MetricsRegistry registry;
    std::vector<qos::JobRecord> cell_records;
    const CellResult traced = run_qos_cell(
        plat, specs[traced_cell], qos_rate, &recorder, &registry,
        &cell_records);
    const CellResult& untraced = results.cells[traced_cell];
    trace_identical = traced.jobs == untraced.jobs &&
                      traced.digest == untraced.digest &&  // nldl-lint: allow(double-eq): bitwise replay digest compare
                      traced.engine_events == untraced.engine_events;
    std::printf("\ntraced %s: %zu jobs, %zu events | vs untraced: %s\n",
                specs[traced_cell].name, traced.jobs,
                static_cast<std::size_t>(traced.engine_events),
                trace_identical ? "bit-identical"
                                : "DIFFER (tracing changed results!)");

    // Burn-rate over the soak's deadline budget (this stream is
    // best-effort — deadlines at infinity — so any alert is a bug worth
    // failing CI over; the monitor's accounting still exercises the full
    // path). Alerts land in the recorder before export.
    double cell_horizon = 0.0;
    for (const qos::JobRecord& record : cell_records) {
      cell_horizon = std::max(cell_horizon, record.finish);
    }
    if (cell_horizon <= 0.0) cell_horizon = 72.0;
    obs::BurnRateMonitor monitor(
        obs::SloPolicy::paging(args.get_double("slo", 0.95),
                               cell_horizon / 72.0),
        cell_horizon);
    for (const qos::JobRecord& record : cell_records) {
      if (!record.admitted) continue;
      monitor.observe(record.finish, record.finish > record.job.deadline);
    }
    monitor.finalize(&recorder, &registry);
    std::fputs(monitor.render().c_str(), stdout);

    // The blame decomposition must close bit-exactly on every job; the
    // check rides the exit code like the on/off identity above.
    const obs::CriticalPath analysis(recorder.events());
    for (const obs::JobBlame& job : analysis.jobs()) {
      if (job.total() != job.latency) {
        std::fprintf(stderr, "blame components do not sum to latency "
                             "for job %zu\n", job.job);
        trace_identical = false;
      }
    }
    if (blame) {
      std::fputs(
          obs::render_blame(analysis, 10, specs[traced_cell].name).c_str(),
          stdout);
    }

    if (!trace_path.empty()) {
      std::ofstream out(trace_path);
      obs::ChromeTraceOptions trace_options;
      trace_options.workers = p;
      trace_options.label = "soak " + std::string(specs[traced_cell].name);
      trace_options.critical_path = &analysis;
      obs::write_chrome_trace(out, recorder.events(), trace_options);
      out.flush();
      if (out) {
        std::printf("trace written to %s (%zu events)\n", trace_path.c_str(),
                    recorder.size());
      } else {
        std::fprintf(stderr, "warning: could not write %s\n",
                     trace_path.c_str());
        trace_identical = false;
      }
    }
    if (!metrics_path.empty()) {
      std::ofstream out(metrics_path);
      util::JsonWriter json(out);
      registry.write_json(json);
      const bool complete = json.complete();
      out << '\n';
      out.flush();
      if (out && complete) {
        std::printf("metrics written to %s (%zu entries)\n",
                    metrics_path.c_str(), registry.size());
      } else {
        std::fprintf(stderr, "warning: could not write %s\n",
                     metrics_path.c_str());
        trace_identical = false;
      }
    }
    std::fputs(
        obs::render_attribution(obs::attribute_time(recorder.events(), p),
                                specs[traced_cell].name)
            .c_str(),
        stdout);
    // Downsampled gantt: a soak-scale stream renders at terminal width
    // instead of a column per chunk (sim::ascii_gantt max_cols).
    std::fputs(sim::ascii_gantt(recorder.events(), p, 4096, 96).c_str(),
               stdout);
  }

  const int harness_code = harness.finish(
      [&](util::JsonWriter& json) {
        for (std::size_t i = 0; i < results.cells.size(); ++i) {
          const CellResult& cell = results.cells[i];
          json.begin_object();
          json.key("cell").value(specs[i].name);
          json.key("incremental").value(specs[i].incremental);
          json.key("jobs").value(cell.jobs);
          json.key("digest").value(cell.digest);
          json.key("busy_periods")
              .value(static_cast<std::size_t>(cell.busy_periods));
          json.key("replays").value(static_cast<std::size_t>(cell.replays));
          json.key("engine_events")
              .value(static_cast<std::size_t>(cell.engine_events));
          json.end_object();
        }
      },
      [&](util::JsonWriter& json) {
        json.key("cells").begin_array();
        for (std::size_t i = 0; i < results.cells.size(); ++i) {
          const CellResult& cell = results.cells[i];
          const double wall =
              cell.wall_seconds > 0.0 ? cell.wall_seconds : 1e-9;
          json.begin_object();
          json.key("cell").value(specs[i].name);
          json.key("wall_seconds").value(cell.wall_seconds);
          json.key("jobs_per_sec")
              .value(static_cast<double>(cell.jobs) / wall);
          json.key("events_per_sec")
              .value(static_cast<double>(cell.engine_events) / wall);
          json.end_object();
        }
        json.end_array();
      });
  return replay_identical && trace_identical ? harness_code : 1;
}
