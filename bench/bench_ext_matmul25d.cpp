// Extension bench — 2.5D matrix multiplication communication model
// (Solomonik & Demmel, the paper's ref [42] and the "notable exception"
// of Section 4.2).
//
// Shows, for N = 8192: per-processor words moved vs replication factor c,
// against the Irony–Toledo–Tiskin bandwidth lower bound, and the memory
// price paid — contextualizing the paper's 2-D (c = 1) numbers. The
// (base grid × c) sweep runs through util::Sweep under bench::Harness.
#include <cstdio>
#include <iostream>

#include "bench/harness.hpp"
#include "linalg/matmul_25d.hpp"
#include "util/cli.hpp"
#include "util/sweep.hpp"
#include "util/table.hpp"

using namespace nldl;

namespace {

const std::vector<double> kBases{16, 64};
const std::vector<double> kReplicas{1, 2, 4};

struct Row25D {
  bool valid = false;
  std::size_t p = 0;
  std::size_t c = 0;
  double words = 0.0;
  double bound = 0.0;
  double memory = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const double n = args.get_double("n", 8192.0);

  bench::Harness harness("ext_matmul25d",
                         bench::harness_options_from_args(args));
  harness.config("n", n);

  std::printf("=== Extension: 2.5D matmul communication model (ref [42]) "
              "===\n");
  std::printf("N = %.0f; grid sqrt(p/c) x sqrt(p/c) x c\n\n", n);

  const auto rows = harness.run<std::vector<Row25D>>(
      [&](std::size_t threads) {
        util::Grid grid;
        grid.axis("base", kBases).axis("c", kReplicas);
        util::SweepOptions options;
        options.threads = threads;
        return util::Sweep(std::move(grid), options).map<Row25D>(
            [n](const util::SweepPoint& point, util::Rng&) {
              const auto base =
                  static_cast<std::size_t>(point.value("base"));
              const auto c = static_cast<std::size_t>(point.value("c"));
              Row25D row;
              row.p = base * c;
              row.c = c;
              if (!linalg::valid_25d_grid(row.p, c)) return row;
              row.valid = true;
              const linalg::Matmul25DParams params{row.p, c};
              row.words = linalg::matmul_25d_words_per_proc(n, params);
              row.memory = linalg::matmul_25d_memory_per_proc(n, params);
              row.bound =
                  linalg::matmul_bandwidth_lower_bound(n, row.p,
                                                       row.memory);
              return row;
            });
      },
      [](const std::vector<Row25D>& a, const std::vector<Row25D>& b) {
        if (a.size() != b.size()) return false;
        for (std::size_t i = 0; i < a.size(); ++i) {
          if (a[i].valid != b[i].valid || a[i].words != b[i].words ||  // nldl-lint: allow(double-eq): bitwise reproducibility self-check
              a[i].bound != b[i].bound || a[i].memory != b[i].memory) {  // nldl-lint: allow(double-eq): bitwise reproducibility self-check
            return false;
          }
        }
        return true;
      });

  util::Table table({"p", "c", "words/proc", "vs c=1", "ITT lower bound",
                     "words/bound", "memory/proc (xN^2/p)"});
  for (std::size_t bi = 0; bi < kBases.size(); ++bi) {
    double c1_words = 0.0;
    for (std::size_t ci = 0; ci < kReplicas.size(); ++ci) {
      const Row25D& row = rows[bi * kReplicas.size() + ci];
      if (!row.valid) continue;
      if (row.c == 1) c1_words = row.words;
      table.row()
          .cell(row.p)
          .cell(row.c)
          .cell(row.words, 0)
          .cell(row.c == 1 ? 1.0 : row.words / c1_words, 3)
          .cell(row.bound, 0)
          .cell(row.words / row.bound, 2)
          .cell(row.memory / (n * n / double(row.p)), 1)
          .done();
    }
  }
  table.print(std::cout);
  std::printf("\n(c replicas cut the broadcast volume ~1/sqrt(c) at c x "
              "the memory — why the paper calls\n 2.5D the notable "
              "exception to outer-product-based implementations)\n");

  return harness.finish([&](util::JsonWriter& json) {
    for (const Row25D& row : rows) {
      if (!row.valid) continue;
      json.begin_object();
      json.key("p").value(row.p);
      json.key("c").value(row.c);
      json.key("words_per_proc").value(row.words);
      json.key("itt_lower_bound").value(row.bound);
      json.key("memory_per_proc").value(row.memory);
      json.end_object();
    }
  });
}
