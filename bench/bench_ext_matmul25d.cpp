// Extension bench — 2.5D matrix multiplication communication model
// (Solomonik & Demmel, the paper's ref [42] and the "notable exception"
// of Section 4.2).
//
// Shows, for N = 8192: per-processor words moved vs replication factor c,
// against the Irony–Toledo–Tiskin bandwidth lower bound, and the memory
// price paid — contextualizing the paper's 2-D (c = 1) numbers.
#include <cstdio>
#include <iostream>

#include "linalg/matmul_25d.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace nldl;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const double n = args.get_double("n", 8192.0);

  std::printf("=== Extension: 2.5D matmul communication model (ref [42]) "
              "===\n");
  std::printf("N = %.0f; grid sqrt(p/c) x sqrt(p/c) x c\n\n", n);

  util::Table table({"p", "c", "words/proc", "vs c=1", "ITT lower bound",
                     "words/bound", "memory/proc (xN^2/p)"});
  for (const std::size_t base : {16UL, 64UL}) {
    double c1_words = 0.0;
    for (const std::size_t c : {1UL, 2UL, 4UL}) {
      const std::size_t p = base * c;
      if (!linalg::valid_25d_grid(p, c)) continue;
      const linalg::Matmul25DParams params{p, c};
      const double words = linalg::matmul_25d_words_per_proc(n, params);
      if (c == 1) c1_words = words;
      const double memory = linalg::matmul_25d_memory_per_proc(n, params);
      const double bound =
          linalg::matmul_bandwidth_lower_bound(n, p, memory);
      table.row()
          .cell(p)
          .cell(c)
          .cell(words, 0)
          .cell(c == 1 ? 1.0 : words / c1_words, 3)
          .cell(bound, 0)
          .cell(words / bound, 2)
          .cell(memory / (n * n / double(p)), 1)
          .done();
    }
  }
  table.print(std::cout);
  std::printf("\n(c replicas cut the broadcast volume ~1/sqrt(c) at c x "
              "the memory — why the paper calls\n 2.5D the notable "
              "exception to outer-product-based implementations)\n");
  return 0;
}
