// Extension bench — stragglers and speculative re-execution, the MapReduce
// resilience mechanism the paper's Section 1.1 credits ("detection of
// nodes that perform poorly in order to re-assign tasks").
//
// Sweeps the slowdown factor of one degraded worker and reports makespan
// without/with backup tasks, plus the byte overhead the backups cost.
#include <cstdio>
#include <iostream>

#include "mapreduce/matmul_job.hpp"
#include "mapreduce/outer_product_job.hpp"
#include "mapreduce/speculation.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace nldl;

namespace {

void sweep(const std::string& name, const std::vector<mapreduce::SimTask>& tasks,
           double bytes_per_block, std::size_t p) {
  std::printf("workload: %s (%zu tasks, %zu workers, worker %zu "
              "degraded)\n\n", name.c_str(), tasks.size(), p, p);
  util::Table table({"slowdown", "makespan (no spec)", "makespan (spec)",
                     "speedup", "backups", "backups won",
                     "extra bytes"});
  for (const double slowdown : {1.0, 2.0, 5.0, 10.0, 50.0}) {
    mapreduce::StragglerConfig config;
    config.speeds.assign(p, 1.0);
    config.slowdown.assign(p, 1.0);
    config.slowdown.back() = slowdown;
    config.bytes_per_block = bytes_per_block;

    const auto plain = run_with_stragglers(tasks, config);
    auto spec_config = config;
    spec_config.speculative_execution = true;
    const auto spec = run_with_stragglers(tasks, spec_config);

    table.row()
        .cell(slowdown, 0)
        .cell(plain.makespan, 2)
        .cell(spec.makespan, 2)
        .cell(plain.makespan / spec.makespan, 2)
        .cell(spec.backup_launches)
        .cell(spec.backups_won)
        .cell(spec.total_bytes - plain.total_bytes, 0)
        .done();
  }
  table.print(std::cout);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  (void)args;
  std::printf("=== Extension: straggler injection + speculative "
              "re-execution (Hadoop-style backup tasks) ===\n\n");
  sweep("outer product N=240 b=24",
        mapreduce::outer_product_tasks(240, 24), 24.0, 4);
  sweep("matmul N=64 b=16", mapreduce::matmul_tasks(64, 16), 256.0, 4);
  std::printf("(speculation buys back most of the straggler tail for a "
              "modest duplicate-fetch cost —\n the mechanism that lets "
              "MapReduce tolerate the heterogeneity the paper studies)\n");
  return 0;
}
