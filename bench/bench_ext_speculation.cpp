// Extension bench — stragglers and speculative re-execution, the MapReduce
// resilience mechanism the paper's Section 1.1 credits ("detection of
// nodes that perform poorly in order to re-assign tasks").
//
// Sweeps the slowdown factor of one degraded worker and reports makespan
// without/with backup tasks, plus the byte overhead the backups cost. The
// (workload × slowdown) grid runs through util::Sweep under
// bench::Harness.
#include <cstdio>
#include <iostream>

#include "bench/harness.hpp"
#include "mapreduce/matmul_job.hpp"
#include "mapreduce/outer_product_job.hpp"
#include "mapreduce/speculation.hpp"
#include "util/cli.hpp"
#include "util/sweep.hpp"
#include "util/table.hpp"

using namespace nldl;

namespace {

const std::vector<double> kSlowdowns{1.0, 2.0, 5.0, 10.0, 50.0};

struct Workload {
  std::string name;
  std::vector<mapreduce::SimTask> tasks;
  double bytes_per_block;
  std::size_t p;
};

struct SpecRow {
  double plain_makespan = 0.0;
  double spec_makespan = 0.0;
  double backups = 0.0;
  double backups_won = 0.0;
  double extra_bytes = 0.0;
};

std::vector<Workload> build_workloads() {
  std::vector<Workload> workloads;
  workloads.push_back({"outer product N=240 b=24",
                       mapreduce::outer_product_tasks(240, 24), 24.0, 4});
  workloads.push_back(
      {"matmul N=64 b=16", mapreduce::matmul_tasks(64, 16), 256.0, 4});
  return workloads;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);

  bench::Harness harness("ext_speculation",
                         bench::harness_options_from_args(args));

  std::printf("=== Extension: straggler injection + speculative "
              "re-execution (Hadoop-style backup tasks) ===\n\n");

  const auto workloads = build_workloads();

  const auto rows = harness.run<std::vector<SpecRow>>(
      [&](std::size_t threads) {
        util::Grid grid;
        grid.axis("workload", workloads.size())
            .axis("slowdown", kSlowdowns);
        util::SweepOptions options;
        options.threads = threads;
        return util::Sweep(std::move(grid), options).map<SpecRow>(
            [&](const util::SweepPoint& point, util::Rng&) {
              const Workload& w =
                  workloads[point.index_of("workload")];
              mapreduce::StragglerConfig config;
              config.speeds.assign(w.p, 1.0);
              config.slowdown.assign(w.p, 1.0);
              config.slowdown.back() = point.value("slowdown");
              config.bytes_per_block = w.bytes_per_block;

              const auto plain = run_with_stragglers(w.tasks, config);
              auto spec_config = config;
              spec_config.speculative_execution = true;
              const auto spec = run_with_stragglers(w.tasks, spec_config);
              return SpecRow{plain.makespan, spec.makespan,
                             static_cast<double>(spec.backup_launches),
                             static_cast<double>(spec.backups_won),
                             spec.total_bytes - plain.total_bytes};
            });
      },
      [](const std::vector<SpecRow>& a, const std::vector<SpecRow>& b) {
        if (a.size() != b.size()) return false;
        for (std::size_t i = 0; i < a.size(); ++i) {
          if (a[i].plain_makespan != b[i].plain_makespan ||  // nldl-lint: allow(double-eq): bitwise reproducibility self-check
              a[i].spec_makespan != b[i].spec_makespan ||  // nldl-lint: allow(double-eq): bitwise reproducibility self-check
              a[i].backups != b[i].backups ||  // nldl-lint: allow(double-eq): bitwise reproducibility self-check
              a[i].backups_won != b[i].backups_won ||  // nldl-lint: allow(double-eq): bitwise reproducibility self-check
              a[i].extra_bytes != b[i].extra_bytes) {  // nldl-lint: allow(double-eq): bitwise reproducibility self-check
            return false;
          }
        }
        return true;
      });

  for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
    const Workload& w = workloads[wi];
    std::printf("workload: %s (%zu tasks, %zu workers, worker %zu "
                "degraded)\n\n",
                w.name.c_str(), w.tasks.size(), w.p, w.p);
    util::Table table({"slowdown", "makespan (no spec)", "makespan (spec)",
                       "speedup", "backups", "backups won",
                       "extra bytes"});
    for (std::size_t si = 0; si < kSlowdowns.size(); ++si) {
      const SpecRow& row = rows[wi * kSlowdowns.size() + si];
      table.row()
          .cell(kSlowdowns[si], 0)
          .cell(row.plain_makespan, 2)
          .cell(row.spec_makespan, 2)
          .cell(row.plain_makespan / row.spec_makespan, 2)
          .cell(static_cast<std::size_t>(row.backups))
          .cell(static_cast<std::size_t>(row.backups_won))
          .cell(row.extra_bytes, 0)
          .done();
    }
    table.print(std::cout);
    std::printf("\n");
  }
  std::printf("(speculation buys back most of the straggler tail for a "
              "modest duplicate-fetch cost —\n the mechanism that lets "
              "MapReduce tolerate the heterogeneity the paper studies)\n");

  return harness.finish([&](util::JsonWriter& json) {
    for (std::size_t i = 0; i < rows.size(); ++i) {
      json.begin_object();
      json.key("workload")
          .value(workloads[i / kSlowdowns.size()].name);
      json.key("slowdown").value(kSlowdowns[i % kSlowdowns.size()]);
      json.key("makespan_plain").value(rows[i].plain_makespan);
      json.key("makespan_speculative").value(rows[i].spec_makespan);
      json.key("backup_launches").value(rows[i].backups);
      json.key("backups_won").value(rows[i].backups_won);
      json.key("extra_bytes").value(rows[i].extra_bytes);
      json.end_object();
    }
  });
}
