// Extension bench — divisible loads *with return messages* (refs [28–30]),
// the model dimension the paper's Section 1.2 explicitly set aside.
//
// Compares, across output ratios δ and platforms:
//   - the parallel-links equal-finish optimum (contention-free bound),
//   - one-port FIFO (returns in send order),
//   - one-port LIFO (returns in reverse order),
// and shows the classical facts: order matters, LIFO ≠ FIFO, and a fixed
// all-workers order can even lose to the best worker running solo. The
// (platform × δ) grid runs through util::Sweep under bench::Harness.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <numeric>

#include "bench/harness.hpp"
#include "dlt/return_messages.hpp"
#include "platform/speed_distributions.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/sweep.hpp"
#include "util/table.hpp"

using namespace nldl;

namespace {

const std::vector<double> kDeltas{0.0, 0.25, 1.0};

struct ReturnRow {
  double ideal = 0.0;
  double fifo = 0.0;
  double lifo = 0.0;
  double solo = 0.0;
};

std::vector<std::pair<std::string, platform::Platform>> build_platforms(
    std::uint64_t seed) {
  util::Rng rng(seed);
  return {
      {"4 equal (c=0.2)", platform::Platform::homogeneous(4, 0.2, 1.0)},
      {"uniform p=6",
       platform::make_platform(platform::SpeedModel::kUniform, 6, rng)},
      {"2-class k=8 (p=4)", platform::Platform::two_class(4, 1.0, 8.0, 0.2)},
  };
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<long long>(util::Rng::kDefaultSeed)));
  const double load = args.get_double("load", 100.0);

  bench::Harness harness("ext_return_messages",
                         bench::harness_options_from_args(args));
  harness.config("load", load);
  harness.config("seed", static_cast<std::int64_t>(seed));

  std::printf("=== Extension: divisible loads with return messages "
              "(one-port star) ===\n");
  std::printf("output ratio delta = output size / input size; load = %.0f "
              "units\n\n", load);

  const auto platforms = build_platforms(seed);

  const auto rows = harness.run<std::vector<ReturnRow>>(
      [&](std::size_t threads) {
        util::Grid grid;
        grid.axis("platform", platforms.size()).axis("delta", kDeltas);
        util::SweepOptions options;
        options.threads = threads;
        options.seed = seed;
        return util::Sweep(std::move(grid), options).map<ReturnRow>(
            [&](const util::SweepPoint& point, util::Rng&) {
              const platform::Platform& plat =
                  platforms[point.index_of("platform")].second;
              const double delta = point.value("delta");
              std::vector<std::size_t> order(plat.size());
              std::iota(order.begin(), order.end(), std::size_t{0});
              ReturnRow row;
              row.ideal =
                  dlt::linear_parallel_with_return(plat, load, delta)
                      .makespan;
              row.fifo = dlt::one_port_fifo_with_return(plat, load, delta,
                                                        order)
                             .makespan;
              row.lifo = dlt::one_port_lifo_with_return(plat, load, delta,
                                                        order)
                             .makespan;
              row.solo = 1e300;
              for (std::size_t i = 0; i < plat.size(); ++i) {
                row.solo = std::min(
                    row.solo,
                    (plat.c(i) * (1.0 + delta) + plat.w(i)) * load);
              }
              return row;
            });
      },
      [](const std::vector<ReturnRow>& a, const std::vector<ReturnRow>& b) {
        if (a.size() != b.size()) return false;
        for (std::size_t i = 0; i < a.size(); ++i) {
          if (a[i].ideal != b[i].ideal || a[i].fifo != b[i].fifo ||  // nldl-lint: allow(double-eq): bitwise reproducibility self-check
              a[i].lifo != b[i].lifo || a[i].solo != b[i].solo) {  // nldl-lint: allow(double-eq): bitwise reproducibility self-check
            return false;
          }
        }
        return true;
      });

  util::Table table({"platform", "delta", "parallel-links", "FIFO",
                     "LIFO", "best solo", "LIFO/parallel"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    table.row()
        .cell(platforms[i / kDeltas.size()].first)
        .cell(kDeltas[i % kDeltas.size()], 2)
        .cell(rows[i].ideal, 2)
        .cell(rows[i].fifo, 2)
        .cell(rows[i].lifo, 2)
        .cell(rows[i].solo, 2)
        .cell(rows[i].lifo / rows[i].ideal, 3)
        .done();
  }
  table.print(std::cout);
  std::printf("\n(FIFO > LIFO on most instances; both serialize the bus. "
              "With large delta a fixed\n all-workers order can lose to "
              "the best solo worker — participation is not free,\n echoing "
              "ref [29]'s idle-processor optima.)\n");

  return harness.finish([&](util::JsonWriter& json) {
    for (std::size_t i = 0; i < rows.size(); ++i) {
      json.begin_object();
      json.key("platform").value(platforms[i / kDeltas.size()].first);
      json.key("delta").value(kDeltas[i % kDeltas.size()]);
      json.key("parallel_links").value(rows[i].ideal);
      json.key("fifo").value(rows[i].fifo);
      json.key("lifo").value(rows[i].lifo);
      json.key("best_solo").value(rows[i].solo);
      json.end_object();
    }
  });
}
