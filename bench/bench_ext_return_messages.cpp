// Extension bench — divisible loads *with return messages* (refs [28–30]),
// the model dimension the paper's Section 1.2 explicitly set aside.
//
// Compares, across output ratios δ and platforms:
//   - the parallel-links equal-finish optimum (contention-free bound),
//   - one-port FIFO (returns in send order),
//   - one-port LIFO (returns in reverse order),
// and shows the classical facts: order matters, LIFO ≠ FIFO, and a fixed
// all-workers order can even lose to the best worker running solo.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <numeric>

#include "dlt/return_messages.hpp"
#include "platform/speed_distributions.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace nldl;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<long long>(util::Rng::kDefaultSeed)));
  const double load = args.get_double("load", 100.0);

  std::printf("=== Extension: divisible loads with return messages "
              "(one-port star) ===\n");
  std::printf("output ratio delta = output size / input size; load = %.0f "
              "units\n\n", load);

  util::Table table({"platform", "delta", "parallel-links", "FIFO",
                     "LIFO", "best solo", "LIFO/parallel"});
  util::Rng rng(seed);
  const std::vector<std::pair<std::string, platform::Platform>> platforms{
      {"4 equal (c=0.2)", platform::Platform::homogeneous(4, 0.2, 1.0)},
      {"uniform p=6",
       platform::make_platform(platform::SpeedModel::kUniform, 6, rng)},
      {"2-class k=8 (p=4)", platform::Platform::two_class(4, 1.0, 8.0, 0.2)},
  };

  for (const auto& [name, plat] : platforms) {
    std::vector<std::size_t> order(plat.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    for (const double delta : {0.0, 0.25, 1.0}) {
      const auto ideal =
          dlt::linear_parallel_with_return(plat, load, delta);
      const auto fifo =
          dlt::one_port_fifo_with_return(plat, load, delta, order);
      const auto lifo =
          dlt::one_port_lifo_with_return(plat, load, delta, order);
      double solo = 1e300;
      for (std::size_t i = 0; i < plat.size(); ++i) {
        solo = std::min(solo,
                        (plat.c(i) * (1.0 + delta) + plat.w(i)) * load);
      }
      table.row()
          .cell(name)
          .cell(delta, 2)
          .cell(ideal.makespan, 2)
          .cell(fifo.makespan, 2)
          .cell(lifo.makespan, 2)
          .cell(solo, 2)
          .cell(lifo.makespan / ideal.makespan, 3)
          .done();
    }
  }
  table.print(std::cout);
  std::printf("\n(FIFO > LIFO on most instances; both serialize the bus. "
              "With large delta a fixed\n all-workers order can lose to "
              "the best solo worker — participation is not free,\n echoing "
              "ref [29]'s idle-processor optima.)\n");
  return 0;
}
