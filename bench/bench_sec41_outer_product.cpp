// Section 4.1 — outer-product data distribution.
//
// Regenerates:
//   (1) the closed formulas: Comm_hom = 2N·√(Σs/s₁), LB = 2N·Σ√x_i,
//       Comm_het <= 1 + (5/4)·LB — validated against the implementations;
//   (2) the ratio ρ = Comm_hom/Comm_het on the two-class platform of
//       Section 4.1.3 vs the paper's bounds (1+k)/(1+√k) and √k − 1;
//   (3) an executable end-to-end check: both strategies compute the same
//       outer product while shipping very different volumes.
//
// All three families run as util::Sweep grids under bench::Harness
// (bit-identity self-checked, BENCH_sec41_outer_product.json emitted).
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/harness.hpp"
#include "core/strategies.hpp"
#include "linalg/outer_product.hpp"
#include "partition/layout.hpp"
#include "partition/lower_bound.hpp"
#include "platform/platform.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/sweep.hpp"
#include "util/table.hpp"

using namespace nldl;

namespace {

const std::vector<std::pair<std::string, std::vector<double>>>
    kFormulaCases{
        {"4 equal", {1.0, 1.0, 1.0, 1.0}},
        {"1,2,3,4", {1.0, 2.0, 3.0, 4.0}},
        {"2-class k=16 (p=8)",
         {1.0, 1.0, 1.0, 1.0, 16.0, 16.0, 16.0, 16.0}},
    };
const std::vector<double> kRhoKs{1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0};

struct FormulaRow {
  double formula_volume = 0.0;
  double hom_volume = 0.0;
  double het_volume = 0.0;
  double het_bound = 0.0;  ///< N + (5/4)·LB
  double lower_bound = 0.0;
};

struct RhoRow {
  double k = 0.0;
  double rho = 0.0;
  double bound = 0.0;      ///< (1+k)/(1+√k)
  double weak_bound = 0.0; ///< √k − 1
  double hom_over_lb = 0.0;
  double het_over_lb = 0.0;
};

struct ExecutedRow {
  std::size_t total_elements = 0;
  double per_cell = 0.0;
  double imbalance = 0.0;
  double max_error = 0.0;
};

struct Sec41Results {
  std::vector<FormulaRow> formulas;  ///< one per kFormulaCases entry
  std::vector<RhoRow> rho;           ///< one per kRhoKs entry
  std::vector<ExecutedRow> executed; ///< [het, hom]

  [[nodiscard]] std::vector<double> signature() const {
    std::vector<double> sig;
    for (const auto& row : formulas) {
      sig.insert(sig.end(), {row.formula_volume, row.hom_volume,
                             row.het_volume, row.het_bound,
                             row.lower_bound});
    }
    for (const auto& row : rho) {
      sig.insert(sig.end(), {row.k, row.rho, row.bound, row.weak_bound,
                             row.hom_over_lb, row.het_over_lb});
    }
    for (const auto& row : executed) {
      sig.insert(sig.end(),
                 {static_cast<double>(row.total_elements), row.per_cell,
                  row.imbalance, row.max_error});
    }
    return sig;
  }
};

Sec41Results compute_all(std::size_t threads, std::uint64_t seed) {
  Sec41Results results;
  util::SweepOptions options;
  options.threads = threads;
  options.seed = seed;

  {
    util::Grid grid;
    grid.axis("case", kFormulaCases.size());
    results.formulas =
        util::Sweep(std::move(grid), options).map<FormulaRow>(
            [](const util::SweepPoint& point, util::Rng&) {
              const double n = 1000.0;
              const auto& speeds =
                  kFormulaCases[point.index_of("case")].second;
              const auto formula =
                  partition::homogeneous_blocks_formula(speeds, n);
              const auto hom = core::evaluate_strategy(
                  core::Strategy::kHomogeneousBlocks, speeds, n);
              const auto het = core::evaluate_strategy(
                  core::Strategy::kHeterogeneousBlocks, speeds, n);
              const double lb = partition::comm_lower_bound(speeds, n);
              return FormulaRow{formula.comm_volume, hom.comm_volume,
                                het.comm_volume, n + 1.25 * lb, lb};
            });
  }
  {
    util::Grid grid;
    grid.axis("k", kRhoKs);
    results.rho = util::Sweep(std::move(grid), options).map<RhoRow>(
        [](const util::SweepPoint& point, util::Rng&) {
          const double k = point.value("k");
          const auto plat = platform::Platform::two_class(16, 1.0, k);
          const auto speeds = plat.speeds();
          const auto hom = core::evaluate_strategy(
              core::Strategy::kHomogeneousBlocks, speeds, 1.0);
          const auto het = core::evaluate_strategy(
              core::Strategy::kHeterogeneousBlocks, speeds, 1.0);
          return RhoRow{k,
                        hom.comm_volume / het.comm_volume,
                        core::rho_two_class_bound(k),
                        std::max(0.0, std::sqrt(k) - 1.0),
                        hom.ratio_to_lower_bound,
                        het.ratio_to_lower_bound};
        });
  }
  {
    // Shared inputs drawn once so both strategies multiply the same
    // vectors; the two heavyweight executions are the grid points.
    util::Rng rng(seed);
    const std::size_t n = 240;
    std::vector<double> a(n);
    std::vector<double> b(n);
    for (auto& v : a) v = rng.uniform(-1.0, 1.0);
    for (auto& v : b) v = rng.uniform(-1.0, 1.0);
    // Σ s = 64 so that the homogeneous block dimension divides N.
    const std::vector<double> speeds{1.0, 1.0, 31.0, 31.0};
    const auto reference = linalg::outer_product_serial(a, b);

    util::Grid grid;
    grid.axis("strategy", std::size_t{2});
    results.executed =
        util::Sweep(std::move(grid), options).map<ExecutedRow>(
            [&](const util::SweepPoint& point, util::Rng&) {
              ExecutedRow row;
              if (point.index_of("strategy") == 0) {
                const auto layout = partition::discretize(
                    partition::peri_sum_partition(speeds),
                    static_cast<long long>(n));
                const auto het = linalg::outer_product_partitioned(
                    a, b, layout, speeds);
                row.total_elements = het.total_elements;
                row.imbalance = het.imbalance;
                row.max_error = het.result.max_abs_diff(reference);
              } else {
                const auto formula = partition::homogeneous_blocks_formula(
                    speeds, double(n));
                const auto hom = linalg::outer_product_blocked(
                    a, b,
                    static_cast<long long>(std::llround(formula.block_dim)),
                    speeds);
                row.total_elements = hom.total_elements;
                row.imbalance = hom.imbalance;
                row.max_error = hom.result.max_abs_diff(reference);
              }
              row.per_cell = double(row.total_elements) /
                             (double(n) * double(n));
              return row;
            });
  }
  return results;
}

void print_tables(const Sec41Results& results) {
  std::printf("=== Formula validation (Section 4.1.1/4.1.2) ===\n\n");
  util::Table formulas({"platform", "Comm_hom formula", "Comm_hom measured",
                        "Comm_het measured", "1+(5/4)LB", "LB"});
  for (std::size_t i = 0; i < results.formulas.size(); ++i) {
    const FormulaRow& row = results.formulas[i];
    formulas.row()
        .cell(kFormulaCases[i].first)
        .cell(row.formula_volume, 1)
        .cell(row.hom_volume, 1)
        .cell(row.het_volume, 1)
        .cell(row.het_bound, 1)
        .cell(row.lower_bound, 1)
        .done();
  }
  formulas.print(std::cout);

  std::printf("\n=== rho = Comm_hom / Comm_het on two-class platforms "
              "(Section 4.1.3) ===\n");
  std::printf("paper: rho >= (1+k)/(1+sqrt(k)) >= sqrt(k)-1 "
              "(LB-relative analysis)\n\n");
  util::Table rho({"k", "rho measured", "(1+k)/(1+sqrt k)", "sqrt(k)-1",
                   "Comm_hom/LB", "Comm_het/LB"});
  for (const RhoRow& row : results.rho) {
    rho.row()
        .cell(row.k, 0)
        .cell(row.rho, 3)
        .cell(row.bound, 3)
        .cell(row.weak_bound, 3)
        .cell(row.hom_over_lb, 3)
        .cell(row.het_over_lb, 3)
        .done();
  }
  rho.print(std::cout);

  std::printf("\n=== Executed outer product, N = 240 (both strategies "
              "verified against the serial result) ===\n\n");
  util::Table executed({"strategy", "elements shipped", "per C-cell",
                        "imbalance e", "max |err|"});
  const char* names[] = {"Comm_het (PERI-SUM)", "Comm_hom (blocks)"};
  for (std::size_t i = 0; i < results.executed.size(); ++i) {
    const ExecutedRow& row = results.executed[i];
    executed.row()
        .cell(std::string(names[i]))
        .cell(row.total_elements)
        .cell(row.per_cell, 5)
        .cell(row.imbalance, 4)
        .cell(row.max_error, 2)
        .done();
  }
  executed.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<long long>(util::Rng::kDefaultSeed)));

  bench::Harness harness("sec41_outer_product",
                         bench::harness_options_from_args(args));
  harness.config("seed", static_cast<std::int64_t>(seed));
  harness.config("n_executed", std::size_t{240});

  const Sec41Results results = harness.run<Sec41Results>(
      [&](std::size_t threads) { return compute_all(threads, seed); },
      [](const Sec41Results& a, const Sec41Results& b) {
        return bench::identical_doubles(a.signature(), b.signature());
      });

  print_tables(results);

  return harness.finish([&](util::JsonWriter& json) {
    for (std::size_t i = 0; i < results.formulas.size(); ++i) {
      const FormulaRow& row = results.formulas[i];
      json.begin_object();
      json.key("family").value("formula_validation");
      json.key("platform").value(kFormulaCases[i].first);
      json.key("formula_volume").value(row.formula_volume);
      json.key("hom_volume").value(row.hom_volume);
      json.key("het_volume").value(row.het_volume);
      json.key("lower_bound").value(row.lower_bound);
      json.end_object();
    }
    for (const RhoRow& row : results.rho) {
      json.begin_object();
      json.key("family").value("rho_two_class");
      json.key("k").value(row.k);
      json.key("rho").value(row.rho);
      json.key("bound").value(row.bound);
      json.key("hom_over_lb").value(row.hom_over_lb);
      json.key("het_over_lb").value(row.het_over_lb);
      json.end_object();
    }
    for (std::size_t i = 0; i < results.executed.size(); ++i) {
      const ExecutedRow& row = results.executed[i];
      json.begin_object();
      json.key("family").value("executed_outer_product");
      json.key("strategy").value(i == 0 ? "het" : "hom");
      json.key("elements_shipped").value(row.total_elements);
      json.key("imbalance").value(row.imbalance);
      json.key("max_error").value(row.max_error);
      json.end_object();
    }
  });
}
