// Section 4.1 — outer-product data distribution.
//
// Regenerates:
//   (1) the closed formulas: Comm_hom = 2N·√(Σs/s₁), LB = 2N·Σ√x_i,
//       Comm_het <= 1 + (5/4)·LB — validated against the implementations;
//   (2) the ratio ρ = Comm_hom/Comm_het on the two-class platform of
//       Section 4.1.3 vs the paper's bounds (1+k)/(1+√k) and √k − 1;
//   (3) an executable end-to-end check: both strategies compute the same
//       outer product while shipping very different volumes.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "core/strategies.hpp"
#include "linalg/outer_product.hpp"
#include "partition/layout.hpp"
#include "partition/lower_bound.hpp"
#include "platform/platform.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace nldl;

namespace {

void formula_validation() {
  std::printf("=== Formula validation (Section 4.1.1/4.1.2) ===\n\n");
  util::Table table({"platform", "Comm_hom formula", "Comm_hom measured",
                     "Comm_het measured", "1+(5/4)LB", "LB"});
  const double n = 1000.0;
  const std::vector<std::pair<std::string, std::vector<double>>> cases{
      {"4 equal", {1.0, 1.0, 1.0, 1.0}},
      {"1,2,3,4", {1.0, 2.0, 3.0, 4.0}},
      {"2-class k=16 (p=8)",
       {1.0, 1.0, 1.0, 1.0, 16.0, 16.0, 16.0, 16.0}},
  };
  for (const auto& [name, speeds] : cases) {
    const auto formula = partition::homogeneous_blocks_formula(speeds, n);
    const auto hom =
        core::evaluate_strategy(core::Strategy::kHomogeneousBlocks, speeds, n);
    const auto het = core::evaluate_strategy(
        core::Strategy::kHeterogeneousBlocks, speeds, n);
    const double lb = partition::comm_lower_bound(speeds, n);
    table.row()
        .cell(name)
        .cell(formula.comm_volume, 1)
        .cell(hom.comm_volume, 1)
        .cell(het.comm_volume, 1)
        .cell(n + 1.25 * lb, 1)
        .cell(lb, 1)
        .done();
  }
  table.print(std::cout);
}

void rho_two_class() {
  std::printf("\n=== rho = Comm_hom / Comm_het on two-class platforms "
              "(Section 4.1.3) ===\n");
  std::printf("paper: rho >= (1+k)/(1+sqrt(k)) >= sqrt(k)-1 "
              "(LB-relative analysis)\n\n");
  util::Table table({"k", "rho measured", "(1+k)/(1+sqrt k)", "sqrt(k)-1",
                     "Comm_hom/LB", "Comm_het/LB"});
  for (const double k : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
    const auto plat = platform::Platform::two_class(16, 1.0, k);
    const auto speeds = plat.speeds();
    const auto hom = core::evaluate_strategy(
        core::Strategy::kHomogeneousBlocks, speeds, 1.0);
    const auto het = core::evaluate_strategy(
        core::Strategy::kHeterogeneousBlocks, speeds, 1.0);
    table.row()
        .cell(k, 0)
        .cell(hom.comm_volume / het.comm_volume, 3)
        .cell(core::rho_two_class_bound(k), 3)
        .cell(std::max(0.0, std::sqrt(k) - 1.0), 3)
        .cell(hom.ratio_to_lower_bound, 3)
        .cell(het.ratio_to_lower_bound, 3)
        .done();
  }
  table.print(std::cout);
}

void executed_outer_product(std::uint64_t seed) {
  std::printf("\n=== Executed outer product, N = 240 (both strategies "
              "verified against the serial result) ===\n\n");
  util::Rng rng(seed);
  const std::size_t n = 240;
  std::vector<double> a(n);
  std::vector<double> b(n);
  for (auto& v : a) v = rng.uniform(-1.0, 1.0);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  // Σ s = 64 so that the homogeneous block dimension divides N.
  const std::vector<double> speeds{1.0, 1.0, 31.0, 31.0};

  const auto layout = partition::discretize(
      partition::peri_sum_partition(speeds), static_cast<long long>(n));
  const auto het = linalg::outer_product_partitioned(a, b, layout, speeds);
  const auto formula =
      partition::homogeneous_blocks_formula(speeds, double(n));
  const auto hom = linalg::outer_product_blocked(
      a, b, static_cast<long long>(std::llround(formula.block_dim)), speeds);
  const auto reference = linalg::outer_product_serial(a, b);

  util::Table table({"strategy", "elements shipped", "per C-cell",
                     "imbalance e", "max |err|"});
  table.row()
      .cell(std::string("Comm_het (PERI-SUM)"))
      .cell(het.total_elements)
      .cell(double(het.total_elements) / (double(n) * double(n)), 5)
      .cell(het.imbalance, 4)
      .cell(het.result.max_abs_diff(reference), 2)
      .done();
  table.row()
      .cell(std::string("Comm_hom (blocks)"))
      .cell(hom.total_elements)
      .cell(double(hom.total_elements) / (double(n) * double(n)), 5)
      .cell(hom.imbalance, 4)
      .cell(hom.result.max_abs_diff(reference), 2)
      .done();
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<long long>(util::Rng::kDefaultSeed)));
  formula_validation();
  rho_two_class();
  executed_outer_product(seed);
  return 0;
}
