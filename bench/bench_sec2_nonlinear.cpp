// Section 2 — "Non-linear workloads are not amenable to DLT".
//
// Regenerates the paper's central analysis: after one optimal DLT round on
// p processors, the fraction of an N^α workload still to be processed is
//   (W − W_partial)/W = 1 − 1/p^(α−1)  (homogeneous closed form),
// which tends to 1 as p grows. We print the closed form next to the solved
// allocations under both communication models, plus heterogeneous
// platforms where no closed form exists — showing that the sophisticated
// allocation problem of refs [31–35] optimizes a vanishing share of work.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <limits>

#include "core/experiments.hpp"
#include "core/no_free_lunch.hpp"
#include "dlt/analysis.hpp"
#include "dlt/nonlinear_dlt.hpp"
#include "platform/speed_distributions.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace nldl;

namespace {

void homogeneous_sweep(double total_load) {
  std::printf("=== Remaining work fraction after one DLT round "
              "(homogeneous, c = w = 1) ===\n");
  std::printf("paper: 1 - 1/p^(alpha-1) -> 1 as p grows\n\n");
  const std::vector<std::size_t> ps{2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};
  for (const double alpha : {1.25, 1.5, 2.0, 3.0}) {
    std::printf("alpha = %.2f\n", alpha);
    const auto points = core::remaining_fraction_sweep(ps, alpha, total_load);
    core::nfl_table(points).print(std::cout);
    std::printf("\n");
  }
}

void heterogeneous_sweep(double total_load, std::uint64_t seed) {
  std::printf("=== Same question on heterogeneous platforms "
              "(no closed form; solved numerically) ===\n\n");
  util::Table table({"model", "p", "alpha", "remaining (parallel)",
                     "remaining (one-port)", "homog. closed form"});
  util::Rng rng(seed);
  for (const auto model : {platform::SpeedModel::kUniform,
                           platform::SpeedModel::kLogNormal}) {
    for (const std::size_t p : {4UL, 16UL, 64UL, 256UL}) {
      const auto plat = platform::make_platform(model, p, rng);
      for (const double alpha : {2.0, 3.0}) {
        const auto point = core::remaining_fraction_on(plat, alpha,
                                                       total_load);
        table.row()
            .cell(platform::to_string(model))
            .cell(p)
            .cell(alpha, 1)
            .cell(point.simulated_parallel, 6)
            .cell(point.simulated_one_port, 6)
            .cell(point.closed_form, 6)
            .done();
      }
    }
  }
  table.print(std::cout);
}

void makespan_vs_full_job(double total_load) {
  // The flip side of the same theorem: the DLT round's makespan is a
  // vanishing share of the time needed to finish the whole job.
  std::printf("\n=== Makespan of the DLT round vs total job (alpha = 2, "
              "homogeneous) ===\n\n");
  util::Table table({"p", "round makespan", "work done", "total work",
                     "done/total"});
  for (const std::size_t p : {2UL, 8UL, 32UL, 128UL}) {
    const auto plat = platform::Platform::homogeneous(p, 1.0, 1.0);
    const auto alloc =
        dlt::nonlinear_parallel_single_round(plat, total_load, 2.0);
    table.row()
        .cell(p)
        .cell(alloc.makespan, 1)
        .cell(alloc.work_done, 1)
        .cell(alloc.total_work, 1)
        .cell(alloc.work_done / alloc.total_work, 6)
        .done();
  }
  table.print(std::cout);
}

void model_independence(double total_load) {
  // The conclusion does not hinge on the communication model: even under
  // bounded-multiport masters (between parallel links and one-port), the
  // equal-split round covers the same vanishing work share — only the
  // round's *makespan* moves.
  std::printf("\n=== Model independence: round makespan under bounded "
              "master capacity (alpha = 2, p = 64) ===\n\n");
  core::CapacitySweepConfig config;
  config.total_load = total_load;
  const auto rows = core::capacity_sweep(config);
  core::capacity_sweep_table(rows).print(std::cout);
  std::printf("\n(the covered share is a property of the division, not of "
              "the network: no model buys a free lunch)\n");
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const double total_load = args.get_double("n", 10000.0);
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<long long>(util::Rng::kDefaultSeed)));
  homogeneous_sweep(total_load);
  heterogeneous_sweep(total_load, seed);
  makespan_vs_full_job(total_load);
  model_independence(total_load);
  return 0;
}
