// Section 2 — "Non-linear workloads are not amenable to DLT".
//
// Regenerates the paper's central analysis: after one optimal DLT round on
// p processors, the fraction of an N^α workload still to be processed is
//   (W − W_partial)/W = 1 − 1/p^(α−1)  (homogeneous closed form),
// which tends to 1 as p grows. We print the closed form next to the solved
// allocations under both communication models, plus heterogeneous
// platforms where no closed form exists — showing that the sophisticated
// allocation problem of refs [31–35] optimizes a vanishing share of work.
//
// Every sub-experiment is a util::Sweep grid driven by bench::Harness:
// the whole bench runs serially and in parallel, self-checks bit-identity,
// and lands in BENCH_sec2_nonlinear.json.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <limits>

#include "bench/harness.hpp"
#include "core/experiments.hpp"
#include "core/no_free_lunch.hpp"
#include "dlt/nonlinear_dlt.hpp"
#include "platform/speed_distributions.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/sweep.hpp"
#include "util/table.hpp"

using namespace nldl;

namespace {

const std::vector<double> kAlphas{1.25, 1.5, 2.0, 3.0};
const std::vector<double> kHomPs{2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};
const std::vector<platform::SpeedModel> kHetModels{
    platform::SpeedModel::kUniform, platform::SpeedModel::kLogNormal};
const std::vector<double> kHetPs{4, 16, 64, 256};
const std::vector<double> kMakespanPs{2, 8, 32, 128};

/// One heterogeneous platform evaluated at both alphas (the platform draw
/// is shared, as in the original serial loop).
struct HetPoint {
  core::NflPoint alpha2;
  core::NflPoint alpha3;
};

struct MakespanRow {
  std::size_t p = 0;
  double makespan = 0.0;
  double work_done = 0.0;
  double total_work = 0.0;
};

struct Sec2Results {
  std::vector<core::NflPoint> homogeneous;  ///< alpha-major, p fastest
  std::vector<HetPoint> heterogeneous;      ///< model-major, p fastest
  std::vector<MakespanRow> makespan;
  std::vector<core::CapacitySweepRow> capacity;

  /// Flat numeric signature for the harness's bitwise self-check.
  [[nodiscard]] std::vector<double> signature() const {
    std::vector<double> sig;
    const auto nfl = [&sig](const core::NflPoint& point) {
      sig.push_back(static_cast<double>(point.p));
      sig.push_back(point.alpha);
      sig.push_back(point.closed_form);
      sig.push_back(point.simulated_parallel);
      sig.push_back(point.simulated_one_port);
    };
    for (const auto& point : homogeneous) nfl(point);
    for (const auto& point : heterogeneous) {
      nfl(point.alpha2);
      nfl(point.alpha3);
    }
    for (const auto& row : makespan) {
      sig.push_back(static_cast<double>(row.p));
      sig.push_back(row.makespan);
      sig.push_back(row.work_done);
      sig.push_back(row.total_work);
    }
    for (const auto& row : capacity) {
      sig.push_back(row.capacity);
      sig.push_back(row.comm_phase_end);
      sig.push_back(row.makespan);
      sig.push_back(row.covered_fraction);
    }
    return sig;
  }
};

Sec2Results compute_all(std::size_t threads, double total_load,
                        std::uint64_t seed) {
  Sec2Results results;
  util::SweepOptions options;
  options.threads = threads;
  options.seed = seed;

  {
    util::Grid grid;
    grid.axis("alpha", kAlphas).axis("p", kHomPs);
    results.homogeneous =
        util::Sweep(std::move(grid), options).map<core::NflPoint>(
            [total_load](const util::SweepPoint& point, util::Rng&) {
              const auto p = static_cast<std::size_t>(point.value("p"));
              return core::remaining_fraction_on(
                  platform::Platform::homogeneous(p), point.value("alpha"),
                  total_load);
            });
  }
  {
    util::Grid grid;
    grid.axis("model", kHetModels.size()).axis("p", kHetPs);
    results.heterogeneous =
        util::Sweep(std::move(grid), options).map<HetPoint>(
            [total_load](const util::SweepPoint& point, util::Rng& rng) {
              const auto model = kHetModels[point.index_of("model")];
              const auto p = static_cast<std::size_t>(point.value("p"));
              const auto plat = platform::make_platform(model, p, rng);
              HetPoint out;
              out.alpha2 =
                  core::remaining_fraction_on(plat, 2.0, total_load);
              out.alpha3 =
                  core::remaining_fraction_on(plat, 3.0, total_load);
              return out;
            });
  }
  {
    util::Grid grid;
    grid.axis("p", kMakespanPs);
    results.makespan =
        util::Sweep(std::move(grid), options).map<MakespanRow>(
            [total_load](const util::SweepPoint& point, util::Rng&) {
              const auto p = static_cast<std::size_t>(point.value("p"));
              const auto plat = platform::Platform::homogeneous(p, 1.0, 1.0);
              const auto alloc = dlt::nonlinear_parallel_single_round(
                  plat, total_load, 2.0);
              return MakespanRow{p, alloc.makespan, alloc.work_done,
                                 alloc.total_work};
            });
  }
  {
    core::CapacitySweepConfig config;
    config.total_load = total_load;
    config.threads = threads;
    results.capacity = core::capacity_sweep(config);
  }
  return results;
}

void print_tables(const Sec2Results& results, double total_load) {
  std::printf("=== Remaining work fraction after one DLT round "
              "(homogeneous, c = w = 1) ===\n");
  std::printf("paper: 1 - 1/p^(alpha-1) -> 1 as p grows\n\n");
  const std::size_t per_alpha = kHomPs.size();
  for (std::size_t a = 0; a < kAlphas.size(); ++a) {
    std::printf("alpha = %.2f\n", kAlphas[a]);
    const std::vector<core::NflPoint> slice(
        results.homogeneous.begin() + static_cast<long>(a * per_alpha),
        results.homogeneous.begin() +
            static_cast<long>((a + 1) * per_alpha));
    core::nfl_table(slice).print(std::cout);
    std::printf("\n");
  }

  std::printf("=== Same question on heterogeneous platforms "
              "(no closed form; solved numerically) ===\n\n");
  util::Table het({"model", "p", "alpha", "remaining (parallel)",
                   "remaining (one-port)", "homog. closed form"});
  for (std::size_t i = 0; i < results.heterogeneous.size(); ++i) {
    const auto model = kHetModels[i / kHetPs.size()];
    for (const core::NflPoint* point :
         {&results.heterogeneous[i].alpha2,
          &results.heterogeneous[i].alpha3}) {
      het.row()
          .cell(platform::to_string(model))
          .cell(point->p)
          .cell(point->alpha, 1)
          .cell(point->simulated_parallel, 6)
          .cell(point->simulated_one_port, 6)
          .cell(point->closed_form, 6)
          .done();
    }
  }
  het.print(std::cout);

  // The flip side of the same theorem: the DLT round's makespan is a
  // vanishing share of the time needed to finish the whole job.
  std::printf("\n=== Makespan of the DLT round vs total job (alpha = 2, "
              "homogeneous) ===\n\n");
  util::Table makespan({"p", "round makespan", "work done", "total work",
                        "done/total"});
  for (const MakespanRow& row : results.makespan) {
    makespan.row()
        .cell(row.p)
        .cell(row.makespan, 1)
        .cell(row.work_done, 1)
        .cell(row.total_work, 1)
        .cell(row.work_done / row.total_work, 6)
        .done();
  }
  makespan.print(std::cout);

  // The conclusion does not hinge on the communication model: even under
  // bounded-multiport masters (between parallel links and one-port), the
  // equal-split round covers the same vanishing work share — only the
  // round's *makespan* moves.
  std::printf("\n=== Model independence: round makespan under bounded "
              "master capacity (alpha = 2, p = 64, N = %.0f) ===\n\n",
              total_load);
  core::capacity_sweep_table(results.capacity).print(std::cout);
  std::printf("\n(the covered share is a property of the division, not of "
              "the network: no model buys a free lunch)\n");
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const double total_load = args.get_double("n", 10000.0);
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<long long>(util::Rng::kDefaultSeed)));

  bench::Harness harness("sec2_nonlinear",
                         bench::harness_options_from_args(args));
  harness.config("n", total_load);
  harness.config("seed", static_cast<std::int64_t>(seed));

  const Sec2Results results = harness.run<Sec2Results>(
      [&](std::size_t threads) {
        return compute_all(threads, total_load, seed);
      },
      [](const Sec2Results& a, const Sec2Results& b) {
        return bench::identical_doubles(a.signature(), b.signature());
      });

  print_tables(results, total_load);

  return harness.finish([&](util::JsonWriter& json) {
    for (const auto& point : results.homogeneous) {
      json.begin_object();
      json.key("family").value("homogeneous_remaining_fraction");
      json.key("p").value(point.p);
      json.key("alpha").value(point.alpha);
      json.key("closed_form").value(point.closed_form);
      json.key("parallel_links").value(point.simulated_parallel);
      json.key("one_port").value(point.simulated_one_port);
      json.end_object();
    }
    for (std::size_t i = 0; i < results.heterogeneous.size(); ++i) {
      for (const core::NflPoint* point :
           {&results.heterogeneous[i].alpha2,
            &results.heterogeneous[i].alpha3}) {
        json.begin_object();
        json.key("family").value("heterogeneous_remaining_fraction");
        json.key("model").value(
            platform::to_string(kHetModels[i / kHetPs.size()]));
        json.key("p").value(point->p);
        json.key("alpha").value(point->alpha);
        json.key("parallel_links").value(point->simulated_parallel);
        json.key("one_port").value(point->simulated_one_port);
        json.key("homog_closed_form").value(point->closed_form);
        json.end_object();
      }
    }
    for (const auto& row : results.makespan) {
      json.begin_object();
      json.key("family").value("round_vs_total_makespan");
      json.key("p").value(row.p);
      json.key("makespan").value(row.makespan);
      json.key("work_done").value(row.work_done);
      json.key("total_work").value(row.total_work);
      json.end_object();
    }
    for (const auto& row : results.capacity) {
      json.begin_object();
      json.key("family").value("capacity_sweep");
      json.key("capacity").value(row.capacity);
      json.key("comm_phase_end").value(row.comm_phase_end);
      json.key("makespan").value(row.makespan);
      json.key("covered_fraction").value(row.covered_fraction);
      json.end_object();
    }
  });
}
