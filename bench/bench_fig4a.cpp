// Figure 4(a): homogeneous computation speeds.
//
// Expected shape (paper): all three strategies sit within ~1 % of the
// communication lower bound; Comm_hom/k coincides with Comm_hom because no
// refinement is needed (k = 1 everywhere).
#include "fig4_common.hpp"

int main(int argc, char** argv) {
  return nldl::bench::run_fig4_panel(
      "4(a)", "a", nldl::platform::SpeedModel::kHomogeneous,
      "all strategies within ~1% of the bound; k stays 1", argc, argv);
}
