// Section 4.2 — matrix multiplication (3-D data distribution).
//
// Regenerates:
//   (1) the claim that the outer-product-based MM algorithm's comm volume
//       equals N × Σ(half-perimeters) — so the Section 4.1 strategy ratio
//       carries over verbatim to matmul (executed + analytic);
//   (2) strategy comparison at scale N = 4096 (analytic volumes);
//   (3) block-cyclic virtualization: volume depends on the grid shape,
//       not the block size;
//   (4) the MapReduce replication overhead of the introduction, measured
//       through the engine counters on a small instance and via the
//       formula at scale.
//
// Every family is a util::Sweep grid under bench::Harness.
#include <cstdio>
#include <iostream>

#include "bench/harness.hpp"
#include "core/strategies.hpp"
#include "linalg/block_cyclic.hpp"
#include "linalg/matmul.hpp"
#include "mapreduce/matmul_job.hpp"
#include "partition/layout.hpp"
#include "partition/lower_bound.hpp"
#include "platform/platform.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/sweep.hpp"
#include "util/table.hpp"

using namespace nldl;

namespace {

const std::vector<std::pair<std::string, std::vector<double>>>
    kExecutedCases{
        {"4 equal", {1.0, 1.0, 1.0, 1.0}},
        {"1,2,3,4", {1.0, 2.0, 3.0, 4.0}},
        {"2-class k=9", {1.0, 1.0, 9.0, 9.0}},
    };
const std::vector<double> kCyclicNs{256, 1024};
const std::vector<std::pair<std::size_t, std::size_t>> kCyclicGrids{{4, 4},
                                                                    {2, 8}};
const std::vector<double> kCyclicBlocks{1, 8, 64};
const std::vector<double> kSmallBlocks{4, 8, 16};
const std::vector<double> kScaleNs{1024, 4096, 16384};
const std::vector<double> kScaleBlocks{32, 256};

struct ExecutedRow {
  std::size_t total_elements = 0;
  double analytic_volume = 0.0;
  double imbalance = 0.0;
  double max_error = 0.0;
};

struct ScaleRow {
  double hom = 0.0;
  double hom_k = 0.0;
  double het = 0.0;
  double lower_bound = 0.0;
  double het_over_lb = 0.0;
  double hom_k_over_lb = 0.0;
};

struct CyclicRow {
  double n = 0.0;
  std::size_t grid_index = 0;
  std::vector<double> volume_per_block;  ///< one per kCyclicBlocks
  double closed_form = 0.0;
};

struct ReplicationRow {
  std::size_t block = 0;
  std::size_t map_tasks = 0;
  double volume = 0.0;
  std::size_t shuffle_records = 0;
  double max_error = 0.0;
};

struct Sec42Results {
  std::vector<ExecutedRow> executed;
  std::vector<ScaleRow> at_scale;
  std::vector<CyclicRow> cyclic;
  std::vector<ReplicationRow> replication;
  std::vector<double> replication_at_scale;  ///< volumes, n-major

  [[nodiscard]] std::vector<double> signature() const {
    std::vector<double> sig;
    for (const auto& row : executed) {
      sig.insert(sig.end(),
                 {static_cast<double>(row.total_elements),
                  row.analytic_volume, row.imbalance, row.max_error});
    }
    for (const auto& row : at_scale) {
      sig.insert(sig.end(), {row.hom, row.hom_k, row.het, row.lower_bound,
                             row.het_over_lb, row.hom_k_over_lb});
    }
    for (const auto& row : cyclic) {
      sig.push_back(row.n);
      sig.push_back(static_cast<double>(row.grid_index));
      sig.insert(sig.end(), row.volume_per_block.begin(),
                 row.volume_per_block.end());
      sig.push_back(row.closed_form);
    }
    for (const auto& row : replication) {
      sig.insert(sig.end(),
                 {static_cast<double>(row.block),
                  static_cast<double>(row.map_tasks), row.volume,
                  static_cast<double>(row.shuffle_records), row.max_error});
    }
    sig.insert(sig.end(), replication_at_scale.begin(),
               replication_at_scale.end());
    return sig;
  }
};

Sec42Results compute_all(std::size_t threads, std::uint64_t seed) {
  Sec42Results results;
  util::SweepOptions options;
  options.threads = threads;
  options.seed = seed;

  {
    // Shared 96×96 inputs; each speed case is one grid point.
    util::Rng rng(seed);
    const std::size_t n = 96;
    const auto a = linalg::Matrix::random(n, n, rng);
    const auto b = linalg::Matrix::random(n, n, rng);
    const auto reference = linalg::multiply_naive(a, b);

    util::Grid grid;
    grid.axis("case", kExecutedCases.size());
    results.executed =
        util::Sweep(std::move(grid), options).map<ExecutedRow>(
            [&](const util::SweepPoint& point, util::Rng&) {
              const auto& speeds =
                  kExecutedCases[point.index_of("case")].second;
              const auto layout = partition::discretize(
                  partition::peri_sum_partition(speeds),
                  static_cast<long long>(n));
              const auto dist =
                  linalg::matmul_outer_product(a, b, layout, speeds, 8);
              return ExecutedRow{
                  static_cast<std::size_t>(dist.total_elements),
                  static_cast<double>(linalg::matmul_comm_volume(layout)),
                  dist.imbalance, dist.result.max_abs_diff(reference)};
            });
  }
  {
    util::Grid grid;
    grid.axis("case", std::size_t{2});
    results.at_scale =
        util::Sweep(std::move(grid), options).map<ScaleRow>(
            [](const util::SweepPoint& point, util::Rng&) {
              const double n = 4096.0;
              const std::vector<double> speeds =
                  point.index_of("case") == 0
                      ? std::vector<double>(16, 1.0)
                      : platform::Platform::two_class(16, 1.0, 16.0)
                            .speeds();
              const auto evals = core::evaluate_all_strategies(speeds, n);
              const double lb =
                  partition::comm_lower_bound(speeds, n) * n;
              // Outer-product volumes × N steps = matmul volumes.
              return ScaleRow{evals[0].comm_volume * n,
                              evals[1].comm_volume * n,
                              evals[2].comm_volume * n,
                              lb,
                              evals[2].ratio_to_lower_bound,
                              evals[1].ratio_to_lower_bound};
            });
  }
  {
    util::Grid grid;
    grid.axis("n", kCyclicNs).axis("grid", kCyclicGrids.size());
    results.cyclic =
        util::Sweep(std::move(grid), options).map<CyclicRow>(
            [](const util::SweepPoint& point, util::Rng&) {
              CyclicRow row;
              row.n = point.value("n");
              row.grid_index = point.index_of("grid");
              const auto [pr, pc] = kCyclicGrids[row.grid_index];
              const auto n = static_cast<std::size_t>(row.n);
              for (const double block : kCyclicBlocks) {
                row.volume_per_block.push_back(static_cast<double>(
                    linalg::block_cyclic_matmul_comm(
                        linalg::make_block_cyclic(
                            n, static_cast<std::size_t>(block), pr, pc))));
              }
              row.closed_form = static_cast<double>(
                  linalg::block_cyclic_matmul_comm_closed_form(
                      linalg::make_block_cyclic(n, 1, pr, pc)));
              return row;
            });
  }
  {
    // Engine-measured small instance with shared 32×32 inputs.
    util::Rng rng(seed + 1);
    const std::size_t n = 32;
    const auto a = linalg::Matrix::random(n, n, rng);
    const auto b = linalg::Matrix::random(n, n, rng);
    const auto reference = linalg::multiply_naive(a, b);

    util::Grid grid;
    grid.axis("block", kSmallBlocks);
    results.replication =
        util::Sweep(std::move(grid), options).map<ReplicationRow>(
            [&](const util::SweepPoint& point, util::Rng&) {
              const auto block =
                  static_cast<std::size_t>(point.value("block"));
              mapreduce::JobConfig config;
              mapreduce::Counters counters;
              const auto result = mapreduce::matmul_mapreduce(
                  a, b, block, config, &counters);
              return ReplicationRow{
                  block, counters.map_tasks,
                  mapreduce::matmul_replication_volume(double(n),
                                                       double(block)),
                  counters.combine_output_records,
                  result.max_abs_diff(reference)};
            });
  }
  {
    util::Grid grid;
    grid.axis("n", kScaleNs).axis("block", kScaleBlocks);
    results.replication_at_scale =
        util::Sweep(std::move(grid), options).map<double>(
            [](const util::SweepPoint& point, util::Rng&) {
              return mapreduce::matmul_replication_volume(
                  point.value("n"), point.value("block"));
            });
  }
  return results;
}

void print_tables(const Sec42Results& results) {
  std::printf("=== Executed outer-product matmul (SUMMA) on a PERI-SUM "
              "layout, N = 96 ===\n\n");
  util::Table executed({"speeds", "elements shipped", "N*sum(h+w)",
                        "imbalance e", "max |err|"});
  for (std::size_t i = 0; i < results.executed.size(); ++i) {
    const ExecutedRow& row = results.executed[i];
    executed.row()
        .cell(kExecutedCases[i].first)
        .cell(row.total_elements)
        .cell(row.analytic_volume)
        .cell(row.imbalance, 4)
        .cell(row.max_error, 2)
        .done();
  }
  executed.print(std::cout);
  std::printf("\n(elements shipped == N x sum of half-perimeters: the "
              "Section 4.1 ratio carries over)\n");

  std::printf("\n=== Strategy comparison for N = 4096 matmul (analytic "
              "volumes, in elements of A+B) ===\n\n");
  util::Table scale({"platform", "Comm_hom", "Comm_hom/k", "Comm_het",
                     "lower bound", "het/LB", "hom_k/LB"});
  const char* case_names[] = {"16 equal", "2-class k=16 (p=16)"};
  for (std::size_t i = 0; i < results.at_scale.size(); ++i) {
    const ScaleRow& row = results.at_scale[i];
    scale.row()
        .cell(std::string(case_names[i]))
        .cell(row.hom, 0)
        .cell(row.hom_k, 0)
        .cell(row.het, 0)
        .cell(row.lower_bound, 0)
        .cell(row.het_over_lb, 4)
        .cell(row.hom_k_over_lb, 3)
        .done();
  }
  scale.print(std::cout);

  // Section 4.2: "a level of virtualization is added ... blocks are
  // scattered in a cyclic fashion" — and the communication volume is
  // unchanged by the block size, depending only on the grid shape.
  std::printf("\n=== Block-cyclic virtualization: volume depends on the "
              "grid, not the block size ===\n\n");
  util::Table cyclic({"N", "grid", "b=1", "b=8", "b=64", "closed form "
                      "N^2(pr+pc)"});
  for (const CyclicRow& row : results.cyclic) {
    const auto [pr, pc] = kCyclicGrids[row.grid_index];
    auto out = cyclic.row();
    out.cell(static_cast<std::size_t>(row.n));
    out.cell(std::to_string(pr) + "x" + std::to_string(pc));
    for (const double volume : row.volume_per_block) out.cell(volume);
    out.cell(row.closed_form);
    out.done();
  }
  cyclic.print(std::cout);

  std::printf("\n=== MapReduce matmul: input replication overhead "
              "(introduction / Section 1.1) ===\n");
  std::printf("paper: the N^2 input is expanded ~N/b-fold; blocked map "
              "tasks ship 2N^3/b elements\n\n");
  const double small_n = 32.0;
  util::Table replication({"N", "b", "map tasks", "input elems (2N^3/b)",
                           "replication xN^2", "shuffle records",
                           "max |err|"});
  for (const ReplicationRow& row : results.replication) {
    replication.row()
        .cell(static_cast<std::size_t>(small_n))
        .cell(row.block)
        .cell(row.map_tasks)
        .cell(row.volume, 0)
        .cell(row.volume / (2.0 * small_n * small_n), 1)
        .cell(row.shuffle_records)
        .cell(row.max_error, 2)
        .done();
  }
  replication.print(std::cout);

  std::printf("\nformula at scale:\n\n");
  util::Table at_scale({"N", "b", "input elems shipped",
                        "replication xN^2"});
  for (std::size_t i = 0; i < results.replication_at_scale.size(); ++i) {
    const double big_n = kScaleNs[i / kScaleBlocks.size()];
    const double block = kScaleBlocks[i % kScaleBlocks.size()];
    const double volume = results.replication_at_scale[i];
    at_scale.row()
        .cell(big_n, 0)
        .cell(block, 0)
        .cell(volume, 0)
        .cell(volume / (2.0 * big_n * big_n), 1)
        .done();
  }
  at_scale.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<long long>(util::Rng::kDefaultSeed)));

  bench::Harness harness("sec42_matmul",
                         bench::harness_options_from_args(args));
  harness.config("seed", static_cast<std::int64_t>(seed));

  const Sec42Results results = harness.run<Sec42Results>(
      [&](std::size_t threads) { return compute_all(threads, seed); },
      [](const Sec42Results& a, const Sec42Results& b) {
        return bench::identical_doubles(a.signature(), b.signature());
      });

  print_tables(results);

  return harness.finish([&](util::JsonWriter& json) {
    for (std::size_t i = 0; i < results.executed.size(); ++i) {
      const ExecutedRow& row = results.executed[i];
      json.begin_object();
      json.key("family").value("executed_matmul");
      json.key("platform").value(kExecutedCases[i].first);
      json.key("elements_shipped").value(row.total_elements);
      json.key("analytic_volume").value(row.analytic_volume);
      json.key("imbalance").value(row.imbalance);
      json.key("max_error").value(row.max_error);
      json.end_object();
    }
    for (std::size_t i = 0; i < results.at_scale.size(); ++i) {
      const ScaleRow& row = results.at_scale[i];
      json.begin_object();
      json.key("family").value("strategy_at_scale");
      json.key("case").value(i);
      json.key("hom").value(row.hom);
      json.key("hom_k").value(row.hom_k);
      json.key("het").value(row.het);
      json.key("lower_bound").value(row.lower_bound);
      json.end_object();
    }
    for (const CyclicRow& row : results.cyclic) {
      json.begin_object();
      json.key("family").value("block_cyclic");
      json.key("n").value(row.n);
      json.key("grid").value(row.grid_index);
      json.key("volumes").begin_array();
      for (const double volume : row.volume_per_block) json.value(volume);
      json.end_array();
      json.key("closed_form").value(row.closed_form);
      json.end_object();
    }
    for (const ReplicationRow& row : results.replication) {
      json.begin_object();
      json.key("family").value("mapreduce_replication");
      json.key("block").value(row.block);
      json.key("map_tasks").value(row.map_tasks);
      json.key("volume").value(row.volume);
      json.key("shuffle_records").value(row.shuffle_records);
      json.key("max_error").value(row.max_error);
      json.end_object();
    }
  });
}
