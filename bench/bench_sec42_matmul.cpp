// Section 4.2 — matrix multiplication (3-D data distribution).
//
// Regenerates:
//   (1) the claim that the outer-product-based MM algorithm's comm volume
//       equals N × Σ(half-perimeters) — so the Section 4.1 strategy ratio
//       carries over verbatim to matmul (executed + analytic);
//   (2) the MapReduce replication overhead of the introduction: the
//       blocked job ships 2N³/b input elements (replication factor N/b),
//       measured through the engine counters on a small instance and via
//       the formula at scale;
//   (3) strategy comparison at scale N = 4096 (analytic volumes).
#include <cstdio>
#include <iostream>

#include "core/strategies.hpp"
#include "linalg/block_cyclic.hpp"
#include "linalg/matmul.hpp"
#include "mapreduce/matmul_job.hpp"
#include "partition/layout.hpp"
#include "partition/lower_bound.hpp"
#include "platform/platform.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace nldl;

namespace {

void executed_matmul(std::uint64_t seed) {
  std::printf("=== Executed outer-product matmul (SUMMA) on a PERI-SUM "
              "layout, N = 96 ===\n\n");
  util::Rng rng(seed);
  const std::size_t n = 96;
  const auto a = linalg::Matrix::random(n, n, rng);
  const auto b = linalg::Matrix::random(n, n, rng);
  const auto reference = linalg::multiply_naive(a, b);

  util::Table table({"speeds", "elements shipped", "N*sum(h+w)",
                     "imbalance e", "max |err|"});
  const std::vector<std::pair<std::string, std::vector<double>>> cases{
      {"4 equal", {1.0, 1.0, 1.0, 1.0}},
      {"1,2,3,4", {1.0, 2.0, 3.0, 4.0}},
      {"2-class k=9", {1.0, 1.0, 9.0, 9.0}},
  };
  for (const auto& [name, speeds] : cases) {
    const auto layout = partition::discretize(
        partition::peri_sum_partition(speeds), static_cast<long long>(n));
    const auto dist =
        linalg::matmul_outer_product(a, b, layout, speeds, 8);
    table.row()
        .cell(name)
        .cell(dist.total_elements)
        .cell(linalg::matmul_comm_volume(layout))
        .cell(dist.imbalance, 4)
        .cell(dist.result.max_abs_diff(reference), 2)
        .done();
  }
  table.print(std::cout);
  std::printf("\n(elements shipped == N x sum of half-perimeters: the "
              "Section 4.1 ratio carries over)\n");
}

void strategy_comparison_at_scale() {
  std::printf("\n=== Strategy comparison for N = 4096 matmul (analytic "
              "volumes, in elements of A+B) ===\n\n");
  const double n = 4096.0;
  util::Table table({"platform", "Comm_hom", "Comm_hom/k", "Comm_het",
                     "lower bound", "het/LB", "hom_k/LB"});
  const std::vector<std::pair<std::string, std::vector<double>>> cases{
      {"16 equal", std::vector<double>(16, 1.0)},
      {"2-class k=16 (p=16)",
       platform::Platform::two_class(16, 1.0, 16.0).speeds()},
  };
  for (const auto& [name, speeds] : cases) {
    const auto evals = core::evaluate_all_strategies(speeds, n);
    const double lb = partition::comm_lower_bound(speeds, n) * n;
    // Outer-product volumes × N steps = matmul volumes.
    table.row()
        .cell(name)
        .cell(evals[0].comm_volume * n, 0)
        .cell(evals[1].comm_volume * n, 0)
        .cell(evals[2].comm_volume * n, 0)
        .cell(lb, 0)
        .cell(evals[2].ratio_to_lower_bound, 4)
        .cell(evals[1].ratio_to_lower_bound, 3)
        .done();
  }
  table.print(std::cout);
}

void virtualization_invariance() {
  // Section 4.2: "a level of virtualization is added ... blocks are
  // scattered in a cyclic fashion" — and the communication volume is
  // unchanged by the block size, depending only on the grid shape.
  std::printf("\n=== Block-cyclic virtualization: volume depends on the "
              "grid, not the block size ===\n\n");
  util::Table table({"N", "grid", "b=1", "b=8", "b=64", "closed form "
                     "N^2(pr+pc)"});
  for (const std::size_t n : {256UL, 1024UL}) {
    for (const auto& [pr, pc] : {std::pair<std::size_t, std::size_t>{4, 4},
                                 {2, 8}}) {
      auto row = table.row();
      row.cell(n);
      row.cell(std::to_string(pr) + "x" + std::to_string(pc));
      for (const std::size_t block : {1UL, 8UL, 64UL}) {
        row.cell(linalg::block_cyclic_matmul_comm(
            linalg::make_block_cyclic(n, block, pr, pc)));
      }
      row.cell(linalg::block_cyclic_matmul_comm_closed_form(
          linalg::make_block_cyclic(n, 1, pr, pc)));
      row.done();
    }
  }
  table.print(std::cout);
}

void mapreduce_replication(std::uint64_t seed) {
  std::printf("\n=== MapReduce matmul: input replication overhead "
              "(introduction / Section 1.1) ===\n");
  std::printf("paper: the N^2 input is expanded ~N/b-fold; blocked map "
              "tasks ship 2N^3/b elements\n\n");

  // Engine-measured small instance.
  util::Rng rng(seed);
  const std::size_t n = 32;
  const auto a = linalg::Matrix::random(n, n, rng);
  const auto b = linalg::Matrix::random(n, n, rng);
  util::Table table({"N", "b", "map tasks", "input elems (2N^3/b)",
                     "replication xN^2", "shuffle records", "max |err|"});
  const auto reference = linalg::multiply_naive(a, b);
  for (const std::size_t block : {4UL, 8UL, 16UL}) {
    mapreduce::JobConfig config;
    mapreduce::Counters counters;
    const auto result =
        mapreduce::matmul_mapreduce(a, b, block, config, &counters);
    const double volume =
        mapreduce::matmul_replication_volume(double(n), double(block));
    table.row()
        .cell(n)
        .cell(block)
        .cell(counters.map_tasks)
        .cell(volume, 0)
        .cell(volume / (2.0 * double(n) * double(n)), 1)
        .cell(counters.combine_output_records)
        .cell(result.max_abs_diff(reference), 2)
        .done();
  }
  table.print(std::cout);

  std::printf("\nformula at scale:\n\n");
  util::Table scale({"N", "b", "input elems shipped", "replication xN^2"});
  for (const double big_n : {1024.0, 4096.0, 16384.0}) {
    for (const double block : {32.0, 256.0}) {
      const double volume =
          mapreduce::matmul_replication_volume(big_n, block);
      scale.row()
          .cell(big_n, 0)
          .cell(block, 0)
          .cell(volume, 0)
          .cell(volume / (2.0 * big_n * big_n), 1)
          .done();
    }
  }
  scale.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<long long>(util::Rng::kDefaultSeed)));
  executed_matmul(seed);
  strategy_comparison_at_scale();
  virtualization_invariance();
  mapreduce_replication(seed);
  return 0;
}
