// Extension bench — multi-installment distribution (paper Section 1.2's
// "multiple rounds: the communications will be shorter and pipelined").
//
// Sweeps the round count on one-port stars with varying communication/
// computation ratios and shows the pipelining gain plus the best
// (rounds, growth-ratio) combination found by the auto-tuner. The
// (platform × rounds) grid and the per-platform auto-tune both run
// through util::Sweep under the bench::Harness self-check.
#include <cstdio>
#include <iostream>

#include "bench/harness.hpp"
#include "dlt/multi_round.hpp"
#include "platform/speed_distributions.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/sweep.hpp"
#include "util/table.hpp"

using namespace nldl;

namespace {

const std::vector<double> kRounds{1, 2, 4, 8, 16};

struct Case {
  std::string name;
  platform::Platform plat;
};

std::vector<Case> build_cases(std::uint64_t seed) {
  util::Rng rng(seed);
  return {
      {"4 equal, comm-light", platform::Platform::homogeneous(4, 0.1, 1.0)},
      {"4 equal, balanced", platform::Platform::homogeneous(4, 1.0, 1.0)},
      {"4 equal, comm-heavy", platform::Platform::homogeneous(4, 3.0, 1.0)},
      {"uniform p=8",
       platform::make_platform(platform::SpeedModel::kUniform, 8, rng)},
  };
}

struct BestRow {
  std::size_t rounds = 0;
  double makespan = 0.0;
};

struct MultiRoundResults {
  std::vector<double> makespans;  ///< case-major × kRounds
  std::vector<BestRow> best;      ///< one per case

  [[nodiscard]] std::vector<double> signature() const {
    std::vector<double> sig = makespans;
    for (const auto& row : best) {
      sig.push_back(static_cast<double>(row.rounds));
      sig.push_back(row.makespan);
    }
    return sig;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const double load = args.get_double("load", 100.0);
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<long long>(util::Rng::kDefaultSeed)));

  bench::Harness harness("ext_multiround",
                         bench::harness_options_from_args(args));
  harness.config("load", load);
  harness.config("seed", static_cast<std::int64_t>(seed));

  std::printf("=== Extension: multi-round (multi-installment) one-port "
              "DLT ===\n");
  std::printf("load = %.0f units; makespans simulated with pipelined "
              "receive/compute\n\n", load);

  const auto cases = build_cases(seed);

  const MultiRoundResults results = harness.run<MultiRoundResults>(
      [&](std::size_t threads) {
        MultiRoundResults out;
        util::SweepOptions options;
        options.threads = threads;
        options.seed = seed;
        {
          util::Grid grid;
          grid.axis("case", cases.size()).axis("rounds", kRounds);
          out.makespans =
              util::Sweep(std::move(grid), options).map<double>(
                  [&](const util::SweepPoint& point, util::Rng&) {
                    const Case& c = cases[point.index_of("case")];
                    return dlt::uniform_multi_round(
                               c.plat, load,
                               static_cast<std::size_t>(
                                   point.value("rounds")))
                        .simulated_makespan;
                  });
        }
        {
          util::Grid grid;
          grid.axis("case", cases.size());
          out.best = util::Sweep(std::move(grid), options).map<BestRow>(
              [&](const util::SweepPoint& point, util::Rng&) {
                const Case& c = cases[point.index_of("case")];
                const auto best = dlt::best_multi_round(c.plat, load, 16);
                return BestRow{best.rounds, best.simulated_makespan};
              });
        }
        return out;
      },
      [](const MultiRoundResults& a, const MultiRoundResults& b) {
        return bench::identical_doubles(a.signature(), b.signature());
      });

  util::Table table({"platform", "c/w ratio", "R=1", "R=2", "R=4", "R=8",
                     "R=16", "best (R, makespan)"});
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    auto row = table.row();
    row.cell(cases[ci].name);
    row.cell(cases[ci].plat.c(0) / cases[ci].plat.w(0), 2);
    for (std::size_t ri = 0; ri < kRounds.size(); ++ri) {
      row.cell(results.makespans[ci * kRounds.size() + ri], 2);
    }
    row.cell("R=" + std::to_string(results.best[ci].rounds) + ", " +
             util::format_double(results.best[ci].makespan, 2));
    row.done();
  }
  table.print(std::cout);
  std::printf("\n(pipelining hides the serialized send ramp-up behind "
              "computation, so the gain shows\n where computation "
              "dominates; a bus-bound platform (c >= w) stays pinned at "
              "~c*N no matter\n how many rounds. best_multi_round scans "
              "uniform and geometric installment shapes.)\n");

  return harness.finish([&](util::JsonWriter& json) {
    for (std::size_t ci = 0; ci < cases.size(); ++ci) {
      for (std::size_t ri = 0; ri < kRounds.size(); ++ri) {
        json.begin_object();
        json.key("family").value("round_sweep");
        json.key("platform").value(cases[ci].name);
        json.key("rounds").value(
            static_cast<std::size_t>(kRounds[ri]));
        json.key("makespan").value(
            results.makespans[ci * kRounds.size() + ri]);
        json.end_object();
      }
      json.begin_object();
      json.key("family").value("auto_tuned");
      json.key("platform").value(cases[ci].name);
      json.key("best_rounds").value(results.best[ci].rounds);
      json.key("best_makespan").value(results.best[ci].makespan);
      json.end_object();
    }
  });
}
