// Extension bench — multi-installment distribution (paper Section 1.2's
// "multiple rounds: the communications will be shorter and pipelined").
//
// Sweeps the round count on one-port stars with varying communication/
// computation ratios and shows the pipelining gain plus the best
// (rounds, growth-ratio) combination found by the auto-tuner.
#include <cstdio>
#include <iostream>

#include "dlt/multi_round.hpp"
#include "platform/speed_distributions.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace nldl;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const double load = args.get_double("load", 100.0);
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<long long>(util::Rng::kDefaultSeed)));

  std::printf("=== Extension: multi-round (multi-installment) one-port "
              "DLT ===\n");
  std::printf("load = %.0f units; makespans simulated with pipelined "
              "receive/compute\n\n", load);

  util::Table table({"platform", "c/w ratio", "R=1", "R=2", "R=4", "R=8",
                     "R=16", "best (R, makespan)"});
  util::Rng rng(seed);
  struct Case {
    std::string name;
    platform::Platform plat;
  };
  const std::vector<Case> cases{
      {"4 equal, comm-light", platform::Platform::homogeneous(4, 0.1, 1.0)},
      {"4 equal, balanced", platform::Platform::homogeneous(4, 1.0, 1.0)},
      {"4 equal, comm-heavy", platform::Platform::homogeneous(4, 3.0, 1.0)},
      {"uniform p=8",
       platform::make_platform(platform::SpeedModel::kUniform, 8, rng)},
  };
  for (const auto& c : cases) {
    auto row = table.row();
    row.cell(c.name);
    row.cell(c.plat.c(0) / c.plat.w(0), 2);
    for (const std::size_t rounds : {1UL, 2UL, 4UL, 8UL, 16UL}) {
      row.cell(dlt::uniform_multi_round(c.plat, load, rounds)
                   .simulated_makespan,
               2);
    }
    const auto best = dlt::best_multi_round(c.plat, load, 16);
    row.cell("R=" + std::to_string(best.rounds) + ", " +
             util::format_double(best.simulated_makespan, 2));
    row.done();
  }
  table.print(std::cout);
  std::printf("\n(pipelining hides the serialized send ramp-up behind "
              "computation, so the gain shows\n where computation "
              "dominates; a bus-bound platform (c >= w) stays pinned at "
              "~c*N no matter\n how many rounds. best_multi_round scans "
              "uniform and geometric installment shapes.)\n");
  return 0;
}
