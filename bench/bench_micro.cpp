// google-benchmark microbenchmarks for the core kernels.
#include <benchmark/benchmark.h>

#include "linalg/matmul.hpp"
#include "partition/block_homogeneous.hpp"
#include "partition/layout.hpp"
#include "partition/peri_sum.hpp"
#include "platform/speed_distributions.hpp"
#include "sort/sample_sort.hpp"
#include "util/rng.hpp"

using namespace nldl;

namespace {

std::vector<double> random_speeds(std::size_t p, std::uint64_t seed) {
  util::Rng rng(seed);
  const auto plat =
      platform::make_platform(platform::SpeedModel::kLogNormal, p, rng);
  return plat.speeds();
}

void BM_PeriSumPartition(benchmark::State& state) {
  const auto speeds =
      random_speeds(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition::peri_sum_partition(speeds));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PeriSumPartition)->Arg(10)->Arg(100)->Arg(1000)->Complexity();

void BM_DemandDrivenCounts(benchmark::State& state) {
  const auto speeds =
      random_speeds(static_cast<std::size_t>(state.range(0)), 2);
  std::vector<double> tau(speeds.size());
  for (std::size_t i = 0; i < tau.size(); ++i) tau[i] = 1.0 / speeds[i];
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        partition::demand_driven_counts(tau, 100000));
  }
}
BENCHMARK(BM_DemandDrivenCounts)->Arg(10)->Arg(100)->Arg(1000);

void BM_RefineUntilBalanced(benchmark::State& state) {
  const auto speeds =
      random_speeds(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        partition::refine_until_balanced(speeds, 1.0, 0.01));
  }
}
BENCHMARK(BM_RefineUntilBalanced)->Arg(10)->Arg(100);

void BM_SampleSort(benchmark::State& state) {
  util::Rng rng(4);
  std::vector<double> data(static_cast<std::size_t>(state.range(0)));
  for (double& v : data) v = rng.uniform();
  sort::SampleSortConfig config;
  config.num_buckets = 8;
  for (auto _ : state) {
    auto copy = data;
    benchmark::DoNotOptimize(sort::sample_sort(std::move(copy), config));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SampleSort)->Arg(1 << 16)->Arg(1 << 19);

void BM_StdSortBaseline(benchmark::State& state) {
  util::Rng rng(5);
  std::vector<double> data(static_cast<std::size_t>(state.range(0)));
  for (double& v : data) v = rng.uniform();
  for (auto _ : state) {
    auto copy = data;
    std::sort(copy.begin(), copy.end());
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StdSortBaseline)->Arg(1 << 16)->Arg(1 << 19);

void BM_MatmulOuterProduct(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(6);
  const auto a = linalg::Matrix::random(n, n, rng);
  const auto b = linalg::Matrix::random(n, n, rng);
  const std::vector<double> speeds{1.0, 2.0, 3.0, 4.0};
  const auto layout = partition::discretize(
      partition::peri_sum_partition(speeds), static_cast<long long>(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        linalg::matmul_outer_product(a, b, layout, speeds, 32));
  }
  state.SetItemsProcessed(state.iterations() * 2 *
                          static_cast<std::int64_t>(n) * n * n);
}
BENCHMARK(BM_MatmulOuterProduct)->Arg(64)->Arg(128);

void BM_Discretize(benchmark::State& state) {
  const auto part = partition::peri_sum_partition(
      random_speeds(static_cast<std::size_t>(state.range(0)), 7));
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition::discretize(part, 1 << 20));
  }
}
BENCHMARK(BM_Discretize)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace
