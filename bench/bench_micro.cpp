// Microbenchmarks for the core kernels, on the same bench::Harness /
// util::Sweep protocol as every other driver (this used to be the one
// google-benchmark executable; the rewrite drops that dependency).
//
// Each grid point is one (kernel, size) pair: the kernel runs
// --micro-reps times (default 3), the best wall time is reported, and a
// deterministic checksum of the kernel's output enters the harness's
// serial-vs-parallel bit-identity self-check. Wall times are measured on
// the serial pass only; the parallel pass re-validates the checksums.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <numeric>

#include "bench/harness.hpp"
#include "bench/profile.hpp"
#include "linalg/matmul.hpp"
#include "obs/trace.hpp"
#include "partition/block_homogeneous.hpp"
#include "partition/layout.hpp"
#include "partition/peri_sum.hpp"
#include "platform/platform.hpp"
#include "platform/speed_distributions.hpp"
#include "sim/comm_model.hpp"
#include "sim/engine.hpp"
#include "sim/multiplex.hpp"
#include "sort/sample_sort.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/sweep.hpp"
#include "util/table.hpp"

using namespace nldl;

namespace {

struct KernelCase {
  const char* name;
  std::size_t n;
  std::uint64_t seed;  ///< input-generation seed (fixed per case)
};

const std::vector<KernelCase> kCases{
    {"peri_sum_partition", 10, 1},
    {"peri_sum_partition", 100, 1},
    {"peri_sum_partition", 1000, 1},
    {"demand_driven_counts", 10, 2},
    {"demand_driven_counts", 100, 2},
    {"demand_driven_counts", 1000, 2},
    {"refine_until_balanced", 10, 3},
    {"refine_until_balanced", 100, 3},
    {"sample_sort", 1 << 16, 4},
    {"sample_sort", 1 << 19, 4},
    {"std_sort", 1 << 16, 5},
    {"std_sort", 1 << 19, 5},
    {"matmul_outer_product", 64, 6},
    {"matmul_outer_product", 128, 6},
    {"discretize", 10, 7},
    {"discretize", 100, 7},
    {"discretize", 1000, 7},
    {"engine_event_loop", 1000, 8},
    {"engine_event_loop", 10000, 8},
    {"shared_master_replay", 100, 9},
    {"shared_master_replay", 400, 9},
    {"trace_emission", 10000, 10},
    {"trace_emission", 100000, 10},
    {"trace_record", 100, 9},
    {"trace_record", 400, 9},
};

std::vector<double> random_speeds(std::size_t p, std::uint64_t seed) {
  util::Rng rng(seed);
  const auto plat =
      platform::make_platform(platform::SpeedModel::kLogNormal, p, rng);
  return plat.speeds();
}

struct MicroResult {
  double checksum = 0.0;      ///< deterministic kernel output digest
  double best_seconds = 0.0;  ///< best of the inner repetitions
};

/// Run one kernel case: returns the checksum (identical on every run) and
/// the best wall time over `reps` executions.
MicroResult run_kernel(const KernelCase& kernel, std::size_t reps) {
  MicroResult out;
  out.best_seconds = -1.0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    double checksum = 0.0;
    const double start = bench::WallClock::now();
    const std::string name(kernel.name);
    if (name == "peri_sum_partition") {
      const auto speeds = random_speeds(kernel.n, kernel.seed);
      checksum = partition::peri_sum_partition(speeds).total_half_perimeter;
    } else if (name == "demand_driven_counts") {
      const auto speeds = random_speeds(kernel.n, kernel.seed);
      std::vector<double> tau(speeds.size());
      for (std::size_t i = 0; i < tau.size(); ++i) tau[i] = 1.0 / speeds[i];
      const auto counts = partition::demand_driven_counts(tau, 100000);
      for (std::size_t i = 0; i < counts.size(); ++i) {
        checksum += static_cast<double>(counts[i]) * double(i + 1);
      }
    } else if (name == "refine_until_balanced") {
      const auto speeds = random_speeds(kernel.n, kernel.seed);
      const auto blocks =
          partition::refine_until_balanced(speeds, 1.0, 0.01);
      checksum = double(blocks.k) + blocks.imbalance;
    } else if (name == "sample_sort" || name == "std_sort") {
      util::Rng rng(kernel.seed);
      std::vector<double> data(kernel.n);
      for (double& v : data) v = rng.uniform();
      if (name == "sample_sort") {
        sort::SampleSortConfig config;
        config.num_buckets = 8;
        data = sort::sample_sort(std::move(data), config);
      } else {
        std::sort(data.begin(), data.end());
      }
      checksum = data.front() + data[data.size() / 2] + data.back();
    } else if (name == "matmul_outer_product") {
      util::Rng rng(kernel.seed);
      const auto a = linalg::Matrix::random(kernel.n, kernel.n, rng);
      const auto b = linalg::Matrix::random(kernel.n, kernel.n, rng);
      const std::vector<double> speeds{1.0, 2.0, 3.0, 4.0};
      const auto layout = partition::discretize(
          partition::peri_sum_partition(speeds),
          static_cast<long long>(kernel.n));
      const auto dist =
          linalg::matmul_outer_product(a, b, layout, speeds, 32);
      checksum = static_cast<double>(dist.total_elements) +
                 dist.result(0, 0) +
                 dist.result(kernel.n - 1, kernel.n - 1);
    } else if (name == "engine_event_loop") {
      // n time-released chunks drained through one sim::EngineRun — the
      // chunk-event hot path (link FIFOs, release heap, rate cache).
      const auto plat = platform::Platform::two_class(8, 1.0, 4.0);
      const sim::Engine engine(plat, {});
      const sim::BoundedMultiportModel model(2.0, 4);
      util::Rng rng(kernel.seed);
      sim::EngineRun run(engine, model);
      double release = 0.0;
      for (std::size_t i = 0; i < kernel.n; ++i) {
        if (rng.uniform() < 0.5) release += rng.uniform(0.0, 0.5);
        (void)run.append(
            {static_cast<std::size_t>(rng.uniform_int(0, 7)),
             rng.uniform(0.5, 4.0), release,
             rng.uniform() < 0.5 ? 1.0 : 2.0});
      }
      run.drain();
      checksum = run.makespan() + static_cast<double>(run.chunks());
    } else if (name == "shared_master_replay" || name == "trace_record") {
      // n dispatch+replay rounds of one incremental shared-master busy
      // period — the servers' per-decision cost. trace_record runs the
      // SAME workload with an obs::TraceRecorder attached: the delta
      // against shared_master_replay is the end-to-end emission cost.
      const auto plat = platform::Platform::two_class(8, 1.0, 4.0);
      const sim::Engine engine(plat, {});
      const sim::BoundedMultiportModel model(2.0, 4);
      std::vector<std::size_t> worker_map(plat.size());
      std::iota(worker_map.begin(), worker_map.end(), std::size_t{0});
      util::Rng rng(kernel.seed);
      obs::TraceRecorder recorder;
      sim::SharedMasterPeriod period(engine, model, {true});
      if (name == "trace_record") period.set_trace(&recorder);
      double now = 0.0;
      for (std::size_t i = 0; i < kernel.n; ++i) {
        now += rng.uniform(0.0, 1.0);
        const std::vector<sim::ChunkAssignment> chunks{
            {static_cast<std::size_t>(rng.uniform_int(0, 7)),
             rng.uniform(0.5, 4.0)},
            {static_cast<std::size_t>(rng.uniform_int(0, 7)),
             rng.uniform(0.5, 4.0)}};
        const std::size_t owner = period.dispatch(
            now, rng.uniform() < 0.5 ? 1.0 : 2.0, chunks, worker_map,
            i, 0);
        period.replay();
        checksum += period.finish(owner);
      }
      if (name == "trace_record") {
        period.clear();  // flush the spans the period still owes
        checksum += static_cast<double>(recorder.size());
      }
    } else if (name == "trace_emission") {
      // Raw obs::TraceRecorder::record throughput: n synthetic spans.
      obs::TraceRecorder recorder;
      util::Rng rng(kernel.seed);
      for (std::size_t i = 0; i < kernel.n; ++i) {
        obs::TraceEvent event;
        event.kind = (i % 2 == 0) ? obs::EventKind::kTransfer
                                  : obs::EventKind::kCompute;
        event.start = rng.uniform(0.0, 1e6);
        event.end = event.start + rng.uniform(0.0, 10.0);
        event.worker = i % 8;
        event.job = i % 64;
        event.size = rng.uniform(0.5, 4.0);
        recorder.record(event);
      }
      checksum = static_cast<double>(recorder.size()) +
                 recorder.events().back().end;
    } else if (name == "discretize") {
      const auto part =
          partition::peri_sum_partition(random_speeds(kernel.n, kernel.seed));
      const auto layout = partition::discretize(part, 1 << 20);
      checksum = static_cast<double>(layout.total_half_perimeter) +
                 static_cast<double>(layout.rects.size());
    } else {
      NLDL_ASSERT(false, "unknown micro kernel");
    }
    const double elapsed = bench::WallClock::now() - start;
    if (out.best_seconds < 0.0 || elapsed < out.best_seconds) {
      out.best_seconds = elapsed;
    }
    if (rep == 0) {
      out.checksum = checksum;
    } else {
      NLDL_ASSERT(out.checksum == checksum,
                  "micro kernel is not deterministic across repetitions");
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto micro_reps =
      static_cast<std::size_t>(args.get_int("micro-reps", 3));

  bench::Harness harness("micro", bench::harness_options_from_args(args));
  harness.config("micro_reps", micro_reps);
  harness.config("kernels", kCases.size());

  std::printf("=== Microbenchmarks: core kernels (best of %zu reps) "
              "===\n\n", micro_reps);

  const auto results = harness.run<std::vector<MicroResult>>(
      [&](std::size_t threads) {
        util::Grid grid;
        grid.axis("case", kCases.size());
        util::SweepOptions options;
        options.threads = threads;
        return util::Sweep(std::move(grid), options).map<MicroResult>(
            [micro_reps](const util::SweepPoint& point, util::Rng&) {
              return run_kernel(kCases[point.index_of("case")], micro_reps);
            });
      },
      [](const std::vector<MicroResult>& a,
         const std::vector<MicroResult>& b) {
        // Only the checksums enter the identity check — wall times are
        // honest measurements and never bit-stable.
        if (a.size() != b.size()) return false;
        for (std::size_t i = 0; i < a.size(); ++i) {
          if (a[i].checksum != b[i].checksum) return false;  // nldl-lint: allow(double-eq): bitwise reproducibility self-check
        }
        return true;
      });

  util::Table table({"kernel", "n", "best (s)", "checksum"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    table.row()
        .cell(std::string(kCases[i].name))
        .cell(kCases[i].n)
        .cell(results[i].best_seconds, 6)
        .cell(results[i].checksum, 4)
        .done();
  }
  table.print(std::cout);

  return harness.finish(
      [&](util::JsonWriter& json) {
        for (std::size_t i = 0; i < results.size(); ++i) {
          json.begin_object();
          json.key("kernel").value(kCases[i].name);
          json.key("n").value(kCases[i].n);
          json.key("checksum").value(results[i].checksum);
          json.end_object();
        }
      },
      [&](util::JsonWriter& json) {
        // Wall times live in the measured sidecar: honest measurements,
        // never bit-stable, never part of the reproduction check.
        json.key("kernels").begin_array();
        for (std::size_t i = 0; i < results.size(); ++i) {
          json.begin_object();
          json.key("kernel").value(kCases[i].name);
          json.key("n").value(kCases[i].n);
          json.key("best_seconds").value(results[i].best_seconds);
          json.end_object();
        }
        json.end_array();
      });
}
