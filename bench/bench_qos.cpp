// QoS under nonlinear restart costs: load factor × policy × comm model ×
// restart fraction, with per-tenant heavy-tailed SLO traffic.
//
// Three tenants share one heterogeneous star platform through qos::Server:
// a heavy-tailed Pareto batch tenant, a tight-SLO interactive tenant
// (mixed linear/quadratic jobs), and a quadratic analytics tenant. The
// sweep crosses
//
//   load factor   0.5 / 0.8 / 1.1 of the installment-service capacity,
//   policy        FCFS, SPMF (non-preemptive), SRPT-preemptive, EDF, WFQ,
//   comm model    parallel-links, one-port, bounded-multiport,
//   restart       rho = 0 (free checkpoints) vs rho = 2 (each resume
//                 re-dispatches two installments' worth of state),
//
// and reports deadline-miss rates, goodput, Jain fairness, restart
// overhead, and latency percentiles. The headline comparison: with free
// restarts SRPT dominates the non-preemptive policies, and the nonlinear
// restart surcharge (quadratic jobs re-paying w·X^alpha on every resumed
// slice) flips that ranking — preemption is no free lunch
// (tests/test_qos.cpp pins the flip on a deterministic stream).
//
// Determinism: every load factor derives one job stream from a seed that
// depends only on the load axis, so policies, comm models, and restart
// fractions are compared PATHWISE on identical arrivals (deadlines are
// re-matched per comm model). The whole bench is a util::Sweep under
// bench::Harness: serial and parallel passes must agree bit for bit, and
// the metrics land in BENCH_qos.json.
//
// --trace=FILE re-runs the headline flip cell (overload, SRPT,
// bounded-multiport, rho = 2) with an obs::TraceRecorder attached, proves
// the traced metrics bit-identical to the sweep's own cell (part of the
// exit code), exports the timeline as Chrome trace-event JSON to FILE,
// and prints the ASCII time-attribution summary.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <utility>
#include <vector>

#include "bench/harness.hpp"
#include "obs/critical_path.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "online/arrivals.hpp"
#include "qos/metrics.hpp"
#include "qos/policy.hpp"
#include "qos/server.hpp"
#include "qos/tenant.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/sweep.hpp"
#include "util/table.hpp"

using namespace nldl;

namespace {

const std::vector<double> kLoadFactors{0.5, 0.8, 1.1};
const std::vector<qos::PolicyKind> kPolicies{
    qos::PolicyKind::kFcfs, qos::PolicyKind::kSpmf, qos::PolicyKind::kSrpt,
    qos::PolicyKind::kEdf, qos::PolicyKind::kWfq};
const std::vector<sim::CommModelKind> kCommModels{
    sim::CommModelKind::kParallelLinks, sim::CommModelKind::kOnePort,
    sim::CommModelKind::kBoundedMultiport};
const std::vector<double> kRestartFractions{0.0, 2.0};

constexpr std::size_t kRounds = 4;
constexpr double kBoundedCapacity = 2.0;

qos::ServiceModel make_service(sim::CommModelKind comm, double restart) {
  qos::ServiceModel service;
  service.comm = comm;
  if (comm == sim::CommModelKind::kBoundedMultiport) {
    service.capacity = kBoundedCapacity;
  }
  service.plan.rounds = kRounds;
  service.plan.restart_load_fraction = restart;
  return service;
}

struct PointResult {
  double load_factor = 0.0;
  std::size_t policy = 0;
  std::size_t comm = 0;
  double restart = 0.0;
  qos::QosMetrics metrics;
};

struct QosResults {
  std::vector<PointResult> points;

  [[nodiscard]] std::vector<double> signature() const {
    std::vector<double> sig;
    for (const PointResult& point : points) {
      sig.push_back(point.load_factor);
      sig.push_back(static_cast<double>(point.policy));
      sig.push_back(static_cast<double>(point.comm));
      sig.push_back(point.restart);
      const auto metrics = point.metrics.signature();
      sig.insert(sig.end(), metrics.begin(), metrics.end());
    }
    return sig;
  }
};

QosResults compute_all(std::size_t threads, const platform::Platform& plat,
                       double jobs_target, std::uint64_t seed) {
  const std::vector<qos::TenantSpec> base = qos::reference_tenants();
  // Capacity reference under the parallel-links service model, so a
  // given load factor means the same arrival rates across every cell.
  const double t_ref = qos::mean_predicted_service(
      base, plat, make_service(sim::CommModelKind::kParallelLinks, 0.0));

  // Only load × comm distinct job streams exist (the stream seed depends
  // on the load axis alone and deadlines on the comm-matched prediction;
  // the policy and restart axes see identical traffic by design), so the
  // streams are generated once up front — NOT once per sweep point — and
  // the point lambda reads them. Read-only sharing across sweep threads.
  std::vector<std::vector<std::vector<online::Job>>> streams(
      kLoadFactors.size());
  for (std::size_t l = 0; l < kLoadFactors.size(); ++l) {
    const double rate_total = kLoadFactors[l] / t_ref;
    const double horizon = jobs_target / rate_total;
    std::vector<qos::TenantSpec> tenants = base;
    for (qos::TenantSpec& tenant : tenants) {
      tenant.rate *= rate_total;
    }
    streams[l].resize(kCommModels.size());
    for (std::size_t c = 0; c < kCommModels.size(); ++c) {
      util::Rng stream_rng(seed + 1000003 * (l + 1));
      streams[l][c] = qos::generate_tenant_traffic(
          tenants, plat, make_service(kCommModels[c], 0.0), horizon,
          stream_rng);
    }
  }

  util::Grid grid;
  grid.axis("load", kLoadFactors.size())
      .axis("policy", kPolicies.size())
      .axis("comm", kCommModels.size())
      .axis("restart", kRestartFractions.size());
  util::SweepOptions options;
  options.threads = threads;
  options.seed = seed;

  QosResults results;
  results.points =
      util::Sweep(std::move(grid), options)
          .map<PointResult>([&](const util::SweepPoint& point,
                                util::Rng&) {
            PointResult result;
            result.load_factor = kLoadFactors[point.index_of("load")];
            result.policy = point.index_of("policy");
            result.comm = point.index_of("comm");
            result.restart = kRestartFractions[point.index_of("restart")];

            const qos::ServiceModel service = make_service(
                kCommModels[result.comm], result.restart);
            // Identical arrivals across the policy and restart axes
            // (deadlines comm-matched): the policy rankings in the JSON
            // are pathwise comparisons. The sweep's own pre-split rng is
            // deliberately unused — the streams were precomputed above.
            const auto& jobs =
                streams[point.index_of("load")][result.comm];

            const qos::Server server(plat, {service, {}});
            const auto policy = qos::make_policy(
                kPolicies[result.policy], qos::tenant_weights(base));
            result.metrics =
                qos::summarize(server.run(jobs, *policy), plat.size(),
                               qos::tenant_weights(base));
            return result;
          });
  return results;
}

void print_table(const QosResults& results) {
  util::Table table({"load", "policy", "comm", "rho", "jobs", "miss",
                     "goodput", "jain", "restart%", "p95 lat"});
  for (const PointResult& point : results.points) {
    table.row()
        .cell(point.load_factor, 1)
        .cell(qos::to_string(kPolicies[point.policy]))
        .cell(sim::to_string(kCommModels[point.comm]))
        .cell(point.restart, 1)
        .cell(point.metrics.offered)
        .cell(point.metrics.miss_rate, 3)
        .cell(point.metrics.goodput, 2)
        .cell(point.metrics.jain_fairness, 3)
        .cell(100.0 * point.metrics.restart_share, 1)
        .cell(point.metrics.service.p95_latency, 1)
        .done();
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const double jobs_target = args.get_double("jobs", 100.0);
  const auto p = static_cast<std::size_t>(args.get_int("p", 8));
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<long long>(util::Rng::kDefaultSeed)));

  const platform::Platform plat =
      platform::Platform::two_class(p, 1.0, 4.0);

  bench::Harness harness("qos", bench::harness_options_from_args(args));
  harness.config("jobs_target", jobs_target);
  harness.config("p", p);
  harness.config("platform", "two_class(slow=1, k=4)");
  harness.config("rounds", kRounds);
  harness.config("bounded_capacity", kBoundedCapacity);
  harness.config("tenants", "batch(pareto,loose) interactive(tight,w=3) "
                            "analytics(quadratic)");
  harness.config("seed", static_cast<std::int64_t>(seed));

  const QosResults results = harness.run<QosResults>(
      [&](std::size_t threads) {
        return compute_all(threads, plat, jobs_target, seed);
      },
      [](const QosResults& a, const QosResults& b) {
        return bench::identical_doubles(a.signature(), b.signature());
      });

  std::printf("=== QoS: load x policy x comm x restart fraction "
              "(3 tenants, heavy-tailed + SLO traffic) ===\n\n");
  print_table(results);
  std::printf("\n(miss = deadline-miss rate among admitted SLO jobs; "
              "jain = fairness of weighted on-time goodput;\n restart%% = "
              "share of service time burned re-dispatching preempted "
              "state — preemption's nonlinear price)\n");

  // --trace=FILE: re-run the headline flip cell with a recorder attached,
  // prove it bit-identical to the sweep's own point, and export the
  // Perfetto-loadable timeline. --blame adds the critical-path blame
  // table (and the pid-4 path overlay); --metrics=FILE dumps the cell's
  // MetricsRegistry as JSON; --slo sets the burn-rate objective (the
  // monitor always runs on the traced cell, its alerts land in the trace
  // as kAlert instants). Any of the flags runs the cell.
  bool trace_identical = true;
  const std::string trace_path = args.get_string("trace", "");
  const std::string metrics_path = args.get_string("metrics", "");
  const bool blame = args.get_bool("blame", false);
  if (!trace_path.empty() || !metrics_path.empty() || blame) {
    const std::size_t load_index = kLoadFactors.size() - 1;    // 1.1
    const std::size_t policy_index = 2;                        // SRPT
    const std::size_t comm_index = 2;                          // bounded
    const double restart = kRestartFractions.back();           // rho = 2

    // Regenerate the cell's job stream exactly as compute_all does:
    // stream seed from the load axis, deadlines comm-matched.
    const std::vector<qos::TenantSpec> base = qos::reference_tenants();
    const double t_ref = qos::mean_predicted_service(
        base, plat, make_service(sim::CommModelKind::kParallelLinks, 0.0));
    const double rate_total = kLoadFactors[load_index] / t_ref;
    std::vector<qos::TenantSpec> tenants = base;
    for (qos::TenantSpec& tenant : tenants) tenant.rate *= rate_total;
    util::Rng stream_rng(seed + 1000003 * (load_index + 1));
    const std::vector<online::Job> jobs = qos::generate_tenant_traffic(
        tenants, plat, make_service(kCommModels[comm_index], 0.0),
        jobs_target / rate_total, stream_rng);

    // Concurrency 4 so the installments multiplex through one shared
    // engine run per busy period: the trace then carries real per-worker
    // transfer/compute spans (the serial whole-platform mode only knows
    // aggregate installment durations). Run the cell bare, then traced —
    // the pair must be bit-identical.
    std::vector<qos::JobRecord> cell_records;
    const auto run_cell = [&](obs::TraceSink* trace,
                              obs::MetricsRegistry* metrics,
                              std::vector<qos::JobRecord>* records_out) {
      qos::ServerOptions server_options;
      server_options.service =
          make_service(kCommModels[comm_index], restart);
      server_options.concurrency = 4;
      server_options.trace = trace;
      const qos::Server server(plat, server_options);
      const auto policy = qos::make_policy(kPolicies[policy_index],
                                           qos::tenant_weights(base));
      std::vector<qos::JobRecord> records =
          server.run(jobs, *policy, metrics);
      const qos::QosMetrics metrics_out = qos::summarize(
          records, plat.size(), qos::tenant_weights(base));
      if (records_out != nullptr) *records_out = std::move(records);
      return metrics_out;
    };
    obs::TraceRecorder recorder;
    obs::MetricsRegistry registry;
    const qos::QosMetrics bare = run_cell(nullptr, nullptr, nullptr);
    const qos::QosMetrics traced =
        run_cell(&recorder, &registry, &cell_records);
    trace_identical =
        bench::identical_doubles(bare.signature(), traced.signature());
    std::printf("\ntraced load=%.1f srpt bounded rho=%.0f conc=4: "
                "%zu jobs, %zu events | vs untraced: %s\n",
                kLoadFactors[load_index], restart, jobs.size(),
                recorder.size(),
                trace_identical ? "bit-identical"
                                : "DIFFER (tracing changed results!)");

    // Burn-rate monitoring over the cell's deadline-miss budget: base
    // window = horizon/72 so the standard paging pair's slow windows
    // (12 and 72 base widths) both fit inside the run. Alerts land in
    // the recorder as kAlert instants and in the registry.
    const double slo_objective = args.get_double("slo", 0.95);
    double cell_horizon = 0.0;
    for (const qos::JobRecord& record : cell_records) {
      cell_horizon = std::max(cell_horizon, record.finish);
    }
    if (cell_horizon <= 0.0) cell_horizon = 72.0;
    obs::BurnRateMonitor monitor(
        obs::SloPolicy::paging(slo_objective, cell_horizon / 72.0),
        cell_horizon);
    for (const qos::JobRecord& record : cell_records) {
      if (!record.admitted) continue;
      monitor.observe(record.finish, record.finish > record.job.deadline);
    }
    monitor.finalize(&recorder, &registry);
    std::fputs(monitor.render().c_str(), stdout);

    // The blame decomposition must close bit-exactly on every job; the
    // check rides the exit code like the on/off identity above.
    const obs::CriticalPath analysis(recorder.events());
    for (const obs::JobBlame& job : analysis.jobs()) {
      if (job.total() != job.latency) {
        std::fprintf(stderr, "blame components do not sum to latency "
                             "for job %zu\n", job.job);
        trace_identical = false;
      }
    }
    if (blame) {
      std::fputs(
          obs::render_blame(analysis, 10, "qos srpt bounded rho=2").c_str(),
          stdout);
    }

    if (!trace_path.empty()) {
      std::ofstream out(trace_path);
      obs::ChromeTraceOptions trace_options;
      trace_options.workers = p;
      trace_options.label = "qos srpt bounded rho=2";
      trace_options.critical_path = &analysis;
      obs::write_chrome_trace(out, recorder.events(), trace_options);
      out.flush();
      if (out) {
        std::printf("trace written to %s (%zu events)\n", trace_path.c_str(),
                    recorder.size());
      } else {
        std::fprintf(stderr, "warning: could not write %s\n",
                     trace_path.c_str());
        trace_identical = false;
      }
    }
    if (!metrics_path.empty()) {
      std::ofstream out(metrics_path);
      util::JsonWriter json(out);
      registry.write_json(json);
      const bool complete = json.complete();
      out << '\n';
      out.flush();
      if (out && complete) {
        std::printf("metrics written to %s (%zu entries)\n",
                    metrics_path.c_str(), registry.size());
      } else {
        std::fprintf(stderr, "warning: could not write %s\n",
                     metrics_path.c_str());
        trace_identical = false;
      }
    }
    std::fputs(obs::render_attribution(
                   obs::attribute_time(recorder.events(), p),
                   "qos srpt bounded rho=2")
                   .c_str(),
               stdout);
  }

  const int harness_code = harness.finish([&](util::JsonWriter& json) {
    for (const PointResult& point : results.points) {
      json.begin_object();
      json.key("load_factor").value(point.load_factor);
      json.key("policy").value(qos::to_string(kPolicies[point.policy]));
      json.key("comm").value(sim::to_string(kCommModels[point.comm]));
      json.key("restart_fraction").value(point.restart);
      const qos::QosMetrics& m = point.metrics;
      json.key("offered").value(m.offered);
      json.key("admitted").value(m.admitted);
      json.key("rejected").value(m.rejected);
      json.key("degraded").value(m.degraded);
      json.key("deadline_misses").value(m.deadline_misses);
      json.key("miss_rate").value(m.miss_rate);
      json.key("slo_violation_rate").value(m.slo_violation_rate);
      json.key("goodput").value(m.goodput);
      json.key("utilization").value(m.utilization);
      json.key("preemptions_per_job").value(m.preemptions_per_job);
      json.key("restart_share").value(m.restart_share);
      json.key("jain_fairness").value(m.jain_fairness);
      json.key("horizon").value(m.horizon);
      json.key("mean_latency").value(m.service.mean_latency);
      json.key("p50_latency").value(m.service.p50_latency);
      json.key("p95_latency").value(m.service.p95_latency);
      json.key("p99_latency").value(m.service.p99_latency);
      json.key("tenant_on_time_load").begin_array();
      for (const double load : m.tenant_on_time_load) json.value(load);
      json.end_array();
      json.end_object();
    }
  });
  return trace_identical ? harness_code : 1;
}
